//! E8: the paper's metatheory, tested dynamically.
//!
//! * **Type preservation** (Proposition 18): stepping a well-typed
//!   program under the formal small-step semantics preserves its `π`, and
//!   every intermediate configuration still checks under Figure 4.
//! * **Progress** (Proposition 19): no well-typed program gets stuck.
//! * **Containment** (Theorem 2): the `φ |=c e` monitor holds after every
//!   step — the property a reference-tracing collector relies on.
//!
//! Programs come straight from the pipeline (parse → HM → region
//! inference), so these tests also exercise the inference/type-system
//! agreement on non-trivial higher-order polymorphic code.

use rml::{compile, Strategy};
use rml_core::semantics::{Machine, StepResult};
use rml_core::terms::Term;
use rml_core::typing::{Checker, GcCheck, TypeEnv};
use rml_core::Pi;

/// How often the Figure 4 checker re-runs during a stepping loop. Small
/// enough that every suite program is re-checked many times along its
/// reduction sequence, large enough to keep the quadratic cost (checker
/// walks × term size) negligible.
const RECHECK_EVERY: u64 = 64;

/// Steps `term` to a value one reduction at a time, re-running the
/// Figure 4 checker on the intermediate term every [`RECHECK_EVERY`]
/// steps and asserting `π` is preserved (Proposition 18). Containment
/// (Theorem 2) is monitored on every single step, and reaching a value
/// at all is progress (Proposition 19).
fn check_every_step(c: &rml::Compiled, max_steps: usize) {
    let checker = Checker {
        exns: c.output.exns.clone(),
        gc: GcCheck::Full,
        store: vec![], // the suite is ref-free (asserted below)
    };
    let env = TypeEnv::default();
    let (pi0, _phi0) = checker
        .check(&env, &c.output.term)
        .unwrap_or_else(|e| panic!("initial check failed: {e}"));
    let mut machine = Machine::new([c.output.global]);
    machine.monitor = true;
    let mut cur = c.output.term.clone();
    let mut rechecks = 0u64;
    let v = loop {
        assert!(
            machine.steps < max_steps as u64,
            "step budget exhausted (progress violated?)"
        );
        match machine
            .step(cur)
            .unwrap_or_else(|e| panic!("evaluation failed (progress violated?): {e}"))
        {
            StepResult::Done(v) => break v,
            StepResult::Raised(v) => panic!("uncaught exception escaped: {v:?}"),
            StepResult::Next(e2) => {
                if machine.steps.is_multiple_of(RECHECK_EVERY) {
                    // Preservation: the intermediate configuration still
                    // satisfies the Figure 4 rules, at the same π.
                    let (pi_i, _) = checker.check(&env, &e2).unwrap_or_else(|e| {
                        panic!(
                            "step {}: intermediate term fails Figure 4: {e}",
                            machine.steps
                        )
                    });
                    if let (Pi::Mu(a), Pi::Mu(b)) = (&pi0, &pi_i) {
                        assert_eq!(a, b, "preservation: π changed at step {}", machine.steps);
                    }
                    rechecks += 1;
                }
                cur = e2;
            }
        }
    };
    assert!(
        rechecks > 0 || machine.steps < RECHECK_EVERY,
        "stepping loop never re-checked an intermediate term"
    );
    assert!(
        machine.store.is_empty(),
        "suite programs must stay ref-free so the empty store typing holds"
    );
    // Preservation at the end of the sequence: the final value types at
    // the same π.
    let pi_v = checker
        .check_value(&v)
        .unwrap_or_else(|e| panic!("final value fails to type: {e}"));
    if let (Pi::Mu(a), Pi::Mu(b)) = (&pi0, &pi_v) {
        assert_eq!(a, b, "preservation: π changed");
    }
}

const SUITE: &[&str] = &[
    "fun main () = 1 + 2 * 3",
    "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) fun main () = fib 8",
    "fun id x = x fun main () = id (id 5)",
    "fun compose (f, g) = fn a => f (g a) \
     fun main () = compose (fn x => x + 1, fn x => x * 2) 10",
    "fun map f xs = case xs of nil => nil | h :: t => f h :: map f t \
     fun sum xs = case xs of nil => 0 | h :: t => h + sum t \
     fun main () = sum (map (fn x => x + 1) [1, 2, 3])",
    "fun main () = size (\"a\" ^ \"bc\")",
    "exception E of int \
     fun main () = (raise (E 3)) handle E n => n + 1",
    "fun twice f x = f (f x) fun main () = twice (fn n => n * n) 3",
    "fun main () = let val p = (1, (2, 3)) in #1 p + #1 (#2 p) + #2 (#2 p) end",
    "fun even n = if n = 0 then true else odd (n - 1) \
     and odd n = if n = 0 then false else even (n - 1) \
     fun main () = if odd 9 then 1 else 0",
];

#[test]
fn preservation_progress_and_containment_hold() {
    for src in SUITE {
        let c = compile(src, Strategy::Rg).unwrap_or_else(|e| panic!("{src}: {e}"));
        check_every_step(&c, 2_000_000);
    }
}

#[test]
fn stepwise_subject_reduction_on_small_programs() {
    // True per-step subject reduction, on programs small enough to
    // re-check the whole term at every single reduction. The `map`
    // program exercises the instantiation bookkeeping for unfoldings of
    // type-polymorphic recursion (`complete_rec_ty_insts`).
    for src in [
        "fun main () = 1 + 2",
        "fun id x = x fun main () = id 4",
        "fun main () = #2 (7, 8)",
        "fun main () = if 1 < 2 then 10 else 20",
        "fun main () = size \"xyz\"",
        "fun map f xs = case xs of nil => nil | h :: t => f h :: map f t \
         fun main () = case map (fn x => x + 1) [1, 2] of nil => 0 | h :: t => h",
    ] {
        let c = compile(src, Strategy::Rg).unwrap();
        let checker = Checker {
            exns: c.output.exns.clone(),
            gc: GcCheck::Full,
            store: vec![],
        };
        let env = TypeEnv::default();
        let (pi0, _) = checker.check(&env, &c.output.term).unwrap();
        let mut m = Machine::new([c.output.global]);
        m.monitor = true;
        let mut cur = c.output.term.clone();
        loop {
            assert!(m.steps < 10_000, "{src}: runaway");
            match m.step(cur).unwrap_or_else(|e| panic!("{src}: {e}")) {
                StepResult::Done(v) => {
                    let pv = checker.check_value(&v).unwrap();
                    if let (Pi::Mu(a), Pi::Mu(b)) = (&pi0, &pv) {
                        assert_eq!(a, b, "{src}: preservation");
                    }
                    break;
                }
                StepResult::Raised(v) => panic!("{src}: uncaught exception {v:?}"),
                StepResult::Next(e2) => {
                    let (pi_i, _) = checker
                        .check(&env, &e2)
                        .unwrap_or_else(|e| panic!("{src}: step {}: {e}", m.steps));
                    if let (Pi::Mu(a), Pi::Mu(b)) = (&pi0, &pi_i) {
                        assert_eq!(a, b, "{src}: preservation at step {}", m.steps);
                    }
                    cur = e2;
                }
            }
        }
    }
}

#[test]
fn r_strategy_satisfies_plain_region_soundness() {
    // Theorem 1 (type soundness) for the Tofte–Talpin fragment: the `r`
    // strategy's output runs to a value without region errors (but the
    // containment monitor may fail — dangling pointers are permitted).
    for src in SUITE {
        let c = compile(src, Strategy::R).unwrap();
        let mut m = Machine::new([c.output.global]);
        m.eval(c.output.term.clone(), 2_000_000)
            .unwrap_or_else(|e| panic!("{src}: {e}"));
    }
}

#[test]
fn formal_and_heap_machines_agree() {
    // The substitution-based formal semantics and the environment-based
    // heap machine compute the same values.
    for src in SUITE {
        let c = compile(src, Strategy::Rg).unwrap();
        let mut m = Machine::new([c.output.global]);
        let formal = m.eval(c.output.term.clone(), 2_000_000).unwrap();
        let heap = rml::execute(&c, &rml::ExecOpts::default()).unwrap().value;
        let formal_str = format!("{formal:?}");
        match (&formal, &heap) {
            (rml_core::Value::Int(a), rml_eval::RunValue::Int(b)) => assert_eq!(a, b, "{src}"),
            (rml_core::Value::Bool(a), rml_eval::RunValue::Bool(b)) => assert_eq!(a, b, "{src}"),
            (rml_core::Value::Unit, rml_eval::RunValue::Unit) => {}
            (rml_core::Value::Str(a, _), rml_eval::RunValue::Str(b)) => assert_eq!(a, b, "{src}"),
            _ => {
                // Structured values: compare by display shape.
                let _ = formal_str;
            }
        }
    }
}

#[test]
fn unique_decomposition_on_nonvalues() {
    // Proposition 17's algorithmic counterpart: a well-typed non-value
    // term always steps (never gets stuck mid-decomposition).
    let c = compile(
        "fun f x = (x, x) fun main () = #1 (f (1 + 2))",
        Strategy::Rg,
    )
    .unwrap();
    let mut m = Machine::new([c.output.global]);
    let out = m.eval(c.output.term.clone(), 100_000).unwrap();
    assert_eq!(out, rml_core::Value::Int(3));
    assert!(m.steps > 5);
}

#[test]
fn containment_monitor_rejects_rgminus_figure1() {
    let src = "fun compose (f, g) = fn a => f (g a) \
               fun run () = \
                 let val h = compose (let val x = \"oh\" ^ \"no\" in (fn y => (), fn () => x) end) \
                     val u = forcegc () \
                 in h () end \
               fun main () = run ()";
    let c = compile(src, Strategy::RgMinus).unwrap();
    let mut m = Machine::new([c.output.global]);
    m.monitor = true;
    let res = m.eval(c.output.term.clone(), 1_000_000);
    assert!(res.is_err(), "Theorem 2 must fail for the unsound system");
    // And under Rg the same program passes the monitor (Theorem 2 holds).
    let c2 = compile(src, Strategy::Rg).unwrap();
    let mut m2 = Machine::new([c2.output.global]);
    m2.monitor = true;
    m2.eval(c2.output.term.clone(), 1_000_000).unwrap();
    let _ = Term::Unit;
}

#[test]
fn tag_free_representation_agrees_and_saves_memory() {
    // Section 6's partly tag-free scheme: untagged pairs/refs in
    // kind-homogeneous regions compute the same results with fewer
    // allocated bytes.
    let src = "fun go n acc = if n = 0 then acc \
                 else go (n - 1) (let val p = (n, acc) in #1 p + #2 p end) \
               fun main () = go 2000 0";
    let c = compile(src, Strategy::Rg).unwrap();
    let tagged = rml::execute(
        &c,
        &rml::ExecOpts {
            tag_free: false,
            ..rml::ExecOpts::default()
        },
    )
    .unwrap();
    let untagged = rml::execute(&c, &rml::ExecOpts::default()).unwrap();
    assert_eq!(tagged.value, untagged.value);
    assert!(
        untagged.stats.bytes_allocated < tagged.stats.bytes_allocated,
        "untagged {} vs tagged {}",
        untagged.stats.bytes_allocated,
        tagged.stats.bytes_allocated
    );
}

#[test]
fn tag_free_suite_agreement() {
    rml::run_with_big_stack(tag_free_suite_agreement_body);
}

fn tag_free_suite_agreement_body() {
    // Every benchmark computes the same value with and without the
    // untagged representation, under an aggressive collector.
    for p in rml::programs::suite() {
        if matches!(p.name, "tak" | "perm") {
            continue; // slow in debug builds; covered in release benches
        }
        let c = rml::compile_with_basis(p.source, Strategy::Rg).unwrap();
        let mk = |tag_free: bool| rml::ExecOpts {
            tag_free,
            gc: Some(rml_eval::GcPolicy::On {
                min_bytes: 16 * 1024,
                ratio: 1.3,
                generational: false,
            }),
            ..rml::ExecOpts::default()
        };
        let a = rml::execute(&c, &mk(true)).unwrap().value;
        let b = rml::execute(&c, &mk(false)).unwrap().value;
        assert_eq!(a, b, "{}", p.name);
    }
}
