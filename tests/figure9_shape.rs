//! E4 regression: the structural claims of the paper's Figure 9 analysis,
//! asserted programmatically on a fast subset of the suite.

use rml::{compile_with_basis, execute, ExecOpts, Strategy};

const FAST: &[&str] = &["fib", "msort", "sieve", "compose", "queens"];

fn run(name: &str, strategy: Strategy, baseline: bool) -> rml::RunOutcome {
    let name = name.to_string();
    rml::run_with_big_stack(move || {
        let p = rml::programs::by_name(&name).unwrap();
        let c = compile_with_basis(p.source, strategy).unwrap();
        execute(
            &c,
            &ExecOpts {
                baseline,
                ..ExecOpts::default()
            },
        )
        .unwrap()
    })
}

#[test]
fn rg_and_rgminus_trigger_the_same_collections() {
    // "the rg and rg- compilation strategies lead to executables that
    // trigger similar numbers of garbage collections".
    for name in FAST {
        let a = run(name, Strategy::Rg, false);
        let b = run(name, Strategy::RgMinus, false);
        assert_eq!(a.stats.gc_count, b.stats.gc_count, "{name}");
        assert_eq!(a.value, b.value, "{name}");
    }
}

#[test]
fn no_benchmark_crashes_under_rgminus() {
    // "for none of the benchmarks do we experience failures due to the
    // possibility of dangling-pointers in the rg- compilation strategy".
    for name in FAST {
        let _ = run(name, Strategy::RgMinus, false); // unwraps inside
    }
}

#[test]
fn r_strategy_never_collects() {
    for name in FAST {
        let out = run(name, Strategy::R, false);
        assert_eq!(out.stats.gc_count, 0, "{name}");
    }
}

#[test]
fn rg_rgminus_execute_the_same_number_of_steps() {
    // Same generated code shape ⇒ same machine step counts (the regions
    // differ only in live ranges, not instructions).
    for name in FAST {
        let a = run(name, Strategy::Rg, false);
        let b = run(name, Strategy::RgMinus, false);
        assert_eq!(a.steps, b.steps, "{name}");
    }
}

#[test]
fn fcns_and_inst_columns_are_program_relative() {
    rml::run_with_big_stack(|| {
        let p = rml::programs::by_name("compose").unwrap();
        let r = rml_bench::row(&p, 1);
        assert_eq!(r.fcns.0, 1, "compose defines one spurious function");
        assert!(r.fcns.1 >= 2);
        assert!(r.insts.1 >= r.insts.0);
        assert!(r.diff, "compose's own schemes change under rg");
    });
}

#[test]
fn pure_programs_have_empty_diff() {
    rml::run_with_big_stack(|| {
        for name in ["fib", "queens"] {
            let p = rml::programs::by_name(name).unwrap();
            assert!(!rml_bench::code_differs(&p), "{name}");
        }
    });
}

#[test]
fn region_strategies_bound_memory_where_the_paper_says() {
    // sieve's filtered lists die generation by generation: the collector
    // keeps rg's peak well below r's.
    let rg = run("sieve", Strategy::Rg, false);
    let r = run("sieve", Strategy::R, false);
    assert!(
        rg.stats.peak_bytes() < r.stats.peak_bytes(),
        "rg {} vs r {}",
        rg.stats.peak_bytes(),
        r.stats.peak_bytes()
    );
}

#[test]
fn rg_output_of_suite_programs_passes_the_full_g_check() {
    // The strongest static validation: entire basis+program terms satisfy
    // the paper's Figure 4 rules with the full G relation.
    rml::run_with_big_stack(|| {
        for name in ["fib", "msort", "compose", "queens", "sieve", "ratio"] {
            let p = rml::programs::by_name(name).unwrap();
            let c = compile_with_basis(p.source, Strategy::Rg).unwrap();
            rml::check(&c).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    });
}

#[test]
fn exception_benchmark_checks_and_runs_under_all_strategies() {
    rml::run_with_big_stack(|| {
        let p = rml::programs::by_name("exceptions").unwrap();
        for s in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
            let c = compile_with_basis(p.source, s).unwrap();
            rml::check(&c).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            execute(&c, &ExecOpts::default()).unwrap();
        }
    });
}
