//! Snapshot tests for rendered diagnostics.
//!
//! The paper's Figure 1 and Figure 8 programs, compiled under `rg-`
//! (spurious type variables ignored), fail the full GC-safety check; the
//! diagnostic must pinpoint the *capturing lambda* — `fn a => f (g a)`
//! inside `compose`, whose closure captures `f` at a spurious type — with
//! a caret underline on the source, and name the blamed binder.
//!
//! The expected strings are exact snapshots: a rendering change (gutter
//! layout, code, note text) must be reviewed here, not silently absorbed.

use rml::{check_full, compile, SourceMap, Strategy};

/// The paper's Figure 1, formatted one declaration per line so the
/// snapshot's line numbers are meaningful.
const FIGURE1: &str = "\
fun compose (f, g) = fn a => f (g a)
fun run () =
  let val h = compose (let val x = \"oh\" ^ \"no\" in (fn y => (), fn () => x) end)
      val u = forcegc ()
  in h () end
fun main () = run ()
";

/// The paper's Figure 8: `g`'s `'a` is spurious only transitively.
const FIGURE8: &str = "\
fun compose (f, g) = fn a => f (g a)
fun g (f : unit -> 'a) : unit -> unit =
  compose (let val x = f () in (fn x => (), fn () => x) end)
val h = g (fn () => \"oh\" ^ \"no\")
fun main () = h ()
";

fn rendered_failure(src: &'static str, name: &str) -> String {
    let c = compile(src, Strategy::RgMinus).expect("rg- compilation succeeds");
    let d = check_full(&c).expect_err("rg- output must fail the full GC-safety check");
    assert_eq!(d.code, "E0004");
    assert!(
        !d.primary.is_dummy(),
        "the checker's blame must resolve to a source span"
    );
    d.render(&SourceMap::new(src), name)
}

#[test]
fn figure1_rgminus_diagnostic_snapshot() {
    let got = rml::run_with_big_stack(|| rendered_failure(FIGURE1, "<fig1>"));
    let want = "\
error[E0004]: G: captured variable `f` has a type not contained in frev(π) — its regions could dangle (this is the paper's soundness condition)
  --> <fig1>:1:22
  |
1 | fun compose (f, g) = fn a => f (g a)
  |                      ^^^^^^^^^^^^^^^
  = note: while checking the function bound by `a`
";
    assert_eq!(got, want, "rendered:\n{got}");
}

#[test]
fn figure8_rgminus_diagnostic_snapshot() {
    let got = rml::run_with_big_stack(|| rendered_failure(FIGURE8, "<fig8>"));
    let want = "\
error[E0004]: G: captured variable `f` has a type not contained in frev(π) — its regions could dangle (this is the paper's soundness condition)
  --> <fig8>:1:22
  |
1 | fun compose (f, g) = fn a => f (g a)
  |                      ^^^^^^^^^^^^^^^
  = note: while checking the function bound by `a`
";
    assert_eq!(got, want, "rendered:\n{got}");
}

#[test]
fn rg_output_passes_the_full_check() {
    // The same programs under `rg` are sound: no diagnostic at all.
    rml::run_with_big_stack(|| {
        for src in [FIGURE1, FIGURE8] {
            let c = compile(src, Strategy::Rg).expect("rg compilation succeeds");
            check_full(&c).expect("rg output passes the full GC-safety check");
        }
    });
}

#[test]
fn parse_and_type_errors_carry_spans() {
    // E0001 with the offending token underlined.
    let err = compile("fun main () = (1 +", Strategy::Rg).unwrap_err();
    let d = err.diagnostic();
    assert_eq!(d.code, "E0001");
    // E0002 with the smallest enclosing expression underlined.
    let src = "fun main () = 1 + \"two\"";
    let err = compile(src, Strategy::Rg).unwrap_err();
    let d = err.diagnostic();
    assert_eq!(d.code, "E0002");
    assert!(!d.primary.is_dummy(), "type errors must carry a span");
    let r = d.render(&SourceMap::new(src), "<e>");
    assert!(r.contains("-->"), "rendered without location:\n{r}");
}
