//! Panic-freedom fuzzing for the input-facing surfaces: arbitrary bytes
//! into the lexer/parser and mutated RMLI bytes into the IR decoder must
//! produce structured errors (`ParseError`, `IrError`), never a panic,
//! abort, or runaway allocation.
//!
//! The generators are deterministic (see the proptest shim), so a
//! failure here reproduces exactly on re-run.

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Token soup vocabulary: every keyword and operator the lexer knows,
/// plus a few identifiers and literals, so random sequences reach deep
/// into the parser instead of dying at the first unknown byte.
const TOKENS: &[&str] = &[
    "fun", "fn", "let", "val", "in", "end", "if", "then", "else", "case", "of", "ref", "raise",
    "handle", "andalso", "orelse", "div", "mod", "nil", "true", "false", "=>", "->", "=", "(", ")",
    "[", "]", ",", ";", "::", ":=", ":", "|", "+", "-", "*", "^", "<", ">", "<=", ">=", "!", "#1",
    "#2", "_", "x", "f", "g", "main", "0", "1", "42", "\"s\"", "'a", "int", "string", "bool",
    "unit", "list",
];

/// A small xorshift64* for byte mutations (keeps the mutation schedule
/// independent of the generator that picked the seed).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A real, well-formed RMLI image to mutate.
fn base_ir() -> &'static [u8] {
    static BASE: OnceLock<Vec<u8>> = OnceLock::new();
    BASE.get_or_init(|| {
        let c = rml::compile(
            "fun build n = if n = 0 then nil else (n, itos n) :: build (n - 1) \
             fun main () = case build 3 of nil => 0 | h :: t => #1 h",
            rml::Strategy::Rg,
        )
        .expect("compile fuzz base program");
        rml::emit_ir(&c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup through the whole front end.
    #[test]
    fn lexer_and_parser_survive_random_bytes(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let _ = rml_syntax::lexer::lex(&src);
        let _ = rml_syntax::parse_program(&src);
    }

    /// Well-lexed but arbitrarily ordered tokens: stresses every parser
    /// production past the lexer.
    #[test]
    fn parser_survives_token_soup(picks in vec(0usize..TOKENS.len(), 0..192)) {
        let src = picks.iter().map(|&i| TOKENS[i]).collect::<Vec<_>>().join(" ");
        let _ = rml_syntax::parse_program(&src);
        let _ = rml_syntax::parse_expr(&src);
    }

    /// Mutated RMLI images: flip a handful of bytes in a real image and
    /// optionally truncate. The decoder must reject (or accept a
    /// coincidentally valid image) without panicking and without
    /// trusting embedded counts (`IrError::Truncated` for counts that
    /// exceed the input).
    #[test]
    fn ir_decoder_survives_mutations(seed in any::<u64>()) {
        let base = base_ir();
        let mut bytes = base.to_vec();
        let mut st = seed | 1;
        let flips = (xorshift(&mut st) % 16 + 1) as usize;
        for _ in 0..flips {
            let pos = (xorshift(&mut st) as usize) % bytes.len();
            bytes[pos] ^= (xorshift(&mut st) & 0xFF) as u8;
        }
        if xorshift(&mut st).is_multiple_of(4) {
            bytes.truncate((xorshift(&mut st) as usize) % (bytes.len() + 1));
        }
        let _ = rml_core::ir::decode_program(&bytes);
    }

    /// Pure byte soup (no valid prefix at all) through the decoder.
    #[test]
    fn ir_decoder_survives_random_bytes(bytes in vec(any::<u8>(), 0..256)) {
        let _ = rml_core::ir::decode_program(&bytes);
    }
}

/// Unbounded nesting must be rejected by the parser's depth limit — a
/// structured `ParseError`, not a stack overflow (which no harness can
/// catch).
#[test]
fn deep_nesting_is_an_error_not_a_crash() {
    let src = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
    let err = rml_syntax::parse_expr(&src).unwrap_err();
    assert!(err.msg.contains("nesting too deep"), "{}", err.msg);
    let tysrc = format!(
        "fun f (x : {}int{}) = x",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    assert!(rml_syntax::parse_program(&tysrc).is_err());
}
