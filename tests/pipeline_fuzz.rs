//! Property-based end-to-end testing: randomly generated well-typed
//! programs must (1) type-check under Figure 4 after `rg` inference,
//! (2) run identically under the formal semantics (with the Theorem 2
//! monitor) and the heap machine (with an aggressive collector), and
//! (3) produce the same value under all three strategies and the
//! regionless baseline.

use proptest::prelude::*;
use rml::Strategy as RmlStrategy;
use rml::{compile, execute, ExecOpts};
use rml_eval::GcPolicy;

/// A generator for well-typed integer expressions over the variables
/// `x`, `y` and the prelude functions below.
fn int_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..50).prop_map(|n| n.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * ({b} mod 7))")),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c, d)| format!("(if {a} < {b} then {c} else {d})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(let val v = {a} in v + {b} end)")),
            inner.clone().prop_map(|a| format!("(inc {a})")),
            inner.clone().prop_map(|a| format!("(dbl {a})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(#1 ({a}, {b}) + #2 ({b}, {a}))")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(lsum [{a}, {b}, 3])")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("((comp (fn a => a + {a}, fn a => a * 2)) {b})")),
            inner
                .clone()
                .prop_map(|a| format!("(llen (lmap (fn e => e + 1) [{a}, 1]))")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(let val r = ref {a} in (r := !r + {b}; !r) end)")),
        ]
    })
}

const PRELUDE: &str = "\
fun inc n = n + 1 \
fun dbl n = n + n \
fun comp (f, g) = fn a => f (g a) \
fun lsum xs = case xs of nil => 0 | h :: t => h + lsum t \
fun llen xs = case xs of nil => 0 | h :: t => 1 + llen t \
fun lmap f xs = case xs of nil => nil | h :: t => f h :: lmap f t ";

fn program_for(expr: &str) -> String {
    format!("{PRELUDE}\nfun main () = let val x = 3 val y = 11 in {expr} end")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_are_gc_safe_and_strategy_independent(expr in int_expr()) {
        let src = program_for(&expr);
        // rg: must check and run under the containment monitor.
        let rg = compile(&src, RmlStrategy::Rg).unwrap();
        rml::check(&rg).unwrap_or_else(|e| panic!("G check failed: {e}\nsrc: {src}"));
        let mut formal = rml_core::semantics::Machine::new([rg.output.global]);
        formal.monitor = true;
        let fv = formal
            .eval(rg.output.term.clone(), 3_000_000)
            .unwrap_or_else(|e| panic!("formal eval failed: {e}\nsrc: {src}"));
        // Heap machine with aggressive collection.
        let opts = ExecOpts {
            gc: Some(GcPolicy::On { min_bytes: 256, ratio: 1.05, generational: false }),
            ..ExecOpts::default()
        };
        let hv = execute(&rg, &opts).unwrap_or_else(|e| panic!("heap eval failed: {e}\nsrc: {src}"));
        if let (rml_core::Value::Int(a), rml_eval::RunValue::Int(b)) = (&fv, &hv.value) {
            prop_assert_eq!(a, b, "formal vs heap disagree on {}", src);
        }
        // Strategy independence (+ baseline).
        for s in [RmlStrategy::RgMinus, RmlStrategy::R] {
            let c = compile(&src, s).unwrap();
            let v = execute(&c, &ExecOpts::default()).unwrap().value;
            prop_assert_eq!(&v, &hv.value, "strategy {:?} disagrees on {}", s, src);
        }
        let bv = execute(&rg, &ExecOpts { baseline: true, ..ExecOpts::default() })
            .unwrap()
            .value;
        prop_assert_eq!(&bv, &hv.value, "baseline disagrees on {}", src);
    }

    #[test]
    fn generational_collection_agrees(expr in int_expr()) {
        let src = program_for(&expr);
        let c = compile(&src, RmlStrategy::Rg).unwrap();
        let plain = execute(&c, &ExecOpts::default()).unwrap().value;
        let opts = ExecOpts {
            gc: Some(GcPolicy::On { min_bytes: 256, ratio: 1.05, generational: true }),
            ..ExecOpts::default()
        };
        let gen = execute(&c, &opts).unwrap().value;
        prop_assert_eq!(plain, gen, "generational GC changed the result of {}", src);
    }
}
