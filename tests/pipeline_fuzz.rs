//! Property-based end-to-end testing over `rml-gen`: seeded, type-directed
//! random programs must (1) type-check under Figure 4 after `rg`
//! inference, (2) run identically under the formal semantics (with the
//! Theorem 2 monitor) and the heap machine (with an aggressive
//! collector), and (3) produce the same value under the `r` strategy and
//! the regionless baseline. The unsound `rg-` strategy is permitted to
//! diverge, but only by faulting with a dangling-pointer error — the
//! generator deliberately emits Figure 1-shaped programs that dangle
//! under `rg-`, which is precisely what the paper's repair rules out.
//!
//! Programs are produced by the shared generator (`crates/gen`), so every
//! failure here reproduces from its seed: `rmlc --gen=SEED --torture`.

use rml::{compile, execute, ExecOpts, Strategy};
use rml_eval::{GcPolicy, RunError};
use rml_gen::{generate_source, GenOpts};

const CASES: u64 = 48;
const FUEL_STEPS: u64 = 3_000_000;

/// The deterministic case list: seeds `base..base + CASES`, with the
/// generator's size budget cycling so small and large programs both
/// appear.
fn cases(base: u64) -> impl Iterator<Item = (u64, String)> {
    (base..base + CASES).map(|seed| {
        let fuel = match seed % 3 {
            0 => 20,
            1 => 40,
            _ => 60,
        };
        (seed, generate_source(&GenOpts { seed, fuel }))
    })
}

#[test]
fn random_programs_are_gc_safe_and_strategy_independent() {
    for (seed, src) in cases(1_000) {
        // rg: must check and run under the containment monitor.
        let rg = compile(&src, Strategy::Rg)
            .unwrap_or_else(|e| panic!("seed {seed}: rg compile failed: {e}\nsrc: {src}"));
        rml::check(&rg).unwrap_or_else(|e| panic!("seed {seed}: G check failed: {e}\nsrc: {src}"));
        let mut formal = rml_core::semantics::Machine::new([rg.output.global]);
        formal.monitor = true;
        let fv = formal
            .eval(rg.output.term.clone(), FUEL_STEPS)
            .unwrap_or_else(|e| panic!("seed {seed}: formal eval failed: {e}\nsrc: {src}"));
        // Heap machine with aggressive collection.
        let opts = ExecOpts {
            gc: Some(GcPolicy::On {
                min_bytes: 256,
                ratio: 1.05,
                generational: false,
            }),
            ..ExecOpts::default()
        };
        let hv = execute(&rg, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: heap eval failed: {e}\nsrc: {src}"));
        if let (rml_core::Value::Int(a), rml_eval::RunValue::Int(b)) = (&fv, &hv.value) {
            assert_eq!(a, b, "seed {seed}: formal vs heap disagree on {src}");
        }
        // The sound Tofte–Talpin strategy and the regionless baseline
        // must agree exactly.
        let r = compile(&src, Strategy::R).unwrap();
        let rv = execute(&r, &ExecOpts::default()).unwrap().value;
        assert_eq!(rv, hv.value, "seed {seed}: strategy r disagrees on {src}");
        let bv = execute(
            &rg,
            &ExecOpts {
                baseline: true,
                ..ExecOpts::default()
            },
        )
        .unwrap()
        .value;
        assert_eq!(bv, hv.value, "seed {seed}: baseline disagrees on {src}");
        // rg- may fault — but only with a dangling pointer, and only
        // because the generator emits programs whose GC safety genuinely
        // needs the coverage rule. Any other divergence is a bug.
        let rgm = compile(&src, Strategy::RgMinus).unwrap();
        match execute(&rgm, &ExecOpts::default()) {
            Ok(out) => assert_eq!(out.value, hv.value, "seed {seed}: rg- disagrees on {src}"),
            Err(RunError::Dangling(_)) => {}
            Err(e) => panic!("seed {seed}: rg- failed with a non-dangling error: {e}\nsrc: {src}"),
        }
    }
}

#[test]
fn generational_collection_agrees() {
    for (seed, src) in cases(9_000) {
        let c = compile(&src, Strategy::Rg)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\nsrc: {src}"));
        let plain = execute(&c, &ExecOpts::default()).unwrap().value;
        let opts = ExecOpts {
            gc: Some(GcPolicy::On {
                min_bytes: 256,
                ratio: 1.05,
                generational: true,
            }),
            ..ExecOpts::default()
        };
        let gen = execute(&c, &opts).unwrap().value;
        assert_eq!(
            plain, gen,
            "seed {seed}: generational GC changed the result of {src}"
        );
    }
}
