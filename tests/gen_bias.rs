//! Distribution checks over a fixed-seed generator batch: `rml-gen` is
//! deliberately biased toward the shapes the paper's repair exists for —
//! higher-order polymorphic functions (whose quantified type variables
//! carry the coverage obligation) and functions with *spurious* type
//! variables (Section 4.3, the source of the `rg-` unsoundness). This
//! test pins that bias so a generator refactor cannot silently regress
//! the fuzzer into trivial first-order programs.

use rml::{compile, Strategy};
use rml_core::types::{BoxTy, Mu};
use rml_gen::{generate_source, GenOpts};

const BATCH: u64 = 100;
const FUEL: u32 = 40;

fn mu_has_arrow(mu: &Mu) -> bool {
    match mu {
        Mu::Var(_) | Mu::Int | Mu::Bool | Mu::Unit => false,
        Mu::Boxed(b, _) => match &**b {
            BoxTy::Arrow(..) => true,
            BoxTy::Pair(a, b) => mu_has_arrow(a) || mu_has_arrow(b),
            BoxTy::List(m) | BoxTy::Ref(m) => mu_has_arrow(m),
            BoxTy::Str | BoxTy::Exn => false,
        },
    }
}

/// A scheme is "higher-order polymorphic" when it quantifies type
/// variables (non-empty ∆) and its argument type contains an arrow.
fn higher_order_polymorphic(s: &rml_core::types::Scheme) -> bool {
    if s.delta.is_empty() {
        return false;
    }
    let BoxTy::Arrow(arg, _, _) = &s.body else {
        return false;
    };
    mu_has_arrow(arg)
}

#[test]
fn batch_is_biased_toward_the_papers_hard_shapes() {
    let mut higher_order_poly = 0usize;
    let mut with_spurious = 0usize;
    for seed in 0..BATCH {
        let src = generate_source(&GenOpts { seed, fuel: FUEL });
        let c = compile(&src, Strategy::Rg)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\nsrc: {src}"));
        if c.output
            .schemes
            .iter()
            .any(|(_, s)| higher_order_polymorphic(s))
        {
            higher_order_poly += 1;
        }
        if c.output.stats.spurious_fns > 0 {
            with_spurious += 1;
        }
    }
    // The ISSUE floor: at least 20% of a batch must contain a
    // higher-order polymorphic function...
    assert!(
        higher_order_poly * 5 >= BATCH as usize,
        "only {higher_order_poly}/{BATCH} programs contain a higher-order polymorphic function"
    );
    // ...and some must exhibit spurious type variables.
    assert!(
        with_spurious > 0,
        "no program in the batch has a spurious type variable"
    );
}
