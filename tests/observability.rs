//! Exporter golden tests: the Chrome trace emitted by the tracing facade
//! is structurally valid JSON, spans nest properly, and GC pauses land
//! inside the machine's run span. Also the cross-layer agreement check:
//! the unified `MetricsSnapshot` must report the same counters as the
//! `HeapStats` the torture rig saw.
//!
//! The trace sink is process-global, so every test that installs one
//! holds `SINK_GATE` for its whole body (other test *binaries* are other
//! processes and unaffected).

use rml::{compile, execute, ExecOpts, Strategy};
use rml_session::trace;
use std::sync::{Arc, Mutex};

static SINK_GATE: Mutex<()> = Mutex::new(());

// --- a minimal JSON validator (the workspace has no serde) --------------

#[derive(Debug, Clone, PartialEq)]
enum V {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<V>),
    Obj(Vec<(String, V)>),
}

impl V {
    fn get(&self, key: &str) -> Option<&V> {
        match self {
            V::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            V::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(s: &'a str) -> Result<V, String> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing input at byte {}", p.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<V, String> {
        self.ws();
        match self.s.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(V::Obj(fields));
                }
                loop {
                    self.ws();
                    let k = match self.value()? {
                        V::Str(s) => s,
                        v => return Err(format!("non-string key {v:?}")),
                    };
                    self.eat(b':')?;
                    fields.push((k, self.value()?));
                    self.ws();
                    match self.s.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(V::Obj(fields));
                        }
                        _ => return Err(format!("bad object at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(V::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.s.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(V::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.i)),
                    }
                }
            }
            Some(b'"') => {
                self.i += 1;
                let mut out = String::new();
                loop {
                    match self.s.get(self.i) {
                        Some(b'"') => {
                            self.i += 1;
                            return Ok(V::Str(out));
                        }
                        Some(b'\\') => {
                            self.i += 1;
                            match self.s.get(self.i) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'/') => out.push('/'),
                                Some(b'n') => out.push('\n'),
                                Some(b'r') => out.push('\r'),
                                Some(b't') => out.push('\t'),
                                Some(b'b') => out.push('\u{8}'),
                                Some(b'f') => out.push('\u{c}'),
                                Some(b'u') => {
                                    let hex = self
                                        .s
                                        .get(self.i + 1..self.i + 5)
                                        .ok_or("truncated \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                        16,
                                    )
                                    .map_err(|e| e.to_string())?;
                                    out.push(char::from_u32(code).ok_or("bad codepoint")?);
                                    self.i += 4;
                                }
                                c => return Err(format!("bad escape {c:?}")),
                            }
                            self.i += 1;
                        }
                        Some(&c) if c < 0x20 => {
                            return Err(format!("raw control byte {c:#x} in string"))
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar.
                            let start = self.i;
                            self.i += 1;
                            while self.i < self.s.len() && self.s[self.i] & 0xC0 == 0x80 {
                                self.i += 1;
                            }
                            out.push_str(
                                std::str::from_utf8(&self.s[start..self.i])
                                    .map_err(|e| e.to_string())?,
                            );
                        }
                        None => return Err("unterminated string".to_string()),
                    }
                }
            }
            Some(c) if *c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                self.i += 1;
                while self.s.get(self.i).is_some_and(|c| {
                    c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|e| e.to_string())?
                    .parse()
                    .map(V::Num)
                    .map_err(|e| format!("bad number: {e}"))
            }
            _ if self.s[self.i..].starts_with(b"null") => {
                self.i += 4;
                Ok(V::Null)
            }
            _ if self.s[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(V::Bool(true))
            }
            _ if self.s[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(V::Bool(false))
            }
            c => Err(format!("unexpected {c:?} at byte {}", self.i)),
        }
    }
}

/// Compiles and runs a small allocating program under a stress schedule
/// with a recorder installed, returning the exported trace.
fn record_stressed_run() -> (String, Vec<trace::TraceEvent>) {
    let rec = Arc::new(trace::Recorder::new());
    trace::install(rec.clone());
    let c = compile(
        "fun main () = let fun loop (n) = if n = 0 then 0 else loop (n - 1) in loop 3000 end",
        Strategy::Rg,
    )
    .unwrap();
    let opts = ExecOpts {
        gc: Some(rml_eval::GcPolicy::stress_every(50, 7)),
        ..ExecOpts::default()
    };
    execute(&c, &opts).unwrap();
    trace::uninstall();
    (rec.to_chrome_json(), rec.events())
}

#[test]
fn chrome_trace_is_valid_json_with_phase_spans_and_gc_pauses() {
    let _g = SINK_GATE.lock().unwrap();
    let (json, _) = record_stressed_run();
    let v = Parser::parse(&json).expect("trace must be valid JSON");
    assert_eq!(v.get("displayTimeUnit").and_then(V::as_str), Some("ms"));
    let events = match v.get("traceEvents") {
        Some(V::Arr(evs)) => evs,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    // Every event carries the required Chrome trace fields.
    for e in events {
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "missing {key}: {e:?}");
        }
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(V::as_str))
        .collect();
    // Pipeline phase spans...
    for phase in [
        "compile",
        "parse",
        "hm-typing",
        "region-inference",
        "repr-analysis",
    ] {
        assert!(names.contains(&phase), "missing phase span {phase}");
    }
    // ...and at least one GC pause under the stress schedule.
    assert!(names.contains(&"gc.pause"), "no gc.pause event recorded");
}

#[test]
fn spans_nest_and_gc_pauses_land_inside_the_run_span() {
    let _g = SINK_GATE.lock().unwrap();
    let (_, events) = record_stressed_run();
    // B/E events balance like parentheses (single-threaded run here, but
    // check per tid as a viewer would).
    let mut stacks: std::collections::HashMap<u64, Vec<&'static str>> = Default::default();
    let mut run_depth = 0u32;
    let mut pauses_in_run = 0u64;
    let mut pauses_total = 0u64;
    for e in &events {
        let stack = stacks.entry(e.tid).or_default();
        match e.ph {
            trace::TracePhase::Begin => {
                stack.push(e.name);
                if e.name == "machine.run" {
                    run_depth += 1;
                }
            }
            trace::TracePhase::End => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("E event {:?} with empty span stack", e.name));
                assert_eq!(open, e.name, "span E must close the innermost B");
                if e.name == "machine.run" {
                    run_depth -= 1;
                }
            }
            trace::TracePhase::Instant if e.name == "gc.pause" => {
                pauses_total += 1;
                if run_depth > 0 {
                    pauses_in_run += 1;
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    assert!(pauses_total > 0, "stress schedule must have forced pauses");
    assert_eq!(
        pauses_in_run, pauses_total,
        "every GC pause must nest inside a machine.run span"
    );
    // Timestamps are monotone within the recorder.
    let ts: Vec<u64> = events.iter().map(|e| e.ts_us).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "non-monotone ts");
}

#[test]
fn metrics_snapshot_agrees_with_torture_rig_heap_stats() {
    // No sink needed: metrics come from the returned stats, not tracing.
    let p = rml::programs::by_name("fib").expect("suite program");
    let (m, expected_steps) = rml::run_with_big_stack(move || {
        let set = rml_bench::compile_set(&p);
        let m = rml_bench::measure_torture(&set, 1);
        // An independent plain run for the steps cross-check.
        let out = execute(&set.rg, &ExecOpts::default()).unwrap();
        (m, out.steps)
    });
    assert!(!m.crashed);
    let snap = m.metrics.expect("non-crashed measurement carries metrics");
    // The unified snapshot and the flat HeapStats fields must agree.
    assert_eq!(snap.heap.forced_gcs, m.forced_gcs);
    assert_eq!(snap.heap.verify_walks, m.verify_walks);
    assert_eq!(snap.heap.gc_count, m.gc_count);
    assert_eq!(snap.heap.bytes_allocated, m.alloc_bytes);
    assert_eq!(snap.heap.peak_bytes(), m.peak_bytes);
    assert_eq!(snap.steps, m.steps);
    // Fault injection happens on probe runs whose stats are discarded;
    // the measured run itself must report none.
    assert_eq!(snap.heap.faults_injected, 0);
    assert!(m.faults_survived >= 2, "both probes must have run");
    // Under stress-every-64 the rig actually collected, and the pause
    // histogram saw every collection.
    assert!(snap.heap.forced_gcs > 0);
    assert_eq!(snap.pauses.count, snap.heap.gc_count);
    assert!(snap.pauses.max_us >= snap.pauses.p50_us);
    // Steps are schedule-independent (the torture run executes the same
    // program as a plain run, just with more collections).
    assert_eq!(snap.steps, expected_steps);
    // And the JSON view renders without panicking on any float.
    let json = snap.to_json().try_render().unwrap();
    assert!(json.contains("\"forced_gcs\""));
}
