//! The serializable IR round-trips the whole benchmark suite.
//!
//! For every program of the Figure 9 suite, under every strategy, the
//! encoded region-annotated program must decode to an α-equivalent term
//! (the decoder freshens every region/effect/type variable, so equality
//! is up to the first-occurrence renaming of `rml_bench::normalize_vars`),
//! and the decoded program must still satisfy the Figure 4 checker in the
//! strategy's GC mode. Truncations and version skew must be rejected.

use rml::{check, compile_with_basis, emit_ir, load_ir, Strategy};
use rml_bench::normalize_vars;

fn norm_term(c: &rml::Compiled) -> String {
    normalize_vars(&rml_core::pretty::term_to_string(&c.output.term))
}

/// Sort the elements of every `{...}` effect set. The pretty-printer
/// iterates sets in raw variable-id order, which the decoder's freshening
/// permutes, so first-occurrence renaming alone cannot line two prints up.
fn sort_sets(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(open) = rest.find('{') {
        let close = open + rest[open..].find('}').expect("unbalanced effect set");
        out.push_str(&rest[..=open]);
        let mut elems: Vec<&str> = rest[open + 1..close]
            .split(',')
            .filter(|e| !e.is_empty())
            .collect();
        // Numeric-aware order so `r#10` sorts after `r#2`.
        elems.sort_by_key(|e| {
            let (head, digits) =
                e.split_at(e.find(|c: char| c.is_ascii_digit()).unwrap_or(e.len()));
            (head.to_string(), digits.parse::<u64>().unwrap_or(0))
        });
        out.push_str(&elems.join(","));
        rest = &rest[close..];
    }
    out.push_str(rest);
    out
}

/// Renumber `r#N`/`e#N`/`a#N` tokens by first occurrence (the output
/// alphabet of [`normalize_vars`]).
fn renumber(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut maps: [std::collections::HashMap<&str, usize>; 3] = Default::default();
    let mut rest = s;
    while let Some(hash) = rest.find('#') {
        let class = match rest[..hash].chars().last() {
            Some('r') => Some(0),
            Some('e') => Some(1),
            Some('a') => Some(2),
            _ => None,
        };
        let digits_end = hash
            + 1
            + rest[hash + 1..]
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len() - hash - 1);
        match class {
            Some(k) if digits_end > hash + 1 => {
                out.push_str(&rest[..hash - 1]);
                let tok = &rest[hash - 1..digits_end];
                let next = maps[k].len();
                let id = *maps[k].entry(tok).or_insert(next);
                out.push_str(&format!("{}#{id}", &tok[..1]));
            }
            _ => out.push_str(&rest[..digits_end]),
        }
        rest = &rest[digits_end..];
    }
    out.push_str(rest);
    out
}

/// α-canonical form of a pretty-printed scheme: first-occurrence
/// renaming, then sorted effect sets, iterated to a fixpoint (sorting can
/// change which occurrence of a set-local variable comes first).
fn canon(s: &str) -> String {
    let mut cur = normalize_vars(s);
    for _ in 0..16 {
        let next = renumber(&sort_sets(&cur));
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn norm_schemes(c: &rml::Compiled) -> Vec<String> {
    c.output
        .schemes
        .iter()
        .map(|(n, s)| format!("{n}:{}", canon(&rml_core::pretty::scheme_to_string(s))))
        .collect()
}

#[test]
fn whole_suite_roundtrips_under_every_strategy() {
    rml::run_with_big_stack(|| {
        for p in rml::programs::suite() {
            for strategy in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
                let orig = compile_with_basis(p.source, strategy)
                    .unwrap_or_else(|e| panic!("{} [{strategy:?}]: {e}", p.name));
                let bytes = emit_ir(&orig);
                let loaded = load_ir(&bytes, strategy)
                    .unwrap_or_else(|e| panic!("{} [{strategy:?}]: decode: {e}", p.name));
                assert_eq!(
                    norm_term(&orig),
                    norm_term(&loaded),
                    "{} [{strategy:?}]: decoded term is not α-equivalent",
                    p.name
                );
                assert_eq!(
                    norm_schemes(&orig),
                    norm_schemes(&loaded),
                    "{} [{strategy:?}]: schemes changed",
                    p.name
                );
                let exns: Vec<_> = orig.output.exns.keys().collect();
                let loaded_exns: Vec<_> = loaded.output.exns.keys().collect();
                assert_eq!(exns, loaded_exns, "{}: exception constructors", p.name);
                // The decoded program still satisfies Figure 4 in the
                // strategy's own GC mode, exactly like the original.
                assert_eq!(
                    check(&orig),
                    check(&loaded),
                    "{} [{strategy:?}]: checker verdict changed across the round-trip",
                    p.name
                );
            }
        }
    });
}

#[test]
fn corrupted_input_is_rejected() {
    let bytes = rml::run_with_big_stack(|| {
        let c = compile_with_basis("fun main () = 1 + 2", Strategy::Rg).unwrap();
        emit_ir(&c)
    });
    // Version skew: flip a version byte (offsets 4..8, after the magic).
    let mut skewed = bytes.clone();
    skewed[4] ^= 0xff;
    assert!(
        load_ir(&skewed, Strategy::Rg).is_err(),
        "version skew accepted"
    );
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(load_ir(&bad, Strategy::Rg).is_err(), "bad magic accepted");
    // Truncation at a spread of prefixes (every prefix is exercised by
    // the unit tests in `rml_core::ir`; here a sample guards the facade).
    for frac in [0, 1, 2, 3] {
        let cut = bytes.len() * frac / 4;
        assert!(
            load_ir(&bytes[..cut], Strategy::Rg).is_err(),
            "truncated input of {cut} bytes accepted"
        );
    }
    // Trailing garbage.
    let mut long = bytes.clone();
    long.push(0);
    assert!(
        load_ir(&long, Strategy::Rg).is_err(),
        "trailing byte accepted"
    );
    // And the untouched bytes still load.
    assert!(load_ir(&bytes, Strategy::Rg).is_ok());
}
