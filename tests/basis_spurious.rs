//! E5: the paper's Section 4.2 claim — "the MLKit implementation of the
//! entire Standard ML Basis Library contains only three spurious
//! functions, which include the top-level composition function `o` and the
//! functions `Option.compose` and `Option.mapPartial`".
//!
//! Our basis (`rml::basis`) mirrors that fragment; region inference must
//! find exactly the three analogous spurious functions.

use rml::{compile, Strategy};

#[test]
fn exactly_three_spurious_functions_in_the_basis() {
    rml::run_with_big_stack(|| {
        let c = compile(rml::basis::BASIS, Strategy::Rg).unwrap();
        let names = &c.output.stats.spurious_fn_names;
        assert_eq!(
            c.output.stats.spurious_fns, 3,
            "spurious functions: {names:?}"
        );
        for expected in ["o", "opt_compose", "opt_mapPartial"] {
            assert!(
                names.iter().any(|n| n == expected),
                "`{expected}` should be spurious; got {names:?}"
            );
        }
    });
}

#[test]
fn basis_type_checks_under_the_full_g_relation() {
    rml::run_with_big_stack(|| {
        let c = compile(rml::basis::BASIS, Strategy::Rg).unwrap();
        rml::check(&c).unwrap();
    });
}

#[test]
fn basis_fcns_ratio_reported() {
    rml::run_with_big_stack(|| {
        // Figure 9's `fcns` column is "spurious functions / total functions".
        let c = compile(rml::basis::BASIS, Strategy::Rg).unwrap();
        assert!(c.output.stats.total_fns > 20);
        assert!(c.output.stats.spurious_fns <= c.output.stats.total_fns);
    });
}

#[test]
fn annotation_removes_spuriousness_as_in_section_4_2() {
    // The List.app example: the unannotated helper version is spurious,
    // the annotated one is not.
    let spurious = "fun app f = \
        let fun loop xs = case xs of nil => () | x :: r => let val u = f x in loop r end \
        in loop end";
    let clean = "fun app (f : 'a -> unit) = \
        let fun loop xs = case xs of nil => () | x :: r => let val u = f x in loop r end \
        in loop end";
    let cs = compile(spurious, Strategy::Rg).unwrap();
    let cc = compile(clean, Strategy::Rg).unwrap();
    assert_eq!(cs.output.stats.spurious_fns, 1, "{:?}", cs.output.stats);
    assert_eq!(cc.output.stats.spurious_fns, 0, "{:?}", cc.output.stats);
}
