//! Regression tests for the CLI's loud argument parsing and the
//! `--profile` exporter: a present-but-unparsable numeric flag must fail
//! with a diagnostic and exit 2 — never silently fall back to a default.

use std::process::Command;

fn rmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rmlc"))
}

#[test]
fn bad_numeric_flags_fail_loudly() {
    for flag in [
        "--gc-stress=1k",
        "--alloc-budget=ten",
        "--depth-limit=",
        "--seed=0x10",
    ] {
        let out = rmlc().args([flag, "-e", "1"]).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} must exit 2, got {:?}",
            out.status
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("not a number"),
            "{flag} must name the parse failure, got: {err}"
        );
        // The diagnostic names the offending flag, not just "usage".
        let name = flag.split('=').next().unwrap();
        assert!(err.contains(name), "{flag}: diagnostic must cite {name}");
    }
}

#[test]
fn good_numeric_flags_still_parse() {
    let out = rmlc()
        .args(["--gc-stress=100", "--seed=7", "-e", "1 + 2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out.status);
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn profile_flag_writes_a_loadable_trace() {
    let dir = std::env::temp_dir().join(format!("rmlc-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = rmlc()
        .args([
            &format!("--profile={}", path.display()),
            "--gc-stress=50",
            "--no-basis",
            "-e",
            "let fun loop (n) = if n = 0 then 0 else loop (n - 1) in loop 2000 end",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out.status);
    let trace = std::fs::read_to_string(&path).unwrap();
    assert!(trace.starts_with("{\"traceEvents\":["));
    for needle in [
        "\"compile\"",
        "\"machine.run\"",
        "\"gc.pause\"",
        "\"ph\":\"B\"",
    ] {
        assert!(trace.contains(needle), "trace missing {needle}");
    }
    let note = String::from_utf8_lossy(&out.stderr);
    assert!(note.contains("trace events"), "stderr note: {note}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_prints_the_unified_snapshot() {
    let out = rmlc()
        .args(["--metrics", "--no-basis", "-e", "1 + 2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["== metrics ==", "compile:", "store:", "machine:", "gc:"] {
        assert!(stdout.contains(needle), "missing {needle} in: {stdout}");
    }
}

#[test]
fn profile_without_a_sink_flag_changes_nothing() {
    // Control: the same invocation minus --profile emits no trace note.
    let out = rmlc().args(["--no-basis", "-e", "1"]).output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("trace events"), "unexpected: {err}");
}
