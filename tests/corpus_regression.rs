//! Replays the checked-in corpus of generator-found programs
//! (`tests/corpus/*.rml`) across every strategy. Each file was produced
//! by `rml-gen` (the seed is recorded in its header comment) and — for
//! the `dangle-*` files — minimized by the shrinker while preserving the
//! property that the unsound `rg-` strategy faults with a dangling
//! pointer. The manifest pins the exact `rg` result, so any drift in the
//! generator, the inference store, or the runtimes shows up here as a
//! deterministic failure rather than a flaky fuzz run.

use rml::{compile, execute, ExecOpts, Strategy};
use rml_eval::{GcPolicy, RunError, RunValue};

/// `(file, expected rg result, whether rg- must fault with Dangling)`.
const MANIFEST: &[(&str, i64, bool)] = &[
    ("agree-3.rml", 3, false),
    ("dangle-4.rml", 4, true),
    ("dangle-6.rml", 0, true),
    ("agree-7.rml", 11, false),
    ("agree-8.rml", -6, false),
    ("dangle-9.rml", 0, true),
    ("agree-10.rml", 37, false),
    ("dangle-14.rml", 0, true),
    ("dangle-21.rml", 0, true),
    ("dangle-22.rml", 0, true),
];

fn load(name: &str) -> String {
    let path = format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn run_int(c: &rml::Compiled, opts: &ExecOpts) -> Result<i64, RunError> {
    match execute(c, opts)?.value {
        RunValue::Int(n) => Ok(n),
        other => panic!("corpus programs return int, got {other:?}"),
    }
}

#[test]
fn corpus_replays_identically_across_strategies() {
    for (name, expected, rgm_dangles) in MANIFEST {
        let src = load(name);
        // rg: checks under Figure 4 and computes the pinned value, with
        // and without an aggressive collector.
        let rg = compile(&src, Strategy::Rg).unwrap_or_else(|e| panic!("{name}: {e}"));
        rml::check(&rg).unwrap_or_else(|e| panic!("{name}: G check failed: {e}"));
        let v = run_int(&rg, &ExecOpts::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(v, *expected, "{name}: rg result drifted");
        let stressed = ExecOpts {
            gc: Some(GcPolicy::On {
                min_bytes: 256,
                ratio: 1.05,
                generational: false,
            }),
            ..ExecOpts::default()
        };
        assert_eq!(
            run_int(&rg, &stressed).unwrap(),
            *expected,
            "{name}: rg under GC stress"
        );
        // Baseline (regionless) and r (Tofte–Talpin, GC off) agree.
        let baseline = ExecOpts {
            baseline: true,
            ..ExecOpts::default()
        };
        assert_eq!(
            run_int(&rg, &baseline).unwrap(),
            *expected,
            "{name}: baseline"
        );
        let r = compile(&src, Strategy::R).unwrap();
        assert_eq!(
            run_int(&r, &ExecOpts::default()).unwrap(),
            *expected,
            "{name}: strategy r"
        );
        // rg-: the dangle-* files must keep faulting with a dangling
        // pointer (the unsoundness the paper repairs); the agree-* files
        // must keep agreeing.
        let rgm = compile(&src, Strategy::RgMinus).unwrap();
        match run_int(&rgm, &ExecOpts::default()) {
            Ok(v) => {
                assert!(
                    !rgm_dangles,
                    "{name}: rg- no longer dangles (returned {v}); the corpus \
                     program lost its regression value"
                );
                assert_eq!(v, *expected, "{name}: rg-");
            }
            Err(RunError::Dangling(_)) => {
                assert!(rgm_dangles, "{name}: rg- started dangling unexpectedly");
            }
            Err(e) => panic!("{name}: rg- failed with a non-dangling error: {e}"),
        }
    }
}

#[test]
fn corpus_files_reparse_to_a_pretty_printing_fixed_point() {
    for (name, _, _) in MANIFEST {
        let src = load(name);
        // Strip the header comment: the corpus body is printer output.
        let body = src
            .lines()
            .filter(|l| !l.starts_with("(*"))
            .collect::<Vec<_>>()
            .join("\n");
        let p = rml_syntax::parse_program(&body).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let printed = rml_syntax::pretty::program_to_string(&p);
        let p2 = rml_syntax::parse_program(&printed).unwrap();
        assert_eq!(
            printed,
            rml_syntax::pretty::program_to_string(&p2),
            "{name}: printer not a fixed point"
        );
    }
}
