//! Performance smoke test: a regression tripwire on the unification
//! store's operation counts.
//!
//! Wall-clock budgets are too noisy for CI; instead this pins the
//! *deterministic* cost driver — the number of union-find reads performed
//! while compiling the whole benchmark suite under `rg`. The budget is
//! roughly twice the count measured when the compressed store landed, so
//! it only trips on an asymptotic regression (losing path compression or
//! closure memoisation), not on routine changes.

use rml::{compile_with_basis, Strategy};

// Measured ~1.09M find ops for the 18-program suite with the compressed
// store; the naive store needed several times that.
const FIND_OPS_BUDGET: u64 = 2_200_000;

// With per-root dirty tracking, an `add_atom` no longer flushes every
// memoised closure. Measured across the suite: ~74k hits / ~55k
// recomputes (ratio 1.35) with dirty tracking, versus ~21k / ~108k
// (ratio 0.19) when every mutation flushes the whole memo — so a floor
// of one hit per recompute cleanly separates the two regimes.
const MIN_HITS_PER_RECOMPUTE: u64 = 1;

#[test]
fn suite_compilation_stays_within_the_find_ops_budget() {
    let (total_finds, total_unions, hits, recomputes) = rml::run_with_big_stack(|| {
        let (mut total_finds, mut total_unions) = (0u64, 0u64);
        let (mut hits, mut recomputes) = (0u64, 0u64);
        for p in rml::programs::suite() {
            let c = compile_with_basis(p.source, Strategy::Rg).expect("compile");
            let st = c.output.store_stats;
            total_finds += st.find_ops;
            total_unions += st.unions;
            hits += st.closure_cache_hits;
            recomputes += st.closure_recomputes;
        }
        (total_finds, total_unions, hits, recomputes)
    });
    println!(
        "suite rg compilation: {total_finds} find ops, {total_unions} unions, \
         {hits} closure cache hits / {recomputes} recomputes"
    );
    assert!(total_unions > 0, "instrumentation is wired");
    assert!(
        total_finds < FIND_OPS_BUDGET,
        "suite compilation performed {total_finds} find ops \
         (budget {FIND_OPS_BUDGET}); did the store lose path compression?"
    );
    assert!(
        hits > MIN_HITS_PER_RECOMPUTE * recomputes,
        "closure memo hit rate collapsed: {hits} hits vs {recomputes} \
         recomputes; did store invalidation regress to global flushes?"
    );
}

/// The disabled-sink overhead guard: with tracing compiled in but no sink
/// installed, an instrumented compile-and-run must deliver **zero** events
/// to any sink — the contract that makes instrumenting hot paths (the
/// machine's step loop, the collector) free when nobody is profiling.
///
/// This runs in its own test binary process space alongside the tests
/// above, none of which install a sink, so the process-wide counter
/// staying flat is exactly the property wanted.
#[test]
fn disabled_sink_records_nothing_across_an_instrumented_run() {
    use rml::{execute, ExecOpts};
    let before = rml_session::trace::events_recorded();
    assert!(!rml_session::trace::enabled());
    let steps = rml::run_with_big_stack(|| {
        let src = "fun main () = \
                   let fun loop (n) = if n = 0 then 0 else loop (n - 1) \
                   in loop 2000 end";
        let c = compile_with_basis(src, Strategy::Rg).unwrap();
        let opts = ExecOpts {
            gc: Some(rml_eval::GcPolicy::stress_every(64, 1)),
            ..ExecOpts::default()
        };
        execute(&c, &opts).unwrap().steps
    });
    assert!(
        steps > 4096,
        "run long enough to cross a step-batch boundary"
    );
    assert_eq!(
        rml_session::trace::events_recorded(),
        before,
        "instrumentation must be silent with no sink installed"
    );
}
