//! Performance smoke test: a regression tripwire on the unification
//! store's operation counts.
//!
//! Wall-clock budgets are too noisy for CI; instead this pins the
//! *deterministic* cost driver — the number of union-find reads performed
//! while compiling the whole benchmark suite under `rg`. The budget is
//! roughly twice the count measured when the compressed store landed, so
//! it only trips on an asymptotic regression (losing path compression or
//! closure memoisation), not on routine changes.

use rml::{compile_with_basis, Strategy};

// Measured ~1.09M find ops for the 18-program suite with the compressed
// store; the naive store needed several times that.
const FIND_OPS_BUDGET: u64 = 2_200_000;

#[test]
fn suite_compilation_stays_within_the_find_ops_budget() {
    let (total_finds, total_unions) = rml::run_with_big_stack(|| {
        let mut total_finds = 0u64;
        let mut total_unions = 0u64;
        for p in rml::programs::suite() {
            let c = compile_with_basis(p.source, Strategy::Rg).expect("compile");
            let st = c.output.store_stats;
            total_finds += st.find_ops;
            total_unions += st.unions;
        }
        (total_finds, total_unions)
    });
    println!("suite rg compilation: {total_finds} find ops, {total_unions} unions");
    assert!(total_unions > 0, "instrumentation is wired");
    assert!(
        total_finds < FIND_OPS_BUDGET,
        "suite compilation performed {total_finds} find ops \
         (budget {FIND_OPS_BUDGET}); did the store lose path compression?"
    );
}
