//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of criterion's API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, and `Bencher::iter` — as a plain
//! wall-clock runner that prints `benchmark: median time/iter` lines.
//! No statistical analysis, plots, or HTML reports.

use std::time::{Duration, Instant};

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size.unwrap_or(10), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (printing is immediate; this is a no-op).
    pub fn finish(self) {}
}

/// Times a closure over repeated calls.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.samples.push(t0.elapsed());
        black_box(out);
    }
}

/// An identity function the optimiser must assume reads its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher::default();
    // One warm-up call, then the timed samples.
    f(&mut b);
    b.samples.clear();
    while b.samples.len() < samples {
        f(&mut b);
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!("{name}: median {median:?} over {samples} samples");
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("b", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls >= 3);
    }
}
