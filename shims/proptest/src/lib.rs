//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this shim implements exactly the subset of proptest's API that the
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_recursive`/`boxed`, range / tuple / `Just` / string
//! class-pattern strategies, `proptest::collection::{vec, btree_set,
//! btree_map}`, [`any`] for primitives, the `proptest!` test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its deterministic case
//!   index instead of a minimised input;
//! * **deterministic generation** — the RNG is seeded from the test's
//!   module path and name, so every run explores the same inputs
//!   (rerunning a failed test reproduces the failure exactly);
//! * `proptest-regressions` files are ignored.

use std::fmt::Debug;
use std::rc::Rc;

// --- deterministic RNG -------------------------------------------------

/// SplitMix64: tiny, uniform, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// --- errors and config -------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case.
    Reject,
    /// `prop_assert*` failed: fail the test.
    Fail(String),
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// --- the Strategy trait ------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// strictly smaller instances; nesting is bounded by `depth`. The
    /// `desired_size`/`expected_branch_size` hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = BoxedStrategy::union_pair(self.clone().boxed(), deeper);
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T: Debug + 'static> BoxedStrategy<T> {
    fn union_pair(a: BoxedStrategy<T>, b: BoxedStrategy<T>) -> BoxedStrategy<T> {
        Union::new(vec![a, b]).boxed()
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternatives (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// --- primitive strategies ----------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a pattern. Supported subset: a single
/// character class with a repetition count — `"[a-z 0-9_]{m,n}"` — or a
/// literal string with no regex metacharacters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    Some((chars, counts.0.parse().ok()?, counts.1.parse().ok()?))
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Generates by a plain function (used for [`Arbitrary`] impls).
#[derive(Clone)]
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T: Debug> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! arbitrary_impl {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> FnStrategy<$t> {
                FnStrategy($gen)
            }
        }
    )*};
}

arbitrary_impl! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// --- collections -------------------------------------------------------

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::fmt::Debug;

    /// An element-count range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Sets of `element` with *up to* the sampled number of elements
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Maps from `key` to `value` with up to the sampled number of
    /// entries.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

// --- macros ------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a proptest body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?}` == `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Skips the case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The proptest test-block macro: each `fn name(x in strategy) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at deterministic case {}: {}",
                                stringify!($name),
                                __case,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (0u32..5, -3i64..3).generate(&mut rng);
            assert!(v.0 < 5 && (-3..3).contains(&v.1));
        }
    }

    #[test]
    fn class_pattern_strings_match() {
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..100 {
            let s = "[a-c ]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        let leaf = prop_oneof![Just(0u32)];
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a.max(b) + 1)
        });
        let mut rng = crate::TestRng::from_seed(11);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_runs(v in crate::collection::vec(0usize..10, 0..8)) {
            prop_assert!(v.len() < 8);
            let in_range = v.iter().filter(|&&x| x < 10).count();
            prop_assert_eq!(v.len(), in_range);
        }
    }
}
