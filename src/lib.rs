//! `rml` — region inference with GC safety for type-polymorphic programs.
//!
//! A from-scratch Rust reproduction of Martin Elsman's *Garbage-Collection
//! Safety for Region-Based Type-Polymorphic Programs* (PLDI 2023): an
//! ML-like language compiled by Hindley–Milner typing and region inference
//! to a region-annotated calculus, validated by the paper's GC-safe region
//! type system, and executed on a page-based region heap with an
//! interleaved reference-tracing copying collector.
//!
//! This crate is the facade: it wires the pipeline
//!
//! ```text
//! source ──rml-syntax──▶ AST ──rml-hm──▶ typed AST
//!        ──rml-infer──▶ region-annotated term (+ Fig. 9 statistics)
//!        ──rml-core───▶ checked against the paper's typing rules
//!        ──rml-repr───▶ finite/infinite region classification
//!        ──rml-eval───▶ executed on the rml-runtime heap
//! ```
//!
//! and ships the basis library ([`basis`]) and the benchmark programs
//! ([`programs`]) used to regenerate the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use rml::{compile, execute, ExecOpts, Strategy};
//! let c = compile("fun main () = 6 * 7", Strategy::Rg).unwrap();
//! let out = execute(&c, &ExecOpts::default()).unwrap();
//! assert_eq!(out.value, rml_eval::RunValue::Int(42));
//! ```

pub mod basis;
pub mod metrics;
pub mod pipeline;
pub mod programs;
pub mod torture;

pub use metrics::{MetricsSnapshot, PauseHistogram};
pub use pipeline::{
    check, check_diag, check_full, compile, compile_count, compile_with_basis, emit_ir, execute,
    load_ir, CompileError, CompileTimings, Compiled, ExecOpts,
};
pub use rml_eval::{RunOutcome, RunValue};
pub use rml_infer::{SpuriousStyle, Strategy};
pub use rml_session::{Diagnostic, Json, SourceMap, Span};

/// Runs `f` on a thread with a 64 MiB stack. The recursive passes over
/// basis-sized terms exceed the default 2 MiB test-thread stack in
/// unoptimised builds, so tests that compile the basis run under this.
pub fn run_with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .unwrap()
        .join()
        .unwrap()
}
