//! The benchmark program suite — analogues of the paper's Figure 9
//! benchmarks, written in the object language.
//!
//! The paper's suite are Standard ML programs (fib37, tak, life, msort,
//! mandelbrot, zebra, logic, …). We reproduce the same *spectrum of memory
//! behaviours* with integer-based analogues: pure stack programs (fib,
//! tak, mandelbrot), region-friendly allocators (msort, ratio, strings),
//! GC-essential workloads with long-lived shared structures (life, logic,
//! queens, perm), and spurious-function-heavy higher-order code (compose).
//! Trees are encoded with lists (the language has built-in lists but no
//! user datatypes); floating point is replaced by fixed-point integers.
//! These substitutions are documented in `DESIGN.md`.

use rml_eval::RunValue;

/// A benchmark program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Short name (Figure 9's first column).
    pub name: &'static str,
    /// Source (without the basis; compile with
    /// [`crate::compile_with_basis`]).
    pub source: &'static str,
    /// Expected result, when independently known (used for validation);
    /// `None` means the harness only checks cross-strategy agreement.
    pub expected: Option<RunValue>,
}

impl Program {
    /// Lines of code of the program (excluding basis), Figure 9's `loc`.
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// The suite, in table order.
pub fn suite() -> Vec<Program> {
    vec![
        Program {
            name: "fib",
            source: r#"
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
fun main () = fib 22
"#,
            expected: Some(RunValue::Int(17711)),
        },
        Program {
            name: "tak",
            source: r#"
fun tak (x, y, z) =
  if y < x
  then tak (tak (x - 1, y, z), tak (y - 1, z, x), tak (z - 1, x, y))
  else z
fun main () = tak (14, 7, 0)
"#,
            expected: Some(RunValue::Int(7)),
        },
        Program {
            name: "mandelbrot",
            source: r#"
(* Fixed-point mandelbrot: 4096 = 1.0; count points that stay bounded. *)
fun step (cr, ci) (zr, zi) n =
  if n = 0 then 1
  else
    let val zr2 = zr * zr div 4096
        val zi2 = zi * zi div 4096
    in if zr2 + zi2 > 16384 then 0
       else step (cr, ci) (zr2 - zi2 + cr, 2 * zr * zi div 4096 + ci) (n - 1)
    end
fun row y x acc =
  if x > 29 then acc
  else row y (x + 1) (acc + step (x * 256 - 8192, y * 256 - 4096) (0, 0) 30)
fun grid y acc = if y > 29 then acc else grid (y + 1) (row y 0 acc)
fun main () = grid 0 0
"#,
            expected: None,
        },
        Program {
            name: "msort",
            source: r#"
fun split xs =
  case xs of
    nil => (nil, nil)
  | x :: rest =>
      (case rest of
         nil => ([x], nil)
       | y :: t => let val p = split t in (x :: #1 p, y :: #2 p) end)
fun merge (xs, ys) =
  case xs of
    nil => ys
  | x :: xt =>
      (case ys of
         nil => xs
       | y :: yt => if x <= y then x :: merge (xt, ys) else y :: merge (xs, yt))
fun msort xs =
  case xs of
    nil => nil
  | x :: rest =>
      (case rest of
         nil => xs
       | y :: t => let val p = split xs in merge (msort (#1 p), msort (#2 p)) end)
fun lcg (seed, n) = if n = 0 then nil else seed mod 1000 :: lcg ((seed * 1103515245 + 12345) mod 2147483647, n - 1)
fun main () = sum (take (msort (lcg (42, 400)), 10))
"#,
            expected: None,
        },
        Program {
            name: "msort-rf",
            source: r#"
(* Region-friendly merge sort: bottom-up over an accumulator of runs. *)
fun merge (xs, ys) =
  case xs of
    nil => ys
  | x :: xt =>
      (case ys of
         nil => xs
       | y :: yt => if x <= y then x :: merge (xt, ys) else y :: merge (xs, yt))
fun pairs runs =
  case runs of
    nil => nil
  | a :: rest =>
      (case rest of
         nil => [a]
       | b :: t => merge (a, b) :: pairs t)
fun mergeall runs =
  case runs of
    nil => nil
  | a :: rest => (case rest of nil => a | b :: t => mergeall (pairs runs))
fun lcg (seed, n) = if n = 0 then nil else seed mod 1000 :: lcg ((seed * 1103515245 + 12345) mod 2147483647, n - 1)
fun main () = sum (take (mergeall (map (fn x => [x]) (lcg (42, 400))), 10))
"#,
            expected: None,
        },
        Program {
            name: "life",
            source: r#"
(* Conway's life on a set of live cells; the glider returns to itself. *)
fun cell (x, y) = x * 1000 + y
fun neighbours (x, y) =
  [(x-1, y-1), (x, y-1), (x+1, y-1), (x-1, y), (x+1, y), (x-1, y+1), (x, y+1), (x+1, y+1)]
fun occupied board c = member (cell c, map cell board)
fun count board cs =
  case cs of nil => 0 | c :: t => (if occupied board c then 1 else 0) + count board t
fun survives board c = let val n = count board (neighbours c) in n = 2 orelse n = 3 end
fun births board c = count board (neighbours c) = 3
fun dedup cs =
  case cs of
    nil => nil
  | c :: t => if member (cell c, map cell t) then dedup t else c :: dedup t
fun gen board =
  let val keep = filter (survives board) board
      val cand = dedup (foldl (fn (c, acc) => append (neighbours c, acc)) nil board)
      val born = filter (fn c => births board c andalso not (occupied board c)) cand
  in append (keep, born) end
fun iterate n board = if n = 0 then board else iterate (n - 1) (gen board)
fun main () = length (iterate 8 [(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)])
"#,
            expected: Some(RunValue::Int(5)),
        },
        Program {
            name: "queens",
            source: r#"
fun safe (col, dist) rest =
  case rest of
    nil => true
  | q :: t => q <> col andalso abs (q - col) <> dist andalso safe (col, dist + 1) t
fun place n k rest =
  if k = 0 then 1
  else
    let fun try col acc =
          if col > n then acc
          else try (col + 1)
            (acc + (if safe (col, 1) rest then place n (k - 1) (col :: rest) else 0))
    in try 1 0 end
fun main () = place 6 6 nil
"#,
            expected: Some(RunValue::Int(4)),
        },
        Program {
            name: "logic",
            source: r#"
(* Brute-force SAT: CNF clauses over 10 variables; literal v>0 means var
   v, v<0 means its negation. Counts satisfying assignments. *)
fun lit_true assign l =
  if l > 0 then (assign div pow (2, l - 1)) mod 2 = 1
  else (assign div pow (2, (0 - l) - 1)) mod 2 = 0
fun clause_true assign c = exists (lit_true assign) c
fun sat assign f = all (clause_true assign) f
fun count f a limit =
  if a = limit then 0 else (if sat a f then 1 else 0) + count f (a + 1) limit
fun main () =
  let val f = [[1, 2], [~1, 3], [~2, ~3], [4, ~5], [5, 6], [~6, ~4], [7, 8, 9], [~9, 10], [~10, ~7]]
  in count f 0 1024 end
"#,
            expected: None,
        },
        Program {
            name: "perm",
            source: r#"
(* Derangement count via permutation search (the zebra puzzle's engine). *)
fun insertions x xs =
  case xs of
    nil => [[x]]
  | h :: t => (x :: xs) :: map (fn rest => h :: rest) (insertions x t)
fun perms xs =
  case xs of
    nil => [nil]
  | h :: t => foldl (fn (p, acc) => append (insertions h p, acc)) nil (perms t)
fun deranged p =
  let fun go i rest = case rest of nil => true | h :: t => h <> i andalso go (i + 1) t
  in go 1 p end
fun main () = length (filter deranged (perms (upto (1, 7))))
"#,
            expected: Some(RunValue::Int(1854)),
        },
        Program {
            name: "ratio",
            source: r#"
(* Exact rational arithmetic with pairs: partial sums of the harmonic
   series, reduced by gcd at every step. *)
fun gcd (a, b) = if b = 0 then a else gcd (b, a mod b)
fun reduce (n, d) = let val g = gcd (abs n, abs d) in (n div g, d div g) end
fun radd (r1, r2) = reduce (#1 r1 * #2 r2 + #1 r2 * #2 r1, #2 r1 * #2 r2)
fun harmonic k acc = if k = 0 then acc else harmonic (k - 1) (radd (acc, (1, k)))
fun main () = let val r = harmonic 12 (0, 1) in #1 r + #2 r end
"#,
            expected: None,
        },
        Program {
            name: "strings",
            source: r#"
fun build n = if n = 0 then "" else build (n - 1) ^ itos n ^ ";"
fun repeat s n = if n = 0 then "" else s ^ repeat s (n - 1)
fun main () = size (build 120) + size (repeat "ab" 50)
"#,
            expected: None,
        },
        Program {
            name: "compose",
            source: r#"
(* Spurious-function stress: long chains built with a locally defined
   composition combinator (the paper's problematic o). *)
fun mycomp (f, g) = fn x => f (g x)
fun chain n f = if n = 0 then f else chain (n - 1) (mycomp (f, fn x => x + 1))
fun main () =
  let val f = chain 60 (fn x => x)
      val g = mycomp (mycomp (f, f), f)
  in g 0 end
"#,
            expected: Some(RunValue::Int(180)),
        },
        Program {
            name: "matrix",
            source: r#"
(* Integer matrix multiply on lists of rows; returns the trace. *)
fun row_of i n = tabulate n (fn j => (i + 1) * (j + 2) mod 17)
fun mk n = tabulate n (fn i => row_of i n)
fun col m j = map (fn row => nth (row, j)) m
fun dot (xs, ys) = sum (map (fn p => #1 p * #2 p) (zip (xs, ys)))
fun mul (a, b) =
  let val n = length a
  in map (fn row => tabulate n (fn j => dot (row, col b j))) a end
fun trace m = let fun go i rows = case rows of nil => 0 | r :: t => nth (r, i) + go (i + 1) t in go 0 m end
fun main () = trace (mul (mk 12, mk 12))
"#,
            expected: None,
        },
        Program {
            name: "tsp",
            source: r#"
(* Greedy nearest-neighbour tour over integer coordinates. *)
fun dist (a, b) = (#1 a - #1 b) * (#1 a - #1 b) + (#2 a - #2 b) * (#2 a - #2 b)
fun nearest from cities best bestd =
  case cities of
    nil => best
  | c :: t => if dist (from, c) < bestd then nearest from t c (dist (from, c)) else nearest from t best bestd
fun remove c cities = filter (fn x => #1 x <> #1 c orelse #2 x <> #2 c) cities
fun tour from cities acc =
  case cities of
    nil => acc
  | c :: t =>
      let val nxt = nearest from cities c (dist (from, c)) in
        tour nxt (remove nxt cities) (acc + dist (from, nxt))
      end
fun city i = ((i * 37) mod 100, (i * 73) mod 100)
fun main () = tour (0, 0) (tabulate 40 city) 0
"#,
            expected: None,
        },
        Program {
            name: "sieve",
            source: r#"
fun sieve xs =
  case xs of
    nil => nil
  | p :: t => p :: sieve (filter (fn x => x mod p <> 0) t)
fun main () = length (sieve (upto (2, 300)))
"#,
            expected: Some(RunValue::Int(62)),
        },
        Program {
            name: "mpuz",
            source: r#"
(* Digit-assignment puzzle (the mpuz benchmark's flavour): count pairs
   (ab, c) where a 2-digit number times a digit gives a 3-digit number
   whose digits sum to the multiplier. *)
fun digitsum n = if n = 0 then 0 else n mod 10 + digitsum (n div 10)
fun inner ab c acc =
  if c > 9 then acc
  else
    let val p = ab * c
    in inner ab (c + 1)
         (acc + (if p >= 100 andalso p < 1000 andalso digitsum p = c then 1 else 0))
    end
fun outer ab acc = if ab > 99 then acc else outer (ab + 1) (inner ab 1 acc)
fun main () = outer 10 0
"#,
            expected: None,
        },
        Program {
            name: "dlx",
            source: r#"
(* A tiny machine interpreter (the DLX benchmark's flavour): programs are
   lists of (opcode, operand) pairs over an accumulator; opcode 0 adds,
   1 multiplies, 2 subtracts, 3 halts. *)
fun nth_pair (ps, n) =
  case ps of nil => (3, 0) | p :: t => if n = 0 then p else nth_pair (t, n - 1)
fun fetch (prog, pc) = nth_pair (prog, pc)
fun step prog pc acc fuel =
  if fuel = 0 then acc
  else
    let val ins = fetch (prog, pc)
        val op1 = #1 ins
        val arg = #2 ins
    in if op1 = 0 then step prog (pc + 1) (acc + arg) (fuel - 1)
       else if op1 = 1 then step prog (pc + 1) (acc * arg) (fuel - 1)
       else if op1 = 2 then step prog (pc + 1) (acc - arg) (fuel - 1)
       else acc
    end
fun run_once seed =
  step [(0, seed), (1, 3), (2, 7), (0, 11), (1, 2), (3, 0)] 0 0 6
fun loop n acc = if n = 0 then acc else loop (n - 1) (acc + run_once (n mod 13))
fun main () = loop 2000 0
"#,
            expected: None,
        },
        Program {
            name: "exceptions",
            source: r#"
(* Exception-heavy search (Section 4.4's machinery under load). *)
exception Found of int
fun look xs k =
  case xs of
    nil => 0
  | h :: t => if h mod 97 = k then raise (Found h) else look t k
fun probe k = (look (upto (1, 400)) k) handle Found n => n
fun main () = sum (map probe (upto (0, 60)))
"#,
            expected: None,
        },
    ]
}

/// Looks a program up by name.
pub fn by_name(name: &str) -> Option<Program> {
    suite().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_with_basis, execute, ExecOpts, Strategy};

    #[test]
    fn all_programs_compile_and_agree_across_strategies() {
        crate::run_with_big_stack(body);
    }

    fn body() {
        for p in suite() {
            let mut results = Vec::new();
            for s in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
                let c =
                    compile_with_basis(p.source, s).unwrap_or_else(|e| panic!("{}: {e}", p.name));
                let out = execute(&c, &ExecOpts::default())
                    .unwrap_or_else(|e| panic!("{} [{s:?}]: {e}", p.name));
                results.push(out.value);
            }
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "{}: strategies disagree: {results:?}",
                p.name
            );
            if let Some(exp) = &p.expected {
                assert_eq!(&results[0], exp, "{}", p.name);
            }
        }
    }

    #[test]
    fn loc_is_positive() {
        for p in suite() {
            assert!(p.loc() > 0, "{}", p.name);
        }
    }
}
