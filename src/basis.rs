//! The basis library, written in the object language.
//!
//! Mirrors the fragment of the Standard ML Basis Library that the paper's
//! Section 4.2 discusses. Options are encoded as lists (`NONE` = `nil`,
//! `SOME x` = `[x]`), since the core language has built-in lists but no
//! user datatypes.
//!
//! Exactly **three** functions of this basis are spurious — the
//! composition function `o` and the two option combinators `opt_compose`
//! and `opt_mapPartial` — matching the paper's observation that "the
//! MLKit implementation of the entire Standard ML Basis Library contains
//! only three spurious functions, which include the top-level composition
//! function `o` and the functions `Option.compose` and
//! `Option.mapPartial`". (`rml::pipeline::compile_with_basis` prepends
//! this source; the count is asserted by `tests/basis_spurious.rs`.)

/// The basis source.
pub const BASIS: &str = r#"
(* ---- function combinators ---- *)
fun o (f, g) = fn x => f (g x)
fun id x = x
fun const k = fn x => k

(* ---- integers ---- *)
fun min (a, b) = if a < b then a else b
fun max (a, b) = if a > b then a else b
fun abs n = if n < 0 then ~n else n
fun pow (b, e) = if e = 0 then 1 else b * pow (b, e - 1)

(* ---- pairs ---- *)
fun fst p = #1 p
fun snd p = #2 p
fun swap (a, b) = (b, a)

(* ---- options, encoded as lists ---- *)
fun some x = [x]
val none = nil
fun opt_isSome opt = case opt of nil => false | x :: t => true
fun opt_getOpt (opt, dflt) = case opt of nil => dflt | x :: t => x
fun opt_map f opt = case opt of nil => nil | x :: t => [f x]
fun opt_join opt = case opt of nil => nil | x :: t => x
fun opt_compose (f, g) = fn x => case g x of nil => nil | y :: t => [f y]
fun opt_mapPartial f = o (opt_join, o (opt_map f, id))

(* ---- lists ---- *)
fun length xs = case xs of nil => 0 | h :: t => 1 + length t
fun append (xs, ys) = case xs of nil => ys | h :: t => h :: append (t, ys)
fun rev xs =
  let fun go acc ys = case ys of nil => acc | h :: t => go (h :: acc) t
  in go nil xs end
fun map f xs = case xs of nil => nil | h :: t => f h :: map f t
fun app (f : 'a -> unit) xs =
  case xs of nil => () | h :: t => (f h; app f t)
fun foldl f acc xs =
  case xs of nil => acc | h :: t => foldl f (f (h, acc)) t
fun foldr f acc xs =
  case xs of nil => acc | h :: t => f (h, foldr f acc t)
fun filter p xs =
  case xs of
    nil => nil
  | h :: t => if p h then h :: filter p t else filter p t
fun exists p xs = case xs of nil => false | h :: t => if p h then true else exists p t
fun all p xs = case xs of nil => true | h :: t => if p h then all p t else false
fun member (x, xs) = exists (fn y => y = x) xs
fun tabulate n f =
  let fun go i = if i = n then nil else f i :: go (i + 1)
  in go 0 end
fun upto (lo, hi) = if lo > hi then nil else lo :: upto (lo + 1, hi)
fun nth (xs, n) = case xs of nil => 0 - 1 | h :: t => if n = 0 then h else nth (t, n - 1)
fun take (xs, n) =
  if n = 0 then nil else case xs of nil => nil | h :: t => h :: take (t, n - 1)
fun drop (xs, n) =
  if n = 0 then xs else case xs of nil => nil | h :: t => drop (t, n - 1)
fun zip (xs, ys) =
  case xs of
    nil => nil
  | x :: xt => case ys of nil => nil | y :: yt => (x, y) :: zip (xt, yt)
fun sum xs = case xs of nil => 0 | h :: t => h + sum t
fun concat_strings xs = case xs of nil => "" | h :: t => h ^ concat_strings t
"#;

#[cfg(test)]
mod tests {
    use crate::{compile_with_basis, execute, ExecOpts, RunValue, Strategy};

    fn eval(expr: &str) -> RunValue {
        let src = format!("fun main () = {expr}");
        crate::run_with_big_stack(move || {
            let c = compile_with_basis(&src, Strategy::Rg).unwrap();
            execute(&c, &ExecOpts::default()).unwrap().value
        })
    }

    #[test]
    fn combinators() {
        assert_eq!(
            eval("(o (fn x => x + 1, fn x => x * 2)) 5"),
            RunValue::Int(11)
        );
        assert_eq!(eval("id 9"), RunValue::Int(9));
        assert_eq!(eval("(const 3) \"ignored\""), RunValue::Int(3));
    }

    #[test]
    fn list_functions() {
        assert_eq!(eval("length (upto (1, 10))"), RunValue::Int(10));
        assert_eq!(
            eval("sum (map (fn x => x * x) [1, 2, 3])"),
            RunValue::Int(14)
        );
        assert_eq!(eval("sum (rev (upto (1, 4)))"), RunValue::Int(10));
        assert_eq!(eval("nth (append ([1, 2], [3, 4]), 2)"), RunValue::Int(3));
        assert_eq!(
            eval("foldl (fn (x, acc) => x + acc) 0 (upto (1, 100))"),
            RunValue::Int(5050)
        );
        assert_eq!(
            eval("sum (filter (fn x => x mod 2 = 0) (upto (1, 10)))"),
            RunValue::Int(30)
        );
        assert_eq!(
            eval("if member (3, [1, 2, 3]) then 1 else 0"),
            RunValue::Int(1)
        );
        assert_eq!(eval("sum (take (upto (1, 10), 3))"), RunValue::Int(6));
        assert_eq!(eval("sum (drop (upto (1, 10), 7))"), RunValue::Int(27));
        assert_eq!(eval("length (zip ([1, 2, 3], [4, 5]))"), RunValue::Int(2));
        assert_eq!(eval("sum (tabulate 5 (fn i => i))"), RunValue::Int(10));
    }

    #[test]
    fn options_encoded_as_lists() {
        assert_eq!(eval("opt_getOpt (some 5, 0)"), RunValue::Int(5));
        assert_eq!(eval("opt_getOpt (none, 7)"), RunValue::Int(7));
        assert_eq!(
            eval("if opt_isSome (some 1) then 1 else 0"),
            RunValue::Int(1)
        );
        assert_eq!(
            eval("opt_getOpt (opt_map (fn x => x + 1) (some 4), 0)"),
            RunValue::Int(5)
        );
        assert_eq!(
            eval("opt_getOpt ((opt_compose (fn x => x * 2, fn x => if x > 0 then some x else none)) 21, 0)"),
            RunValue::Int(42)
        );
        assert_eq!(
            eval("opt_getOpt (opt_mapPartial (fn x => if x > 3 then some (x + 1) else none) (some 5), 0)"),
            RunValue::Int(6)
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            eval("size (concat_strings [\"ab\", \"cd\", itos 123])"),
            RunValue::Int(7)
        );
    }
}
