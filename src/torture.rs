//! The torture rig's differential oracle: every strategy × every GC
//! schedule, with one ground truth.
//!
//! The paper's safety claim is *differential* in nature: a GC-safe
//! compilation (`rg`) must compute the same value no matter when the
//! collector runs, while the unsound `rg-` compilation may differ from
//! the reference only by hitting a dangling pointer — never by silently
//! computing a different value. This module makes that claim executable.
//!
//! A [`torture`] run builds the full matrix
//!
//! ```text
//! {rg, rg-, r, baseline} × {default, stress-step, stress-gen, no-gc}
//! ```
//!
//! and compares every cell against the reference cell `rg × default`:
//!
//! * `rg` and `baseline` must agree with the reference under **every**
//!   schedule (GC safety / GC irrelevance);
//! * `r` must agree when its collector is off (its default), and may
//!   only diverge as a *deterministic* [`RunError::Dangling`] when a
//!   tracing schedule is forced on it (region inference without the
//!   GC-safety conditions does not protect the tracer);
//! * `rg-` may diverge under any schedule, but only as a deterministic
//!   `Dangling` — a wrong *value* is a soundness bug and is reported.
//!
//! Every faulting cell is re-run and its error message (which is
//! step-stamped) must reproduce exactly: same seed ⇒ same schedule ⇒
//! same outcome. Two fault-injection probes then run against the
//! reference compilation — an allocation budget and a continuation-depth
//! limit — asserting that injected faults surface as structured
//! [`RunError`]s and that a clean re-run still agrees with the reference
//! (the machine is resumable from a clean heap after a rejected run).

use crate::pipeline::{compile_opts, compile_with_basis, CompileError, Compiled, ExecOpts};
use rml_eval::{GcPolicy, RunError, VerifyLevel};
use rml_infer::{SpuriousStyle, Strategy};
use std::fmt::Write as _;

/// One GC schedule of the torture matrix.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    /// Display name (stable; used in reports and JSON).
    pub name: &'static str,
    /// GC policy; `None` means the strategy default.
    pub gc: Option<GcPolicy>,
    /// Verifier cadence; `None` means the policy default.
    pub verify: Option<VerifyLevel>,
}

/// The four schedules of the matrix, all driven by `seed`.
pub fn schedules(seed: u64) -> Vec<Schedule> {
    vec![
        Schedule {
            name: "default",
            gc: None,
            verify: None,
        },
        Schedule {
            name: "stress-step",
            gc: Some(GcPolicy::stress_every_step(seed)),
            verify: Some(VerifyLevel::EveryStep),
        },
        Schedule {
            name: "stress-gen",
            gc: Some(GcPolicy::stress_generational(16, seed)),
            verify: Some(VerifyLevel::AfterGc),
        },
        Schedule {
            name: "no-gc",
            gc: Some(GcPolicy::Off),
            verify: None,
        },
    ]
}

/// Options for a torture run.
#[derive(Debug, Clone, Copy)]
pub struct TortureOpts {
    /// PRNG seed driving every stress schedule in the matrix.
    pub seed: u64,
    /// Step budget per cell. Steps are schedule-independent, so a cell
    /// that runs out of fuel does so identically in every cell and the
    /// matrix still agrees.
    pub fuel: u64,
    /// Prepend the basis library when compiling from source.
    pub with_basis: bool,
    /// Run the fault-injection probes (allocation budget, depth limit).
    pub faults: bool,
}

impl Default for TortureOpts {
    fn default() -> TortureOpts {
        TortureOpts {
            seed: 0x7041_10E5,
            fuel: 2_000_000,
            with_basis: false,
            faults: true,
        }
    }
}

/// What one cell of the matrix produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion: decoded value and accumulated print output.
    Value {
        /// `Display` form of the run's [`rml_eval::RunValue`].
        value: String,
        /// Accumulated `print` output.
        output: String,
    },
    /// Unwound with a structured run error.
    Fault {
        /// `Display` form of the [`RunError`].
        message: String,
        /// Whether the error was [`RunError::Dangling`] — the only
        /// divergence the oracle tolerates, and only where expected.
        dangling: bool,
    },
}

impl Outcome {
    fn describe(&self) -> String {
        match self {
            Outcome::Value { value, output } if output.is_empty() => value.clone(),
            Outcome::Value { value, output } => {
                format!("{value} (printed {} bytes)", output.len())
            }
            Outcome::Fault { message, .. } => format!("fault: {message}"),
        }
    }
}

/// One strategy × schedule cell of the matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Strategy label (`rg`, `rg-`, `r`, `baseline`).
    pub strategy: &'static str,
    /// Schedule name (see [`schedules`]).
    pub schedule: &'static str,
    /// What the run produced.
    pub outcome: Outcome,
    /// Machine steps taken.
    pub steps: u64,
    /// Collections forced by the schedule (not triggered by heuristics).
    pub forced_gcs: u64,
    /// Heap-invariant verifier walks performed.
    pub verify_walks: u64,
    /// Total collections.
    pub gc_count: u64,
}

/// A fault-injection probe against the reference compilation.
#[derive(Debug, Clone)]
pub struct FaultProbe {
    /// Probe label (`alloc-budget`, `depth-limit`).
    pub kind: &'static str,
    /// The limit injected.
    pub limit: u64,
    /// What the limited run produced.
    pub outcome: Outcome,
    /// Faults the machine recorded as injected.
    pub faults_injected: u64,
    /// Whether a clean re-run after the fault agreed with the reference.
    pub recovered: bool,
}

/// The full differential report for one program.
#[derive(Debug, Clone)]
pub struct Report {
    /// Program name.
    pub name: String,
    /// All matrix cells, row-major by strategy.
    pub cells: Vec<Cell>,
    /// Fault-injection probes (empty when disabled).
    pub probes: Vec<FaultProbe>,
    /// Oracle violations, human-readable. Empty means the program
    /// passed: the matrix agreed everywhere agreement is demanded, every
    /// tolerated divergence was a deterministic dangling fault, and the
    /// machine recovered from every injected fault.
    pub divergences: Vec<String>,
}

impl Report {
    /// Did the oracle accept the program?
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Renders the matrix and verdict as aligned text (for `rmlc
    /// --torture`).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "torture matrix for {}:", self.name);
        for c in &self.cells {
            let _ = writeln!(
                s,
                "  {:<9} {:<12} steps={:<8} gcs={:<5} forced={:<5} walks={:<6} {}",
                c.strategy,
                c.schedule,
                c.steps,
                c.gc_count,
                c.forced_gcs,
                c.verify_walks,
                c.outcome.describe()
            );
        }
        for p in &self.probes {
            let _ = writeln!(
                s,
                "  probe {:<13} limit={:<6} injected={} recovered={} {}",
                p.kind,
                p.limit,
                p.faults_injected,
                p.recovered,
                p.outcome.describe()
            );
        }
        if self.ok() {
            let _ = writeln!(s, "verdict: PASS");
        } else {
            let _ = writeln!(s, "verdict: FAIL ({} divergences)", self.divergences.len());
            for d in &self.divergences {
                let _ = writeln!(s, "  ! {d}");
            }
        }
        s
    }
}

fn run_cell(c: &Compiled, baseline: bool, sched: &Schedule, opts: &TortureOpts) -> Cell {
    let strategy = if baseline {
        "baseline"
    } else {
        match c.strategy {
            Strategy::Rg => "rg",
            Strategy::RgMinus => "rg-",
            Strategy::R => "r",
        }
    };
    let eo = ExecOpts {
        gc: sched.gc,
        baseline,
        verify: sched.verify,
        fuel: opts.fuel,
        ..ExecOpts::default()
    };
    match crate::pipeline::execute(c, &eo) {
        Ok(out) => Cell {
            strategy,
            schedule: sched.name,
            outcome: Outcome::Value {
                value: out.value.to_string(),
                output: out.output,
            },
            steps: out.steps,
            forced_gcs: out.stats.forced_gcs,
            verify_walks: out.stats.verify_walks,
            gc_count: out.stats.gc_count,
        },
        Err(e) => Cell {
            strategy,
            schedule: sched.name,
            outcome: Outcome::Fault {
                message: e.to_string(),
                dangling: matches!(e, RunError::Dangling(_)),
            },
            steps: 0,
            forced_gcs: 0,
            verify_walks: 0,
            gc_count: 0,
        },
    }
}

/// Runs the differential oracle over already-compiled programs. The
/// three compilations must come from the same source; `rg` doubles as
/// the baseline program (the baseline machine ignores its regions).
pub fn torture_compiled(
    name: &str,
    rg: &Compiled,
    rgm: &Compiled,
    r: &Compiled,
    opts: &TortureOpts,
) -> Report {
    let scheds = schedules(opts.seed);
    let mut cells = Vec::new();
    let mut divergences = Vec::new();

    // Row-major: rg, rg-, r, baseline.
    for sched in &scheds {
        cells.push(run_cell(rg, false, sched, opts));
    }
    for sched in &scheds {
        cells.push(run_cell(rgm, false, sched, opts));
    }
    for sched in &scheds {
        cells.push(run_cell(r, false, sched, opts));
    }
    for sched in &scheds {
        cells.push(run_cell(rg, true, sched, opts));
    }

    let reference = cells[0].outcome.clone();

    // Classify each cell against the reference.
    for (i, cell) in cells.iter().enumerate() {
        if i == 0 {
            continue;
        }
        let must_agree = match cell.strategy {
            "rg" | "baseline" => true,
            // `r`'s own semantics (collector off) must match; forcing a
            // tracer onto it may legitimately meet dangling pointers.
            "r" => matches!(cell.schedule, "default" | "no-gc"),
            _ => false, // rg-
        };
        if cell.outcome == reference {
            continue;
        }
        if must_agree {
            divergences.push(format!(
                "{} × {} disagrees with reference: got {}, want {}",
                cell.strategy,
                cell.schedule,
                cell.outcome.describe(),
                reference.describe()
            ));
            continue;
        }
        // Tolerated divergence: must be a dangling fault, nothing else.
        if !matches!(cell.outcome, Outcome::Fault { dangling: true, .. }) {
            divergences.push(format!(
                "{} × {} diverged without a dangling fault: got {}, want {}",
                cell.strategy,
                cell.schedule,
                cell.outcome.describe(),
                reference.describe()
            ));
        }
    }

    // Determinism: every faulting cell must reproduce its step-stamped
    // error exactly on a re-run (same seed ⇒ same schedule ⇒ same
    // outcome).
    let reruns: Vec<(usize, &'static str, bool)> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.outcome, Outcome::Fault { .. }))
        .map(|(i, c)| (i, c.strategy, c.strategy == "baseline"))
        .collect();
    for (i, strategy, baseline) in reruns {
        let sched = &scheds[i % scheds.len()];
        let compiled = match strategy {
            "rg" | "baseline" => rg,
            "rg-" => rgm,
            _ => r,
        };
        let again = run_cell(compiled, baseline, sched, opts);
        if again.outcome != cells[i].outcome {
            divergences.push(format!(
                "{} × {} is nondeterministic: first {}, then {}",
                strategy,
                sched.name,
                cells[i].outcome.describe(),
                again.outcome.describe()
            ));
        }
    }

    // Fault-injection probes against the reference compilation.
    let mut probes = Vec::new();
    if opts.faults {
        if let Outcome::Value { .. } = reference {
            probes.extend(fault_probes(rg, &reference, opts, &mut divergences));
        }
    }

    Report {
        name: name.to_string(),
        cells,
        probes,
        divergences,
    }
}

fn fault_probes(
    rg: &Compiled,
    reference: &Outcome,
    opts: &TortureOpts,
    divergences: &mut Vec<String>,
) -> Vec<FaultProbe> {
    let mut probes = Vec::new();

    // Find how much the reference run allocates, then inject a budget at
    // half of it — guaranteed to trip when the program allocates at all.
    let base = crate::pipeline::execute(
        rg,
        &ExecOpts {
            fuel: opts.fuel,
            ..ExecOpts::default()
        },
    );
    let allocs = base.map(|o| o.stats.objects_allocated).unwrap_or(0);

    let mut probe = |kind: &'static str, eo: ExecOpts, limit: u64| {
        let (outcome, faults_injected) = match crate::pipeline::execute(rg, &eo) {
            Ok(out) => (
                Outcome::Value {
                    value: out.value.to_string(),
                    output: out.output,
                },
                out.stats.faults_injected,
            ),
            Err(e) => {
                let structured = matches!(
                    e,
                    RunError::OutOfMemory { .. } | RunError::DepthLimit { .. }
                );
                if !structured {
                    divergences.push(format!(
                        "probe {kind} produced an unstructured failure: {e}"
                    ));
                }
                // The machine unwinds immediately after recording an
                // injected fault, so a structured fault is exactly one
                // injection (its stats die with the rejected machine).
                (
                    Outcome::Fault {
                        message: e.to_string(),
                        dangling: matches!(e, RunError::Dangling(_)),
                    },
                    u64::from(structured),
                )
            }
        };
        // Resumability: a clean run after the rejected one must still
        // agree with the reference (the fault left no residue — each
        // machine gets a fresh heap, and nothing global leaked).
        let clean = run_cell(rg, false, &schedules(opts.seed)[0], opts);
        let recovered = clean.outcome == *reference;
        if !recovered {
            divergences.push(format!(
                "after probe {kind}, a clean re-run no longer matches the reference: {}",
                clean.outcome.describe()
            ));
        }
        probes.push(FaultProbe {
            kind,
            limit,
            outcome,
            faults_injected,
            recovered,
        });
    };

    if allocs > 0 {
        let budget = (allocs / 2).max(1);
        probe(
            "alloc-budget",
            ExecOpts {
                alloc_budget: Some(budget),
                fuel: opts.fuel,
                ..ExecOpts::default()
            },
            budget,
        );
    }
    probe(
        "depth-limit",
        ExecOpts {
            depth_limit: Some(2),
            fuel: opts.fuel,
            ..ExecOpts::default()
        },
        2,
    );
    probes
}

/// Compiles `src` under all three strategies and runs the differential
/// oracle.
///
/// # Errors
///
/// Propagates the first [`CompileError`] (from any strategy).
pub fn torture(name: &str, src: &str, opts: &TortureOpts) -> Result<Report, CompileError> {
    let comp = |s| {
        if opts.with_basis {
            compile_with_basis(src, s)
        } else {
            compile_opts(src, s, SpuriousStyle::default())
        }
    };
    let rg = comp(Strategy::Rg)?;
    let rgm = comp(Strategy::RgMinus)?;
    let r = comp(Strategy::R)?;
    Ok(torture_compiled(name, &rg, &rgm, &r, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_passes_the_matrix() {
        let rep = torture(
            "pairs",
            "fun main () = let val p = (1, (2, 3)) in #1 p + #1 (#2 p) end",
            &TortureOpts::default(),
        )
        .unwrap();
        assert!(rep.ok(), "{}", rep.render());
        assert_eq!(rep.cells.len(), 16);
        // The stress-step rg cell actually stressed: forced collections
        // and verifier walks happened.
        let stress = rep
            .cells
            .iter()
            .find(|c| c.strategy == "rg" && c.schedule == "stress-step")
            .unwrap();
        assert!(stress.forced_gcs > 0, "stress schedule never forced a GC");
        assert!(stress.verify_walks > 0, "verifier never walked the heap");
    }

    // The paper's Figure 1: the dead string is captured in `h`'s closure
    // under rg-, and the forced collection traces the dangling pointer.
    const FIGURE1: &str = "fun compose (f, g) = fn a => f (g a) \
         fun run () = \
           let val h = compose (let val x = \"oh\" ^ \"no\" in (fn y => (), fn () => x) end) \
               val u = forcegc () \
           in h () end \
         fun main () = run ()";

    #[test]
    fn figure1_rg_minus_diverges_only_as_deterministic_dangling() {
        let rep = torture("figure1", FIGURE1, &TortureOpts::default()).unwrap();
        assert!(rep.ok(), "{}", rep.render());
        // And the divergence the paper promises is actually there: some
        // rg- cell danglingly faults under a tracing schedule.
        assert!(
            rep.cells.iter().any(|c| c.strategy == "rg-"
                && matches!(c.outcome, Outcome::Fault { dangling: true, .. })),
            "rg- never hit the dangling pointer:\n{}",
            rep.render()
        );
    }

    #[test]
    fn fault_probes_recover() {
        let rep = torture(
            "alloc",
            "fun build n = if n = 0 then nil else (n, n) :: build (n - 1) \
             fun count xs = case xs of nil => 0 | h :: t => 1 + count t \
             fun main () = count (build 50)",
            &TortureOpts::default(),
        )
        .unwrap();
        assert!(rep.ok(), "{}", rep.render());
        let alloc = rep.probes.iter().find(|p| p.kind == "alloc-budget");
        let alloc = alloc.expect("program allocates, so the budget probe must run");
        assert!(
            matches!(&alloc.outcome, Outcome::Fault { message, .. } if message.contains("out of memory")),
            "budget probe did not trip: {:?}",
            alloc.outcome
        );
        assert!(alloc.recovered);
    }
}
