//! The compilation pipeline: parse → type → region-infer → analyse →
//! execute.

use rml_eval::{GcPolicy, RunError, RunOpts, RunOutcome};
use rml_infer::{Options, SpuriousStyle, Strategy};
use rml_repr::ReprInfo;
use rml_session::{trace, Diagnostic, SourceMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide count of completed compilations (any strategy). The
/// benchmark harness uses deltas of this counter to assert its
/// compilation cache actually shares work.
static COMPILES: AtomicU64 = AtomicU64::new(0);

/// The number of compilations performed by this process so far.
pub fn compile_count() -> u64 {
    COMPILES.load(Ordering::Relaxed)
}

/// Wall-clock time spent in each compilation phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileTimings {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Hindley–Milner typing.
    pub types: Duration,
    /// Region inference.
    pub regions: Duration,
    /// Representation analyses.
    pub repr: Duration,
    /// End-to-end compilation time.
    pub total: Duration,
}

/// A compiled program.
#[derive(Debug)]
pub struct Compiled {
    /// The source, as compiled (including any prepended basis); empty
    /// when the program was loaded from serialized IR.
    pub source: String,
    /// The typed AST; `None` when the program was loaded from serialized
    /// IR (the typed front-end AST is not part of the format).
    pub typed: Option<rml_hm::TProgram>,
    /// Region inference output (term, exceptions, statistics, schemes).
    pub output: rml_infer::Output,
    /// Representation analyses.
    pub repr: ReprInfo,
    /// The strategy used.
    pub strategy: Strategy,
    /// Per-phase compilation wall times.
    pub timings: CompileTimings,
}

/// A compilation error from any stage, carrying a structured
/// [`Diagnostic`] (stable code, primary span when the stage knows one).
///
/// `Display` remains the stage-prefixed message, so stringly-typed
/// consumers see what they always saw; renderers call
/// [`CompileError::render`] for the underlined source excerpt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexing/parsing (`E0001`).
    Parse(Diagnostic),
    /// Hindley–Milner typing (`E0002`).
    Type(Diagnostic),
    /// Region inference (`E0003`).
    Region(Diagnostic),
}

impl CompileError {
    /// The structured diagnostic behind the error.
    pub fn diagnostic(&self) -> &Diagnostic {
        match self {
            CompileError::Parse(d) | CompileError::Type(d) | CompileError::Region(d) => d,
        }
    }

    /// Renders the diagnostic against the source it was produced from
    /// (the *compiled* source — including the basis when one was
    /// prepended). `name` labels the buffer (a file name or `<expr>`).
    pub fn render(&self, src: &str, name: &str) -> String {
        self.diagnostic().render(&SourceMap::new(src), name)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(d) => write!(f, "parse error: {d}"),
            CompileError::Type(d) => write!(f, "{d}"),
            CompileError::Region(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a source program under a strategy.
///
/// # Errors
///
/// Returns the first stage error encountered.
pub fn compile(src: &str, strategy: Strategy) -> Result<Compiled, CompileError> {
    compile_opts(src, strategy, SpuriousStyle::default())
}

/// Compiles with an explicit spurious-variable style (the scheme (2) vs
/// scheme (3) choice of the paper's Section 2).
pub fn compile_opts(
    src: &str,
    strategy: Strategy,
    style: SpuriousStyle,
) -> Result<Compiled, CompileError> {
    let _compile_span = trace::span("compile", "pipeline");
    let start = Instant::now();
    let prog = {
        let _s = trace::span("parse", "pipeline");
        rml_syntax::parse_program(src).map_err(|e| {
            CompileError::Parse(Diagnostic::error("E0001", e.msg.clone()).with_primary(e.span))
        })?
    };
    let parse = start.elapsed();
    let t = Instant::now();
    let typed = {
        let _s = trace::span("hm-typing", "pipeline");
        rml_hm::infer_program(&prog).map_err(|e| {
            let mut d = Diagnostic::error("E0002", format!("type error: {}", e.msg));
            if let Some(sp) = e.span {
                d = d.with_primary(sp);
            }
            CompileError::Type(d)
        })?
    };
    let types = t.elapsed();
    let t = Instant::now();
    // rml_infer::infer opens its own "region-inference" span.
    let output = rml_infer::infer(&typed, Options { strategy, style }).map_err(|e| {
        CompileError::Region(Diagnostic::error(
            "E0003",
            format!("region inference error: {}", e.0),
        ))
    })?;
    let regions = t.elapsed();
    let t = Instant::now();
    let repr = {
        let _s = trace::span("repr-analysis", "pipeline");
        rml_repr::analyze(&output.term)
    };
    let repr_time = t.elapsed();
    COMPILES.fetch_add(1, Ordering::Relaxed);
    Ok(Compiled {
        source: src.to_string(),
        typed: Some(typed),
        output,
        repr,
        strategy,
        timings: CompileTimings {
            parse,
            types,
            regions,
            repr: repr_time,
            total: start.elapsed(),
        },
    })
}

/// Compiles with the basis library prepended (see [`crate::basis`]).
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with_basis(src: &str, strategy: Strategy) -> Result<Compiled, CompileError> {
    let full = format!("{}\n{}", crate::basis::BASIS, src);
    compile(&full, strategy)
}

/// Validates a compiled program against the paper's typing rules
/// (Figure 4), with the GC-safety mode matching the compilation strategy.
///
/// # Errors
///
/// Returns the checker's description of the first violated rule — for
/// `rg` output this indicates a bug; for `rg-` output on problematic
/// programs it is the expected detection of the soundness hole.
pub fn check(c: &Compiled) -> Result<(), String> {
    check_diag(c).map_err(|d| d.to_string())
}

/// As [`check`], but returns the structured [`Diagnostic`] (`E0004`): the
/// checker's blamed binder is resolved through the inference provenance
/// table to the span of the capturing lambda or `fun` binding, so the
/// renderer underlines the function the violation occurred in.
///
/// # Errors
///
/// As [`check`].
pub fn check_diag(c: &Compiled) -> Result<(), Diagnostic> {
    let gc = match c.strategy {
        Strategy::Rg => rml_core::typing::GcCheck::Full,
        Strategy::RgMinus => rml_core::typing::GcCheck::NoTyVars,
        Strategy::R => rml_core::typing::GcCheck::Off,
    };
    check_with(c, gc)
}

/// Validates against the *full* GC-safety conditions regardless of the
/// compilation strategy. On `rg-` output this is the paper's detector:
/// the Figure 4 rules with spurious type variables reject exactly the
/// programs whose collector can meet a dangling pointer (Figures 1/8).
///
/// # Errors
///
/// The first violated rule, as a source-located [`Diagnostic`].
pub fn check_full(c: &Compiled) -> Result<(), Diagnostic> {
    check_with(c, rml_core::typing::GcCheck::Full)
}

fn check_with(c: &Compiled, gc: rml_core::typing::GcCheck) -> Result<(), Diagnostic> {
    let checker = rml_core::Checker {
        exns: c.output.exns.clone(),
        gc,
        store: vec![],
    };
    checker
        .check(&rml_core::TypeEnv::default(), &c.output.term)
        .map(|_| ())
        .map_err(|e| {
            let mut d = Diagnostic::error("E0004", e.msg.clone());
            if let Some(x) = e.blame {
                d = d.with_note(format!("while checking the function bound by `{x}`"));
                if let Some(sp) = c.output.provenance.get(&x) {
                    d = d.with_primary(*sp);
                }
            }
            d
        })
}

/// Serializes a compiled program's region-annotated IR (see
/// [`rml_core::ir`] for the format and its versioning rules).
pub fn emit_ir(c: &Compiled) -> Vec<u8> {
    let prog = rml_core::ir::IrProgram {
        term: c.output.term.clone(),
        exns: c.output.exns.clone(),
        global: c.output.global,
        schemes: c.output.schemes.clone(),
    };
    rml_core::ir::encode_program(&prog)
}

/// Loads a program back from serialized IR, skipping the front end
/// entirely: no parsing, typing, or region inference happens (and the
/// process compile counter is *not* bumped). The representation analyses
/// are re-derived from the decoded term — they are cheap and not part of
/// the format. Inference-time artifacts that do not survive serialization
/// (statistics, store counters, provenance) come back empty.
///
/// # Errors
///
/// Any [`rml_core::ir::IrError`]: bad magic, version mismatch, truncated
/// or trailing input, or a corrupt encoding.
pub fn load_ir(bytes: &[u8], strategy: Strategy) -> Result<Compiled, rml_core::ir::IrError> {
    let prog = rml_core::ir::decode_program(bytes)?;
    let repr = rml_repr::analyze(&prog.term);
    Ok(Compiled {
        source: String::new(),
        typed: None,
        output: rml_infer::Output {
            term: prog.term,
            exns: prog.exns,
            global: prog.global,
            stats: rml_infer::Stats::default(),
            store_stats: Default::default(),
            schemes: prog.schemes,
            provenance: Default::default(),
        },
        repr,
        strategy,
        timings: CompileTimings::default(),
    })
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// GC policy; `None` picks the strategy default (`Off` for `r`, on
    /// otherwise).
    pub gc: Option<GcPolicy>,
    /// Run the regionless baseline machine instead.
    pub baseline: bool,
    /// Use the finite-region classification from `rml-repr`.
    pub use_finite_regions: bool,
    /// Use the partly tag-free (untagged pairs/refs/cons) representation
    /// for kind-homogeneous regions (paper Section 6).
    pub tag_free: bool,
    /// Step limit.
    pub fuel: u64,
    /// Fault injection: fail with `OutOfMemory` at this many allocations.
    pub alloc_budget: Option<u64>,
    /// Fault injection: continuation-depth limit.
    pub depth_limit: Option<usize>,
    /// Heap-invariant verification cadence; `None` picks the policy
    /// default (`AfterGc` under stress schedules, `Off` otherwise).
    pub verify: Option<rml_eval::VerifyLevel>,
}

impl Default for ExecOpts {
    fn default() -> ExecOpts {
        ExecOpts {
            gc: None,
            baseline: false,
            use_finite_regions: true,
            tag_free: true,
            fuel: u64::MAX,
            alloc_budget: None,
            depth_limit: None,
            verify: None,
        }
    }
}

/// Executes a compiled program on the region heap.
///
/// # Errors
///
/// Propagates [`RunError`] — in particular `Dangling` when the collector
/// meets a dangling pointer (strategy `rg-` on the paper's programs).
pub fn execute(c: &Compiled, opts: &ExecOpts) -> Result<RunOutcome, RunError> {
    let mut ro = if opts.baseline {
        RunOpts::baseline(c.output.global)
    } else {
        RunOpts::new(c.output.global)
    };
    ro.gc = opts.gc.unwrap_or(match c.strategy {
        Strategy::R => GcPolicy::Off,
        _ => GcPolicy::default_on(),
    });
    if opts.use_finite_regions && !opts.baseline {
        ro.finite = c.repr.finite.clone();
        ro.finite_bounds = c.repr.bounds.clone();
    }
    if opts.tag_free && !opts.baseline {
        ro.uniform = c
            .repr
            .uniform
            .iter()
            .map(|(rv, k)| {
                let uk = match k {
                    rml_repr::HomoKind::Pair => rml_runtime::UniformKind::Pair,
                    rml_repr::HomoKind::Cons => rml_runtime::UniformKind::Cons,
                    rml_repr::HomoKind::Ref => rml_runtime::UniformKind::Ref,
                };
                (*rv, uk)
            })
            .collect();
    }
    ro.fuel = opts.fuel;
    ro.alloc_budget = opts.alloc_budget;
    ro.depth_limit = opts.depth_limit;
    ro.verify = opts.verify.unwrap_or(match ro.gc {
        GcPolicy::Stress(_) => rml_eval::VerifyLevel::AfterGc,
        _ => rml_eval::VerifyLevel::Off,
    });
    rml_eval::run(&c.output.term, &ro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rml_eval::RunValue;

    #[test]
    fn end_to_end() {
        let c = compile("fun main () = 1 + 2", Strategy::Rg).unwrap();
        check(&c).unwrap();
        let out = execute(&c, &ExecOpts::default()).unwrap();
        assert_eq!(out.value, RunValue::Int(3));
    }

    #[test]
    fn errors_are_reported_per_stage() {
        assert!(matches!(
            compile("val = ", Strategy::Rg),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile("val x = 1 + \"two\"", Strategy::Rg),
            Err(CompileError::Type(_))
        ));
    }

    #[test]
    fn basis_compiles_under_all_strategies() {
        crate::run_with_big_stack(|| {
            for s in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
                let c = compile_with_basis("fun main () = length [1, 2, 3]", s).unwrap();
                let out = execute(&c, &ExecOpts::default()).unwrap();
                assert_eq!(out.value, RunValue::Int(3));
            }
        });
    }
}
