//! The compilation pipeline: parse → type → region-infer → analyse →
//! execute.

use rml_eval::{GcPolicy, RunError, RunOpts, RunOutcome};
use rml_infer::{Options, SpuriousStyle, Strategy};
use rml_repr::ReprInfo;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide count of completed compilations (any strategy). The
/// benchmark harness uses deltas of this counter to assert its
/// compilation cache actually shares work.
static COMPILES: AtomicU64 = AtomicU64::new(0);

/// The number of compilations performed by this process so far.
pub fn compile_count() -> u64 {
    COMPILES.load(Ordering::Relaxed)
}

/// Wall-clock time spent in each compilation phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileTimings {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Hindley–Milner typing.
    pub types: Duration,
    /// Region inference.
    pub regions: Duration,
    /// Representation analyses.
    pub repr: Duration,
    /// End-to-end compilation time.
    pub total: Duration,
}

/// A compiled program.
#[derive(Debug)]
pub struct Compiled {
    /// The source, as compiled (including any prepended basis).
    pub source: String,
    /// The typed AST.
    pub typed: rml_hm::TProgram,
    /// Region inference output (term, exceptions, statistics, schemes).
    pub output: rml_infer::Output,
    /// Representation analyses.
    pub repr: ReprInfo,
    /// The strategy used.
    pub strategy: Strategy,
    /// Per-phase compilation wall times.
    pub timings: CompileTimings,
}

/// A compilation error from any stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexing/parsing.
    Parse(String),
    /// Hindley–Milner typing.
    Type(String),
    /// Region inference.
    Region(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(m) => write!(f, "parse error: {m}"),
            CompileError::Type(m) => write!(f, "{m}"),
            CompileError::Region(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a source program under a strategy.
///
/// # Errors
///
/// Returns the first stage error encountered.
pub fn compile(src: &str, strategy: Strategy) -> Result<Compiled, CompileError> {
    compile_opts(src, strategy, SpuriousStyle::default())
}

/// Compiles with an explicit spurious-variable style (the scheme (2) vs
/// scheme (3) choice of the paper's Section 2).
pub fn compile_opts(
    src: &str,
    strategy: Strategy,
    style: SpuriousStyle,
) -> Result<Compiled, CompileError> {
    let start = Instant::now();
    let prog = rml_syntax::parse_program(src).map_err(|e| CompileError::Parse(e.to_string()))?;
    let parse = start.elapsed();
    let t = Instant::now();
    let typed = rml_hm::infer_program(&prog).map_err(|e| CompileError::Type(e.to_string()))?;
    let types = t.elapsed();
    let t = Instant::now();
    let output = rml_infer::infer(&typed, Options { strategy, style })
        .map_err(|e| CompileError::Region(e.to_string()))?;
    let regions = t.elapsed();
    let t = Instant::now();
    let repr = rml_repr::analyze(&output.term);
    let repr_time = t.elapsed();
    COMPILES.fetch_add(1, Ordering::Relaxed);
    Ok(Compiled {
        source: src.to_string(),
        typed,
        output,
        repr,
        strategy,
        timings: CompileTimings {
            parse,
            types,
            regions,
            repr: repr_time,
            total: start.elapsed(),
        },
    })
}

/// Compiles with the basis library prepended (see [`crate::basis`]).
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with_basis(src: &str, strategy: Strategy) -> Result<Compiled, CompileError> {
    let full = format!("{}\n{}", crate::basis::BASIS, src);
    compile(&full, strategy)
}

/// Validates a compiled program against the paper's typing rules
/// (Figure 4), with the GC-safety mode matching the compilation strategy.
///
/// # Errors
///
/// Returns the checker's description of the first violated rule — for
/// `rg` output this indicates a bug; for `rg-` output on problematic
/// programs it is the expected detection of the soundness hole.
pub fn check(c: &Compiled) -> Result<(), String> {
    let gc = match c.strategy {
        Strategy::Rg => rml_core::typing::GcCheck::Full,
        Strategy::RgMinus => rml_core::typing::GcCheck::NoTyVars,
        Strategy::R => rml_core::typing::GcCheck::Off,
    };
    let checker = rml_core::Checker {
        exns: c.output.exns.clone(),
        gc,
        store: vec![],
    };
    checker
        .check(&rml_core::TypeEnv::default(), &c.output.term)
        .map(|_| ())
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// GC policy; `None` picks the strategy default (`Off` for `r`, on
    /// otherwise).
    pub gc: Option<GcPolicy>,
    /// Run the regionless baseline machine instead.
    pub baseline: bool,
    /// Use the finite-region classification from `rml-repr`.
    pub use_finite_regions: bool,
    /// Use the partly tag-free (untagged pairs/refs/cons) representation
    /// for kind-homogeneous regions (paper Section 6).
    pub tag_free: bool,
    /// Step limit.
    pub fuel: u64,
}

impl Default for ExecOpts {
    fn default() -> ExecOpts {
        ExecOpts {
            gc: None,
            baseline: false,
            use_finite_regions: true,
            tag_free: true,
            fuel: u64::MAX,
        }
    }
}

/// Executes a compiled program on the region heap.
///
/// # Errors
///
/// Propagates [`RunError`] — in particular `Dangling` when the collector
/// meets a dangling pointer (strategy `rg-` on the paper's programs).
pub fn execute(c: &Compiled, opts: &ExecOpts) -> Result<RunOutcome, RunError> {
    let mut ro = if opts.baseline {
        RunOpts::baseline(c.output.global)
    } else {
        RunOpts::new(c.output.global)
    };
    ro.gc = opts.gc.unwrap_or(match c.strategy {
        Strategy::R => GcPolicy::Off,
        _ => GcPolicy::default_on(),
    });
    if opts.use_finite_regions && !opts.baseline {
        ro.finite = c.repr.finite.clone();
    }
    if opts.tag_free && !opts.baseline {
        ro.uniform = c
            .repr
            .uniform
            .iter()
            .map(|(rv, k)| {
                let uk = match k {
                    rml_repr::HomoKind::Pair => rml_runtime::UniformKind::Pair,
                    rml_repr::HomoKind::Cons => rml_runtime::UniformKind::Cons,
                    rml_repr::HomoKind::Ref => rml_runtime::UniformKind::Ref,
                };
                (*rv, uk)
            })
            .collect();
    }
    ro.fuel = opts.fuel;
    rml_eval::run(&c.output.term, &ro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rml_eval::RunValue;

    #[test]
    fn end_to_end() {
        let c = compile("fun main () = 1 + 2", Strategy::Rg).unwrap();
        check(&c).unwrap();
        let out = execute(&c, &ExecOpts::default()).unwrap();
        assert_eq!(out.value, RunValue::Int(3));
    }

    #[test]
    fn errors_are_reported_per_stage() {
        assert!(matches!(
            compile("val = ", Strategy::Rg),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile("val x = 1 + \"two\"", Strategy::Rg),
            Err(CompileError::Type(_))
        ));
    }

    #[test]
    fn basis_compiles_under_all_strategies() {
        crate::run_with_big_stack(|| {
            for s in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
                let c = compile_with_basis("fun main () = length [1, 2, 3]", s).unwrap();
                let out = execute(&c, &ExecOpts::default()).unwrap();
                assert_eq!(out.value, RunValue::Int(3));
            }
        });
    }
}
