//! `rmlc` — the command-line driver: compile and run `.rml` programs.
//!
//! ```sh
//! rmlc [options] <file.rml>
//!   --strategy rg|rg-|r     compilation strategy (default rg)
//!   --baseline              run on the regionless tracing-GC machine
//!   --no-basis              do not prepend the basis library
//!   --print-term            print the region-annotated program
//!   --print-schemes         print the inferred region type schemes
//!   --check                 validate against the Figure 4 typing rules
//!   --check-full            validate against the FULL GC-safety rules
//!                           (detects the rg- soundness hole; no run)
//!   --emit=ir               serialize the region-annotated IR (no run)
//!   -o <file>               output path for --emit=ir (default out.ir)
//!   --load-ir <file.ir>     load serialized IR instead of compiling
//!   --stats                 print allocation/GC statistics
//!   -e <expr>               compile `fun main () = <expr>` instead of a file
//!   --torture               run the differential torture oracle: every
//!                           strategy × every GC schedule, one verdict
//!   --gc-stress=N           force a collection every N machine steps
//!   --alloc-budget=N        inject OutOfMemory at the Nth allocation
//!   --depth-limit=N         inject a continuation-depth limit
//!   --seed=N                PRNG seed for stress schedules (default
//!                           0x704110E5); same seed ⇒ same schedule ⇒
//!                           same outcome
//!   --profile[=PATH]        record a Chrome trace (pipeline phases, GC
//!                           pauses, machine counters) to PATH (default
//!                           rml-trace.json); load in about://tracing
//!                           or Perfetto
//!   --metrics               print the unified metrics snapshot (phase
//!                           times, store counters, heap stats, GC pause
//!                           percentiles) after the run
//!   --gen=SEED              compile the deterministic rml-gen program
//!                           for SEED instead of reading a file (implies
//!                           --no-basis; generated programs are
//!                           self-contained). `rmlc --gen=SEED --torture`
//!                           reproduces a fuzzgen failure from its seed
//!                           line alone.
//!   --gen-fuel=N            generator node budget for --gen (default 40,
//!                           the fuzzgen default)
//!   --print-src             print the surface source being compiled
//!                           (useful with --gen to capture a corpus file)
//! ```
//!
//! Compile and check errors are rendered as source-located diagnostics
//! with caret underlines (see `rml_session::Diagnostic`); runtime faults
//! render through the same path as the `E0005` family.

use rml::{
    check, check_full, compile, compile_with_basis, emit_ir, execute, load_ir, ExecOpts,
    MetricsSnapshot, Strategy,
};
use rml_session::trace;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: rmlc [--strategy rg|rg-|r] [--baseline] [--no-basis] \
         [--print-term] [--print-schemes] [--check] [--check-full] \
         [--emit=ir] [-o <file>] [--stats] [--torture] [--gc-stress=N] \
         [--alloc-budget=N] [--depth-limit=N] [--seed=N] \
         [--profile[=PATH]] [--metrics] [--gen-fuel=N] [--print-src] \
         (<file.rml> | -e <expr> | --gen=SEED | --load-ir <file.ir>)"
    );
    std::process::exit(2)
}

/// Parses the numeric value of a `--flag=N` argument. A present but
/// unparsable value is a hard error (exit 2), never a silent fallback —
/// `--gc-stress=1k` must not quietly run without stress.
fn parse_num(a: &str) -> u64 {
    let (flag, v) = a.split_once('=').unwrap_or((a, ""));
    match v.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("rmlc: invalid value for {flag}: `{v}` is not a number ({e})");
            std::process::exit(2)
        }
    }
}

/// Writes the recorded Chrome trace, when profiling was requested.
fn write_profile(recorder: &Option<(Arc<trace::Recorder>, String)>) {
    if let Some((rec, path)) = recorder {
        let json = rec.to_chrome_json();
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("rmlc: wrote {} trace events to {path}", rec.events().len()),
            Err(e) => {
                eprintln!("rmlc: cannot write trace to {path}: {e}");
                std::process::exit(1)
            }
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut strategy = Strategy::Rg;
    let mut baseline = false;
    let mut use_basis = true;
    let mut print_term = false;
    let mut print_schemes = false;
    let mut do_check = false;
    let mut do_check_full = false;
    let mut emit_ir_flag = false;
    let mut out_path: Option<String> = None;
    let mut ir_path: Option<String> = None;
    let mut stats = false;
    let mut file: Option<String> = None;
    let mut expr: Option<String> = None;
    let mut torture = false;
    let mut gc_stress: Option<u64> = None;
    let mut alloc_budget: Option<u64> = None;
    let mut depth_limit: Option<usize> = None;
    let mut seed: u64 = 0x7041_10E5;
    let mut profile: Option<String> = None;
    let mut metrics = false;
    let mut gen_seed: Option<u64> = None;
    let mut gen_fuel: u64 = 40;
    let mut print_src = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strategy" => {
                strategy = match args.next().as_deref() {
                    Some("rg") => Strategy::Rg,
                    Some("rg-") => Strategy::RgMinus,
                    Some("r") => Strategy::R,
                    _ => usage(),
                }
            }
            "--baseline" => baseline = true,
            "--no-basis" => use_basis = false,
            "--print-term" => print_term = true,
            "--print-schemes" => print_schemes = true,
            "--check" => do_check = true,
            "--check-full" => do_check_full = true,
            "--emit=ir" => emit_ir_flag = true,
            "-o" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--load-ir" => ir_path = Some(args.next().unwrap_or_else(|| usage())),
            "--stats" => stats = true,
            "--torture" => torture = true,
            "-e" => expr = Some(args.next().unwrap_or_else(|| usage())),
            s if s.starts_with("--gc-stress=") => gc_stress = Some(parse_num(s)),
            s if s.starts_with("--alloc-budget=") => alloc_budget = Some(parse_num(s)),
            s if s.starts_with("--depth-limit=") => depth_limit = Some(parse_num(s) as usize),
            s if s.starts_with("--seed=") => seed = parse_num(s),
            "--profile" => profile = Some("rml-trace.json".to_string()),
            s if s.starts_with("--profile=") => {
                let (_, p) = s.split_once('=').unwrap_or(("", ""));
                if p.is_empty() {
                    eprintln!("rmlc: --profile= requires a path");
                    std::process::exit(2)
                }
                profile = Some(p.to_string())
            }
            "--metrics" => metrics = true,
            s if s.starts_with("--gen-fuel=") => gen_fuel = parse_num(s),
            s if s.starts_with("--gen=") => gen_seed = Some(parse_num(s)),
            "--gen" => {
                gen_seed = Some(match args.next().as_deref().map(str::parse) {
                    Some(Ok(n)) => n,
                    _ => usage(),
                })
            }
            "--print-src" => print_src = true,
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => usage(),
        }
    }
    // --gen: synthesize the deterministic rml-gen program for the seed.
    // Generated programs are self-contained (z-prefixed identifiers, no
    // basis use), so the basis is skipped and the program is
    // bit-identical to what the fuzzgen driver tested for this seed.
    let mut generated: Option<(String, String)> = None;
    if let Some(s) = gen_seed {
        if file.is_some() || expr.is_some() || ir_path.is_some() {
            usage()
        }
        use_basis = false;
        let src = rml_gen::generate_source(&rml_gen::GenOpts {
            seed: s,
            fuel: gen_fuel as u32,
        });
        generated = Some((src, format!("gen-{s}")));
    }
    let recorder: Option<(Arc<trace::Recorder>, String)> = profile.map(|path| {
        let rec = Arc::new(trace::Recorder::new());
        trace::install(rec.clone());
        (rec, path)
    });
    if torture {
        // The oracle compiles all three strategies itself, so it needs
        // source input, not pre-strategy serialized IR.
        if ir_path.is_some() {
            usage()
        }
        let (src, name) = if let Some(g) = generated.clone() {
            g
        } else {
            match (&file, &expr) {
                (Some(f), None) => {
                    let src = std::fs::read_to_string(f).unwrap_or_else(|e| {
                        eprintln!("rmlc: cannot read {f}: {e}");
                        std::process::exit(1)
                    });
                    (src, f.clone())
                }
                (None, Some(e)) => (format!("fun main () = {e}"), "<expr>".to_string()),
                _ => usage(),
            }
        };
        if print_src {
            print!("{src}");
        }
        let topts = rml::torture::TortureOpts {
            seed,
            with_basis: use_basis,
            ..Default::default()
        };
        match rml::torture::torture(&name, &src, &topts) {
            Ok(rep) => {
                print!("{}", rep.render());
                write_profile(&recorder);
                std::process::exit(i32::from(!rep.ok()))
            }
            Err(e) => {
                let full = if use_basis {
                    format!("{}\n{}", rml::basis::BASIS, src)
                } else {
                    src
                };
                eprint!("{}", e.render(&full, &name));
                write_profile(&recorder);
                std::process::exit(1)
            }
        }
    }
    let (compiled, src_name) = if let Some(p) = ir_path {
        if file.is_some() || expr.is_some() {
            usage()
        }
        let bytes = std::fs::read(&p).unwrap_or_else(|e| {
            eprintln!("rmlc: cannot read {p}: {e}");
            std::process::exit(1)
        });
        let c = load_ir(&bytes, strategy).unwrap_or_else(|e| {
            eprintln!("rmlc: cannot load IR from {p}: {e}");
            std::process::exit(1)
        });
        (c, p)
    } else {
        let (src, name) = if let Some(g) = generated {
            g
        } else {
            match (file, expr) {
                (Some(f), None) => {
                    let src = std::fs::read_to_string(&f).unwrap_or_else(|e| {
                        eprintln!("rmlc: cannot read {f}: {e}");
                        std::process::exit(1)
                    });
                    (src, f)
                }
                (None, Some(e)) => (format!("fun main () = {e}"), "<expr>".to_string()),
                _ => usage(),
            }
        };
        if print_src {
            print!("{src}");
        }
        let full_src = if use_basis {
            format!("{}\n{}", rml::basis::BASIS, src)
        } else {
            src.clone()
        };
        let compiled = (if use_basis {
            compile_with_basis(&src, strategy)
        } else {
            compile(&src, strategy)
        })
        .unwrap_or_else(|e| {
            eprint!("{}", e.render(&full_src, &name));
            std::process::exit(1)
        });
        (compiled, name)
    };
    if print_schemes {
        for (name, scheme) in &compiled.output.schemes {
            println!("{name} : {}", rml_core::pretty::scheme_to_string(scheme));
        }
    }
    if print_term {
        println!(
            "{}",
            rml_core::pretty::term_to_string(&compiled.output.term)
        );
    }
    if do_check {
        match check(&compiled) {
            Ok(()) => eprintln!("rmlc: Figure 4 check passed"),
            Err(e) => {
                eprintln!("rmlc: Figure 4 check FAILED: {e}");
                std::process::exit(1)
            }
        }
    }
    if do_check_full {
        match check_full(&compiled) {
            Ok(()) => eprintln!("rmlc: full GC-safety check passed"),
            Err(d) => {
                eprint!(
                    "{}",
                    d.render(&rml::SourceMap::new(&compiled.source), &src_name)
                );
                std::process::exit(1)
            }
        }
        if !emit_ir_flag {
            write_profile(&recorder);
            return; // checking mode: don't run the program
        }
    }
    if emit_ir_flag {
        let bytes = emit_ir(&compiled);
        let out = out_path.unwrap_or_else(|| "out.ir".to_string());
        std::fs::write(&out, &bytes).unwrap_or_else(|e| {
            eprintln!("rmlc: cannot write {out}: {e}");
            std::process::exit(1)
        });
        eprintln!("rmlc: wrote {} bytes of IR to {out}", bytes.len());
        write_profile(&recorder);
        return;
    }
    let opts = ExecOpts {
        baseline,
        gc: gc_stress.map(|n| rml_eval::GcPolicy::stress_every(n.max(1), seed)),
        alloc_budget,
        depth_limit,
        ..ExecOpts::default()
    };
    match execute(&compiled, &opts) {
        Ok(out) => {
            print!("{}", out.output);
            println!("{}", out.value);
            if metrics {
                let snap =
                    MetricsSnapshot::new(&compiled.timings, compiled.output.store_stats, &out);
                print!("{}", snap.render_text());
            }
            write_profile(&recorder);
            if stats {
                eprintln!(
                    "steps {}  alloc {}B  peak {}B  regions {}  gc {} \
                     forced {}  walks {}  faults {}",
                    out.steps,
                    out.stats.bytes_allocated,
                    out.stats.peak_bytes(),
                    out.stats.regions_created,
                    out.stats.gc_count,
                    out.stats.forced_gcs,
                    out.stats.verify_walks,
                    out.stats.faults_injected
                );
            }
        }
        Err(e) => {
            // Runtime faults go through the same diagnostic renderer as
            // compile errors (the E0005 family). They carry no span, so
            // this prints the coded header and notes, not an excerpt.
            eprint!(
                "{}",
                e.to_diagnostic()
                    .render(&rml::SourceMap::new(&compiled.source), &src_name)
            );
            write_profile(&recorder);
            std::process::exit(1)
        }
    }
}
