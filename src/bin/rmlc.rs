//! `rmlc` — the command-line driver: compile and run `.rml` programs.
//!
//! ```sh
//! rmlc [options] <file.rml>
//!   --strategy rg|rg-|r     compilation strategy (default rg)
//!   --baseline              run on the regionless tracing-GC machine
//!   --no-basis              do not prepend the basis library
//!   --print-term            print the region-annotated program
//!   --print-schemes         print the inferred region type schemes
//!   --check                 validate against the Figure 4 typing rules
//!   --stats                 print allocation/GC statistics
//!   -e <expr>               compile `fun main () = <expr>` instead of a file
//! ```

use rml::{check, compile, compile_with_basis, execute, ExecOpts, Strategy};

fn usage() -> ! {
    eprintln!(
        "usage: rmlc [--strategy rg|rg-|r] [--baseline] [--no-basis] \
         [--print-term] [--print-schemes] [--check] [--stats] (<file.rml> | -e <expr>)"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut strategy = Strategy::Rg;
    let mut baseline = false;
    let mut use_basis = true;
    let mut print_term = false;
    let mut print_schemes = false;
    let mut do_check = false;
    let mut stats = false;
    let mut file: Option<String> = None;
    let mut expr: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strategy" => {
                strategy = match args.next().as_deref() {
                    Some("rg") => Strategy::Rg,
                    Some("rg-") => Strategy::RgMinus,
                    Some("r") => Strategy::R,
                    _ => usage(),
                }
            }
            "--baseline" => baseline = true,
            "--no-basis" => use_basis = false,
            "--print-term" => print_term = true,
            "--print-schemes" => print_schemes = true,
            "--check" => do_check = true,
            "--stats" => stats = true,
            "-e" => expr = Some(args.next().unwrap_or_else(|| usage())),
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => usage(),
        }
    }
    let src = match (file, expr) {
        (Some(f), None) => std::fs::read_to_string(&f).unwrap_or_else(|e| {
            eprintln!("rmlc: cannot read {f}: {e}");
            std::process::exit(1)
        }),
        (None, Some(e)) => format!("fun main () = {e}"),
        _ => usage(),
    };
    let compiled = (if use_basis {
        compile_with_basis(&src, strategy)
    } else {
        compile(&src, strategy)
    })
    .unwrap_or_else(|e| {
        eprintln!("rmlc: {e}");
        std::process::exit(1)
    });
    if print_schemes {
        for (name, scheme) in &compiled.output.schemes {
            println!("{name} : {}", rml_core::pretty::scheme_to_string(scheme));
        }
    }
    if print_term {
        println!(
            "{}",
            rml_core::pretty::term_to_string(&compiled.output.term)
        );
    }
    if do_check {
        match check(&compiled) {
            Ok(()) => eprintln!("rmlc: Figure 4 check passed"),
            Err(e) => {
                eprintln!("rmlc: Figure 4 check FAILED: {e}");
                std::process::exit(1)
            }
        }
    }
    let opts = ExecOpts {
        baseline,
        ..ExecOpts::default()
    };
    match execute(&compiled, &opts) {
        Ok(out) => {
            print!("{}", out.output);
            println!("{}", out.value);
            if stats {
                eprintln!(
                    "steps {}  alloc {}B  peak {}B  regions {}  gc {}",
                    out.steps,
                    out.stats.bytes_allocated,
                    out.stats.peak_bytes(),
                    out.stats.regions_created,
                    out.stats.gc_count
                );
            }
        }
        Err(e) => {
            eprintln!("rmlc: runtime error: {e}");
            std::process::exit(1)
        }
    }
}
