//! The unified metrics snapshot: one structure gathering everything the
//! stack counts — per-phase compile times ([`CompileTimings`]), the
//! region-inference store counters ([`StoreStats`]), heap statistics
//! ([`HeapStats`]), machine steps, and a GC pause histogram — so the
//! benchmark table, `rmlc --metrics`, and future perf PRs all report
//! against the same numbers.
//!
//! The snapshot is assembled *after* a run from data every layer already
//! returns; it adds no instrumentation cost of its own. JSON emission
//! goes through [`rml_session::json`] like every other exporter.

use crate::pipeline::CompileTimings;
use rml_eval::RunOutcome;
use rml_infer::store::StoreStats;
use rml_runtime::{GcPause, HeapStats};
use rml_session::Json;
use std::time::Duration;

/// Percentile summary of the per-collection pause series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PauseHistogram {
    /// Number of collections.
    pub count: u64,
    /// Median pause, microseconds.
    pub p50_us: u64,
    /// 99th-percentile pause, microseconds (nearest-rank).
    pub p99_us: u64,
    /// Longest pause, microseconds.
    pub max_us: u64,
    /// Sum of all pauses, microseconds.
    pub total_us: u64,
}

impl PauseHistogram {
    /// Summarises a pause series (nearest-rank percentiles).
    pub fn from_pauses(pauses: &[GcPause]) -> PauseHistogram {
        if pauses.is_empty() {
            return PauseHistogram::default();
        }
        let mut us: Vec<u64> = pauses
            .iter()
            .map(|p| p.duration.as_micros() as u64)
            .collect();
        us.sort_unstable();
        let rank = |pct: u64| us[((us.len() as u64 - 1) * pct / 100) as usize];
        PauseHistogram {
            count: us.len() as u64,
            p50_us: rank(50),
            p99_us: rank(99),
            max_us: us[us.len() - 1],
            total_us: us.iter().sum(),
        }
    }
}

/// Everything the stack measured about one compile-and-run, unified.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-phase compile wall times.
    pub timings: CompileTimings,
    /// Region-inference store counters.
    pub store: StoreStats,
    /// Heap statistics from the run.
    pub heap: HeapStats,
    /// Machine steps taken.
    pub steps: u64,
    /// GC pause summary.
    pub pauses: PauseHistogram,
}

fn us(d: Duration) -> Json {
    Json::UInt(d.as_micros() as u64)
}

impl MetricsSnapshot {
    /// Assembles a snapshot from a compilation's timings and a run's
    /// outcome.
    pub fn new(timings: &CompileTimings, store: StoreStats, outcome: &RunOutcome) -> Self {
        MetricsSnapshot {
            timings: *timings,
            store,
            heap: outcome.stats,
            steps: outcome.steps,
            pauses: PauseHistogram::from_pauses(&outcome.pauses),
        }
    }

    /// The snapshot as a JSON value (embedded per-row in
    /// `BENCH_figure9.json`, printed whole by `rmlc --metrics`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases_us",
                Json::obj([
                    ("parse", us(self.timings.parse)),
                    ("types", us(self.timings.types)),
                    ("regions", us(self.timings.regions)),
                    ("repr", us(self.timings.repr)),
                    ("total", us(self.timings.total)),
                ]),
            ),
            (
                "store",
                Json::obj([
                    ("find_ops", Json::UInt(self.store.find_ops)),
                    ("unions", Json::UInt(self.store.unions)),
                    (
                        "closure_cache_hits",
                        Json::UInt(self.store.closure_cache_hits),
                    ),
                    (
                        "closure_recomputes",
                        Json::UInt(self.store.closure_recomputes),
                    ),
                    ("intern_hits", Json::UInt(self.store.intern_hits)),
                    ("intern_misses", Json::UInt(self.store.intern_misses)),
                ]),
            ),
            (
                "heap",
                Json::obj([
                    ("bytes_allocated", Json::UInt(self.heap.bytes_allocated)),
                    ("objects_allocated", Json::UInt(self.heap.objects_allocated)),
                    ("peak_bytes", Json::UInt(self.heap.peak_bytes())),
                    ("gc_count", Json::UInt(self.heap.gc_count)),
                    ("minor_gc_count", Json::UInt(self.heap.minor_gc_count)),
                    ("bytes_copied", Json::UInt(self.heap.bytes_copied)),
                    ("regions_created", Json::UInt(self.heap.regions_created)),
                    ("peak_regions", Json::UInt(self.heap.peak_regions)),
                    ("forced_gcs", Json::UInt(self.heap.forced_gcs)),
                    ("verify_walks", Json::UInt(self.heap.verify_walks)),
                    ("faults_injected", Json::UInt(self.heap.faults_injected)),
                    ("pages_allocated", Json::UInt(self.heap.pages_allocated)),
                    ("pages_released", Json::UInt(self.heap.pages_released)),
                ]),
            ),
            ("steps", Json::UInt(self.steps)),
            (
                "gc_pauses",
                Json::obj([
                    ("count", Json::UInt(self.pauses.count)),
                    ("p50_us", Json::UInt(self.pauses.p50_us)),
                    ("p99_us", Json::UInt(self.pauses.p99_us)),
                    ("max_us", Json::UInt(self.pauses.max_us)),
                    ("total_us", Json::UInt(self.pauses.total_us)),
                ]),
            ),
        ])
    }

    /// A human-readable report (`rmlc --metrics`).
    pub fn render_text(&self) -> String {
        let t = &self.timings;
        let mut out = String::new();
        out.push_str("== metrics ==\n");
        out.push_str(&format!(
            "compile: parse {:?}  types {:?}  regions {:?}  repr {:?}  total {:?}\n",
            t.parse, t.types, t.regions, t.repr, t.total
        ));
        out.push_str(&format!(
            "store:   find_ops {}  unions {}  closure hits/recomputes {}/{}\n",
            self.store.find_ops,
            self.store.unions,
            self.store.closure_cache_hits,
            self.store.closure_recomputes
        ));
        out.push_str(&format!(
            "machine: {} steps  {} objects  {} bytes allocated  peak rss {} bytes\n",
            self.steps,
            self.heap.objects_allocated,
            self.heap.bytes_allocated,
            self.heap.peak_bytes()
        ));
        out.push_str(&format!(
            "heap:    {} regions ({} peak live)  pages {}+/{}-\n",
            self.heap.regions_created,
            self.heap.peak_regions,
            self.heap.pages_allocated,
            self.heap.pages_released
        ));
        out.push_str(&format!(
            "gc:      {} collections ({} minor, {} forced)  {} bytes copied  \
             pauses p50 {}us p99 {}us max {}us\n",
            self.heap.gc_count,
            self.heap.minor_gc_count,
            self.heap.forced_gcs,
            self.heap.bytes_copied,
            self.pauses.p50_us,
            self.pauses.p99_us,
            self.pauses.max_us
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pause(us: u64) -> GcPause {
        GcPause {
            duration: Duration::from_micros(us),
            bytes_copied: 0,
            live_bytes: 0,
            minor: false,
        }
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let pauses: Vec<GcPause> = (1..=100).map(pause).collect();
        let h = PauseHistogram::from_pauses(&pauses);
        assert_eq!(h.count, 100);
        assert_eq!(h.p50_us, 50); // index (99*50)/100 = 49 → value 50
        assert_eq!(h.p99_us, 99);
        assert_eq!(h.max_us, 100);
        assert_eq!(h.total_us, 5050);
        assert_eq!(PauseHistogram::from_pauses(&[]), PauseHistogram::default());
    }

    #[test]
    fn snapshot_json_has_the_unified_sections() {
        let c = crate::pipeline::compile("fun main () = 1 + 2", crate::Strategy::Rg).unwrap();
        let out = crate::pipeline::execute(&c, &crate::pipeline::ExecOpts::default()).unwrap();
        let m = MetricsSnapshot::new(&c.timings, c.output.store_stats, &out);
        let json = m.to_json().render();
        for key in ["phases_us", "store", "heap", "steps", "gc_pauses", "p99_us"] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
        assert_eq!(m.steps, out.steps);
        assert_eq!(m.heap, out.stats);
        let text = m.render_text();
        assert!(text.contains("collections"), "{text}");
    }
}
