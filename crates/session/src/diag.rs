//! Structured diagnostics and a terminal renderer that underlines source.
//!
//! Every error path of the compiler ends in a [`Diagnostic`]: a stable
//! code, a severity, a one-line message, a primary span, optional
//! secondary labels, and free-form notes. The renderer produces the usual
//! `file:line:col` header followed by the offending source line with a
//! caret underline.

use crate::span::{SourceMap, Span};
use std::fmt;

/// How bad it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// A hard error; compilation (or checking) failed.
    #[default]
    Error,
    /// A warning; compilation continues.
    Warning,
    /// Supplementary information.
    Note,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// A secondary span with its own message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Where.
    pub span: Span,
    /// Why that place matters.
    pub message: String,
}

/// A structured compiler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`E0001` parse, `E0002` type, `E0003`
    /// region inference, `E0004` region-type checking).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// One-line description.
    pub message: String,
    /// The primary location ([`Span::DUMMY`] when unknown).
    pub primary: Span,
    /// Secondary locations.
    pub labels: Vec<Label>,
    /// Free-form notes appended after the source excerpt.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A fresh error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            primary: Span::DUMMY,
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the primary span.
    pub fn with_primary(mut self, span: Span) -> Diagnostic {
        self.primary = span;
        self
    }

    /// Adds a secondary label.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Adds a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic against its source, underlining the primary
    /// span. `name` labels the source buffer (a file name or `<expr>`).
    pub fn render(&self, sm: &SourceMap, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        );
        if !self.primary.is_dummy() {
            render_span(&mut out, sm, name, self.primary, "^", None);
        }
        for l in &self.labels {
            if !l.span.is_dummy() {
                render_span(&mut out, sm, name, l.span, "-", Some(&l.message));
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "  = note: {n}");
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    /// The compatibility form: just the message, so a `Diagnostic` can
    /// stand in anywhere a stringly-typed error used to flow.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Diagnostic {}

fn render_span(
    out: &mut String,
    sm: &SourceMap,
    name: &str,
    span: Span,
    mark: &str,
    label: Option<&str>,
) {
    use std::fmt::Write;
    let (line, col) = sm.line_col(span.start);
    let text = sm.line_text(line);
    let _ = writeln!(out, "  --> {name}:{line}:{col}");
    let gutter = format!("{line}");
    let _ = writeln!(out, "{:>width$} |", "", width = gutter.len());
    let _ = writeln!(out, "{gutter} | {text}");
    // Underline within this line only (multi-line spans underline to EOL).
    let line_len = text.len() as u32;
    let start = (col - 1).min(line_len);
    let (end_line, end_col) = sm.line_col(span.end);
    let end = if end_line == line {
        (end_col - 1).min(line_len)
    } else {
        line_len
    };
    let width = (end.saturating_sub(start)).max(1) as usize;
    let _ = write!(
        out,
        "{:>gw$} | {:sp$}{}",
        "",
        "",
        mark.repeat(width),
        gw = gutter.len(),
        sp = start as usize
    );
    match label {
        Some(l) => {
            let _ = writeln!(out, " {l}");
        }
        None => {
            let _ = writeln!(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_underline_at_span() {
        let sm = SourceMap::new("val x = 1 + true\n");
        let d = Diagnostic::error("E0002", "type mismatch")
            .with_primary(Span::new(12, 16))
            .with_note("booleans are not ints");
        let r = d.render(&sm, "<test>");
        assert!(r.contains("error[E0002]: type mismatch"), "{r}");
        assert!(r.contains("--> <test>:1:13"), "{r}");
        assert!(r.contains("1 | val x = 1 + true"), "{r}");
        assert!(r.contains("  |             ^^^^"), "{r}");
        assert!(r.contains("= note: booleans are not ints"), "{r}");
    }

    #[test]
    fn display_is_the_bare_message() {
        let d = Diagnostic::error("E0001", "oops").with_primary(Span::new(1, 2));
        assert_eq!(d.to_string(), "oops");
    }

    #[test]
    fn dummy_primary_renders_no_excerpt() {
        let sm = SourceMap::new("x");
        let d = Diagnostic::error("E0003", "no position");
        let r = d.render(&sm, "f");
        assert!(!r.contains("-->"), "{r}");
    }
}
