//! The observability facade: spans, instants, and counters, fanned out to
//! a process-global sink.
//!
//! Every layer of the stack (pipeline phases, the region-inference
//! fix-point, the abstract machine, the collector) calls into this module
//! unconditionally; whether anything happens is decided by one relaxed
//! atomic load. **The disabled path performs no allocation and takes no
//! lock** — [`enabled`] is a single `AtomicBool` read, and every entry
//! point checks it before touching arguments. The perf smoke suite pins
//! this contract (`events_recorded()` must stay zero across an
//! instrumented run with no sink installed).
//!
//! The default sink is a [`Recorder`]: an in-memory event buffer with a
//! Chrome trace-event JSON exporter ([`Recorder::to_chrome_json`]) whose
//! output loads in `about://tracing` and Perfetto. Spans are emitted as
//! paired `B`/`E` events per thread, so nesting (GC pauses inside a run
//! span, phases inside a compile span) is reconstructed by the viewer.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span begin (`B`).
    Begin,
    /// Span end (`E`).
    End,
    /// Instant event (`i`).
    Instant,
    /// Counter sample (`C`).
    Counter,
}

impl TracePhase {
    fn chrome(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
            TracePhase::Counter => "C",
        }
    }
}

/// One recorded event (as stored by the [`Recorder`]).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (`"gc.collect"`, `"region-inference"`, …).
    pub name: &'static str,
    /// Category (`"pipeline"`, `"eval"`, `"runtime"`, `"counter"`).
    pub cat: &'static str,
    /// Phase.
    pub ph: TracePhase,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Logical thread id (small integers, stable per thread).
    pub tid: u64,
    /// Numeric arguments (counter values, sizes, counts).
    pub args: Vec<(&'static str, f64)>,
}

/// A destination for trace events. Implementations must be cheap enough
/// to call from the machine's step loop (the facade already gates on
/// [`enabled`], so a sink only ever sees events somebody asked for).
pub trait TraceSink: Send + Sync {
    /// Records one event. `args` is borrowed; sinks copy what they keep.
    fn record(
        &self,
        ph: TracePhase,
        name: &'static str,
        cat: &'static str,
        args: &[(&'static str, f64)],
    );
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Arc<dyn TraceSink>>> = Mutex::new(None);

/// Is a sink installed? One relaxed atomic load; the whole cost of the
/// instrumentation when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a process-global sink. Replaces any previous sink.
pub fn install(sink: Arc<dyn TraceSink>) {
    if let Ok(mut guard) = SINK.lock() {
        *guard = Some(sink);
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Removes the sink; subsequent events hit the disabled fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    if let Ok(mut guard) = SINK.lock() {
        *guard = None;
    }
}

/// Events delivered to any sink since process start — a cheap handle for
/// tests asserting the disabled path stays silent.
pub fn events_recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

fn with_sink(f: impl FnOnce(&dyn TraceSink)) {
    if !enabled() {
        return;
    }
    let sink = match SINK.lock() {
        Ok(guard) => guard.clone(),
        Err(_) => None,
    };
    if let Some(s) = sink {
        RECORDED.fetch_add(1, Ordering::Relaxed);
        f(&*s);
    }
}

/// An RAII span: `B` on creation, `E` on drop, both suppressed when no
/// sink was installed at creation time.
#[must_use = "a span traces the scope it is alive for"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    armed: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            with_sink(|s| s.record(TracePhase::End, self.name, self.cat, &[]));
        }
    }
}

/// Opens a span. Zero-cost (a bool check, no allocation) when disabled.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    let armed = enabled();
    if armed {
        with_sink(|s| s.record(TracePhase::Begin, name, cat, &[]));
    }
    Span { name, cat, armed }
}

/// Emits an instant event with numeric arguments.
#[inline]
pub fn instant(name: &'static str, cat: &'static str, args: &[(&'static str, f64)]) {
    if !enabled() {
        return;
    }
    with_sink(|s| s.record(TracePhase::Instant, name, cat, args));
}

/// Emits a counter sample (rendered as a stacked chart by trace viewers).
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_sink(|s| s.record(TracePhase::Counter, name, "counter", &[("value", value)]));
}

fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The in-memory sink: timestamps events against its construction epoch
/// and exports them as Chrome trace-event JSON.
pub struct Recorder {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An empty recorder whose epoch is "now".
    pub fn new() -> Recorder {
        Recorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of the recorded events, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Renders the buffer in the Chrome trace-event format (JSON object
    /// form, loadable in `about://tracing` and Perfetto). Spans come out
    /// as `B`/`E` pairs, instants as `i` with thread scope, counters as
    /// `C` samples.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut arr = Vec::with_capacity(events.len());
        for e in &events {
            let mut fields = vec![
                ("name".to_string(), Json::str(e.name)),
                ("cat".to_string(), Json::str(e.cat)),
                ("ph".to_string(), Json::str(e.ph.chrome())),
                ("ts".to_string(), Json::UInt(e.ts_us)),
                ("pid".to_string(), Json::UInt(1)),
                ("tid".to_string(), Json::UInt(e.tid)),
            ];
            if e.ph == TracePhase::Instant {
                fields.push(("s".to_string(), Json::str("t")));
            }
            if !e.args.is_empty() {
                let args = e
                    .args
                    .iter()
                    .map(|(k, v)| {
                        let val = if v.is_finite() {
                            Json::Num(*v)
                        } else {
                            Json::Null
                        };
                        (k.to_string(), val)
                    })
                    .collect();
                fields.push(("args".to_string(), Json::Obj(args)));
            }
            arr.push(Json::Obj(fields));
        }
        Json::obj([
            ("traceEvents", Json::Arr(arr)),
            ("displayTimeUnit", Json::str("ms")),
        ])
        .render()
    }
}

impl TraceSink for Recorder {
    fn record(
        &self,
        ph: TracePhase,
        name: &'static str,
        cat: &'static str,
        args: &[(&'static str, f64)],
    ) {
        let ev = TraceEvent {
            name,
            cat,
            ph,
            ts_us: self.epoch.elapsed().as_micros() as u64,
            tid: current_tid(),
            args: args.to_vec(),
        };
        if let Ok(mut buf) = self.events.lock() {
            buf.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink registry is process-global; tests that install one must
    // not interleave. (Integration-level exporter tests live in the root
    // crate's `tests/observability.rs` under the same discipline.)
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_path_records_nothing() {
        let _g = GATE.lock().unwrap();
        uninstall();
        let before = events_recorded();
        {
            let _s = span("quiet", "test");
            instant("quiet.i", "test", &[("n", 1.0)]);
            counter("quiet.c", 2.0);
        }
        assert_eq!(events_recorded(), before);
    }

    #[test]
    fn recorder_pairs_spans_and_exports_chrome_events() {
        let _g = GATE.lock().unwrap();
        let rec = Arc::new(Recorder::new());
        install(rec.clone());
        {
            let _outer = span("outer", "test");
            let _inner = span("inner", "test");
            counter("bytes", 42.0);
        }
        uninstall();
        let evs = rec.events();
        let phs: Vec<TracePhase> = evs.iter().map(|e| e.ph).collect();
        assert_eq!(
            phs,
            vec![
                TracePhase::Begin,
                TracePhase::Begin,
                TracePhase::Counter,
                TracePhase::End,
                TracePhase::End
            ]
        );
        // Inner closes before outer (drop order).
        assert_eq!(evs[3].name, "inner");
        assert_eq!(evs[4].name, "outer");
        let json = rec.to_chrome_json();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"args\":{\"value\":42}"), "{json}");
    }

    #[test]
    fn span_created_before_install_never_emits_its_end() {
        let _g = GATE.lock().unwrap();
        uninstall();
        let s = span("pre", "test");
        let rec = Arc::new(Recorder::new());
        install(rec.clone());
        drop(s); // was created unarmed; must stay silent
        uninstall();
        assert!(rec.events().is_empty());
    }
}
