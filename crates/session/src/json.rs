//! A tiny JSON serializer — the one authority for every byte of JSON
//! this workspace emits (the Figure 9 benchmark table, the Chrome trace
//! exporter, the metrics snapshot).
//!
//! The workspace deliberately carries no serde; what it needs from JSON
//! is small and fixed: build a value tree, render it with correct string
//! escaping, and refuse to emit anything a strict parser would reject.
//! In particular **non-finite floats are an error**, not `NaN`/`Infinity`
//! tokens — `format!("{}", f64::NAN)` interpolated into hand-rolled JSON
//! was exactly the class of bug this module exists to end.

use std::fmt::Write;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (rendered without a fraction).
    Int(i64),
    /// An unsigned integer (rendered without a fraction).
    UInt(u64),
    /// A float; must be finite at render time.
    Num(f64),
    /// A string (escaped at render time).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Rendering rejected a non-finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteFloat(pub f64);

impl std::fmt::Display for NonFiniteFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "refusing to emit non-finite float {} as JSON", self.0)
    }
}

impl std::error::Error for NonFiniteFloat {}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for object values.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the tree.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteFloat`] if any [`Json::Num`] in the tree is NaN
    /// or infinite.
    pub fn try_render(&self) -> Result<String, NonFiniteFloat> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    /// Renders the tree, panicking on non-finite floats (use
    /// [`Json::try_render`] where the floats are not known finite).
    ///
    /// # Panics
    ///
    /// On a non-finite [`Json::Num`].
    pub fn render(&self) -> String {
        #[allow(clippy::expect_used)]
        self.try_render()
            .expect("non-finite float in JSON emission")
    }

    fn write(&self, out: &mut String) -> Result<(), NonFiniteFloat> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if !x.is_finite() {
                    return Err(NonFiniteFloat(*x));
                }
                // Rust's shortest-roundtrip float `Display` is valid JSON
                // except that integral values print without a fraction —
                // also valid JSON, so nothing to fix up.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and all control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let j = Json::str("a\"b\\c\nd\u{1}e");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn nested_trees_render_with_preserved_order() {
        let j = Json::obj([
            ("b", Json::Int(-1)),
            (
                "a",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::UInt(7)]),
            ),
        ]);
        assert_eq!(j.render(), r#"{"b":-1,"a":[null,true,7]}"#);
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::Arr(vec![Json::Num(x)]).try_render().unwrap_err();
            assert!(!err.0.is_finite());
        }
        assert_eq!(Json::Num(1.5).try_render().unwrap(), "1.5");
    }
}
