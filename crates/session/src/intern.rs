//! Hash-consing interners.
//!
//! An [`Interner`] maps structurally equal values to one shared `Rc`, so
//! consumers (the region-inference store's latent/closure memos, scheme
//! instantiation) hold cheap pointer-shared handles instead of per-use
//! cloned collections. Interned handles compare equal by pointer when the
//! values are equal, which also makes set equality O(1) on the fast path.

use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

/// A hash-consing interner for values of type `T`.
#[derive(Debug)]
pub struct Interner<T: Eq + Hash> {
    map: HashMap<Rc<T>, ()>,
    hits: u64,
    misses: u64,
}

impl<T: Eq + Hash> Default for Interner<T> {
    fn default() -> Interner<T> {
        Interner {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<T: Eq + Hash> Interner<T> {
    /// An empty interner.
    pub fn new() -> Interner<T> {
        Interner::default()
    }

    /// Returns the canonical shared handle for `value`, allocating it on
    /// first sight.
    pub fn intern(&mut self, value: T) -> Rc<T> {
        if let Some((k, ())) = self.map.get_key_value(&value) {
            self.hits += 1;
            return Rc::clone(k);
        }
        self.misses += 1;
        let rc = Rc::new(value);
        self.map.insert(Rc::clone(&rc), ());
        rc
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` — how often `intern` found an existing value.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn equal_values_share_one_allocation() {
        let mut i: Interner<BTreeSet<u32>> = Interner::new();
        let a = i.intern([1, 2, 3].into_iter().collect());
        let b = i.intern([3, 2, 1].into_iter().collect());
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
        assert_eq!(i.stats(), (1, 1));
    }

    #[test]
    fn distinct_values_stay_distinct() {
        let mut i: Interner<&'static str> = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 2);
    }
}
