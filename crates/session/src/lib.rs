//! `rml-session` — shared compiler-session services.
//!
//! The crates of the pipeline (lexer → parser → HM typing → region
//! inference → checking → benchmarks) all speak three common languages
//! defined here:
//!
//! * **spans** ([`Span`], [`SourceMap`]) — byte ranges into the source,
//!   carried by tokens and AST nodes and propagated into typed and
//!   region-annotated programs via provenance side-tables;
//! * **diagnostics** ([`Diagnostic`], [`Severity`], [`Label`]) — every
//!   error path produces a structured diagnostic with a stable code and a
//!   primary span, rendered with a caret underline by
//!   [`Diagnostic::render`];
//! * **interners** ([`Interner`]) — hash-consed shared values, used by the
//!   region-inference store for latent/closure sets.
//!
//! A [`Session`] bundles a program's source map with the diagnostic sink
//! and is constructed once per compilation by the root facade.
//!
//! Two further cross-cutting services live here because every layer needs
//! them: the [`json`] serializer (the one authority for JSON emission —
//! benchmarks, traces, metrics) and the [`trace`] facade (spans, instant
//! events, counters; zero-cost when no sink is installed).

mod diag;
mod intern;
pub mod json;
mod span;
pub mod trace;

pub use diag::{Diagnostic, Label, Severity};
pub use intern::Interner;
pub use json::Json;
pub use span::{SourceMap, Span};

/// One compilation's shared state: the source (with its line table), the
/// buffer's display name, and any diagnostics accumulated along the way.
#[derive(Debug)]
pub struct Session {
    /// The source buffer and line table.
    pub source_map: SourceMap,
    /// Display name for rendered diagnostics (`file.rml`, `<expr>`, …).
    pub name: String,
    /// Diagnostics emitted so far.
    pub diagnostics: Vec<Diagnostic>,
}

impl Session {
    /// Creates a session for one source buffer.
    pub fn new(name: impl Into<String>, src: &str) -> Session {
        Session {
            source_map: SourceMap::new(src),
            name: name.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a diagnostic.
    pub fn emit(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Renders one diagnostic against this session's source.
    pub fn render(&self, d: &Diagnostic) -> String {
        d.render(&self.source_map, &self.name)
    }

    /// Renders every recorded diagnostic.
    pub fn render_all(&self) -> String {
        self.diagnostics.iter().map(|d| self.render(d)).collect()
    }

    /// `true` if any recorded diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_accumulates_and_renders() {
        let mut s = Session::new("<t>", "fun main () = x\n");
        assert!(!s.has_errors());
        s.emit(Diagnostic::error("E0002", "unbound variable `x`").with_primary(Span::new(14, 15)));
        assert!(s.has_errors());
        let r = s.render_all();
        assert!(r.contains("unbound variable `x`"), "{r}");
        assert!(r.contains("--> <t>:1:15"), "{r}");
    }
}
