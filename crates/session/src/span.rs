//! Byte-range source spans and the line/column table used to render them.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
///
/// Spans are deliberately tiny (two `u32`s, `Copy`) so every token and AST
/// node can carry one. The [`Span::DUMMY`] span marks synthesised nodes
/// (desugared forms, test helpers) that have no source of their own.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl Span {
    /// The span of synthesised nodes: `0..0`.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Builds a span, clamping `end >= start`.
    pub fn new(start: u32, end: u32) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// `true` for the dummy span of synthesised nodes.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// The smallest span covering both `self` and `other`. Dummy spans are
    /// the identity of `merge`, so desugared nodes inherit real positions
    /// from whichever side has them.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            other
        } else if other.is_dummy() {
            self
        } else {
            Span::new(self.start.min(other.start), self.end.max(other.end))
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// `true` when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A source buffer with a precomputed line table, mapping byte offsets to
/// 1-based line/column pairs and back to line text for rendering.
#[derive(Debug, Clone)]
pub struct SourceMap {
    src: String,
    /// Byte offset of the start of each line (line 1 starts at 0).
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds the line table for `src`.
    pub fn new(src: &str) -> SourceMap {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            src: src.to_string(),
            line_starts,
        }
    }

    /// The underlying source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Maps a byte offset to a 1-based `(line, column)` pair. Offsets past
    /// the end of the buffer land on the last position.
    pub fn line_col(&self, byte: u32) -> (u32, u32) {
        let byte = byte.min(self.src.len() as u32);
        let line = match self.line_starts.binary_search(&byte) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, byte - self.line_starts[line] + 1)
    }

    /// The text of a 1-based line, without its trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let i = (line as usize).saturating_sub(1);
        if i >= self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[i] as usize;
        let end = self
            .line_starts
            .get(i + 1)
            .map(|e| *e as usize)
            .unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches(['\n', '\r'])
    }

    /// The number of lines.
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both_and_ignores_dummy() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(Span::DUMMY.merge(b), b);
        assert_eq!(a.merge(Span::DUMMY), a);
    }

    #[test]
    fn line_col_is_one_based() {
        let sm = SourceMap::new("ab\ncd\n");
        assert_eq!(sm.line_col(0), (1, 1));
        assert_eq!(sm.line_col(1), (1, 2));
        assert_eq!(sm.line_col(3), (2, 1));
        assert_eq!(sm.line_col(4), (2, 2));
        assert_eq!(sm.line_count(), 3);
    }

    #[test]
    fn line_text_strips_newline() {
        let sm = SourceMap::new("first\nsecond");
        assert_eq!(sm.line_text(1), "first");
        assert_eq!(sm.line_text(2), "second");
        assert_eq!(sm.line_text(9), "");
    }
}
