//! The region-preserving Cheney copying collector.
//!
//! Collection evacuates the live objects of every live *infinite* region
//! into fresh pages of the **same region** (region identity is
//! observable: `letregion` must still deallocate wholesale), updates all
//! roots and interior pointers, and releases the old pages. Objects in
//! *finite* regions are never moved but are scanned in place so their
//! fields get updated.
//!
//! If the trace reaches a pointer whose page has been released — a value
//! in a deallocated region, reachable from a live object — collection
//! stops with [`GcError::DanglingPointer`]. This is precisely the
//! situation the paper's type system rules out, and precisely what the
//! benchmark strategy `rg-` provokes on the program of Figure 1.
//!
//! A generational mode collects only pages allocated since the last
//! collection ("young" pages), using the write-barrier-maintained
//! remembered set for old-to-young pointers.

use crate::heap::{Heap, RegionKind};
use crate::stats::GcPause;
use crate::word::{Header, ObjKind, Word, WORD_BYTES};
use rml_session::trace;
use std::collections::HashMap;
use std::time::Instant;

/// A collection error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcError {
    /// The collector traced a pointer into a deallocated region.
    DanglingPointer {
        /// Where the pointer was found.
        context: &'static str,
    },
    /// A header word failed to decode (heap corruption; indicates a
    /// runtime bug). Carries the failing word and where it was found so
    /// the diagnostic names the object instead of a bare "corruption".
    Corrupt {
        /// The undecodable header word.
        word: u64,
        /// Page the word was read from.
        page: u32,
        /// Word offset within the page.
        offset: u32,
        /// The region owning that page.
        region: u32,
    },
}

impl std::fmt::Display for GcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcError::DanglingPointer { context } => {
                write!(f, "garbage collector traced a dangling pointer ({context})")
            }
            GcError::Corrupt {
                word,
                page,
                offset,
                region,
            } => write!(
                f,
                "heap corruption during collection: undecodable header \
                 {word:#018x} at page {page} offset {offset} (region r{region})"
            ),
        }
    }
}

impl std::error::Error for GcError {}

impl Heap {
    /// Performs a tracing collection. `roots` are updated in place; pass
    /// `minor = true` for a generational (young-pages-only) collection.
    ///
    /// # Errors
    ///
    /// Returns [`GcError::DanglingPointer`] if a live object points into a
    /// deallocated region. The heap is left in a valid (if partially
    /// evacuated) state; callers should treat this as fatal for the
    /// program under execution, as a real collector would crash.
    pub fn collect(&mut self, roots: &mut [Word], minor: bool) -> Result<(), GcError> {
        let _span = trace::span(if minor { "gc.minor" } else { "gc.major" }, "runtime");
        let pause_start = Instant::now();
        let copied_before = self.stats.bytes_copied;
        // 1. Decide which pages get evacuated.
        let evacuate: Vec<bool> = self
            .pages
            .iter()
            .map(|p| {
                p.live
                    && self.regions[p.region.0 as usize].kind == RegionKind::Infinite
                    && self.regions[p.region.0 as usize].live
                    && (!minor || p.young)
            })
            .collect();
        // Old pages of every collected region are detached so copies go to
        // fresh pages; pages that are not evacuated stay put.
        let mut old_pages: Vec<u32> = Vec::new();
        for r in self.live_regions().to_vec() {
            let region = &mut self.regions[r.0 as usize];
            if region.kind != RegionKind::Infinite {
                continue;
            }
            let (keep, evac): (Vec<u32>, Vec<u32>) =
                region.pages.drain(..).partition(|p| !evacuate[*p as usize]);
            region.pages = keep;
            old_pages.extend(evac);
        }
        // 2. Forward the roots, then the remembered set (minor only),
        //    then scan. Untagged (header-less) objects cannot hold an
        //    in-place forwarding marker, so they forward through a side
        //    table.
        let mut queue: Vec<Word> = Vec::new();
        let mut fwd: HashMap<u64, Word> = HashMap::new();
        for w in roots.iter_mut() {
            *w = self.forward(*w, &evacuate, &mut queue, &mut fwd, "root")?;
        }
        let remembered = std::mem::take(&mut self.remembered);
        if minor {
            for obj in remembered {
                // The object itself is old (not moved); fix its fields.
                if self.check_ptr(obj, "remembered").is_ok() {
                    self.scan_object(obj, &evacuate, &mut queue, &mut fwd)?;
                }
            }
        }
        // Scan unmoved regions' pages in place: finite regions always; in
        // a minor collection also the old pages of infinite regions are
        // covered by the remembered set, so only finite-region young pages
        // need a sweep here. For a major collection, scan all finite
        // pages.
        let in_place: Vec<u32> = self
            .pages
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                p.live
                    && !evacuate.get(*i).copied().unwrap_or(false)
                    && self.regions[p.region.0 as usize].live
                    && self.regions[p.region.0 as usize].kind == RegionKind::Finite
                    && (!minor || p.young)
            })
            .map(|(i, _)| i as u32)
            .collect();
        for p in in_place {
            self.scan_page(p, &evacuate, &mut queue, &mut fwd)?;
        }
        while let Some(obj) = queue.pop() {
            self.scan_object(obj, &evacuate, &mut queue, &mut fwd)?;
        }
        // 3. Release the evacuated pages and reset generation marks.
        for p in old_pages {
            self.release_page(p);
        }
        for p in &mut self.pages {
            p.young = false;
            if p.live {
                p.sealed = true; // never mix generations within a page
            }
        }
        self.stats.gc_count += 1;
        if minor {
            self.stats.minor_gc_count += 1;
        }
        self.bytes_since_gc = 0;
        self.live_after_gc = self
            .pages
            .iter()
            .filter(|p| p.live)
            .map(|p| p.used as u64 * WORD_BYTES)
            .sum();
        let pause = GcPause {
            duration: pause_start.elapsed(),
            bytes_copied: self.stats.bytes_copied - copied_before,
            live_bytes: self.live_after_gc,
            minor,
        };
        self.pauses.push(pause);
        if trace::enabled() {
            trace::counter("heap.live_bytes", self.live_after_gc as f64);
            trace::instant(
                "gc.pause",
                "runtime",
                &[
                    ("us", pause.duration.as_micros() as f64),
                    ("copied_bytes", pause.bytes_copied as f64),
                ],
            );
        }
        Ok(())
    }

    /// Forwards one word: immediates pass through; pointers into
    /// non-evacuated pages pass through; pointers into evacuated pages are
    /// copied (once) to fresh pages of their region.
    fn forward(
        &mut self,
        w: Word,
        evacuate: &[bool],
        queue: &mut Vec<Word>,
        fwd: &mut HashMap<u64, Word>,
        context: &'static str,
    ) -> Result<Word, GcError> {
        if !w.is_pointer() {
            return Ok(w);
        }
        let (page, off, epoch) = w.ptr_parts();
        let p = self
            .pages
            .get(page as usize)
            .ok_or(GcError::DanglingPointer { context })?;
        if !p.live || p.epoch != epoch {
            return Err(GcError::DanglingPointer { context });
        }
        // Pages created during this collection (to-space) are never
        // evacuated again.
        if !evacuate.get(page as usize).copied().unwrap_or(false) {
            // Not moving; if its region is dead, that's dangling too.
            if !self.regions[p.region.0 as usize].live {
                return Err(GcError::DanglingPointer { context });
            }
            return Ok(w);
        }
        let region = p.region;
        if let Some(u) = self.uniform_of_page(page) {
            // Untagged object: side-table forwarding.
            if let Some(new) = fwd.get(&w.0) {
                return Ok(*new);
            }
            let words = u.words();
            let payload: Vec<u64> =
                self.pages[page as usize].words[off as usize..off as usize + words].to_vec();
            let header = Header {
                kind: u.obj_kind(),
                len: words as u32,
                raw: 0,
            };
            let new = self.copy_object(region, header, &payload);
            self.stats.bytes_copied += words as u64 * WORD_BYTES;
            fwd.insert(w.0, new);
            queue.push(new);
            return Ok(new);
        }
        let header_word = p.words[off as usize];
        let header = Header::decode(header_word).ok_or(GcError::Corrupt {
            word: header_word,
            page,
            offset: off,
            region: region.0,
        })?;
        if header.kind == ObjKind::Forward {
            return Ok(Word(p.words[off as usize + 1]));
        }
        // Copy to a fresh page of the same region.
        let payload: Vec<u64> =
            p.words[off as usize + 1..off as usize + 1 + header.payload_words() as usize].to_vec();
        let new = self.copy_object(region, header, &payload);
        self.stats.bytes_copied += (payload.len() as u64 + 1) * WORD_BYTES;
        // Leave a forwarding marker.
        let p = &mut self.pages[page as usize];
        p.words[off as usize] = Header {
            kind: ObjKind::Forward,
            len: header.len,
            raw: header.raw,
        }
        .encode();
        p.words[off as usize + 1] = new.0;
        queue.push(new);
        Ok(new)
    }

    /// Raw copy used by the collector (does not count as program
    /// allocation).
    fn copy_object(
        &mut self,
        region: crate::heap::RegionId,
        header: Header,
        payload: &[u64],
    ) -> Word {
        let before_alloc = self.stats.bytes_allocated;
        let before_objs = self.stats.objects_allocated;
        let before_since = self.bytes_since_gc;
        let before_bytes = self.regions[region.0 as usize].bytes;
        let before_robjs = self.regions[region.0 as usize].objects;
        let w = self.alloc_with_header(region, header, payload);
        self.stats.bytes_allocated = before_alloc;
        self.stats.objects_allocated = before_objs;
        self.bytes_since_gc = before_since;
        self.regions[region.0 as usize].bytes = before_bytes;
        self.regions[region.0 as usize].objects = before_robjs;
        w
    }

    /// Scans the traceable fields of one (already copied or in-place)
    /// object.
    fn scan_object(
        &mut self,
        obj: Word,
        evacuate: &[bool],
        queue: &mut Vec<Word>,
        fwd_table: &mut HashMap<u64, Word>,
    ) -> Result<(), GcError> {
        let (page, off) = self
            .check_ptr(obj, "scan")
            .map_err(|_| GcError::DanglingPointer { context: "scan" })?;
        let (start, end, skip) = match self.uniform_of_page(page) {
            Some(u) => (0, u.words(), 0),
            None => {
                let word = self.pages[page as usize].words[off as usize];
                let header = Header::decode(word).ok_or(GcError::Corrupt {
                    word,
                    page,
                    offset: off,
                    region: self.pages[page as usize].region.0,
                })?;
                if header.kind == ObjKind::Str {
                    return Ok(());
                }
                (header.raw as usize, header.len as usize, 1)
            }
        };
        for i in start..end {
            let field = Word(self.pages[page as usize].words[off as usize + skip + i]);
            let fwd = self.forward(field, evacuate, queue, fwd_table, "object field")?;
            self.pages[page as usize].words[off as usize + skip + i] = fwd.0;
        }
        Ok(())
    }

    /// Scans every object of a page in place.
    fn scan_page(
        &mut self,
        page: u32,
        evacuate: &[bool],
        queue: &mut Vec<Word>,
        fwd_table: &mut HashMap<u64, Word>,
    ) -> Result<(), GcError> {
        let uniform = self.uniform_of_page(page);
        let mut off = 0usize;
        loop {
            let (used, epoch) = {
                let p = &self.pages[page as usize];
                (p.used, p.epoch)
            };
            if off >= used {
                return Ok(());
            }
            let w = Word::pointer(page, off as u32, epoch);
            let size = match uniform {
                Some(u) => u.words(),
                None => {
                    let word = self.pages[page as usize].words[off];
                    let header = Header::decode(word).ok_or(GcError::Corrupt {
                        word,
                        page,
                        offset: off as u32,
                        region: self.pages[page as usize].region.0,
                    })?;
                    1 + header.payload_words() as usize
                }
            };
            self.scan_object(w, evacuate, queue, fwd_table)?;
            off += size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Heap, RegionKind};

    fn pair(h: &mut Heap, r: crate::heap::RegionId, a: Word, b: Word) -> Word {
        h.alloc(r, ObjKind::Pair, 0, &[a.0, b.0])
    }

    #[test]
    fn reachable_objects_survive() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let inner = pair(&mut h, r, Word::int(1), Word::int(2));
        let outer = pair(&mut h, r, inner, Word::int(3));
        let mut roots = [outer];
        h.collect(&mut roots, false).unwrap();
        let outer2 = roots[0];
        assert_ne!(outer2, outer, "object should have moved");
        let inner2 = h.field(outer2, 0, "t").unwrap();
        assert_eq!(h.field(inner2, 0, "t").unwrap(), Word::int(1));
        assert_eq!(h.field(outer2, 1, "t").unwrap(), Word::int(3));
        assert_eq!(h.region_of(outer2, "t").unwrap(), r, "region identity");
    }

    #[test]
    fn garbage_is_reclaimed() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let keep = pair(&mut h, r, Word::int(1), Word::int(2));
        for i in 0..10_000 {
            pair(&mut h, r, Word::int(i), Word::int(i));
        }
        let before = h.live_words();
        let mut roots = [keep];
        h.collect(&mut roots, false).unwrap();
        let after = h.live_words();
        assert!(after < before / 4, "before={before} after={after}");
        assert_eq!(h.field(roots[0], 0, "t").unwrap(), Word::int(1));
        assert_eq!(h.stats.gc_count, 1);
    }

    #[test]
    fn empty_string_forwards_without_clobbering_neighbor() {
        // Regression: a zero-byte string must still occupy two words
        // (header + pad), or the in-place forwarding marker written when
        // it is evacuated spills its pointer word over the next object's
        // header. Found by the differential torture oracle (`strings`
        // program, baseline × stress-every-step).
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let empty = h.alloc_str(r, "");
        let neighbor = pair(&mut h, r, Word::int(41), Word::int(42));
        let mut roots = [empty, neighbor];
        h.collect(&mut roots, false).unwrap();
        h.verify(&roots).unwrap();
        assert_eq!(h.read_str(roots[0], "t").unwrap(), "");
        assert_eq!(h.field(roots[1], 0, "t").unwrap(), Word::int(41));
        assert_eq!(h.field(roots[1], 1, "t").unwrap(), Word::int(42));
    }

    #[test]
    fn shared_objects_copied_once() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let shared = pair(&mut h, r, Word::int(7), Word::int(8));
        let a = pair(&mut h, r, shared, shared);
        let mut roots = [a];
        h.collect(&mut roots, false).unwrap();
        let f0 = h.field(roots[0], 0, "t").unwrap();
        let f1 = h.field(roots[0], 1, "t").unwrap();
        assert_eq!(f0, f1, "sharing must be preserved");
    }

    #[test]
    fn cycles_are_handled() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let cell = h.alloc(r, ObjKind::Ref, 0, &[Word::UNIT.0]);
        let p = pair(&mut h, r, cell, Word::int(0));
        h.set_field(cell, 0, p, "t").unwrap();
        let mut roots = [p];
        h.collect(&mut roots, false).unwrap();
        let cell2 = h.field(roots[0], 0, "t").unwrap();
        let back = h.field(cell2, 0, "t").unwrap();
        assert_eq!(back, roots[0], "cycle must close");
    }

    #[test]
    fn dangling_pointer_is_detected() {
        // A live object captures a pointer into a region that is then
        // deallocated: the collector must stop (the paper's scenario).
        let mut h = Heap::new();
        let live = h.create_region(RegionKind::Infinite);
        let dead = h.create_region(RegionKind::Infinite);
        let s = h.alloc_str(dead, "ohno");
        let closure_like = pair(&mut h, live, s, Word::int(0));
        h.drop_region(dead);
        let mut roots = [closure_like];
        let err = h.collect(&mut roots, false).unwrap_err();
        assert!(matches!(err, GcError::DanglingPointer { .. }));
    }

    #[test]
    fn region_identity_preserved_across_regions() {
        let mut h = Heap::new();
        let r1 = h.create_region(RegionKind::Infinite);
        let r2 = h.create_region(RegionKind::Infinite);
        let a = pair(&mut h, r1, Word::int(1), Word::int(1));
        let b = pair(&mut h, r2, a, Word::int(2));
        let mut roots = [b];
        h.collect(&mut roots, false).unwrap();
        assert_eq!(h.region_of(roots[0], "t").unwrap(), r2);
        let a2 = h.field(roots[0], 0, "t").unwrap();
        assert_eq!(h.region_of(a2, "t").unwrap(), r1);
    }

    #[test]
    fn finite_regions_are_scanned_not_moved() {
        let mut h = Heap::new();
        let fin = h.create_region(RegionKind::Finite);
        let inf = h.create_region(RegionKind::Infinite);
        let target = pair(&mut h, inf, Word::int(5), Word::int(6));
        let holder = pair(&mut h, fin, target, Word::int(0));
        // No explicit root for `holder` (finite regions are roots).
        let mut roots: [Word; 0] = [];
        h.collect(&mut roots, false).unwrap();
        // holder didn't move...
        let t2 = h.field(holder, 0, "t").unwrap();
        // ...but its field was forwarded to the moved target.
        assert_eq!(h.field(t2, 0, "t").unwrap(), Word::int(5));
        assert_eq!(h.region_of(holder, "t").unwrap(), fin);
    }

    #[test]
    fn strings_survive_collection() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let s = h.alloc_str(r, "garbage collection");
        let mut roots = [s];
        h.collect(&mut roots, false).unwrap();
        assert_eq!(h.read_str(roots[0], "t").unwrap(), "garbage collection");
    }

    #[test]
    fn minor_collection_uses_remembered_set() {
        let mut h = Heap::new();
        h.generational = true;
        let r = h.create_region(RegionKind::Infinite);
        let old_cell = h.alloc(r, ObjKind::Ref, 0, &[Word::UNIT.0]);
        let mut roots = [old_cell];
        h.collect(&mut roots, false).unwrap(); // old_cell is now old
        let old_cell = roots[0];
        // Mutate the old cell to point at a young object.
        let young = pair(&mut h, r, Word::int(42), Word::int(43));
        h.set_field(old_cell, 0, young, "t").unwrap();
        assert!(!h.remembered.is_empty(), "write barrier must record");
        // Minor collection with no explicit root for `young`.
        let mut roots = [old_cell];
        h.collect(&mut roots, true).unwrap();
        let young2 = h.field(roots[0], 0, "t").unwrap();
        assert_eq!(h.field(young2, 0, "t").unwrap(), Word::int(42));
        assert_eq!(h.stats.minor_gc_count, 1);
    }

    #[test]
    fn minor_collection_keeps_old_pages() {
        let mut h = Heap::new();
        h.generational = true;
        let r = h.create_region(RegionKind::Infinite);
        let old = pair(&mut h, r, Word::int(1), Word::int(2));
        let mut roots = [old];
        h.collect(&mut roots, false).unwrap();
        let old = roots[0];
        // Young garbage.
        for i in 0..1000 {
            pair(&mut h, r, Word::int(i), Word::int(i));
        }
        let mut roots = [old];
        h.collect(&mut roots, true).unwrap();
        // Old object did not move in the minor collection.
        assert_eq!(roots[0], old);
        assert_eq!(h.field(old, 0, "t").unwrap(), Word::int(1));
    }

    #[test]
    fn collection_resets_trigger() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        for _ in 0..200 {
            pair(&mut h, r, Word::int(0), Word::int(0));
        }
        assert!(h.should_collect(1024, 2.0));
        let mut roots: [Word; 0] = [];
        h.collect(&mut roots, false).unwrap();
        assert!(!h.should_collect(1024, 2.0));
    }
}

#[cfg(test)]
mod untagged_tests {
    use super::*;
    use crate::heap::{Heap, RegionKind, UniformKind};

    #[test]
    fn untagged_pairs_save_the_header_word() {
        let mut tagged = Heap::new();
        let rt = tagged.create_region(RegionKind::Infinite);
        tagged.alloc(rt, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        let mut untagged = Heap::new();
        let ru = untagged.create_region_uniform(RegionKind::Infinite, Some(UniformKind::Pair));
        untagged.alloc(ru, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        assert_eq!(tagged.stats.bytes_allocated, 24);
        assert_eq!(untagged.stats.bytes_allocated, 16, "no header word");
    }

    #[test]
    fn untagged_fields_read_back() {
        let mut h = Heap::new();
        let r = h.create_region_uniform(RegionKind::Infinite, Some(UniformKind::Pair));
        let w = h.alloc(r, ObjKind::Pair, 0, &[Word::int(7).0, Word::int(8).0]);
        assert_eq!(h.field(w, 0, "t").unwrap(), Word::int(7));
        assert_eq!(h.field(w, 1, "t").unwrap(), Word::int(8));
        assert_eq!(h.header(w, "t").unwrap().kind, ObjKind::Pair);
    }

    #[test]
    fn untagged_objects_survive_collection_with_sharing() {
        let mut h = Heap::new();
        let tagged = h.create_region(RegionKind::Infinite);
        let u = h.create_region_uniform(RegionKind::Infinite, Some(UniformKind::Pair));
        let shared = h.alloc(u, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        let holder = h.alloc(tagged, ObjKind::Pair, 0, &[shared.0, shared.0]);
        let mut roots = [holder];
        h.collect(&mut roots, false).unwrap();
        let a = h.field(roots[0], 0, "t").unwrap();
        let b = h.field(roots[0], 1, "t").unwrap();
        assert_eq!(a, b, "side-table forwarding must preserve sharing");
        assert_eq!(h.field(a, 0, "t").unwrap(), Word::int(1));
        assert_eq!(h.region_of(a, "t").unwrap(), u, "region identity");
    }

    #[test]
    fn untagged_refs_update_through_collection() {
        let mut h = Heap::new();
        let u = h.create_region_uniform(RegionKind::Infinite, Some(UniformKind::Ref));
        let p = h.create_region(RegionKind::Infinite);
        let target = h.alloc(p, ObjKind::Pair, 0, &[Word::int(9).0, Word::int(9).0]);
        let cell = h.alloc(u, ObjKind::Ref, 0, &[target.0]);
        let mut roots = [cell];
        h.collect(&mut roots, false).unwrap();
        let t2 = h.field(roots[0], 0, "t").unwrap();
        assert_eq!(h.field(t2, 0, "t").unwrap(), Word::int(9));
    }

    #[test]
    fn untagged_garbage_is_reclaimed() {
        let mut h = Heap::new();
        let u = h.create_region_uniform(RegionKind::Infinite, Some(UniformKind::Cons));
        let keep = h.alloc(u, ObjKind::Cons, 0, &[Word::int(1).0, Word::NIL.0]);
        for i in 0..10_000 {
            h.alloc(u, ObjKind::Cons, 0, &[Word::int(i).0, Word::NIL.0]);
        }
        let before = h.live_words();
        let mut roots = [keep];
        h.collect(&mut roots, false).unwrap();
        assert!(h.live_words() < before / 4);
        assert_eq!(h.field(roots[0], 0, "t").unwrap(), Word::int(1));
    }

    #[test]
    fn dangling_detection_works_for_untagged_regions() {
        let mut h = Heap::new();
        let live = h.create_region(RegionKind::Infinite);
        let dead = h.create_region_uniform(RegionKind::Infinite, Some(UniformKind::Pair));
        let victim = h.alloc(dead, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        let holder = h.alloc(live, ObjKind::Pair, 0, &[victim.0, Word::int(0).0]);
        h.drop_region(dead);
        let mut roots = [holder];
        assert!(matches!(
            h.collect(&mut roots, false),
            Err(GcError::DanglingPointer { .. })
        ));
    }
}
