//! The heap-invariant verifier: a read-only audit walk used by the
//! torture rig.
//!
//! [`Heap::verify`] checks, after every collection (and optionally after
//! every machine step under stress schedules), that
//!
//! * every live page is owned by a live region and the region's page list
//!   agrees (no orphaned or stolen pages),
//! * every object header on a tagged page decodes and the objects tile
//!   the page exactly (no overruns, no undecodable words),
//! * finite regions hold at most their multiplicity-proven bound,
//! * every pointer *reachable from the roots* lands in a live page of a
//!   live region with a matching epoch (the paper's GC-safety invariant:
//!   no reachable dangling pointers),
//! * in generational mode, every reachable old→young edge is covered by
//!   the write-barrier remembered set.
//!
//! Reachability matters: unreachable garbage may legitimately hold
//! dangling pointers even under the paper's safe strategy `rg` (the
//! collector never traces it), so pointer validity is only demanded on
//! the reachable sub-heap. Structural checks (headers, tiling, bounds)
//! hold for *all* live pages unconditionally.
//!
//! Violations come back as a structured [`HeapInvariantError`] naming the
//! object, region, and offending edge — never a panic.

use crate::heap::{Heap, RegionKind};
use crate::word::{Header, ObjKind, Word};
use std::collections::HashSet;

/// What went wrong, in detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A header word failed to decode.
    BadHeader {
        /// The undecodable word.
        word: u64,
    },
    /// A forwarding marker survived in a live page after collection
    /// finished (from-space leaked into to-space).
    StaleForwarding {
        /// The forwarding header word.
        word: u64,
    },
    /// An object extends past the page's used extent, or a uniform page's
    /// extent is not a whole number of objects.
    ObjectOverrunsPage {
        /// Words the object claims.
        need: usize,
        /// Words the page has used.
        used: usize,
    },
    /// A live page belongs to a deallocated region.
    DeadRegionPage,
    /// Page/region bookkeeping disagrees: the page says it belongs to the
    /// region but the region's page list says otherwise (or vice versa).
    PageNotInRegion,
    /// A finite region holds more objects than its multiplicity bound.
    FiniteBoundExceeded {
        /// Objects currently in the region.
        objects: u64,
        /// The proven bound.
        bound: u64,
    },
    /// A root word dangles (dead page, stale epoch, or out-of-extent
    /// offset).
    DanglingRoot {
        /// The page the root points into.
        target_page: u32,
    },
    /// A reachable object field dangles.
    DanglingField {
        /// Payload field index.
        field: usize,
        /// The page the field points into.
        target_page: u32,
    },
    /// A reachable old→young edge is missing from the remembered set: a
    /// minor collection would fail to trace it.
    UnrememberedOldYoungEdge {
        /// Payload field index.
        field: usize,
        /// The young page the field points into.
        target_page: u32,
    },
}

/// A heap-invariant violation, located: which object (page + offset),
/// which region owns it, and what was wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapInvariantError {
    /// The violated invariant.
    pub kind: InvariantKind,
    /// Page of the offending object (or region's first page for
    /// region-level violations).
    pub page: u32,
    /// Word offset of the offending object within the page.
    pub offset: u32,
    /// The region involved.
    pub region: u32,
}

impl HeapInvariantError {
    /// Is this violation a dangling pointer (as opposed to structural
    /// corruption)? Dangling reachable pointers are the paper's GC-safety
    /// failure and map to the same runtime error as a collector-detected
    /// dangle; everything else is heap corruption.
    pub fn is_dangling(&self) -> bool {
        matches!(
            self.kind,
            InvariantKind::DanglingRoot { .. } | InvariantKind::DanglingField { .. }
        )
    }
}

impl std::fmt::Display for HeapInvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let at = format!(
            "object at page {} offset {} (region r{})",
            self.page, self.offset, self.region
        );
        match self.kind {
            InvariantKind::BadHeader { word } => {
                write!(f, "undecodable header {word:#018x} for {at}")
            }
            InvariantKind::StaleForwarding { word } => {
                write!(f, "stale forwarding marker {word:#018x} reachable at {at}")
            }
            InvariantKind::ObjectOverrunsPage { need, used } => write!(
                f,
                "{at} claims {need} words but the page has only {used} used"
            ),
            InvariantKind::DeadRegionPage => {
                write!(
                    f,
                    "live page {} owned by dead region r{}",
                    self.page, self.region
                )
            }
            InvariantKind::PageNotInRegion => write!(
                f,
                "page {} and region r{} disagree on ownership",
                self.page, self.region
            ),
            InvariantKind::FiniteBoundExceeded { objects, bound } => write!(
                f,
                "finite region r{} holds {objects} objects, exceeding its \
                 multiplicity bound {bound}",
                self.region
            ),
            InvariantKind::DanglingRoot { target_page } => write!(
                f,
                "root dangles into page {target_page} (edge from the machine root set)"
            ),
            InvariantKind::DanglingField { field, target_page } => write!(
                f,
                "reachable edge dangles: field {field} of {at} points into dead \
                 or recycled page {target_page}"
            ),
            InvariantKind::UnrememberedOldYoungEdge { field, target_page } => write!(
                f,
                "old-to-young edge not in remembered set: field {field} of {at} \
                 points into young page {target_page}"
            ),
        }
    }
}

impl std::error::Error for HeapInvariantError {}

/// Counters from one verifier walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Live pages structurally checked.
    pub pages_walked: u64,
    /// Objects visited (structural walk + reachability trace).
    pub objects_checked: u64,
    /// Pointer edges validated during the reachability trace.
    pub edges_traced: u64,
}

impl Heap {
    /// Audits the whole heap. `roots` is the machine's current root set
    /// (the same words it would hand to [`Heap::collect`]); reachability
    /// checks start there plus every object in a finite region (finite
    /// regions are implicit roots, exactly as for the collector).
    ///
    /// # Errors
    ///
    /// The first violation found, as a located [`HeapInvariantError`].
    pub fn verify(&mut self, roots: &[Word]) -> Result<VerifyReport, HeapInvariantError> {
        self.stats.verify_walks += 1;
        let mut report = VerifyReport::default();

        // ---- Structural walk: every live page, reachable or not. ----
        for pi in 0..self.pages.len() {
            let page = &self.pages[pi];
            if !page.live {
                continue;
            }
            report.pages_walked += 1;
            let rid = page.region.0;
            let err = |kind| HeapInvariantError {
                kind,
                page: pi as u32,
                offset: 0,
                region: rid,
            };
            let region = match self.regions.get(rid as usize) {
                Some(r) => r,
                None => return Err(err(InvariantKind::DeadRegionPage)),
            };
            if !region.live {
                return Err(err(InvariantKind::DeadRegionPage));
            }
            if !region.pages.contains(&(pi as u32)) {
                return Err(err(InvariantKind::PageNotInRegion));
            }
            if page.used > page.words.len() {
                return Err(err(InvariantKind::ObjectOverrunsPage {
                    need: page.used,
                    used: page.words.len(),
                }));
            }
            match region.uniform {
                Some(u) => {
                    // Untagged page: the extent must tile into whole
                    // objects.
                    if !page.used.is_multiple_of(u.words()) {
                        return Err(err(InvariantKind::ObjectOverrunsPage {
                            need: u.words(),
                            used: page.used,
                        }));
                    }
                    report.objects_checked += (page.used / u.words()) as u64;
                }
                None => {
                    let mut off = 0usize;
                    while off < page.used {
                        let word = page.words[off];
                        let header = Header::decode(word).ok_or(HeapInvariantError {
                            kind: InvariantKind::BadHeader { word },
                            page: pi as u32,
                            offset: off as u32,
                            region: rid,
                        })?;
                        let need = 1 + header.payload_words() as usize;
                        if off + need > page.used {
                            return Err(HeapInvariantError {
                                kind: InvariantKind::ObjectOverrunsPage {
                                    need,
                                    used: page.used,
                                },
                                page: pi as u32,
                                offset: off as u32,
                                region: rid,
                            });
                        }
                        report.objects_checked += 1;
                        off += need;
                    }
                }
            }
        }

        // Region-side bookkeeping: page lists must point at live pages
        // that agree on the owner, and finite bounds must hold.
        for (ri, region) in self.regions.iter().enumerate() {
            if !region.live {
                continue;
            }
            for &p in &region.pages {
                let ok = self
                    .pages
                    .get(p as usize)
                    .map(|pg| pg.live && pg.region.0 == ri as u32)
                    .unwrap_or(false);
                if !ok {
                    return Err(HeapInvariantError {
                        kind: InvariantKind::PageNotInRegion,
                        page: p,
                        offset: 0,
                        region: ri as u32,
                    });
                }
            }
            if region.kind == RegionKind::Finite {
                if let Some(bound) = region.bound {
                    if region.objects > bound {
                        return Err(HeapInvariantError {
                            kind: InvariantKind::FiniteBoundExceeded {
                                objects: region.objects,
                                bound,
                            },
                            page: region.pages.first().copied().unwrap_or(0),
                            offset: 0,
                            region: ri as u32,
                        });
                    }
                }
            }
        }

        // ---- Reachability trace: roots + finite-region objects. ----
        let mut stack: Vec<Word> = Vec::new();
        for &w in roots {
            if !w.is_pointer() {
                continue;
            }
            let (page, off, _) = w.ptr_parts();
            if self.check_ptr(w, "verify").is_err() {
                return Err(HeapInvariantError {
                    kind: InvariantKind::DanglingRoot { target_page: page },
                    page,
                    offset: off,
                    region: self
                        .pages
                        .get(page as usize)
                        .map(|p| p.region.0)
                        .unwrap_or(u32::MAX),
                });
            }
            stack.push(w);
        }
        // Finite regions are implicit roots (the collector scans them in
        // place); enumerate their objects.
        for region in &self.regions {
            if !region.live || region.kind != RegionKind::Finite {
                continue;
            }
            for &p in &region.pages {
                let page = &self.pages[p as usize];
                let epoch = page.epoch;
                match region.uniform {
                    Some(u) => {
                        let mut off = 0usize;
                        while off < page.used {
                            stack.push(Word::pointer(p, off as u32, epoch));
                            off += u.words();
                        }
                    }
                    None => {
                        let mut off = 0usize;
                        while off < page.used {
                            // Headers were validated structurally above.
                            let header = match Header::decode(page.words[off]) {
                                Some(h) => h,
                                None => break,
                            };
                            stack.push(Word::pointer(p, off as u32, epoch));
                            off += 1 + header.payload_words() as usize;
                        }
                    }
                }
            }
        }

        let mut visited: HashSet<u64> = HashSet::new();
        let remembered: Option<HashSet<u64>> = if self.generational {
            Some(self.remembered.iter().map(|w| w.0).collect())
        } else {
            None
        };
        while let Some(obj) = stack.pop() {
            if !visited.insert(obj.0) {
                continue;
            }
            report.objects_checked += 1;
            let (page, off) = match self.check_ptr(obj, "verify") {
                Ok(po) => po,
                Err(_) => {
                    // Every word on the stack was validated before being
                    // pushed, so this is unreachable in practice; report
                    // it as a dangling root rather than panic.
                    let (p, o, _) = obj.ptr_parts();
                    return Err(HeapInvariantError {
                        kind: InvariantKind::DanglingRoot { target_page: p },
                        page: p,
                        offset: o,
                        region: u32::MAX,
                    });
                }
            };
            let rid = self.pages[page as usize].region.0;
            let obj_young = self.pages[page as usize].young;
            let (start, end, skip) = match self.uniform_of_page(page) {
                Some(u) => (0, u.words(), 0usize),
                None => {
                    let word = self.pages[page as usize].words[off as usize];
                    let header = Header::decode(word).ok_or(HeapInvariantError {
                        kind: InvariantKind::BadHeader { word },
                        page,
                        offset: off,
                        region: rid,
                    })?;
                    match header.kind {
                        ObjKind::Forward => {
                            return Err(HeapInvariantError {
                                kind: InvariantKind::StaleForwarding { word },
                                page,
                                offset: off,
                                region: rid,
                            });
                        }
                        ObjKind::Str => continue,
                        _ => (header.raw as usize, header.len as usize, 1usize),
                    }
                }
            };
            for i in start..end {
                let field = Word(self.pages[page as usize].words[off as usize + skip + i]);
                if !field.is_pointer() {
                    continue;
                }
                report.edges_traced += 1;
                let (tp, _, _) = field.ptr_parts();
                let target_ok = self.check_ptr(field, "verify").is_ok()
                    && self
                        .pages
                        .get(tp as usize)
                        .map(|p| self.regions[p.region.0 as usize].live)
                        .unwrap_or(false);
                if !target_ok {
                    return Err(HeapInvariantError {
                        kind: InvariantKind::DanglingField {
                            field: i,
                            target_page: tp,
                        },
                        page,
                        offset: off,
                        region: rid,
                    });
                }
                if let Some(rem) = &remembered {
                    if !obj_young && self.pages[tp as usize].young && !rem.contains(&obj.0) {
                        return Err(HeapInvariantError {
                            kind: InvariantKind::UnrememberedOldYoungEdge {
                                field: i,
                                target_page: tp,
                            },
                            page,
                            offset: off,
                            region: rid,
                        });
                    }
                }
                stack.push(field);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{Heap, RegionKind};

    fn pair(h: &mut Heap, r: crate::heap::RegionId, a: Word, b: Word) -> Word {
        h.alloc(r, ObjKind::Pair, 0, &[a.0, b.0])
    }

    #[test]
    fn clean_heap_verifies() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let inner = pair(&mut h, r, Word::int(1), Word::int(2));
        let outer = pair(&mut h, r, inner, Word::int(3));
        let report = h.verify(&[outer]).unwrap();
        assert!(report.pages_walked >= 1);
        assert!(report.objects_checked >= 2);
        assert!(report.edges_traced >= 1);
        assert_eq!(h.stats.verify_walks, 1);
    }

    #[test]
    fn verifies_after_collection() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let keep = pair(&mut h, r, Word::int(1), Word::int(2));
        for i in 0..5000 {
            pair(&mut h, r, Word::int(i), Word::int(i));
        }
        let mut roots = [keep];
        h.collect(&mut roots, false).unwrap();
        h.verify(&roots).unwrap();
    }

    #[test]
    fn unreachable_garbage_may_dangle() {
        // The GC-safety invariant only covers the reachable sub-heap:
        // garbage holding a dangling pointer must NOT trip the verifier.
        let mut h = Heap::new();
        let live = h.create_region(RegionKind::Infinite);
        let dead = h.create_region(RegionKind::Infinite);
        let victim = pair(&mut h, dead, Word::int(1), Word::int(2));
        let _garbage = pair(&mut h, live, victim, Word::int(0));
        let keep = pair(&mut h, live, Word::int(9), Word::int(9));
        h.drop_region(dead);
        h.verify(&[keep]).unwrap();
    }

    #[test]
    fn reachable_dangling_field_detected() {
        let mut h = Heap::new();
        let live = h.create_region(RegionKind::Infinite);
        let dead = h.create_region(RegionKind::Infinite);
        let victim = pair(&mut h, dead, Word::int(1), Word::int(2));
        let holder = pair(&mut h, live, victim, Word::int(0));
        h.drop_region(dead);
        let err = h.verify(&[holder]).unwrap_err();
        assert!(matches!(
            err.kind,
            InvariantKind::DanglingField { field: 0, .. }
        ));
        assert!(err.is_dangling());
        let msg = err.to_string();
        assert!(msg.contains("reachable edge dangles"), "{msg}");
    }

    #[test]
    fn dangling_root_detected() {
        let mut h = Heap::new();
        let dead = h.create_region(RegionKind::Infinite);
        let victim = pair(&mut h, dead, Word::int(1), Word::int(2));
        h.drop_region(dead);
        let err = h.verify(&[victim]).unwrap_err();
        assert!(matches!(err.kind, InvariantKind::DanglingRoot { .. }));
        assert!(err.is_dangling());
    }

    #[test]
    fn corrupt_header_detected() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let w = pair(&mut h, r, Word::int(1), Word::int(2));
        let (page, off, _) = w.ptr_parts();
        h.pages[page as usize].words[off as usize] = 0xFF; // kind 255: undecodable
        let err = h.verify(&[w]).unwrap_err();
        assert!(matches!(err.kind, InvariantKind::BadHeader { word: 0xFF }));
        assert!(!err.is_dangling());
        assert_eq!(err.page, page);
        assert_eq!(err.offset, off);
    }

    #[test]
    fn finite_bound_violation_detected() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Finite);
        h.set_region_bound(r, 1);
        h.alloc(r, ObjKind::Ref, 0, &[Word::int(1).0]);
        h.verify(&[]).unwrap();
        h.alloc(r, ObjKind::Ref, 0, &[Word::int(2).0]);
        let err = h.verify(&[]).unwrap_err();
        assert!(matches!(
            err.kind,
            InvariantKind::FiniteBoundExceeded {
                objects: 2,
                bound: 1
            }
        ));
    }

    #[test]
    fn unremembered_old_young_edge_detected() {
        let mut h = Heap::new();
        h.generational = true;
        let r = h.create_region(RegionKind::Infinite);
        let cell = h.alloc(r, ObjKind::Ref, 0, &[Word::UNIT.0]);
        let mut roots = [cell];
        h.collect(&mut roots, false).unwrap(); // cell is now old
        let cell = roots[0];
        let young = pair(&mut h, r, Word::int(1), Word::int(2));
        // Bypass the write barrier: poke the field directly.
        let (page, off, _) = cell.ptr_parts();
        h.pages[page as usize].words[off as usize + 1] = young.0;
        let err = h.verify(&[cell]).unwrap_err();
        assert!(matches!(
            err.kind,
            InvariantKind::UnrememberedOldYoungEdge { field: 0, .. }
        ));
        // Through the barrier the same heap verifies.
        h.set_field(cell, 0, young, "t").unwrap();
        h.verify(&[cell]).unwrap();
    }

    #[test]
    fn finite_regions_are_implicit_roots() {
        // A dangling pointer held by a finite-region object is reachable
        // (the collector scans finite regions), so the verifier must see
        // it even with an empty explicit root set.
        let mut h = Heap::new();
        let fin = h.create_region(RegionKind::Finite);
        let dead = h.create_region(RegionKind::Infinite);
        let victim = pair(&mut h, dead, Word::int(1), Word::int(2));
        let _holder = pair(&mut h, fin, victim, Word::int(0));
        h.drop_region(dead);
        let err = h.verify(&[]).unwrap_err();
        assert!(matches!(err.kind, InvariantKind::DanglingField { .. }));
    }

    #[test]
    fn untagged_regions_verify() {
        let mut h = Heap::new();
        let u = h.create_region_uniform(RegionKind::Infinite, Some(crate::heap::UniformKind::Pair));
        let t = h.create_region(RegionKind::Infinite);
        let inner = h.alloc(u, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        let outer = pair(&mut h, t, inner, Word::int(3));
        h.verify(&[outer]).unwrap();
        let mut roots = [outer];
        h.collect(&mut roots, false).unwrap();
        h.verify(&roots).unwrap();
    }
}
