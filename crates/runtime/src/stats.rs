//! Allocation and collection statistics — the raw material for the
//! paper's `rss` and `gc #` columns.

use crate::word::WORD_BYTES;
use std::time::Duration;

/// Heap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Total objects ever allocated.
    pub objects_allocated: u64,
    /// Words currently held by live pages.
    pub live_words: u64,
    /// Peak of `live_words` — the simulated max-RSS.
    pub peak_live_words: u64,
    /// Number of tracing collections performed.
    pub gc_count: u64,
    /// Of which minor (generational) collections.
    pub minor_gc_count: u64,
    /// Bytes copied by the collector.
    pub bytes_copied: u64,
    /// Regions ever created.
    pub regions_created: u64,
    /// Peak number of simultaneously live regions.
    pub peak_regions: u64,
    /// Collections forced outside the normal heuristic (stress schedules,
    /// `forcegc`).
    pub forced_gcs: u64,
    /// Heap-invariant verifier walks performed.
    pub verify_walks: u64,
    /// Injected faults (allocation budget, continuation-depth limit) the
    /// run hit and unwound from.
    pub faults_injected: u64,
    /// Pages handed out by the page allocator (fresh or recycled).
    pub pages_allocated: u64,
    /// Pages returned to the free list (region exit, post-GC reclaim).
    pub pages_released: u64,
}

impl HeapStats {
    /// Peak RSS in bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_live_words * WORD_BYTES
    }
}

/// One collection's pause record, appended by `Heap::collect` — the raw
/// series behind the metrics snapshot's pause histogram (p50/p99/max).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPause {
    /// Wall-clock duration of the stop-the-world pause.
    pub duration: Duration,
    /// Bytes the collector copied during this pause.
    pub bytes_copied: u64,
    /// Live bytes surviving the collection.
    pub live_bytes: u64,
    /// Was this a minor (generational) collection?
    pub minor: bool,
}
