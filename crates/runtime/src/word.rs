//! Machine words, immediates, pointers, and object headers.
//!
//! A [`Word`] is a 64-bit value with a 3-bit tag:
//!
//! ```text
//! bits 2..0 = 0b001  → immediate integer (signed, bits 63..3)
//! bits 2..0 = 0b011  → special constant (unit/false/true/nil, bits 63..3)
//! bits 2..0 = 0b000  → heap pointer:
//!                       bits 22..3  = word offset within page (20 bits)
//!                       bits 46..23 = page index            (24 bits)
//!                       bits 62..47 = page epoch            (16 bits)
//! ```
//!
//! Unboxed values are *tagged* (the paper's partly tag-free scheme keeps
//! integers and booleans distinguishable from pointers at run time);
//! boxed objects carry a one-word header unless their region is
//! homogeneous and untagged (the BIBOP-style ablation, see `Heap`).

use std::fmt;

/// Size of a machine word in bytes — the one authority for every
/// words→bytes conversion (heap accounting, [`crate::HeapStats`], the
/// metrics snapshot). Everything in this runtime is word-addressed;
/// byte figures exist only for reporting.
pub const WORD_BYTES: u64 = 8;

/// A runtime word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word(pub u64);

const TAG_MASK: u64 = 0b111;
const TAG_INT: u64 = 0b001;
const TAG_SPECIAL: u64 = 0b011;

impl Word {
    /// An immediate integer.
    pub fn int(n: i64) -> Word {
        Word(((n as u64) << 3) | TAG_INT)
    }

    /// `()`
    pub const UNIT: Word = Word(TAG_SPECIAL);
    /// `false`
    pub const FALSE: Word = Word((1 << 3) | TAG_SPECIAL);
    /// `true`
    pub const TRUE: Word = Word((2 << 3) | TAG_SPECIAL);
    /// `nil`
    pub const NIL: Word = Word((3 << 3) | TAG_SPECIAL);

    /// A boolean.
    pub fn bool(b: bool) -> Word {
        if b {
            Word::TRUE
        } else {
            Word::FALSE
        }
    }

    /// Builds a pointer word.
    pub fn pointer(page: u32, offset: u32, epoch: u16) -> Word {
        debug_assert!(offset < (1 << 20));
        debug_assert!(page < (1 << 24));
        Word(((epoch as u64) << 47) | ((page as u64) << 23) | ((offset as u64) << 3))
    }

    /// Is this a heap pointer?
    pub fn is_pointer(self) -> bool {
        self.0 & TAG_MASK == 0
    }

    /// Is this an immediate integer?
    pub fn is_int(self) -> bool {
        self.0 & TAG_MASK == TAG_INT
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the word is not an integer.
    pub fn as_int(self) -> i64 {
        assert!(self.is_int(), "word is not an integer: {self:?}");
        (self.0 as i64) >> 3
    }

    /// The boolean payload, if the word is `true`/`false`.
    pub fn as_bool(self) -> Option<bool> {
        if self == Word::TRUE {
            Some(true)
        } else if self == Word::FALSE {
            Some(false)
        } else {
            None
        }
    }

    /// Decomposes a pointer into `(page, offset, epoch)`.
    ///
    /// # Panics
    ///
    /// Panics if the word is not a pointer.
    pub fn ptr_parts(self) -> (u32, u32, u16) {
        assert!(self.is_pointer(), "word is not a pointer: {self:?}");
        let page = ((self.0 >> 23) & 0xFF_FFFF) as u32;
        let offset = ((self.0 >> 3) & 0xF_FFFF) as u32;
        let epoch = ((self.0 >> 47) & 0xFFFF) as u16;
        (page, offset, epoch)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "{}", self.as_int())
        } else if self.is_pointer() {
            let (p, o, e) = self.ptr_parts();
            write!(f, "ptr({p}:{o}@{e})")
        } else if *self == Word::UNIT {
            write!(f, "()")
        } else if *self == Word::TRUE {
            write!(f, "true")
        } else if *self == Word::FALSE {
            write!(f, "false")
        } else if *self == Word::NIL {
            write!(f, "nil")
        } else {
            write!(f, "word({:#x})", self.0)
        }
    }
}

/// Heap object kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ObjKind {
    /// `(v1, v2)` — two traceable fields.
    Pair = 1,
    /// Closure: `[code_id][region slots…][traceable captured words…]`.
    Closure = 2,
    /// String: `[byte length is in the header len][packed bytes…]`.
    Str = 3,
    /// Cons cell — two traceable fields.
    Cons = 4,
    /// Reference cell — one traceable field.
    Ref = 5,
    /// Exception value: `[name][tag][optional traceable arg]`.
    Exn = 6,
    /// Forwarding marker left by the collector.
    Forward = 7,
}

impl ObjKind {
    /// Decodes a kind byte.
    pub fn from_u8(b: u8) -> Option<ObjKind> {
        Some(match b {
            1 => ObjKind::Pair,
            2 => ObjKind::Closure,
            3 => ObjKind::Str,
            4 => ObjKind::Cons,
            5 => ObjKind::Ref,
            6 => ObjKind::Exn,
            7 => ObjKind::Forward,
            _ => return None,
        })
    }
}

/// An object header: kind, payload length (in words, or bytes for
/// strings), and the number of leading raw (untraced) payload words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Object kind.
    pub kind: ObjKind,
    /// Payload length. For `Str` this is the *byte* length; the payload
    /// occupies `len.div_ceil(8)` words. For other kinds it is the number
    /// of payload words.
    pub len: u32,
    /// Leading payload words that the collector must not trace (code ids,
    /// region slots, exception tags).
    pub raw: u16,
}

impl Header {
    /// Encodes to a word.
    pub fn encode(self) -> u64 {
        (self.kind as u64) | ((self.len as u64) << 8) | ((self.raw as u64) << 40)
    }

    /// Decodes from a word.
    pub fn decode(w: u64) -> Option<Header> {
        let kind = ObjKind::from_u8((w & 0xFF) as u8)?;
        let len = ((w >> 8) & 0xFFFF_FFFF) as u32;
        let raw = ((w >> 40) & 0xFFFF) as u16;
        Some(Header { kind, len, raw })
    }

    /// Payload size in words. Strings pack `len` bytes, padded to at
    /// least one word: a zero-payload object would occupy a single word,
    /// too small for the two-word forwarding marker (header + pointer)
    /// the collector writes over evacuated objects — the marker would
    /// clobber the next object's header. Only `Str` can have an empty
    /// payload (every other kind has at least one field).
    pub fn payload_words(self) -> u32 {
        match self.kind {
            ObjKind::Str => self.len.div_ceil(8).max(1),
            _ => self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for n in [0i64, 1, -1, 42, -1_000_000, i64::MAX >> 3, i64::MIN >> 3] {
            assert_eq!(Word::int(n).as_int(), n);
            assert!(Word::int(n).is_int());
            assert!(!Word::int(n).is_pointer());
        }
    }

    #[test]
    fn specials_are_distinct() {
        let all = [Word::UNIT, Word::TRUE, Word::FALSE, Word::NIL];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
            assert!(!a.is_pointer());
            assert!(!a.is_int());
        }
    }

    #[test]
    fn pointer_roundtrip() {
        let w = Word::pointer(123_456, 789, 42);
        assert!(w.is_pointer());
        assert_eq!(w.ptr_parts(), (123_456, 789, 42));
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            kind: ObjKind::Closure,
            len: 17,
            raw: 3,
        };
        assert_eq!(Header::decode(h.encode()), Some(h));
    }

    #[test]
    fn string_payload_words() {
        let h = Header {
            kind: ObjKind::Str,
            len: 9,
            raw: 0,
        };
        assert_eq!(h.payload_words(), 2);
    }

    #[test]
    fn bool_helpers() {
        assert_eq!(Word::bool(true).as_bool(), Some(true));
        assert_eq!(Word::bool(false).as_bool(), Some(false));
        assert_eq!(Word::int(1).as_bool(), None);
    }
}
