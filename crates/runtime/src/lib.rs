//! The `rml` runtime system: a page-based region heap with a
//! reference-tracing copying garbage collector.
//!
//! This is the runtime substrate the paper's evaluation runs on (the
//! MLKit's region runtime, reproduced in simulation):
//!
//! * **regions** are growable lists of fixed-size pages allocated from a
//!   free list; `letregion` pushes and pops them ([`heap`]),
//! * regions are either *infinite* (heap-allocated, subject to tracing
//!   collection) or *finite* (stack-like, known size, never collected) —
//!   the distinction computed by the multiplicity analysis in `rml-repr`,
//! * the collector ([`gc`]) is a **Cheney-style copying collector that
//!   preserves region identity**: live objects of every infinite region
//!   are evacuated into fresh pages of the *same* region, exactly the
//!   region-aware collection of Hallenberg–Elsman–Tofte (PLDI 2002) that
//!   the paper builds on,
//! * every pointer carries the **epoch** of its target page, so a trace
//!   that reaches into a deallocated region is *detected* rather than
//!   silently corrupting memory — this is how the benchmarks demonstrate
//!   the paper's soundness problem: under strategy `rg-`, collection of
//!   Figure 1's program stops with [`gc::GcError::DanglingPointer`],
//! * an optional **generational mode** collects only pages younger than
//!   the last collection, using a write-barrier-maintained remembered set.
//!
//! Words, object headers, and layouts live in [`word`]; allocation
//! statistics (bytes allocated, live peaks, collection counts — the
//! paper's `rss` and `gc #` columns) in [`stats`].

// The torture rig's subject: library code here must surface failures as
// structured errors, never via panicking escape hatches. Test modules
// (compiled only under `cfg(test)`) are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gc;
pub mod heap;
pub mod rng;
pub mod stats;
pub mod verify;
pub mod word;

pub use gc::GcError;
pub use heap::{Heap, RegionId, RegionKind, UniformKind};
pub use rng::Xorshift64;
pub use stats::{GcPause, HeapStats};
pub use verify::{HeapInvariantError, InvariantKind, VerifyReport};
pub use word::{ObjKind, Word, WORD_BYTES};
