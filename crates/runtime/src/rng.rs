//! A tiny deterministic PRNG for the torture rig.
//!
//! The stress scheduler must be reproducible: the same seed must produce
//! the same collection schedule and therefore the same run outcome (the
//! determinism contract documented in DESIGN.md). No ambient randomness
//! is ever consulted — the seed is threaded explicitly through `RunOpts`.

/// A xorshift64* generator. Small, fast, and — crucially — deterministic
/// across platforms and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a seed. The seed is pre-mixed through a
    /// splitmix64 step so that small consecutive seeds (0, 1, 2, …) still
    /// produce unrelated streams; a zero seed is remapped (xorshift has a
    /// fixed point at zero).
    pub fn new(seed: u64) -> Xorshift64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Xorshift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `0..n` (`0` when `n == 0`).
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift reduction: unbiased enough for scheduling, and
        // branch-free.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A biased coin: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        if den == 0 {
            return false;
        }
        self.next_below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xorshift64::new(42);
        let mut b = Xorshift64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xorshift64::new(1);
        let mut b = Xorshift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|x| *x != 0));
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = Xorshift64::new(7);
        for n in [1u64, 2, 3, 10, 255, 1 << 40] {
            for _ in 0..100 {
                assert!(r.next_below(n) < n);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xorshift64::new(9);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 5));
            assert!(!r.chance(1, 0));
        }
    }
}
