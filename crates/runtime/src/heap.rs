//! The page-based region heap.

use crate::stats::{GcPause, HeapStats};
use crate::word::{Header, ObjKind, Word, WORD_BYTES};

/// Words per (regular) page. Large objects get oversized pages of their
/// own.
pub const PAGE_WORDS: usize = 256;

/// A region identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Whether a region is heap-like (collected) or stack-like (finite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionKind {
    /// Unbounded region: pages from the free list, subject to tracing
    /// collection.
    #[default]
    Infinite,
    /// Bounded region (the multiplicity analysis proved at most a known
    /// number of stores): never collected, deallocated wholesale.
    Finite,
}

/// A kind-homogeneous ("BIBOP", big bag of pages) region whose objects are
/// stored **without headers** — the paper's partly tag-free representation
/// of pairs, cons cells, and references (Section 6). The object layout is
/// recovered from the region descriptor instead of a per-object tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniformKind {
    /// Two traceable words.
    Pair,
    /// Two traceable words.
    Cons,
    /// One traceable word.
    Ref,
}

impl UniformKind {
    /// Payload words per object.
    pub fn words(self) -> usize {
        match self {
            UniformKind::Pair | UniformKind::Cons => 2,
            UniformKind::Ref => 1,
        }
    }

    /// The object kind this region holds.
    pub fn obj_kind(self) -> ObjKind {
        match self {
            UniformKind::Pair => ObjKind::Pair,
            UniformKind::Cons => ObjKind::Cons,
            UniformKind::Ref => ObjKind::Ref,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Page {
    pub words: Vec<u64>,
    pub used: usize,
    pub region: RegionId,
    pub epoch: u16,
    pub live: bool,
    /// Generation stamp: pages allocated after the last collection are
    /// "young" (used by the generational mode).
    pub young: bool,
    /// Sealed pages accept no further allocation (set at collection time
    /// so one page never mixes generations).
    pub sealed: bool,
}

#[derive(Debug)]
pub(crate) struct Region {
    pub pages: Vec<u32>,
    pub live: bool,
    pub kind: RegionKind,
    /// Untagged object layout, when the region is kind-homogeneous.
    pub uniform: Option<UniformKind>,
    pub bytes: u64,
    /// Objects currently allocated in the region (mutator allocations
    /// only — collector copies do not count).
    pub objects: u64,
    /// Multiplicity bound, when the analysis proved one: the region may
    /// hold at most this many objects (checked by the heap verifier).
    pub bound: Option<u64>,
}

/// The heap: a page table, a page free list, and region descriptors.
#[derive(Debug, Default)]
pub struct Heap {
    pub(crate) pages: Vec<Page>,
    free_pages: Vec<u32>,
    pub(crate) regions: Vec<Region>,
    live_regions: Vec<RegionId>,
    /// Statistics.
    pub stats: HeapStats,
    /// One record per collection, in order — the series behind the
    /// metrics snapshot's pause histogram.
    pub pauses: Vec<GcPause>,
    /// Bytes allocated since the last collection (trigger input).
    pub bytes_since_gc: u64,
    /// Live bytes surviving the last collection.
    pub live_after_gc: u64,
    /// Remembered set for the generational mode: addresses of old-page
    /// object *fields* that were mutated to point at young objects.
    pub(crate) remembered: Vec<Word>,
    /// Generational mode switch.
    pub generational: bool,
}

/// An access error: the paper's dangling pointer, observed at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DanglingAccess {
    /// What the program was doing.
    pub context: &'static str,
}

impl std::fmt::Display for DanglingAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dangling pointer dereferenced during {}", self.context)
    }
}

impl std::error::Error for DanglingAccess {}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Creates a region.
    pub fn create_region(&mut self, kind: RegionKind) -> RegionId {
        self.create_region_uniform(kind, None)
    }

    /// Creates a region, optionally kind-homogeneous and untagged.
    pub fn create_region_uniform(
        &mut self,
        kind: RegionKind,
        uniform: Option<UniformKind>,
    ) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            pages: Vec::new(),
            live: true,
            kind,
            uniform,
            bytes: 0,
            objects: 0,
            bound: None,
        });
        self.live_regions.push(id);
        self.stats.regions_created += 1;
        self.stats.peak_regions = self.stats.peak_regions.max(self.live_regions.len() as u64);
        id
    }

    /// Deallocates a region, returning its pages to the free list (with a
    /// bumped epoch, so stale pointers are detectable).
    pub fn drop_region(&mut self, r: RegionId) {
        let region = &mut self.regions[r.0 as usize];
        if !region.live {
            return;
        }
        region.live = false;
        let pages = std::mem::take(&mut region.pages);
        for p in pages {
            self.release_page(p);
        }
        self.live_regions.retain(|x| *x != r);
    }

    pub(crate) fn release_page(&mut self, p: u32) {
        let page = &mut self.pages[p as usize];
        page.live = false;
        page.epoch = page.epoch.wrapping_add(1);
        page.used = 0;
        self.stats.live_words -= page.words.len() as u64;
        page.words.clear();
        page.words.shrink_to_fit();
        self.stats.pages_released += 1;
        self.free_pages.push(p);
    }

    /// Declares a multiplicity bound for a region: the verifier will
    /// report an invariant violation if the region ever holds more
    /// objects. Used for regions the multiplicity analysis proved finite.
    pub fn set_region_bound(&mut self, r: RegionId, bound: u64) {
        self.regions[r.0 as usize].bound = Some(bound);
    }

    /// Is the region live?
    pub fn region_live(&self, r: RegionId) -> bool {
        self.regions[r.0 as usize].live
    }

    /// The live regions, in creation order.
    pub fn live_regions(&self) -> &[RegionId] {
        &self.live_regions
    }

    fn fresh_page(&mut self, region: RegionId, capacity: usize) -> u32 {
        let idx = match self.free_pages.pop() {
            Some(i) => i,
            None => {
                let i = self.pages.len() as u32;
                assert!(i < (1 << 24), "page table exhausted");
                self.pages.push(Page {
                    words: Vec::new(),
                    used: 0,
                    region,
                    epoch: 0,
                    live: false,
                    young: true,
                    sealed: false,
                });
                i
            }
        };
        let page = &mut self.pages[idx as usize];
        page.words = vec![0; capacity.max(PAGE_WORDS)];
        page.used = 0;
        page.region = region;
        page.live = true;
        page.young = true;
        page.sealed = false;
        self.stats.live_words += page.words.len() as u64;
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.stats.live_words);
        self.stats.pages_allocated += 1;
        idx
    }

    /// Allocates an object of `kind` with the given payload; `raw` leading
    /// payload words are untraced. Returns the pointer.
    ///
    /// # Panics
    ///
    /// Panics if the region has been deallocated (allocation into a dead
    /// region is a region-inference bug, not a recoverable condition).
    pub fn alloc(&mut self, r: RegionId, kind: ObjKind, raw: u16, payload: &[u64]) -> Word {
        let header = Header {
            kind,
            len: payload.len() as u32,
            raw,
        };
        self.alloc_with_header(r, header, payload)
    }

    /// Allocates a string.
    pub fn alloc_str(&mut self, r: RegionId, s: &str) -> Word {
        let bytes = s.as_bytes();
        // Pad to at least one payload word so the object can hold the
        // collector's two-word forwarding marker (`Header::payload_words`
        // applies the same floor when tiling pages).
        let words = bytes.len().div_ceil(8).max(1);
        let mut payload = vec![0u64; words];
        for (i, b) in bytes.iter().enumerate() {
            payload[i / 8] |= (*b as u64) << ((i % 8) * 8);
        }
        let header = Header {
            kind: ObjKind::Str,
            len: bytes.len() as u32,
            raw: 0,
        };
        self.alloc_with_header(r, header, &payload)
    }

    pub(crate) fn alloc_with_header(
        &mut self,
        r: RegionId,
        header: Header,
        payload: &[u64],
    ) -> Word {
        let region = &self.regions[r.0 as usize];
        assert!(
            region.live,
            "allocation into deallocated region {r:?} (region inference bug)"
        );
        // Untagged allocation into a kind-homogeneous region: no header.
        let untagged = region
            .uniform
            .map(|u| u.obj_kind() == header.kind && u.words() == payload.len())
            .unwrap_or(false);
        let need = payload.len() + if untagged { 0 } else { 1 };
        let page_idx = match region.pages.last() {
            Some(&p)
                if !self.pages[p as usize].sealed
                    && self.pages[p as usize].used + need <= self.pages[p as usize].words.len() =>
            {
                p
            }
            _ => {
                let p = self.fresh_page(r, need);
                self.regions[r.0 as usize].pages.push(p);
                p
            }
        };
        let page = &mut self.pages[page_idx as usize];
        let off = page.used;
        if untagged {
            page.words[off..off + need].copy_from_slice(payload);
        } else {
            page.words[off] = header.encode();
            page.words[off + 1..off + need].copy_from_slice(payload);
        }
        page.used += need;
        let bytes = need as u64 * WORD_BYTES;
        self.regions[r.0 as usize].bytes += bytes;
        self.regions[r.0 as usize].objects += 1;
        self.stats.bytes_allocated += bytes;
        self.stats.objects_allocated += 1;
        self.bytes_since_gc += bytes;
        // The pointer addresses the header word.
        Word::pointer(page_idx, off as u32, self.pages[page_idx as usize].epoch)
    }

    /// Checks a pointer and returns `(page, offset)` on success.
    pub(crate) fn check_ptr(
        &self,
        w: Word,
        context: &'static str,
    ) -> Result<(u32, u32), DanglingAccess> {
        let (page, off, epoch) = w.ptr_parts();
        match self.pages.get(page as usize) {
            Some(p) if p.live && p.epoch == epoch && (off as usize) < p.used => Ok((page, off)),
            _ => Err(DanglingAccess { context }),
        }
    }

    /// The uniform layout of the object's region, if untagged.
    pub(crate) fn uniform_of_page(&self, page: u32) -> Option<UniformKind> {
        self.regions[self.pages[page as usize].region.0 as usize].uniform
    }

    /// Reads an object's header (synthesised for untagged regions).
    ///
    /// # Errors
    ///
    /// Returns [`DanglingAccess`] if the pointer's page has been freed or
    /// recycled — a dangling pointer.
    pub fn header(&self, w: Word, context: &'static str) -> Result<Header, DanglingAccess> {
        let (page, off) = self.check_ptr(w, context)?;
        if let Some(u) = self.uniform_of_page(page) {
            return Ok(Header {
                kind: u.obj_kind(),
                len: u.words() as u32,
                raw: 0,
            });
        }
        Header::decode(self.pages[page as usize].words[off as usize])
            .ok_or(DanglingAccess { context })
    }

    /// Reads payload word `i` of the object at `w`.
    ///
    /// # Errors
    ///
    /// Returns [`DanglingAccess`] on dangling pointers.
    pub fn field(&self, w: Word, i: usize, context: &'static str) -> Result<Word, DanglingAccess> {
        let (page, off) = self.check_ptr(w, context)?;
        let skip = if self.uniform_of_page(page).is_some() {
            0
        } else {
            1
        };
        self.pages[page as usize]
            .words
            .get(off as usize + skip + i)
            .map(|x| Word(*x))
            .ok_or(DanglingAccess { context })
    }

    /// Writes payload word `i` of the object at `w`, maintaining the
    /// generational remembered set (old object now pointing at a young
    /// one).
    ///
    /// # Errors
    ///
    /// Returns [`DanglingAccess`] on dangling pointers.
    pub fn set_field(
        &mut self,
        w: Word,
        i: usize,
        v: Word,
        context: &'static str,
    ) -> Result<(), DanglingAccess> {
        let (page, off) = self.check_ptr(w, context)?;
        let skip = if self.uniform_of_page(page).is_some() {
            0
        } else {
            1
        };
        let slot = self.pages[page as usize]
            .words
            .get_mut(off as usize + skip + i)
            .ok_or(DanglingAccess { context })?;
        *slot = v.0;
        if self.generational && !self.pages[page as usize].young && v.is_pointer() {
            let (vp, _, _) = v.ptr_parts();
            if self
                .pages
                .get(vp as usize)
                .map(|p| p.young)
                .unwrap_or(false)
            {
                self.remembered.push(w);
            }
        }
        Ok(())
    }

    /// Reads a string object back out.
    ///
    /// # Errors
    ///
    /// Returns [`DanglingAccess`] on dangling pointers.
    pub fn read_str(&self, w: Word, context: &'static str) -> Result<String, DanglingAccess> {
        let h = self.header(w, context)?;
        let (page, off) = self.check_ptr(w, context)?;
        let words = &self.pages[page as usize].words;
        let n = h.len as usize;
        let mut bytes = Vec::with_capacity(n.min(words.len() * 8));
        for i in 0..n {
            let word = *words
                .get(off as usize + 1 + i / 8)
                .ok_or(DanglingAccess { context })?;
            bytes.push(((word >> ((i % 8) * 8)) & 0xFF) as u8);
        }
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// The region an object lives in.
    ///
    /// # Errors
    ///
    /// Returns [`DanglingAccess`] on dangling pointers.
    pub fn region_of(&self, w: Word, context: &'static str) -> Result<RegionId, DanglingAccess> {
        let (page, _) = self.check_ptr(w, context)?;
        Ok(self.pages[page as usize].region)
    }

    /// Total words currently held by live pages (the simulated RSS).
    pub fn live_words(&self) -> u64 {
        self.stats.live_words
    }

    /// Whether a collection is advisable: allocation since the last GC
    /// exceeds `max(min_bytes, ratio × live-after-last-gc)`.
    pub fn should_collect(&self, min_bytes: u64, ratio: f64) -> bool {
        self.bytes_since_gc > min_bytes.max((self.live_after_gc as f64 * ratio) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_pair() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let w = h.alloc(r, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        assert_eq!(h.field(w, 0, "t").unwrap(), Word::int(1));
        assert_eq!(h.field(w, 1, "t").unwrap(), Word::int(2));
        assert_eq!(h.header(w, "t").unwrap().kind, ObjKind::Pair);
        assert_eq!(h.region_of(w, "t").unwrap(), r);
    }

    #[test]
    fn strings_roundtrip() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        for s in ["", "a", "hello world", "exactly8", "ninechars"] {
            let w = h.alloc_str(r, s);
            assert_eq!(h.read_str(w, "t").unwrap(), s);
        }
    }

    #[test]
    fn dangling_detected_after_drop() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let w = h.alloc(r, ObjKind::Pair, 0, &[Word::int(1).0, Word::int(2).0]);
        h.drop_region(r);
        assert!(h.field(w, 0, "t").is_err());
        assert!(h.header(w, "t").is_err());
    }

    #[test]
    fn page_reuse_bumps_epoch() {
        let mut h = Heap::new();
        let r1 = h.create_region(RegionKind::Infinite);
        let w1 = h.alloc(r1, ObjKind::Ref, 0, &[Word::int(1).0]);
        h.drop_region(r1);
        let r2 = h.create_region(RegionKind::Infinite);
        // Reuses the freed page.
        let w2 = h.alloc(r2, ObjKind::Ref, 0, &[Word::int(2).0]);
        let (p1, _, _) = w1.ptr_parts();
        let (p2, _, _) = w2.ptr_parts();
        assert_eq!(p1, p2, "page should be recycled");
        assert!(h.field(w1, 0, "t").is_err(), "stale epoch must be caught");
        assert_eq!(h.field(w2, 0, "t").unwrap(), Word::int(2));
    }

    #[test]
    fn large_objects_get_oversized_pages() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let big = vec![Word::int(7).0; PAGE_WORDS * 3];
        let w = h.alloc(r, ObjKind::Closure, 0, &big);
        assert_eq!(h.field(w, PAGE_WORDS * 3 - 1, "t").unwrap(), Word::int(7));
    }

    #[test]
    fn stats_track_allocation() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        h.alloc(r, ObjKind::Pair, 0, &[0, 0]);
        assert_eq!(h.stats.objects_allocated, 1);
        assert_eq!(h.stats.bytes_allocated, 24);
        assert!(h.live_words() >= PAGE_WORDS as u64);
    }

    #[test]
    fn many_allocations_span_pages() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let mut ptrs = Vec::new();
        for i in 0..1000 {
            ptrs.push(h.alloc(r, ObjKind::Pair, 0, &[Word::int(i).0, Word::int(-i).0]));
        }
        for (i, w) in ptrs.iter().enumerate() {
            assert_eq!(h.field(*w, 0, "t").unwrap(), Word::int(i as i64));
        }
        assert!(h.regions[r.0 as usize].pages.len() > 1);
    }

    #[test]
    fn should_collect_threshold() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        assert!(!h.should_collect(1024, 2.0));
        for _ in 0..100 {
            h.alloc(r, ObjKind::Pair, 0, &[0, 0]);
        }
        assert!(h.should_collect(1024, 2.0));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::word::ObjKind;

    #[test]
    fn drop_region_is_idempotent() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        h.alloc(r, ObjKind::Pair, 0, &[0, 0]);
        h.drop_region(r);
        h.drop_region(r); // no panic, no double-free
        assert!(!h.region_live(r));
    }

    #[test]
    fn live_regions_order_and_membership() {
        let mut h = Heap::new();
        let a = h.create_region(RegionKind::Infinite);
        let b = h.create_region(RegionKind::Finite);
        let c = h.create_region(RegionKind::Infinite);
        assert_eq!(h.live_regions(), &[a, b, c]);
        h.drop_region(b);
        assert_eq!(h.live_regions(), &[a, c]);
    }

    #[test]
    #[should_panic(expected = "deallocated region")]
    fn allocation_into_dead_region_panics() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        h.drop_region(r);
        h.alloc(r, ObjKind::Pair, 0, &[0, 0]);
    }

    #[test]
    fn peak_regions_tracks_high_water_mark() {
        let mut h = Heap::new();
        let rs: Vec<_> = (0..5)
            .map(|_| h.create_region(RegionKind::Infinite))
            .collect();
        for r in &rs {
            h.drop_region(*r);
        }
        h.create_region(RegionKind::Infinite);
        assert_eq!(h.stats.peak_regions, 5);
    }

    #[test]
    fn field_bounds_are_page_relative() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        // Two objects on the same page; pointers stay distinct.
        let a = h.alloc(r, ObjKind::Ref, 0, &[Word::int(1).0]);
        let b = h.alloc(r, ObjKind::Ref, 0, &[Word::int(2).0]);
        assert_ne!(a, b);
        assert_eq!(h.field(a, 0, "t").unwrap(), Word::int(1));
        assert_eq!(h.field(b, 0, "t").unwrap(), Word::int(2));
    }

    #[test]
    fn empty_string_allocates_header_only() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let s = h.alloc_str(r, "");
        assert_eq!(h.read_str(s, "t").unwrap(), "");
        assert_eq!(h.header(s, "t").unwrap().len, 0);
    }
}
