//! Regression tests for the benchmark binaries' loud env/arg parsing:
//! `RML_TORTURE_FUEL=2m` or a non-numeric positional argument must fail
//! with a diagnostic and exit 2 — the old `.parse().ok().unwrap_or(...)`
//! pattern silently ran with the default budget.
//!
//! Only the *failure* paths are spawned (they exit at startup, before
//! any compilation); the defaulting path is covered as a unit test.

use std::process::Command;

#[test]
fn torture_rejects_unparsable_fuel_env() {
    let out = Command::new(env!("CARGO_BIN_EXE_torture"))
        .env("RML_TORTURE_FUEL", "2m")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("RML_TORTURE_FUEL"), "stderr: {err}");
    assert!(err.contains("not a number"), "stderr: {err}");
}

#[test]
fn torture_rejects_unparsable_seed_arg() {
    let out = Command::new(env!("CARGO_BIN_EXE_torture"))
        .arg("0xbad")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("seed"), "stderr: {err}");
}

#[test]
fn figure9_rejects_unparsable_repeats_arg() {
    let out = Command::new(env!("CARGO_BIN_EXE_figure9"))
        .arg("three")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("repeats"), "stderr: {err}");
    assert!(err.contains("three"), "stderr: {err}");
}

#[test]
fn absent_values_still_default() {
    assert_eq!(rml_bench::env_u64("RML_NO_SUCH_VAR_SET_EVER", 42), 42);
    // Position 100 certainly has no argument in a test harness invocation.
    assert_eq!(rml_bench::arg_u64(100, "nth", 7), 7);
}
