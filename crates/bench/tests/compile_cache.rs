//! The harness must compile each (program, strategy) exactly once.
//!
//! This file deliberately holds a single `#[test]`: it asserts on deltas
//! of the process-wide compilation counter, and other tests running in
//! the same process would perturb it.

use rml_bench::{basis_stats, compile_set, compile_set_cached, row_with};

/// A process-unique scratch directory for the disk cache, cleaned up on
/// drop so reruns start cold.
struct TempCache(std::path::PathBuf);

impl TempCache {
    fn new(tag: &str) -> TempCache {
        let dir =
            std::env::temp_dir().join(format!("rml-bench-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache(dir)
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn row_compiles_each_strategy_exactly_once() {
    rml::run_with_big_stack(row_compiles_each_strategy_exactly_once_body);
}

fn row_compiles_each_strategy_exactly_once_body() {
    let p = rml::programs::by_name("fib").unwrap();
    // Fill the process-wide basis cache before taking the baseline.
    let _ = basis_stats();
    let c0 = rml::compile_count();
    let set = compile_set(&p);
    assert_eq!(set.compiles, 3);
    assert_eq!(rml::compile_count() - c0, 3, "one compile per strategy");
    let row = row_with(&p, &set, 1);
    assert_eq!(
        rml::compile_count() - c0,
        3,
        "row_with must reuse the set's compilations"
    );
    assert_eq!(
        row.runs.len(),
        5,
        "baseline and the torture run share the rg compilation"
    );

    // The disk cache: a cold build compiles and fills the cache, the
    // second build decodes stored IR instead — zero new compilations —
    // and the decoded set produces the same statistics and schemes.
    let cache = TempCache::new("fib");
    let c1 = rml::compile_count();
    let cold = compile_set_cached(&p, Some(&cache.0));
    assert_eq!(cold.compiles, 3, "cold cache compiles every strategy");
    assert_eq!(rml::compile_count() - c1, 3);
    let c2 = rml::compile_count();
    let warm = compile_set_cached(&p, Some(&cache.0));
    assert_eq!(warm.compiles, 0, "warm cache compiles nothing");
    assert_eq!(
        rml::compile_count() - c2,
        0,
        "a cache hit must not run the pipeline"
    );
    assert_eq!(
        warm.rg.output.stats, cold.rg.output.stats,
        "statistics survive the cache round-trip"
    );
    assert_eq!(
        warm.rg.output.schemes.len(),
        cold.rg.output.schemes.len(),
        "schemes survive the cache round-trip"
    );
    let warm_row = row_with(&p, &warm, 1);
    assert_eq!(warm_row.fcns, row.fcns);
    assert_eq!(warm_row.insts, row.insts);
    assert_eq!(warm_row.diff, row.diff);
    assert!(warm_row.runs.iter().all(|m| !m.crashed));

    // The whole-suite budget: at most 4N+1 compilations for N programs
    // (this driver does exactly 3N with the basis already cached). The
    // full suite is a release-profile check.
    if cfg!(debug_assertions) {
        return;
    }
    let n = rml::programs::suite().len() as u64;
    let c1 = rml::compile_count();
    let rows = rml_bench::figure9(1);
    let delta = rml::compile_count() - c1;
    assert_eq!(rows.len() as u64, n);
    assert!(
        delta <= 4 * n + 1,
        "figure9 compiled {delta} times for {n} programs"
    );
    assert_eq!(delta, 3 * n, "three compiles per program, basis cached");

    // And through the disk cache: the first run fills it (3N compiles),
    // the second consecutive run performs zero pipeline recompilations.
    let suite_cache = TempCache::new("suite");
    let c3 = rml::compile_count();
    let first = rml_bench::figure9_cached(1, Some(&suite_cache.0));
    assert_eq!(first.len() as u64, n);
    assert_eq!(
        rml::compile_count() - c3,
        3 * n,
        "cold cached run compiles 3N"
    );
    let c4 = rml::compile_count();
    let second = rml_bench::figure9_cached(1, Some(&suite_cache.0));
    assert_eq!(second.len() as u64, n);
    assert_eq!(
        rml::compile_count() - c4,
        0,
        "second consecutive figure9 run must hit the disk cache for every row"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.name, b.name, "row order is deterministic");
        assert_eq!(a.fcns, b.fcns);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.diff, b.diff);
    }
}
