//! The harness must compile each (program, strategy) exactly once.
//!
//! This file deliberately holds a single `#[test]`: it asserts on deltas
//! of the process-wide compilation counter, and other tests running in
//! the same process would perturb it.

use rml_bench::{basis_stats, compile_set, row_with};

#[test]
fn row_compiles_each_strategy_exactly_once() {
    let p = rml::programs::by_name("fib").unwrap();
    // Fill the process-wide basis cache before taking the baseline.
    let _ = basis_stats();
    let c0 = rml::compile_count();
    let set = compile_set(&p);
    assert_eq!(set.compiles, 3);
    assert_eq!(rml::compile_count() - c0, 3, "one compile per strategy");
    let row = row_with(&p, &set, 1);
    assert_eq!(
        rml::compile_count() - c0,
        3,
        "row_with must reuse the set's compilations"
    );
    assert_eq!(row.runs.len(), 4, "baseline shares the rg compilation");

    // The whole-suite budget: at most 4N+1 compilations for N programs
    // (this driver does exactly 3N with the basis already cached). The
    // full suite is a release-profile check.
    if cfg!(debug_assertions) {
        return;
    }
    let n = rml::programs::suite().len() as u64;
    let c1 = rml::compile_count();
    let rows = rml_bench::figure9(1);
    let delta = rml::compile_count() - c1;
    assert_eq!(rows.len() as u64, n);
    assert!(
        delta <= 4 * n + 1,
        "figure9 compiled {delta} times for {n} programs"
    );
    assert_eq!(delta, 3 * n, "three compiles per program, basis cached");
}
