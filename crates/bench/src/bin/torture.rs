//! Runs the differential torture oracle over the whole benchmark suite.
//!
//! ```sh
//! cargo run --release -p rml-bench --bin torture [seed]
//! ```
//!
//! Every suite program is run under every strategy × every GC schedule
//! (see `rml::torture`): `rg` and the regionless baseline must compute
//! the reference value no matter when the collector runs, `r` and `rg-`
//! may diverge only as deterministic dangling faults, every faulting
//! cell must reproduce exactly on a re-run, and injected faults
//! (allocation budget, continuation-depth limit) must unwind
//! structurally and leave the next clean run unaffected.
//!
//! Environment:
//!
//! * `RML_TORTURE_FUEL` — step budget per matrix cell (default
//!   2,000,000; CI uses a reduced budget). Steps are
//!   schedule-independent, so running out of fuel is itself a
//!   deterministic, agreeing outcome.
//! * `RML_BENCH_CACHE` — same compile cache as the `figure9` binary.
//!
//! Exit status is non-zero when any program diverges.

fn main() {
    // Present-but-unparsable values fail loudly (exit 2): a typo like
    // `RML_TORTURE_FUEL=2m` must not silently torture with the default.
    let seed = rml_bench::arg_u64(1, "seed", 0x7041_10E5);
    let fuel = rml_bench::env_u64("RML_TORTURE_FUEL", 2_000_000);
    let cache_setting = std::env::var("RML_BENCH_CACHE").unwrap_or_default();
    let cache_dir = match cache_setting.as_str() {
        "off" | "0" => None,
        "" => Some(std::path::PathBuf::from(".rml-bench-cache")),
        p => Some(std::path::PathBuf::from(p)),
    };
    let opts = rml::torture::TortureOpts {
        seed,
        fuel,
        with_basis: true,
        ..Default::default()
    };
    eprintln!("torturing the suite (seed {seed:#x}, fuel {fuel})...");
    let t0 = std::time::Instant::now();
    let reports = rml_bench::differential(&opts, cache_dir.as_deref());
    let wall = t0.elapsed();
    let mut failed = 0;
    for rep in &reports {
        if rep.ok() {
            let danglings = rep
                .cells
                .iter()
                .filter(|c| {
                    matches!(
                        c.outcome,
                        rml::torture::Outcome::Fault { dangling: true, .. }
                    )
                })
                .count();
            println!(
                "{:<12} PASS ({} cells, {} tolerated dangling faults, {} probes)",
                rep.name,
                rep.cells.len(),
                danglings,
                rep.probes.len()
            );
        } else {
            failed += 1;
            print!("{}", rep.render());
        }
    }
    eprintln!(
        "torture wall time {:.1}ms, {}/{} programs passed",
        wall.as_secs_f64() * 1000.0,
        reports.len() - failed,
        reports.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
