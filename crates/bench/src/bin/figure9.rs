//! Regenerates the paper's Figure 9 benchmark table.
//!
//! ```sh
//! cargo run --release -p rml-bench --bin figure9 [repeats]
//! ```
//!
//! Columns follow the paper: `loc` (program lines, basis excluded),
//! `fcns` (spurious functions / total), `inst` (spurious type variables
//! instantiated at boxed types / total instantiations), `diff` (whether
//! the spurious machinery changed the generated code), wall-clock time
//! per strategy, peak memory (`rss`), and collection counts (`gc`).
//!
//! Besides the rendered table on stdout, the run writes
//! `BENCH_figure9.json` to the current directory: the same rows in
//! machine-readable form (per-program compile time plus per-strategy run
//! time, steps, allocation, peak bytes, and gc counts).
//!
//! Compilations are cached on disk (serialized IR + statistics) in
//! `.rml-bench-cache/`, so a repeated run skips the pipeline entirely.
//! Set `RML_BENCH_CACHE` to relocate the cache, or to `off` to disable
//! it. Entries are keyed by content hash, so stale entries are never
//! read — delete the directory to reclaim the space.

fn main() {
    // A non-numeric repeats argument fails loudly (exit 2) instead of
    // silently falling back to 3 best-of runs.
    let repeats = rml_bench::arg_u64(1, "repeats", 3) as usize;
    let cache_setting = std::env::var("RML_BENCH_CACHE").unwrap_or_default();
    let cache_dir = match cache_setting.as_str() {
        "off" | "0" => None,
        "" => Some(std::path::PathBuf::from(".rml-bench-cache")),
        p => Some(std::path::PathBuf::from(p)),
    };
    eprintln!(
        "running the Figure 9 suite (best of {repeats}, cache {})...",
        cache_dir
            .as_deref()
            .map_or("off".to_string(), |p| p.display().to_string())
    );
    let t0 = std::time::Instant::now();
    let rows = rml_bench::figure9_cached(repeats, cache_dir.as_deref());
    let wall = t0.elapsed();
    println!("{}", rml_bench::render(&rows));
    let compile_ms: f64 = rows
        .iter()
        .map(|r| r.compile_time.as_secs_f64() * 1000.0)
        .sum();
    eprintln!(
        "suite wall time {:.1}ms ({} compilations, {:.1}ms compiling)",
        wall.as_secs_f64() * 1000.0,
        rml::compile_count(),
        compile_ms,
    );
    let json = rml_bench::to_json(&rows);
    match std::fs::write("BENCH_figure9.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_figure9.json"),
        Err(e) => eprintln!("could not write BENCH_figure9.json: {e}"),
    }
}
