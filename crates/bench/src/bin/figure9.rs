//! Regenerates the paper's Figure 9 benchmark table.
//!
//! ```sh
//! cargo run --release -p rml-bench --bin figure9 [repeats]
//! ```
//!
//! Columns follow the paper: `loc` (program lines, basis excluded),
//! `fcns` (spurious functions / total), `inst` (spurious type variables
//! instantiated at boxed types / total instantiations), `diff` (whether
//! the spurious machinery changed the generated code), wall-clock time
//! per strategy, peak memory (`rss`), and collection counts (`gc`).

fn main() {
    let repeats = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    eprintln!("running the Figure 9 suite (best of {repeats})...");
    let rows = rml_bench::figure9(repeats);
    println!("{}", rml_bench::render(&rows));
}
