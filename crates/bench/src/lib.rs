//! The benchmark harness that regenerates the paper's evaluation.
//!
//! [`figure9`] produces, for every program of the suite, the full row of
//! the paper's Figure 9: lines of code, spurious-function and
//! spurious-instantiation counts, whether the spurious machinery changed
//! the generated code (`diff`), and — per compilation strategy (`rg`,
//! `rg-`, `r`, plus the regionless `baseline` standing in for MLton) —
//! execution time, machine steps, allocation, peak memory (the simulated
//! RSS), and the number of reference-tracing collections.
//!
//! Every program is compiled **at most once per strategy** (three
//! compilations per program, see [`CompiledSet`]); the statistics
//! columns, the `diff` column, and all four measurements share those
//! compilations. The basis library's own statistics (subtracted from the
//! per-program columns) are compiled once per process.
//!
//! Two further layers keep repeated runs cheap:
//!
//! * a **disk compile cache** ([`compile_set_cached`]): each compiled
//!   program is persisted as serialized region-annotated IR
//!   (`rml_core::ir`) plus its Figure 9 statistics, keyed by a content
//!   hash of the source, the strategy, and the IR format version. A warm
//!   cache makes a `figure9` run perform **zero** compilations;
//! * a **work-stealing row queue** ([`figure9`]): a fixed pool of workers
//!   (one per available core, capped at the row count) pulls program
//!   indices from a shared atomic counter, so a slow row no longer holds
//!   up an idle thread. Results are slotted by index, keeping the table
//!   order deterministic.

use rml::{compile_with_basis, execute, programs::Program, ExecOpts, Json, Strategy};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Parses an optional numeric environment variable. Absent → `default`;
/// present but unparsable → loud failure (stderr diagnostic + exit 2),
/// never a silent fallback: `RML_TORTURE_FUEL=2m` must not quietly run
/// with the default budget.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("error: {name}={v}: not a number ({e})");
            std::process::exit(2)
        }),
    }
}

/// As [`env_u64`], for an optional positional CLI argument (`nth` is the
/// 1-based argument position; `what` names it in the diagnostic).
pub fn arg_u64(nth: usize, what: &str, default: u64) -> u64 {
    match std::env::args().nth(nth) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("error: {what} argument `{v}`: not a number ({e})");
            std::process::exit(2)
        }),
    }
}

/// Per-strategy measurements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Strategy label (`rg`, `rg-`, `r`, `baseline`).
    pub label: &'static str,
    /// Wall-clock time of the run (best of `repeats`).
    pub time: Duration,
    /// Machine steps (deterministic time proxy).
    pub steps: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Peak live bytes (the paper's `rss`).
    pub peak_bytes: u64,
    /// Reference-tracing collections (the paper's `gc #`).
    pub gc_count: u64,
    /// Collections forced by a stress schedule (torture rig; 0 under the
    /// default heuristic policy).
    pub forced_gcs: u64,
    /// Heap-invariant verifier walks performed (torture rig).
    pub verify_walks: u64,
    /// Injected faults the machine survived: probes that unwound with a
    /// structured error and left the next clean run unaffected (torture
    /// rig; only the `rg+torture` measurement probes).
    pub faults_survived: u64,
    /// Whether the run crashed (dangling pointer under `rg-`).
    pub crashed: bool,
    /// The unified metrics snapshot (per-phase compile times, store
    /// counters, heap stats, GC pause percentiles); `None` when the run
    /// crashed. Embedded per-run in `BENCH_figure9.json`.
    pub metrics: Option<rml::MetricsSnapshot>,
}

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub name: &'static str,
    /// Lines of code (excluding the basis).
    pub loc: usize,
    /// Spurious functions / total functions (program + basis).
    pub fcns: (usize, usize),
    /// Spurious boxed instantiations / total instantiations.
    pub insts: (usize, usize),
    /// Did the spurious machinery change the generated code (rg vs rg-)?
    pub diff: bool,
    /// Total wall-clock compilation time across the three strategies.
    pub compile_time: Duration,
    /// Measurements for rg, rg-, r, baseline, rg+torture (in that
    /// order). The last is the robustness measurement: `rg` under a
    /// stress schedule with heap verification, plus fault-injection
    /// probes — its overhead relative to the plain `rg` column is the
    /// torture rig's cost, visible in the perf trajectory.
    pub runs: Vec<Measurement>,
}

/// One program compiled under every strategy the table needs, each
/// exactly once.
#[derive(Debug)]
pub struct CompiledSet {
    /// The `rg` compilation (also drives the regionless baseline run).
    pub rg: rml::Compiled,
    /// The `rg-` compilation.
    pub rgm: rml::Compiled,
    /// The `r` compilation.
    pub r: rml::Compiled,
    /// Compilations performed to build this set (always 3; asserted by
    /// the cache tests against the process-wide counter).
    pub compiles: usize,
}

/// Compiles a program under all three strategies, once each.
pub fn compile_set(p: &Program) -> CompiledSet {
    compile_set_cached(p, None)
}

// --- the disk compile cache ---------------------------------------------
//
// Entry layout (all integers little-endian):
//
//   "RMLB"  u32 cache-version
//   5 × u64 Figure 9 statistics (spurious/total fns, spurious/total
//           insts, name count) followed by the length-prefixed names
//   u64     IR byte length, then the `rml_core::ir` encoding itself
//
// Entries are keyed by an FNV-1a content hash of (source, strategy,
// IR format version), so editing a program or bumping the IR format
// simply misses the old entry — stale files are never *read*, only
// eventually overwritten or left to be deleted by hand.

const CACHE_MAGIC: &[u8; 4] = b"RMLB";
const CACHE_VERSION: u32 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn strategy_label(s: Strategy) -> &'static str {
    match s {
        Strategy::Rg => "rg",
        Strategy::RgMinus => "rgm",
        Strategy::R => "r",
    }
}

fn cache_path(dir: &Path, p: &Program, s: Strategy) -> PathBuf {
    let mut keyed = Vec::new();
    keyed.extend_from_slice(p.source.as_bytes());
    keyed.push(0);
    keyed.extend_from_slice(strategy_label(s).as_bytes());
    keyed.push(0);
    keyed.extend_from_slice(&rml_core::ir::VERSION.to_le_bytes());
    dir.join(format!(
        "{}-{}-{:016x}.rmlb",
        p.name,
        strategy_label(s),
        fnv1a(&keyed)
    ))
}

fn encode_entry(c: &rml::Compiled) -> Vec<u8> {
    let ir = rml::emit_ir(c);
    let st = &c.output.stats;
    let mut buf = Vec::with_capacity(ir.len() + 128);
    buf.extend_from_slice(CACHE_MAGIC);
    buf.extend_from_slice(&CACHE_VERSION.to_le_bytes());
    for n in [
        st.spurious_fns,
        st.total_fns,
        st.spurious_boxed_insts,
        st.total_insts,
        st.spurious_fn_names.len(),
    ] {
        buf.extend_from_slice(&(n as u64).to_le_bytes());
    }
    for name in &st.spurious_fn_names {
        buf.extend_from_slice(&(name.len() as u64).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    buf.extend_from_slice(&(ir.len() as u64).to_le_bytes());
    buf.extend_from_slice(&ir);
    buf
}

fn decode_entry(bytes: &[u8], strategy: Strategy) -> Option<rml::Compiled> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    let take_u64 =
        |at: &mut usize| -> Option<u64> { Some(u64::from_le_bytes(take(at, 8)?.try_into().ok()?)) };
    if take(&mut at, 4)? != CACHE_MAGIC {
        return None;
    }
    if take(&mut at, 4)? != CACHE_VERSION.to_le_bytes() {
        return None;
    }
    let spurious_fns = take_u64(&mut at)? as usize;
    let total_fns = take_u64(&mut at)? as usize;
    let spurious_boxed_insts = take_u64(&mut at)? as usize;
    let total_insts = take_u64(&mut at)? as usize;
    let n_names = take_u64(&mut at)? as usize;
    if n_names > bytes.len() {
        return None; // corrupt count; bail before allocating
    }
    let mut spurious_fn_names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = take_u64(&mut at)? as usize;
        let s = take(&mut at, len)?;
        spurious_fn_names.push(String::from_utf8(s.to_vec()).ok()?);
    }
    let ir_len = take_u64(&mut at)? as usize;
    let ir = take(&mut at, ir_len)?;
    if at != bytes.len() {
        return None; // trailing garbage
    }
    let mut c = rml::load_ir(ir, strategy).ok()?;
    c.output.stats = rml_infer::Stats {
        spurious_fns,
        total_fns,
        spurious_boxed_insts,
        total_insts,
        spurious_fn_names,
    };
    Some(c)
}

fn cache_load(dir: &Path, p: &Program, s: Strategy) -> Option<rml::Compiled> {
    let bytes = std::fs::read(cache_path(dir, p, s)).ok()?;
    decode_entry(&bytes, s)
}

/// Best-effort store: benchmarking must not fail because a cache write
/// did (read-only dir, full disk), so IO errors are swallowed. The entry
/// is written to a sibling temp file and renamed into place, so a
/// concurrent reader never sees a half-written entry.
fn cache_store(dir: &Path, p: &Program, s: Strategy, c: &rml::Compiled) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = cache_path(dir, p, s);
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, encode_entry(c)).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// As [`compile_set`], but consulting (and filling) a disk cache first.
/// A cache hit decodes the stored IR instead of running the pipeline —
/// the process compile counter does not move — and `compiles` reports
/// only the compilations actually performed (0 on a fully warm cache).
pub fn compile_set_cached(p: &Program, cache: Option<&Path>) -> CompiledSet {
    let mut compiles = 0;
    let mut get = |s: Strategy, what: &str| -> rml::Compiled {
        if let Some(dir) = cache {
            if let Some(c) = cache_load(dir, p, s) {
                return c;
            }
        }
        let c = compile_with_basis(p.source, s).unwrap_or_else(|e| panic!("compile {what}: {e}"));
        compiles += 1;
        if let Some(dir) = cache {
            cache_store(dir, p, s, &c);
        }
        c
    };
    let rg = get(Strategy::Rg, "rg");
    let rgm = get(Strategy::RgMinus, "rg-");
    let r = get(Strategy::R, "r");
    CompiledSet {
        rg,
        rgm,
        r,
        compiles,
    }
}

/// The basis library's Figure 9 statistics (compiled once per process;
/// only the plain-data statistics are retained, so the cache is shared
/// across the harness's worker threads).
pub fn basis_stats() -> &'static rml_infer::Stats {
    static BASIS: OnceLock<rml_infer::Stats> = OnceLock::new();
    BASIS.get_or_init(|| {
        rml::compile(rml::basis::BASIS, Strategy::Rg)
            .expect("compile basis")
            .output
            .stats
    })
}

/// Runs an already-compiled program, best-of-`repeats`.
pub fn measure_compiled(
    c: &rml::Compiled,
    baseline: bool,
    label: &'static str,
    repeats: usize,
) -> Measurement {
    let opts = ExecOpts {
        baseline,
        ..ExecOpts::default()
    };
    measure_compiled_opts(c, &opts, label, repeats)
}

/// As [`measure_compiled`], but under explicit execution options (the
/// torture measurement runs stress schedules through this).
pub fn measure_compiled_opts(
    c: &rml::Compiled,
    opts: &ExecOpts,
    label: &'static str,
    repeats: usize,
) -> Measurement {
    let mut best = Duration::MAX;
    let mut last = None;
    let mut crashed = false;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        match execute(c, opts) {
            Ok(out) => {
                best = best.min(t0.elapsed());
                last = Some(out);
            }
            Err(_) => {
                crashed = true;
                break;
            }
        }
    }
    match last {
        Some(out) if !crashed => Measurement {
            label,
            time: best,
            steps: out.steps,
            alloc_bytes: out.stats.bytes_allocated,
            peak_bytes: out.stats.peak_bytes(),
            gc_count: out.stats.gc_count,
            forced_gcs: out.stats.forced_gcs,
            verify_walks: out.stats.verify_walks,
            faults_survived: 0,
            crashed: false,
            metrics: Some(rml::MetricsSnapshot::new(
                &c.timings,
                c.output.store_stats,
                &out,
            )),
        },
        _ => Measurement {
            label,
            time: Duration::ZERO,
            steps: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
            gc_count: 0,
            forced_gcs: 0,
            verify_walks: 0,
            faults_survived: 0,
            crashed: true,
            metrics: None,
        },
    }
}

/// PRNG seed for the torture measurement's stress schedule; fixed so the
/// robustness columns of `BENCH_figure9.json` are deterministic.
pub const TORTURE_SEED: u64 = 0x7041_10E5;

/// The robustness measurement of a row: the `rg` compilation under a
/// stress schedule (forced collection every 64 steps) with the heap
/// verifier walking after every collection, plus two fault-injection
/// probes (allocation budget, continuation-depth limit). The probes
/// count as *survived* when the limited run either completes or unwinds
/// with the matching structured error — a panic or an unrelated error
/// marks the measurement crashed.
pub fn measure_torture(set: &CompiledSet, repeats: usize) -> Measurement {
    use rml_eval::{GcPolicy, RunError, VerifyLevel};
    let opts = ExecOpts {
        gc: Some(GcPolicy::stress_every(64, TORTURE_SEED)),
        verify: Some(VerifyLevel::AfterGc),
        ..ExecOpts::default()
    };
    let mut m = measure_compiled_opts(&set.rg, &opts, "rg+torture", repeats);
    type FaultMatcher = fn(&rml_eval::RunError) -> bool;
    let probes: [(ExecOpts, FaultMatcher); 2] = [
        (
            ExecOpts {
                alloc_budget: Some(1),
                ..ExecOpts::default()
            },
            |e| matches!(e, RunError::OutOfMemory { .. }),
        ),
        (
            ExecOpts {
                depth_limit: Some(2),
                ..ExecOpts::default()
            },
            |e| matches!(e, RunError::DepthLimit { .. }),
        ),
    ];
    for (eo, expect) in probes {
        match execute(&set.rg, &eo) {
            // Limit not reached: nothing to survive, still structural.
            Ok(_) => m.faults_survived += 1,
            Err(e) if expect(&e) => m.faults_survived += 1,
            Err(_) => m.crashed = true,
        }
    }
    m
}

/// Runs one program under one strategy, best-of-`repeats`, compiling it
/// first. Prefer [`measure_compiled`] (via [`compile_set`]) when several
/// measurements share a program.
pub fn measure(
    p: &Program,
    strategy: Strategy,
    baseline: bool,
    label: &'static str,
    repeats: usize,
) -> Measurement {
    let c = compile_with_basis(p.source, strategy).expect("compile failed");
    measure_compiled(&c, baseline, label, repeats)
}

/// Normalises variable names (`r17`, `e3`, `a5`) to first-occurrence
/// indices so region-annotated programs from different compilations can be
/// compared structurally (the `diff` column).
pub fn normalize_vars(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut maps: [std::collections::HashMap<String, usize>; 3] = Default::default();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let class = match c {
            'r' => Some(0),
            'e' => Some(1),
            'a' => Some(2),
            _ => None,
        };
        // A variable token is r/e/a followed by digits, not preceded by an
        // identifier character.
        let prev_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        if let (Some(k), false) = (class, prev_ident) {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            // The digits must end the token: `r5_tail` is an ordinary
            // identifier, not region variable `r5`.
            let ends_token =
                j == bytes.len() || !(bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_');
            if j > i + 1 && ends_token {
                let tok = &s[i..j];
                let next = maps[k].len();
                let id = *maps[k].entry(tok.to_string()).or_insert(next);
                out.push(c);
                out.push('#');
                out.push_str(&id.to_string());
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Function names defined by a program's own source (not the basis).
fn own_functions(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut toks = src.split_whitespace().peekable();
    while let Some(t) = toks.next() {
        if t == "fun" || t == "and" {
            if let Some(name) = toks.peek() {
                out.push(
                    name.trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Does the spurious machinery change the generated code for `p`'s own
/// functions, given its compilations (the paper's `diff` column — the
/// basis is compiled either way, so only the benchmark's own schemes
/// count)?
pub fn code_differs_compiled(p: &Program, rg: &rml::Compiled, rgm: &rml::Compiled) -> bool {
    let own = own_functions(p.source);
    let render = |c: &rml::Compiled| -> Vec<String> {
        c.output
            .schemes
            .iter()
            .filter(|(n, _)| own.iter().any(|o| o == n.as_str()))
            .map(|(n, s)| {
                format!(
                    "{n}:{}",
                    normalize_vars(&rml_core::pretty::scheme_to_string(s))
                )
            })
            .collect()
    };
    render(rg) != render(rgm)
}

/// As [`code_differs_compiled`], compiling `p` afresh. Prefer the
/// `_compiled` variant when the compilations are already at hand.
pub fn code_differs(p: &Program) -> bool {
    let rg = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let rgm = compile_with_basis(p.source, Strategy::RgMinus).expect("compile");
    code_differs_compiled(p, &rg, &rgm)
}

/// Builds one Figure 9 row from an existing [`CompiledSet`], performing
/// no compilations of its own (the basis statistics come from the
/// process-wide [`basis_stats`] cache). The `fcns`/`inst` counts are for
/// the program itself (basis counts subtracted, as the paper excludes the
/// Basis Library from the per-benchmark columns).
pub fn row_with(p: &Program, set: &CompiledSet, repeats: usize) -> Row {
    let basis = basis_stats();
    let rg_stats = &set.rg.output.stats;
    let sub = |a: usize, b: usize| a.saturating_sub(b);
    Row {
        name: p.name,
        loc: p.loc(),
        fcns: (
            sub(rg_stats.spurious_fns, basis.spurious_fns),
            sub(rg_stats.total_fns, basis.total_fns),
        ),
        insts: (
            sub(rg_stats.spurious_boxed_insts, basis.spurious_boxed_insts),
            sub(rg_stats.total_insts, basis.total_insts),
        ),
        diff: code_differs_compiled(p, &set.rg, &set.rgm),
        compile_time: set.rg.timings.total + set.rgm.timings.total + set.r.timings.total,
        runs: vec![
            measure_compiled(&set.rg, false, "rg", repeats),
            measure_compiled(&set.rgm, false, "rg-", repeats),
            measure_compiled(&set.r, false, "r", repeats),
            measure_compiled(&set.rg, true, "baseline", repeats),
            measure_torture(set, repeats),
        ],
    }
}

/// Builds one Figure 9 row, compiling the program (once per strategy).
pub fn row(p: &Program, repeats: usize) -> Row {
    let set = compile_set(p);
    row_with(p, &set, repeats)
}

/// As [`row`], but building the [`CompiledSet`] through the disk cache.
pub fn row_cached(p: &Program, repeats: usize, cache: Option<&Path>) -> Row {
    let set = compile_set_cached(p, cache);
    row_with(p, &set, repeats)
}

/// The whole table, uncached (every row compiles its program afresh).
pub fn figure9(repeats: usize) -> Vec<Row> {
    figure9_cached(repeats, None)
}

/// The whole table. A fixed pool of workers (one per available core,
/// capped at the row count) pulls program indices from a shared queue —
/// work stealing, so one slow row never idles the other threads the way
/// the previous one-thread-per-row split did. Each worker gets a large
/// stack (the recursive passes need it in unoptimised builds), results
/// are slotted by index, and the returned table is in suite order:
/// deterministic up to the timing columns.
///
/// With `cache` set, compilations go through the disk cache; on a fully
/// warm cache the run performs zero compilations.
pub fn figure9_cached(repeats: usize, cache: Option<&Path>) -> Vec<Row> {
    let progs = rml::programs::suite();
    // Fill the basis cache before spawning so no worker repeats the work
    // while another holds the `OnceLock` initialiser.
    let _ = basis_stats();
    let n = progs.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Row>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            std::thread::Builder::new()
                .stack_size(64 * 1024 * 1024)
                .spawn_scoped(s, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = progs.get(i) else { break };
                    let row = row_cached(p, repeats, cache);
                    *slots[i].lock().expect("slot poisoned") = Some(row);
                })
                .expect("spawn figure9 worker");
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every claimed slot is filled before workers exit")
        })
        .collect()
}

/// Runs the differential torture oracle over the whole suite: every
/// program, every strategy, every GC schedule (see [`rml::torture`]),
/// compiled through the same disk cache as [`figure9_cached`] and spread
/// over the same work-stealing worker pool. Reports come back in suite
/// order.
pub fn differential(
    opts: &rml::torture::TortureOpts,
    cache: Option<&Path>,
) -> Vec<rml::torture::Report> {
    let progs = rml::programs::suite();
    let _ = basis_stats();
    let n = progs.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<rml::torture::Report>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            std::thread::Builder::new()
                .stack_size(64 * 1024 * 1024)
                .spawn_scoped(s, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = progs.get(i) else { break };
                    let set = compile_set_cached(p, cache);
                    let rep =
                        rml::torture::torture_compiled(p.name, &set.rg, &set.rgm, &set.r, opts);
                    *slots[i].lock().expect("slot poisoned") = Some(rep);
                })
                .expect("spawn differential worker");
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every claimed slot is filled before workers exit")
        })
        .collect()
}

fn kb(bytes: u64) -> String {
    format!("{}k", bytes / 1024)
}

/// Renders the table in the paper's layout.
pub fn render(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>4} {:>8} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
        "program", "loc", "fcns", "inst", "diff",
        "rg", "rg-", "r", "mlton*",
        "rss rg", "rss rg-", "rss r", "rss ml*",
        "gc rg", "gc rg-"
    );
    let _ = writeln!(s, "{}", "-".repeat(150));
    for r in rows {
        let t = |m: &Measurement| {
            if m.crashed {
                "CRASH".to_string()
            } else {
                format!("{:.1}ms", m.time.as_secs_f64() * 1000.0)
            }
        };
        let _ = writeln!(
            s,
            "{:<12} {:>4} {:>8} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
            r.name,
            r.loc,
            format!("{}/{}", r.fcns.0, r.fcns.1),
            format!("{}/{}", r.insts.0, r.insts.1),
            if r.diff { "y" } else { "" },
            t(&r.runs[0]),
            t(&r.runs[1]),
            t(&r.runs[2]),
            t(&r.runs[3]),
            kb(r.runs[0].peak_bytes),
            kb(r.runs[1].peak_bytes),
            kb(r.runs[2].peak_bytes),
            kb(r.runs[3].peak_bytes),
            r.runs[0].gc_count,
            r.runs[1].gc_count,
        );
    }
    let _ = writeln!(
        s,
        "\n(*) the regionless tracing-GC machine stands in for a conventional compiler."
    );
    s
}

/// Milliseconds with 3-digit precision, as a JSON number.
fn json_ms(d: Duration) -> Json {
    Json::Num((d.as_secs_f64() * 1_000_000.0).round() / 1000.0)
}

fn measurement_json(m: &Measurement) -> Json {
    let mut fields = vec![
        ("label".to_string(), Json::str(m.label)),
        ("time_ms".to_string(), json_ms(m.time)),
        ("steps".to_string(), Json::UInt(m.steps)),
        ("alloc_bytes".to_string(), Json::UInt(m.alloc_bytes)),
        ("peak_bytes".to_string(), Json::UInt(m.peak_bytes)),
        ("gc_count".to_string(), Json::UInt(m.gc_count)),
        ("forced_gcs".to_string(), Json::UInt(m.forced_gcs)),
        ("verify_walks".to_string(), Json::UInt(m.verify_walks)),
        ("faults_survived".to_string(), Json::UInt(m.faults_survived)),
        ("crashed".to_string(), Json::Bool(m.crashed)),
    ];
    if let Some(metrics) = &m.metrics {
        fields.push(("metrics".to_string(), metrics.to_json()));
    }
    Json::Obj(fields)
}

/// Serialises the table as machine-readable JSON (per-program compile
/// time plus the per-strategy run time, steps, allocation, peak bytes,
/// collection counts, and the unified metrics snapshot). All emission
/// goes through [`rml_session::json`] — strings are escaped and
/// non-finite floats are rejected rather than interpolated.
pub fn to_json(rows: &[Row]) -> String {
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::str(r.name)),
                ("loc", Json::UInt(r.loc as u64)),
                ("spurious_fns", Json::UInt(r.fcns.0 as u64)),
                ("total_fns", Json::UInt(r.fcns.1 as u64)),
                ("spurious_insts", Json::UInt(r.insts.0 as u64)),
                ("total_insts", Json::UInt(r.insts.1 as u64)),
                ("diff", Json::Bool(r.diff)),
                ("compile_ms", json_ms(r.compile_time)),
                (
                    "runs",
                    Json::Arr(r.runs.iter().map(measurement_json).collect()),
                ),
            ])
        })
        .collect();
    let mut out = Json::obj([("rows", Json::Arr(rows_json))]).render();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_vars_is_alpha_invariant() {
        let a = "letregion r5 in (fun f [e3 ] x = x at r5)0 end";
        let b = "letregion r9 in (fun f [e7 ] x = x at r9)0 end";
        assert_eq!(normalize_vars(a), normalize_vars(b));
        let c = "letregion r5 r6 in (fun f [e3 ] x = x at r6)0 end";
        assert_ne!(normalize_vars(a), normalize_vars(c));
    }

    #[test]
    fn normalize_vars_leaves_identifiers_with_underscores_alone() {
        // `r5_tail` is an ordinary identifier; its `r5` prefix must not be
        // rewritten (and so two different such identifiers stay distinct).
        assert_eq!(normalize_vars("r5_tail"), "r5_tail");
        assert_ne!(normalize_vars("r5_tail"), normalize_vars("r6_tail"));
        // The variable immediately before an underscore-free boundary is
        // still normalised.
        assert_eq!(normalize_vars("at r5,"), normalize_vars("at r8,"));
        // And a digits-then-underscore token inside a larger identifier
        // (preceded by an identifier char) is untouched as before.
        assert_eq!(normalize_vars("xr5_tail"), "xr5_tail");
    }

    /// The differential oracle end-to-end on a tiny program: all 16
    /// cells, both fault probes, and a clean verdict.
    #[test]
    fn differential_oracle_accepts_a_tiny_program() {
        let p = rml::programs::Program {
            name: "tiny",
            source: "fun main () = size (\"a\" ^ \"b\" ^ \"\") + 1",
            expected: None,
        };
        let opts = rml::torture::TortureOpts {
            fuel: 50_000,
            with_basis: true,
            ..Default::default()
        };
        let rep = rml::run_with_big_stack(move || {
            let set = compile_set(&p);
            rml::torture::torture_compiled(p.name, &set.rg, &set.rgm, &set.r, &opts)
        });
        assert!(rep.ok(), "{}", rep.render());
        assert_eq!(rep.cells.len(), 16);
        assert_eq!(rep.probes.len(), 2);
    }

    /// Release-only regression at the oracle level: the `strings` suite
    /// program exercises empty-string evacuation, which once corrupted
    /// the regionless baseline heap under stress-every-step (a one-word
    /// object cannot hold the collector's two-word forwarding marker).
    /// Too slow in debug — stress-every-step is O(steps × live heap).
    #[cfg(not(debug_assertions))]
    #[test]
    fn differential_oracle_accepts_the_strings_program() {
        let opts = rml::torture::TortureOpts {
            fuel: 30_000,
            with_basis: true,
            ..Default::default()
        };
        let rep = rml::run_with_big_stack(move || {
            let p = rml::programs::by_name("strings").unwrap();
            let set = compile_set(&p);
            rml::torture::torture_compiled(p.name, &set.rg, &set.rgm, &set.r, &opts)
        });
        assert!(rep.ok(), "{}", rep.render());
    }

    #[test]
    fn one_row_has_all_strategies() {
        let r = rml::run_with_big_stack(|| {
            let p = rml::programs::by_name("fib").unwrap();
            row(&p, 1)
        });
        assert_eq!(r.runs.len(), 5);
        assert!(r.runs.iter().all(|m| !m.crashed));
        assert!(r.loc > 0);
        // The robustness measurement actually tortured: collections were
        // forced, the verifier walked, and both fault probes survived.
        let torture = &r.runs[4];
        assert_eq!(torture.label, "rg+torture");
        assert!(torture.forced_gcs > 0);
        assert!(torture.verify_walks > 0);
        assert_eq!(torture.faults_survived, 2);
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let r = rml::run_with_big_stack(|| {
            let p = rml::programs::by_name("fib").unwrap();
            row(&p, 1)
        });
        let j = to_json(&[r]);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"name\":\"fib\""));
        assert!(j.contains("\"label\":\"baseline\""));
        // Every non-crashed run embeds the unified metrics snapshot.
        assert!(j.contains("\"metrics\""));
        assert!(j.contains("\"gc_pauses\""));
        assert!(j.contains("\"p99_us\""));
        // Balanced braces and brackets (no serde to parse it back).
        let depth = |open: char, close: char| {
            j.chars().filter(|c| *c == open).count() as i64
                - j.chars().filter(|c| *c == close).count() as i64
        };
        assert_eq!(depth('{', '}'), 0);
        assert_eq!(depth('[', ']'), 0);
    }
}
