//! The benchmark harness that regenerates the paper's evaluation.
//!
//! [`figure9`] produces, for every program of the suite, the full row of
//! the paper's Figure 9: lines of code, spurious-function and
//! spurious-instantiation counts, whether the spurious machinery changed
//! the generated code (`diff`), and — per compilation strategy (`rg`,
//! `rg-`, `r`, plus the regionless `baseline` standing in for MLton) —
//! execution time, machine steps, allocation, peak memory (the simulated
//! RSS), and the number of reference-tracing collections.
//!
//! Every program is compiled **exactly once per strategy** (three
//! compilations per program, see [`CompiledSet`]); the statistics
//! columns, the `diff` column, and all four measurements share those
//! compilations. The basis library's own statistics (subtracted from the
//! per-program columns) are compiled once per process. [`figure9`] runs
//! the rows on scoped threads, one per program, joining in suite order so
//! the table is deterministic.

use rml::{compile_with_basis, execute, programs::Program, ExecOpts, Strategy};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Per-strategy measurements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Strategy label (`rg`, `rg-`, `r`, `baseline`).
    pub label: &'static str,
    /// Wall-clock time of the run (best of `repeats`).
    pub time: Duration,
    /// Machine steps (deterministic time proxy).
    pub steps: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Peak live bytes (the paper's `rss`).
    pub peak_bytes: u64,
    /// Reference-tracing collections (the paper's `gc #`).
    pub gc_count: u64,
    /// Whether the run crashed (dangling pointer under `rg-`).
    pub crashed: bool,
}

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub name: &'static str,
    /// Lines of code (excluding the basis).
    pub loc: usize,
    /// Spurious functions / total functions (program + basis).
    pub fcns: (usize, usize),
    /// Spurious boxed instantiations / total instantiations.
    pub insts: (usize, usize),
    /// Did the spurious machinery change the generated code (rg vs rg-)?
    pub diff: bool,
    /// Total wall-clock compilation time across the three strategies.
    pub compile_time: Duration,
    /// Measurements for rg, rg-, r, baseline (in that order).
    pub runs: Vec<Measurement>,
}

/// One program compiled under every strategy the table needs, each
/// exactly once.
#[derive(Debug)]
pub struct CompiledSet {
    /// The `rg` compilation (also drives the regionless baseline run).
    pub rg: rml::Compiled,
    /// The `rg-` compilation.
    pub rgm: rml::Compiled,
    /// The `r` compilation.
    pub r: rml::Compiled,
    /// Compilations performed to build this set (always 3; asserted by
    /// the cache tests against the process-wide counter).
    pub compiles: usize,
}

/// Compiles a program under all three strategies, once each.
pub fn compile_set(p: &Program) -> CompiledSet {
    let rg = compile_with_basis(p.source, Strategy::Rg).expect("compile rg");
    let rgm = compile_with_basis(p.source, Strategy::RgMinus).expect("compile rg-");
    let r = compile_with_basis(p.source, Strategy::R).expect("compile r");
    CompiledSet {
        rg,
        rgm,
        r,
        compiles: 3,
    }
}

/// The basis library's Figure 9 statistics (compiled once per process;
/// only the plain-data statistics are retained, so the cache is shared
/// across the harness's worker threads).
pub fn basis_stats() -> &'static rml_infer::Stats {
    static BASIS: OnceLock<rml_infer::Stats> = OnceLock::new();
    BASIS.get_or_init(|| {
        rml::compile(rml::basis::BASIS, Strategy::Rg)
            .expect("compile basis")
            .output
            .stats
    })
}

/// Runs an already-compiled program, best-of-`repeats`.
pub fn measure_compiled(
    c: &rml::Compiled,
    baseline: bool,
    label: &'static str,
    repeats: usize,
) -> Measurement {
    let opts = ExecOpts {
        baseline,
        ..ExecOpts::default()
    };
    let mut best = Duration::MAX;
    let mut last = None;
    let mut crashed = false;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        match execute(c, &opts) {
            Ok(out) => {
                best = best.min(t0.elapsed());
                last = Some(out);
            }
            Err(_) => {
                crashed = true;
                break;
            }
        }
    }
    match last {
        Some(out) if !crashed => Measurement {
            label,
            time: best,
            steps: out.steps,
            alloc_bytes: out.stats.bytes_allocated,
            peak_bytes: out.stats.peak_bytes(),
            gc_count: out.stats.gc_count,
            crashed: false,
        },
        _ => Measurement {
            label,
            time: Duration::ZERO,
            steps: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
            gc_count: 0,
            crashed: true,
        },
    }
}

/// Runs one program under one strategy, best-of-`repeats`, compiling it
/// first. Prefer [`measure_compiled`] (via [`compile_set`]) when several
/// measurements share a program.
pub fn measure(
    p: &Program,
    strategy: Strategy,
    baseline: bool,
    label: &'static str,
    repeats: usize,
) -> Measurement {
    let c = compile_with_basis(p.source, strategy).expect("compile failed");
    measure_compiled(&c, baseline, label, repeats)
}

/// Normalises variable names (`r17`, `e3`, `a5`) to first-occurrence
/// indices so region-annotated programs from different compilations can be
/// compared structurally (the `diff` column).
pub fn normalize_vars(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut maps: [std::collections::HashMap<String, usize>; 3] = Default::default();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let class = match c {
            'r' => Some(0),
            'e' => Some(1),
            'a' => Some(2),
            _ => None,
        };
        // A variable token is r/e/a followed by digits, not preceded by an
        // identifier character.
        let prev_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        if let (Some(k), false) = (class, prev_ident) {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            // The digits must end the token: `r5_tail` is an ordinary
            // identifier, not region variable `r5`.
            let ends_token =
                j == bytes.len() || !(bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_');
            if j > i + 1 && ends_token {
                let tok = &s[i..j];
                let next = maps[k].len();
                let id = *maps[k].entry(tok.to_string()).or_insert(next);
                out.push(c);
                out.push('#');
                out.push_str(&id.to_string());
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Function names defined by a program's own source (not the basis).
fn own_functions(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut toks = src.split_whitespace().peekable();
    while let Some(t) = toks.next() {
        if t == "fun" || t == "and" {
            if let Some(name) = toks.peek() {
                out.push(
                    name.trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Does the spurious machinery change the generated code for `p`'s own
/// functions, given its compilations (the paper's `diff` column — the
/// basis is compiled either way, so only the benchmark's own schemes
/// count)?
pub fn code_differs_compiled(p: &Program, rg: &rml::Compiled, rgm: &rml::Compiled) -> bool {
    let own = own_functions(p.source);
    let render = |c: &rml::Compiled| -> Vec<String> {
        c.output
            .schemes
            .iter()
            .filter(|(n, _)| own.iter().any(|o| o == n.as_str()))
            .map(|(n, s)| {
                format!(
                    "{n}:{}",
                    normalize_vars(&rml_core::pretty::scheme_to_string(s))
                )
            })
            .collect()
    };
    render(rg) != render(rgm)
}

/// As [`code_differs_compiled`], compiling `p` afresh. Prefer the
/// `_compiled` variant when the compilations are already at hand.
pub fn code_differs(p: &Program) -> bool {
    let rg = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let rgm = compile_with_basis(p.source, Strategy::RgMinus).expect("compile");
    code_differs_compiled(p, &rg, &rgm)
}

/// Builds one Figure 9 row from an existing [`CompiledSet`], performing
/// no compilations of its own (the basis statistics come from the
/// process-wide [`basis_stats`] cache). The `fcns`/`inst` counts are for
/// the program itself (basis counts subtracted, as the paper excludes the
/// Basis Library from the per-benchmark columns).
pub fn row_with(p: &Program, set: &CompiledSet, repeats: usize) -> Row {
    let basis = basis_stats();
    let rg_stats = &set.rg.output.stats;
    let sub = |a: usize, b: usize| a.saturating_sub(b);
    Row {
        name: p.name,
        loc: p.loc(),
        fcns: (
            sub(rg_stats.spurious_fns, basis.spurious_fns),
            sub(rg_stats.total_fns, basis.total_fns),
        ),
        insts: (
            sub(rg_stats.spurious_boxed_insts, basis.spurious_boxed_insts),
            sub(rg_stats.total_insts, basis.total_insts),
        ),
        diff: code_differs_compiled(p, &set.rg, &set.rgm),
        compile_time: set.rg.timings.total + set.rgm.timings.total + set.r.timings.total,
        runs: vec![
            measure_compiled(&set.rg, false, "rg", repeats),
            measure_compiled(&set.rgm, false, "rg-", repeats),
            measure_compiled(&set.r, false, "r", repeats),
            measure_compiled(&set.rg, true, "baseline", repeats),
        ],
    }
}

/// Builds one Figure 9 row, compiling the program (once per strategy).
pub fn row(p: &Program, repeats: usize) -> Row {
    let set = compile_set(p);
    row_with(p, &set, repeats)
}

/// The whole table. Rows are computed on scoped worker threads (one per
/// program — compilations dominate, and each worker owns its own
/// [`CompiledSet`]) and joined in suite order, so the output is
/// deterministic up to the timing columns.
pub fn figure9(repeats: usize) -> Vec<Row> {
    let progs = rml::programs::suite();
    // Fill the basis cache before spawning so no worker repeats the work
    // while another holds the `OnceLock` initialiser.
    let _ = basis_stats();
    std::thread::scope(|s| {
        let handles: Vec<_> = progs
            .iter()
            .map(|p| s.spawn(move || row(p, repeats)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("figure9 worker panicked"))
            .collect()
    })
}

fn kb(bytes: u64) -> String {
    format!("{}k", bytes / 1024)
}

/// Renders the table in the paper's layout.
pub fn render(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>4} {:>8} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
        "program", "loc", "fcns", "inst", "diff",
        "rg", "rg-", "r", "mlton*",
        "rss rg", "rss rg-", "rss r", "rss ml*",
        "gc rg", "gc rg-"
    );
    let _ = writeln!(s, "{}", "-".repeat(150));
    for r in rows {
        let t = |m: &Measurement| {
            if m.crashed {
                "CRASH".to_string()
            } else {
                format!("{:.1}ms", m.time.as_secs_f64() * 1000.0)
            }
        };
        let _ = writeln!(
            s,
            "{:<12} {:>4} {:>8} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
            r.name,
            r.loc,
            format!("{}/{}", r.fcns.0, r.fcns.1),
            format!("{}/{}", r.insts.0, r.insts.1),
            if r.diff { "y" } else { "" },
            t(&r.runs[0]),
            t(&r.runs[1]),
            t(&r.runs[2]),
            t(&r.runs[3]),
            kb(r.runs[0].peak_bytes),
            kb(r.runs[1].peak_bytes),
            kb(r.runs[2].peak_bytes),
            kb(r.runs[3].peak_bytes),
            r.runs[0].gc_count,
            r.runs[1].gc_count,
        );
    }
    let _ = writeln!(
        s,
        "\n(*) the regionless tracing-GC machine stands in for a conventional compiler."
    );
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises the table as machine-readable JSON (per-program compile
/// time plus the per-strategy run time, steps, allocation, peak bytes,
/// and collection counts). Hand-rolled: the workspace has no serde.
pub fn to_json(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut s = String::from("{\n  \"rows\": [\n");
    for (ri, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"loc\": {}, \"spurious_fns\": {}, \"total_fns\": {}, \
             \"spurious_insts\": {}, \"total_insts\": {}, \"diff\": {}, \
             \"compile_ms\": {:.3}, \"runs\": [",
            json_escape(r.name),
            r.loc,
            r.fcns.0,
            r.fcns.1,
            r.insts.0,
            r.insts.1,
            r.diff,
            r.compile_time.as_secs_f64() * 1000.0,
        );
        for (mi, m) in r.runs.iter().enumerate() {
            let _ = write!(
                s,
                "{{\"label\": \"{}\", \"time_ms\": {:.3}, \"steps\": {}, \
                 \"alloc_bytes\": {}, \"peak_bytes\": {}, \"gc_count\": {}, \"crashed\": {}}}",
                json_escape(m.label),
                m.time.as_secs_f64() * 1000.0,
                m.steps,
                m.alloc_bytes,
                m.peak_bytes,
                m.gc_count,
                m.crashed,
            );
            if mi + 1 < r.runs.len() {
                s.push_str(", ");
            }
        }
        s.push_str("]}");
        if ri + 1 < rows.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_vars_is_alpha_invariant() {
        let a = "letregion r5 in (fun f [e3 ] x = x at r5)0 end";
        let b = "letregion r9 in (fun f [e7 ] x = x at r9)0 end";
        assert_eq!(normalize_vars(a), normalize_vars(b));
        let c = "letregion r5 r6 in (fun f [e3 ] x = x at r6)0 end";
        assert_ne!(normalize_vars(a), normalize_vars(c));
    }

    #[test]
    fn normalize_vars_leaves_identifiers_with_underscores_alone() {
        // `r5_tail` is an ordinary identifier; its `r5` prefix must not be
        // rewritten (and so two different such identifiers stay distinct).
        assert_eq!(normalize_vars("r5_tail"), "r5_tail");
        assert_ne!(normalize_vars("r5_tail"), normalize_vars("r6_tail"));
        // The variable immediately before an underscore-free boundary is
        // still normalised.
        assert_eq!(normalize_vars("at r5,"), normalize_vars("at r8,"));
        // And a digits-then-underscore token inside a larger identifier
        // (preceded by an identifier char) is untouched as before.
        assert_eq!(normalize_vars("xr5_tail"), "xr5_tail");
    }

    #[test]
    fn one_row_has_all_strategies() {
        let p = rml::programs::by_name("fib").unwrap();
        let r = row(&p, 1);
        assert_eq!(r.runs.len(), 4);
        assert!(r.runs.iter().all(|m| !m.crashed));
        assert!(r.loc > 0);
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let p = rml::programs::by_name("fib").unwrap();
        let r = row(&p, 1);
        let j = to_json(&[r]);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"name\": \"fib\""));
        assert!(j.contains("\"label\": \"baseline\""));
        // Balanced braces and brackets (no serde to parse it back).
        let depth = |open: char, close: char| {
            j.chars().filter(|c| *c == open).count() as i64
                - j.chars().filter(|c| *c == close).count() as i64
        };
        assert_eq!(depth('{', '}'), 0);
        assert_eq!(depth('[', ']'), 0);
    }
}
