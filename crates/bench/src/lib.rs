//! The benchmark harness that regenerates the paper's evaluation.
//!
//! [`figure9`] produces, for every program of the suite, the full row of
//! the paper's Figure 9: lines of code, spurious-function and
//! spurious-instantiation counts, whether the spurious machinery changed
//! the generated code (`diff`), and — per compilation strategy (`rg`,
//! `rg-`, `r`, plus the regionless `baseline` standing in for MLton) —
//! execution time, machine steps, allocation, peak memory (the simulated
//! RSS), and the number of reference-tracing collections.

use rml::{compile_with_basis, execute, programs::Program, ExecOpts, Strategy};
use std::time::{Duration, Instant};

/// Per-strategy measurements.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Strategy label (`rg`, `rg-`, `r`, `baseline`).
    pub label: &'static str,
    /// Wall-clock time of the run (best of `repeats`).
    pub time: Duration,
    /// Machine steps (deterministic time proxy).
    pub steps: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Peak live bytes (the paper's `rss`).
    pub peak_bytes: u64,
    /// Reference-tracing collections (the paper's `gc #`).
    pub gc_count: u64,
    /// Whether the run crashed (dangling pointer under `rg-`).
    pub crashed: bool,
}

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub name: &'static str,
    /// Lines of code (excluding the basis).
    pub loc: usize,
    /// Spurious functions / total functions (program + basis).
    pub fcns: (usize, usize),
    /// Spurious boxed instantiations / total instantiations.
    pub insts: (usize, usize),
    /// Did the spurious machinery change the generated code (rg vs rg-)?
    pub diff: bool,
    /// Measurements for rg, rg-, r, baseline (in that order).
    pub runs: Vec<Measurement>,
}

/// Runs one program under one strategy, best-of-`repeats`.
pub fn measure(
    p: &Program,
    strategy: Strategy,
    baseline: bool,
    label: &'static str,
    repeats: usize,
) -> Measurement {
    let c = compile_with_basis(p.source, strategy).expect("compile failed");
    let opts = ExecOpts {
        baseline,
        ..ExecOpts::default()
    };
    let mut best = Duration::MAX;
    let mut last = None;
    let mut crashed = false;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        match execute(&c, &opts) {
            Ok(out) => {
                best = best.min(t0.elapsed());
                last = Some(out);
            }
            Err(_) => {
                crashed = true;
                break;
            }
        }
    }
    match last {
        Some(out) if !crashed => Measurement {
            label,
            time: best,
            steps: out.steps,
            alloc_bytes: out.stats.bytes_allocated,
            peak_bytes: out.stats.peak_bytes(),
            gc_count: out.stats.gc_count,
            crashed: false,
        },
        _ => Measurement {
            label,
            time: Duration::ZERO,
            steps: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
            gc_count: 0,
            crashed: true,
        },
    }
}

/// Normalises variable names (`r17`, `e3`, `a5`) to first-occurrence
/// indices so region-annotated programs from different compilations can be
/// compared structurally (the `diff` column).
pub fn normalize_vars(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut maps: [std::collections::HashMap<String, usize>; 3] = Default::default();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let class = match c {
            'r' => Some(0),
            'e' => Some(1),
            'a' => Some(2),
            _ => None,
        };
        // A variable token is r/e/a followed by digits, not preceded by an
        // identifier character.
        let prev_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        if let (Some(k), false) = (class, prev_ident) {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && (j == bytes.len() || !(bytes[j].is_ascii_alphanumeric())) {
                let tok = &s[i..j];
                let next = maps[k].len();
                let id = *maps[k].entry(tok.to_string()).or_insert(next);
                out.push(c);
                out.push('#');
                out.push_str(&id.to_string());
                i = j;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Function names defined by a program's own source (not the basis).
fn own_functions(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut toks = src.split_whitespace().peekable();
    while let Some(t) = toks.next() {
        if t == "fun" || t == "and" {
            if let Some(name) = toks.peek() {
                out.push(name.trim_matches(|c: char| !c.is_alphanumeric() && c != '_').to_string());
            }
        }
    }
    out
}

/// Does the spurious machinery change the generated code for `p`'s own
/// functions (the paper's `diff` column — the basis is compiled either
/// way, so only the benchmark's own schemes count)?
pub fn code_differs(p: &Program) -> bool {
    let rg = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let rgm = compile_with_basis(p.source, Strategy::RgMinus).expect("compile");
    let own = own_functions(p.source);
    let render = |c: &rml::Compiled| -> Vec<String> {
        c.output
            .schemes
            .iter()
            .filter(|(n, _)| own.iter().any(|o| o == n.as_str()))
            .map(|(n, s)| {
                format!("{n}:{}", normalize_vars(&rml_core::pretty::scheme_to_string(s)))
            })
            .collect()
    };
    render(&rg) != render(&rgm)
}

/// Builds one Figure 9 row. The `fcns`/`inst` counts are for the program
/// itself (basis counts subtracted, as the paper excludes the Basis
/// Library from the per-benchmark columns).
pub fn row(p: &Program, repeats: usize) -> Row {
    let rg = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let basis = rml::compile(rml::basis::BASIS, Strategy::Rg).expect("compile basis");
    let sub = |a: usize, b: usize| a.saturating_sub(b);
    Row {
        name: p.name,
        loc: p.loc(),
        fcns: (
            sub(rg.output.stats.spurious_fns, basis.output.stats.spurious_fns),
            sub(rg.output.stats.total_fns, basis.output.stats.total_fns),
        ),
        insts: (
            sub(
                rg.output.stats.spurious_boxed_insts,
                basis.output.stats.spurious_boxed_insts,
            ),
            sub(rg.output.stats.total_insts, basis.output.stats.total_insts),
        ),
        diff: code_differs(p),
        runs: vec![
            measure(p, Strategy::Rg, false, "rg", repeats),
            measure(p, Strategy::RgMinus, false, "rg-", repeats),
            measure(p, Strategy::R, false, "r", repeats),
            measure(p, Strategy::Rg, true, "baseline", repeats),
        ],
    }
}

/// The whole table.
pub fn figure9(repeats: usize) -> Vec<Row> {
    rml::programs::suite()
        .iter()
        .map(|p| row(p, repeats))
        .collect()
}

fn kb(bytes: u64) -> String {
    format!("{}k", bytes / 1024)
}

/// Renders the table in the paper's layout.
pub fn render(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>4} {:>8} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
        "program", "loc", "fcns", "inst", "diff",
        "rg", "rg-", "r", "mlton*",
        "rss rg", "rss rg-", "rss r", "rss ml*",
        "gc rg", "gc rg-"
    );
    let _ = writeln!(s, "{}", "-".repeat(150));
    for r in rows {
        let t = |m: &Measurement| {
            if m.crashed {
                "CRASH".to_string()
            } else {
                format!("{:.1}ms", m.time.as_secs_f64() * 1000.0)
            }
        };
        let _ = writeln!(
            s,
            "{:<12} {:>4} {:>8} {:>9} {:>4} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>6} {:>6}",
            r.name,
            r.loc,
            format!("{}/{}", r.fcns.0, r.fcns.1),
            format!("{}/{}", r.insts.0, r.insts.1),
            if r.diff { "y" } else { "" },
            t(&r.runs[0]),
            t(&r.runs[1]),
            t(&r.runs[2]),
            t(&r.runs[3]),
            kb(r.runs[0].peak_bytes),
            kb(r.runs[1].peak_bytes),
            kb(r.runs[2].peak_bytes),
            kb(r.runs[3].peak_bytes),
            r.runs[0].gc_count,
            r.runs[1].gc_count,
        );
    }
    let _ = writeln!(
        s,
        "\n(*) the regionless tracing-GC machine stands in for a conventional compiler."
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_vars_is_alpha_invariant() {
        let a = "letregion r5 in (fun f [e3 ] x = x at r5)0 end";
        let b = "letregion r9 in (fun f [e7 ] x = x at r9)0 end";
        assert_eq!(normalize_vars(a), normalize_vars(b));
        let c = "letregion r5 r6 in (fun f [e3 ] x = x at r6)0 end";
        assert_ne!(normalize_vars(a), normalize_vars(c));
    }

    #[test]
    fn one_row_has_all_strategies() {
        let p = rml::programs::by_name("fib").unwrap();
        let r = row(&p, 1);
        assert_eq!(r.runs.len(), 4);
        assert!(r.runs.iter().all(|m| !m.crashed));
        assert!(r.loc > 0);
    }
}
