//! Ablations over the design choices called out in `DESIGN.md`:
//!
//! * spurious-variable style — scheme (2) (fresh secondary effect
//!   variables) vs scheme (3) (identify with the function's arrow handle),
//! * GC trigger threshold sweep,
//! * generational vs non-generational collection.
//!
//! ```sh
//! cargo bench -p rml-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rml::{compile_with_basis, execute, ExecOpts, SpuriousStyle, Strategy};
use rml_eval::GcPolicy;

fn bench_spurious_style(c: &mut Criterion) {
    let p = rml::programs::by_name("compose").unwrap();
    let mut group = c.benchmark_group("spurious_style_compile");
    group.sample_size(20);
    for (label, style) in [
        ("identify(3)", SpuriousStyle::Identify),
        ("secondary(2)", SpuriousStyle::Secondary),
    ] {
        let full = format!("{}\n{}", rml::basis::BASIS, p.source);
        group.bench_function(label, |b| {
            b.iter(|| rml::pipeline::compile_opts(&full, Strategy::Rg, style).expect("compile"))
        });
    }
    group.finish();
}

fn bench_gc_threshold(c: &mut Criterion) {
    let p = rml::programs::by_name("life").unwrap();
    let compiled = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let mut group = c.benchmark_group("gc_threshold_life");
    group.sample_size(10);
    for min_kb in [4u64, 64, 512] {
        group.bench_function(format!("min_{min_kb}k"), |b| {
            let opts = ExecOpts {
                gc: Some(GcPolicy::On {
                    min_bytes: min_kb * 1024,
                    ratio: 1.5,
                    generational: false,
                }),
                ..ExecOpts::default()
            };
            b.iter(|| execute(&compiled, &opts).expect("run"))
        });
    }
    group.finish();
}

fn bench_generational(c: &mut Criterion) {
    let p = rml::programs::by_name("msort").unwrap();
    let compiled = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let mut group = c.benchmark_group("generational_msort");
    group.sample_size(10);
    for (label, generational) in [("major_only", false), ("generational", true)] {
        let opts = ExecOpts {
            gc: Some(GcPolicy::On {
                min_bytes: 16 * 1024,
                ratio: 1.3,
                generational,
            }),
            ..ExecOpts::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| execute(&compiled, &opts).expect("run"))
        });
    }
    group.finish();
}

fn bench_tag_free(c: &mut Criterion) {
    // Section 6: the partly tag-free representation of pairs/refs/cons.
    let p = rml::programs::by_name("msort").unwrap();
    let compiled = compile_with_basis(p.source, Strategy::Rg).expect("compile");
    let mut group = c.benchmark_group("tag_free_msort");
    group.sample_size(10);
    for (label, tag_free) in [("tagged", false), ("untagged", true)] {
        let opts = ExecOpts {
            tag_free,
            ..ExecOpts::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| execute(&compiled, &opts).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spurious_style,
    bench_gc_threshold,
    bench_generational,
    bench_tag_free
);
criterion_main!(benches);
