//! Criterion benchmarks over the Figure 9 suite: execution time per
//! program per compilation strategy (`rg`, `rg-`, `r`, baseline).
//!
//! ```sh
//! cargo bench -p rml-bench --bench figure9
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rml::{compile_with_basis, execute, ExecOpts, Strategy};

fn bench_suite(c: &mut Criterion) {
    // A representative subset: pure-stack (fib), region-friendly (msort),
    // GC-essential (life), and spurious-heavy (compose).
    for name in ["fib", "msort", "life", "compose", "sieve"] {
        let p = rml::programs::by_name(name).expect("program");
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for (label, strategy, baseline) in [
            ("rg", Strategy::Rg, false),
            ("rg-", Strategy::RgMinus, false),
            ("r", Strategy::R, false),
            ("baseline", Strategy::Rg, true),
        ] {
            let compiled = compile_with_basis(p.source, strategy).expect("compile");
            let opts = ExecOpts {
                baseline,
                ..ExecOpts::default()
            };
            group.bench_function(label, |b| {
                b.iter(|| execute(&compiled, &opts).expect("run"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
