//! E6: the paper's Section 4.2/5 claim that the GC-safety modifications
//! have little effect on *compilation* performance: region inference with
//! spurious type variables (`rg`) vs without (`rg-`) vs plain (`r`), over
//! the whole benchmark suite plus the basis.
//!
//! ```sh
//! cargo bench -p rml-bench --bench compile_time
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rml::{compile_with_basis, Strategy};

fn bench_compile(c: &mut Criterion) {
    let sources: Vec<&'static str> = rml::programs::suite().iter().map(|p| p.source).collect();
    let mut group = c.benchmark_group("compile_suite");
    group.sample_size(10);
    for (label, strategy) in [
        ("rg", Strategy::Rg),
        ("rg-", Strategy::RgMinus),
        ("r", Strategy::R),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for src in &sources {
                    let _ = compile_with_basis(src, strategy).expect("compile");
                }
            })
        });
    }
    group.finish();

    // Phase split on one mid-sized program.
    let p = rml::programs::by_name("life").unwrap();
    let full = format!("{}\n{}", rml::basis::BASIS, p.source);
    let mut phases = c.benchmark_group("phases_life");
    phases.sample_size(20);
    phases.bench_function("parse", |b| {
        b.iter(|| rml_syntax::parse_program(&full).unwrap())
    });
    let ast = rml_syntax::parse_program(&full).unwrap();
    phases.bench_function("hm", |b| b.iter(|| rml_hm::infer_program(&ast).unwrap()));
    let typed = rml_hm::infer_program(&ast).unwrap();
    phases.bench_function("region_inference", |b| {
        b.iter(|| rml_infer::infer(&typed, Default::default()).unwrap())
    });
    let out = rml_infer::infer(&typed, Default::default()).unwrap();
    phases.bench_function("repr_analysis", |b| b.iter(|| rml_repr::analyze(&out.term)));
    phases.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
