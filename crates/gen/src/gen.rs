//! The type-directed program generator.
//!
//! [`generate`] builds a whole [`Program`] from a `(seed, fuel)` pair:
//! a set of polymorphic combinator declarations (emitted only when the
//! generated code actually uses them, so batch statistics measure real
//! bias), optional exception declarations and monomorphic helpers, and a
//! `fun main () = <int expr>` whose body is generated against target
//! types drawn from a small grammar.
//!
//! Every production is *type-directed*: `expr(env, ty, depth)` returns
//! an expression of exactly `ty` under `env`, so the result is
//! well-typed by construction. Randomness comes exclusively from the
//! seeded [`Xorshift64`]; `fuel` bounds the number of generated nodes.

use rml_runtime::Xorshift64;
use rml_syntax::ast::PrimOp;
use rml_syntax::{Decl, Expr, ExprKind, FunBind, Program, Span, Symbol, TyAnn};

/// Generator options. `(seed, fuel)` fully determines the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenOpts {
    /// PRNG seed (the whole program is a pure function of this and
    /// `fuel`).
    pub seed: u64,
    /// Node budget: roughly the number of non-leaf expression nodes the
    /// generator may spend. 30–60 gives programs of a few hundred AST
    /// nodes; the `RML_GEN_FUEL` environment variable feeds this in the
    /// drivers.
    pub fuel: u32,
}

impl Default for GenOpts {
    fn default() -> GenOpts {
        GenOpts { seed: 1, fuel: 40 }
    }
}

/// The generator's type grammar (the source language's monotypes).
#[derive(Debug, Clone, PartialEq, Eq)]
enum GTy {
    Int,
    Bool,
    Str,
    Unit,
    Pair(Box<GTy>, Box<GTy>),
    List(Box<GTy>),
    Ref(Box<GTy>),
    Arrow(Box<GTy>, Box<GTy>),
}

/// The polymorphic combinator templates. Each registered combinator is
/// emitted once as a top-level `fun` declaration and may be instantiated
/// at many types — that is the let-polymorphism (and, for [`Comb::Compose`],
/// the spurious-type-variable) generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Comb {
    /// `fun zid x = x` : `'a -> 'a`
    Id,
    /// `fun zk x y = x` : `'a -> 'b -> 'a` (the second argument is dead)
    Konst,
    /// `fun zc p = fn a => (#1 p) ((#2 p) a)` :
    /// `('b -> 'c) * ('a -> 'b) -> 'a -> 'c`. The returned closure
    /// captures `p`, whose type mentions `'b` while the closure's own
    /// type does not: `'b` is *spurious* (paper Section 4), and the
    /// generator biases its instantiation toward boxed types.
    Compose,
    /// `fun zt f x = f (f x)` : `('a -> 'a) -> 'a -> 'a`
    Twice,
    /// `fun zfst p = #1 p` : `'a * 'b -> 'a`
    Fst,
    /// `fun zsnd p = #2 p` : `'a * 'b -> 'b`
    Snd,
    /// `fun zm f xs = case xs of nil => nil | h :: t => f h :: zm f t` :
    /// `('a -> 'b) -> 'a list -> 'b list` (region-polymorphic recursion)
    MapList,
    /// `fun za p = case #1 p of nil => #2 p | h :: t => h :: za (t, #2 p)` :
    /// `'a list * 'a list -> 'a list`
    Append,
    /// `fun zln xs = case xs of nil => 0 | h :: t => 1 + zln t` :
    /// `'a list -> int`
    Len,
    /// `fun zs xs = case xs of nil => 0 | h :: t => h + zs t` :
    /// `int list -> int` (monomorphic consumer)
    Sum,
    /// `fun zlp n = if n < 1 then 0 else n + zlp (n - 1)` : `int -> int`
    /// (structurally decreasing, so calls with bounded arguments halt)
    Loop,
    /// `fun zb n = if n < 1 then nil else n :: zb (n - 1)` :
    /// `int -> int list`
    Build,
}

impl Comb {
    fn name(self) -> &'static str {
        match self {
            Comb::Id => "zid",
            Comb::Konst => "zk",
            Comb::Compose => "zc",
            Comb::Twice => "zt",
            Comb::Fst => "zfst",
            Comb::Snd => "zsnd",
            Comb::MapList => "zm",
            Comb::Append => "za",
            Comb::Len => "zln",
            Comb::Sum => "zs",
            Comb::Loop => "zlp",
            Comb::Build => "zb",
        }
    }
}

// --- small AST builders -------------------------------------------------

fn e(kind: ExprKind) -> Expr {
    kind.into()
}

fn var(name: &str) -> Expr {
    e(ExprKind::Var(Symbol::intern(name)))
}

fn app(f: Expr, a: Expr) -> Expr {
    e(ExprKind::App(Box::new(f), Box::new(a)))
}

fn app2(f: Expr, a: Expr, b: Expr) -> Expr {
    app(app(f, a), b)
}

fn int(n: i64) -> Expr {
    e(ExprKind::Int(n))
}

fn pair(a: Expr, b: Expr) -> Expr {
    e(ExprKind::Pair(Box::new(a), Box::new(b)))
}

fn lam(p: &str, body: Expr) -> Expr {
    e(ExprKind::Lam {
        param: Symbol::intern(p),
        ann: None,
        body: Box::new(body),
    })
}

fn prim(op: PrimOp, args: Vec<Expr>) -> Expr {
    e(ExprKind::Prim(op, args))
}

fn fun_bind(name: &str, params: &[&str], body: Expr) -> FunBind {
    FunBind {
        name: Symbol::intern(name),
        params: params.iter().map(|p| (Symbol::intern(p), None)).collect(),
        ret: None,
        body,
        span: Span::DUMMY,
    }
}

/// The combinator's top-level declaration.
fn comb_decl(c: Comb) -> Decl {
    let b = match c {
        Comb::Id => fun_bind("zid", &["x"], var("x")),
        Comb::Konst => fun_bind("zk", &["x", "y"], var("x")),
        Comb::Compose => fun_bind(
            "zc",
            &["p"],
            lam(
                "a",
                app(
                    e(ExprKind::Sel(1, Box::new(var("p")))),
                    app(e(ExprKind::Sel(2, Box::new(var("p")))), var("a")),
                ),
            ),
        ),
        Comb::Twice => fun_bind("zt", &["f", "x"], app(var("f"), app(var("f"), var("x")))),
        Comb::Fst => fun_bind("zfst", &["p"], e(ExprKind::Sel(1, Box::new(var("p"))))),
        Comb::Snd => fun_bind("zsnd", &["p"], e(ExprKind::Sel(2, Box::new(var("p"))))),
        Comb::MapList => fun_bind(
            "zm",
            &["f", "xs"],
            e(ExprKind::CaseList {
                scrut: Box::new(var("xs")),
                nil_rhs: Box::new(e(ExprKind::Nil)),
                head: Symbol::intern("h"),
                tail: Symbol::intern("t"),
                cons_rhs: Box::new(e(ExprKind::Cons(
                    Box::new(app(var("f"), var("h"))),
                    Box::new(app2(var("zm"), var("f"), var("t"))),
                ))),
            }),
        ),
        Comb::Append => fun_bind(
            "za",
            &["p"],
            e(ExprKind::CaseList {
                scrut: Box::new(e(ExprKind::Sel(1, Box::new(var("p"))))),
                nil_rhs: Box::new(e(ExprKind::Sel(2, Box::new(var("p"))))),
                head: Symbol::intern("h"),
                tail: Symbol::intern("t"),
                cons_rhs: Box::new(e(ExprKind::Cons(
                    Box::new(var("h")),
                    Box::new(app(
                        var("za"),
                        pair(var("t"), e(ExprKind::Sel(2, Box::new(var("p"))))),
                    )),
                ))),
            }),
        ),
        Comb::Len => fun_bind(
            "zln",
            &["xs"],
            e(ExprKind::CaseList {
                scrut: Box::new(var("xs")),
                nil_rhs: Box::new(int(0)),
                head: Symbol::intern("h"),
                tail: Symbol::intern("t"),
                cons_rhs: Box::new(prim(PrimOp::Add, vec![int(1), app(var("zln"), var("t"))])),
            }),
        ),
        Comb::Sum => fun_bind(
            "zs",
            &["xs"],
            e(ExprKind::CaseList {
                scrut: Box::new(var("xs")),
                nil_rhs: Box::new(int(0)),
                head: Symbol::intern("h"),
                tail: Symbol::intern("t"),
                cons_rhs: Box::new(prim(PrimOp::Add, vec![var("h"), app(var("zs"), var("t"))])),
            }),
        ),
        Comb::Loop => fun_bind(
            "zlp",
            &["n"],
            e(ExprKind::If(
                Box::new(prim(PrimOp::Lt, vec![var("n"), int(1)])),
                Box::new(int(0)),
                Box::new(prim(
                    PrimOp::Add,
                    vec![
                        var("n"),
                        app(var("zlp"), prim(PrimOp::Sub, vec![var("n"), int(1)])),
                    ],
                )),
            )),
        ),
        Comb::Build => fun_bind(
            "zb",
            &["n"],
            e(ExprKind::If(
                Box::new(prim(PrimOp::Lt, vec![var("n"), int(1)])),
                Box::new(e(ExprKind::Nil)),
                Box::new(e(ExprKind::Cons(
                    Box::new(var("n")),
                    Box::new(app(var("zb"), prim(PrimOp::Sub, vec![var("n"), int(1)]))),
                ))),
            )),
        ),
    };
    Decl::Fun(vec![b])
}

// --- the generator ------------------------------------------------------

const MAX_DEPTH: u32 = 9;
const STRINGS: &[&str] = &["", "a", "gc", "oh", "no", "zz", "rml"];

struct Gen {
    rng: Xorshift64,
    fuel: i64,
    next_name: u32,
    /// Combinators in first-use order (emitted before `main`).
    combos: Vec<Comb>,
    /// Declared exception constructors (argument type `int`).
    exns: Vec<Symbol>,
}

type Env = Vec<(Symbol, GTy)>;

impl Gen {
    fn new(opts: &GenOpts) -> Gen {
        Gen {
            rng: Xorshift64::new(opts.seed),
            fuel: i64::from(opts.fuel),
            next_name: 0,
            combos: Vec::new(),
            exns: Vec::new(),
        }
    }

    fn fresh(&mut self, prefix: &str) -> Symbol {
        let n = self.next_name;
        self.next_name += 1;
        Symbol::intern(&format!("{prefix}{n}"))
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.rng.next_below(n)
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.rng.chance(num, den)
    }

    /// Registers a combinator on first use; returns its name.
    fn comb(&mut self, c: Comb) -> Expr {
        if !self.combos.contains(&c) {
            self.combos.push(c);
        }
        var(c.name())
    }

    /// Registers (or reuses) an `exception zeN of int` declaration.
    fn exn(&mut self) -> Symbol {
        if self.exns.is_empty() || (self.exns.len() < 2 && self.chance(1, 3)) {
            let s = self.fresh("ze");
            self.exns.push(s);
            s
        } else {
            let i = self.pick(self.exns.len() as u64) as usize;
            self.exns[i]
        }
    }

    /// A random target type, depth-bounded.
    fn rty(&mut self, depth: u32) -> GTy {
        let compound = depth < 2;
        let w = if compound { 17 } else { 10 };
        match self.pick(w) {
            0..=3 => GTy::Int,
            4..=5 => GTy::Bool,
            6..=8 => GTy::Str,
            9 => GTy::Unit,
            10..=11 => GTy::Pair(Box::new(self.rty(depth + 1)), Box::new(self.rty(depth + 1))),
            12..=13 => GTy::List(Box::new(self.rty(depth + 1))),
            14 => GTy::Ref(Box::new(self.rty(depth + 1))),
            _ => GTy::Arrow(Box::new(self.rty(depth + 1)), Box::new(self.rty(depth + 1))),
        }
    }

    /// A random *boxed* type — the bias for spurious instantiation
    /// sites: a spurious type variable only matters to the collector
    /// when it is instantiated at a boxed (pointer-carrying) type.
    fn rty_boxed(&mut self, depth: u32) -> GTy {
        match self.pick(if depth < 2 { 10 } else { 6 }) {
            0..=3 => GTy::Str,
            4..=5 => GTy::List(Box::new(GTy::Int)),
            6..=7 => GTy::Pair(Box::new(self.rty(depth + 1)), Box::new(self.rty(depth + 1))),
            8 => GTy::Pair(Box::new(GTy::Int), Box::new(GTy::Str)),
            _ => GTy::Arrow(Box::new(GTy::Int), Box::new(self.rty(depth + 1))),
        }
    }

    /// The canonical minimal expression of a type (the fuel-exhausted
    /// fallback; always closed and allocation-light).
    fn min_value(&mut self, ty: &GTy) -> Expr {
        match ty {
            GTy::Int => int(self.pick(10) as i64),
            GTy::Bool => e(ExprKind::Bool(self.chance(1, 2))),
            GTy::Str => {
                let s = STRINGS[self.pick(STRINGS.len() as u64) as usize];
                e(ExprKind::Str(s.to_string()))
            }
            GTy::Unit => e(ExprKind::Unit),
            GTy::Pair(a, b) => {
                let (a, b) = (a.clone(), b.clone());
                pair(self.min_value(&a), self.min_value(&b))
            }
            GTy::List(_) => e(ExprKind::Nil),
            GTy::Ref(t) => {
                let t = t.clone();
                let inner = self.min_value(&t);
                e(ExprKind::Ref(Box::new(inner)))
            }
            GTy::Arrow(_, b) => {
                let b = b.clone();
                let body = self.min_value(&b);
                let p = self.fresh("zp");
                e(ExprKind::Lam {
                    param: p,
                    ann: None,
                    body: Box::new(body),
                })
            }
        }
    }

    /// All environment variables of exactly `ty`.
    fn vars_of<'a>(&self, env: &'a Env, ty: &GTy) -> Vec<&'a Symbol> {
        env.iter()
            .filter(|(_, t)| t == ty)
            .map(|(s, _)| s)
            .collect()
    }

    /// An expression of type `ty` under `env`.
    fn expr(&mut self, env: &mut Env, ty: &GTy, depth: u32) -> Expr {
        self.fuel -= 1;
        if self.fuel <= 0 || depth >= MAX_DEPTH {
            // Out of budget: a variable of the right type, else the
            // minimal value.
            let vs = self.vars_of(env, ty);
            if !vs.is_empty() && self.chance(3, 4) {
                let s = *vs[self.pick(vs.len() as u64) as usize];
                return e(ExprKind::Var(s));
            }
            return self.min_value(ty);
        }

        // A variable of the right type is always a cheap candidate.
        let vs = self.vars_of(env, ty);
        if !vs.is_empty() && self.chance(1, 4) {
            let s = *vs[self.pick(vs.len() as u64) as usize];
            return e(ExprKind::Var(s));
        }

        // General (type-agnostic) productions fire with moderate
        // probability; otherwise fall through to the type-directed ones.
        if self.chance(2, 5) {
            if let Some(ex) = self.general(env, ty, depth) {
                return ex;
            }
        }
        self.directed(env, ty, depth)
    }

    /// Type-agnostic productions: lets, conditionals, sequencing,
    /// application, projections, case analysis, exceptions, and the
    /// polymorphic-combinator shapes. Returns `None` when the dice land
    /// on a production that does not apply.
    fn general(&mut self, env: &mut Env, ty: &GTy, depth: u32) -> Option<Expr> {
        match self.pick(13) {
            // let val zvN = e1 in e2 end
            0 => {
                let t1 = self.rty(depth + 1);
                let bound = self.expr(env, &t1, depth + 1);
                let x = self.fresh("zv");
                env.push((x, t1));
                let body = self.expr(env, ty, depth + 1);
                env.pop();
                Some(e(ExprKind::Let {
                    decls: vec![Decl::Val(x, bound)],
                    body: Box::new(body),
                }))
            }
            // if c then e1 else e2
            1 => {
                let c = self.expr(env, &GTy::Bool, depth + 1);
                let a = self.expr(env, ty, depth + 1);
                let b = self.expr(env, ty, depth + 1);
                Some(e(ExprKind::If(Box::new(c), Box::new(a), Box::new(b))))
            }
            // (unit; e)
            2 => {
                let u = self.expr(env, &GTy::Unit, depth + 1);
                let b = self.expr(env, ty, depth + 1);
                Some(e(ExprKind::Seq(Box::new(u), Box::new(b))))
            }
            // application at a random argument type
            3 => {
                let a = self.rty(depth + 1);
                let f = self.expr(
                    env,
                    &GTy::Arrow(Box::new(a.clone()), Box::new(ty.clone())),
                    depth + 1,
                );
                let x = self.expr(env, &a, depth + 1);
                Some(app(f, x))
            }
            // projection out of a generated pair
            4 => {
                let other = self.rty(depth + 1);
                let first = self.chance(1, 2);
                let pt = if first {
                    GTy::Pair(Box::new(ty.clone()), Box::new(other))
                } else {
                    GTy::Pair(Box::new(other), Box::new(ty.clone()))
                };
                let p = self.expr(env, &pt, depth + 1);
                Some(e(ExprKind::Sel(if first { 1 } else { 2 }, Box::new(p))))
            }
            // case over a generated list
            5 => {
                let elem = self.rty(depth + 1);
                let scrut = self.expr(env, &GTy::List(Box::new(elem.clone())), depth + 1);
                let nil_rhs = self.expr(env, ty, depth + 1);
                let h = self.fresh("zv");
                let t = self.fresh("zv");
                env.push((h, elem.clone()));
                env.push((t, GTy::List(Box::new(elem))));
                let cons_rhs = self.expr(env, ty, depth + 1);
                env.pop();
                env.pop();
                Some(e(ExprKind::CaseList {
                    scrut: Box::new(scrut),
                    nil_rhs: Box::new(nil_rhs),
                    head: h,
                    tail: t,
                    cons_rhs: Box::new(cons_rhs),
                }))
            }
            // a raise caught by construction:
            // (if c then raise (zeN k) else e) handle zeN zvM => e'
            6 => {
                let exn = self.exn();
                let c = self.expr(env, &GTy::Bool, depth + 1);
                let k = self.expr(env, &GTy::Int, depth + 1);
                let body = self.expr(env, ty, depth + 1);
                let x = self.fresh("zv");
                env.push((x, GTy::Int));
                let handler = self.expr(env, ty, depth + 1);
                env.pop();
                Some(e(ExprKind::Handle {
                    body: Box::new(e(ExprKind::If(
                        Box::new(c),
                        Box::new(e(ExprKind::Raise(Box::new(e(ExprKind::Con(
                            exn,
                            Some(Box::new(k)),
                        )))))),
                        Box::new(body),
                    ))),
                    exn,
                    arg: x,
                    handler: Box::new(handler),
                }))
            }
            // !(ref-typed expression)
            7 => {
                let r = self.expr(env, &GTy::Ref(Box::new(ty.clone())), depth + 1);
                Some(e(ExprKind::Deref(Box::new(r))))
            }
            // zid instantiated at `ty`
            8 => {
                let f = self.comb(Comb::Id);
                let x = self.expr(env, ty, depth + 1);
                Some(app(f, x))
            }
            // (zk e) dead — the dead argument's type is boxed-biased
            9 => {
                let f = self.comb(Comb::Konst);
                let keep = self.expr(env, ty, depth + 1);
                let dead_ty = self.rty_boxed(depth + 1);
                let dead = self.expr(env, &dead_ty, depth + 1);
                Some(app2(f, keep, dead))
            }
            // zt f e — twice at `ty`
            10 => {
                let f = self.comb(Comb::Twice);
                let g = self.expr(
                    env,
                    &GTy::Arrow(Box::new(ty.clone()), Box::new(ty.clone())),
                    depth + 1,
                );
                let x = self.expr(env, ty, depth + 1);
                Some(app2(f, g, x))
            }
            // the Figure 1 shape: a composition whose second component
            // captures a let-bound boxed value that is dead by the time
            // a forced collection runs, applied after that collection.
            11 => Some(self.figure1(env, ty, depth)),
            // zfst/zsnd over a generated pair (polymorphic projection)
            12 => {
                let other = self.rty_boxed(depth + 1);
                let first = self.chance(1, 2);
                let f = self.comb(if first { Comb::Fst } else { Comb::Snd });
                let pt = if first {
                    GTy::Pair(Box::new(ty.clone()), Box::new(other))
                } else {
                    GTy::Pair(Box::new(other), Box::new(ty.clone()))
                };
                let p = self.expr(env, &pt, depth + 1);
                Some(app(f, p))
            }
            _ => None,
        }
    }

    /// The paper's Figure 1, generated:
    ///
    /// ```sml
    /// let val zh = zc ((let val zx = <fresh boxed alloc>
    ///                   in (fn zw => <e : ty>, fn zu => zx) end))
    ///     val zd = forcegc ()
    /// in zh () end
    /// ```
    ///
    /// The *inner* `let` scope ends before `zh` is applied, so `zx`'s
    /// region is deallocated on scope exit under `rg-`, while `zh`'s
    /// closure environment still reaches the value through `zc`'s
    /// intermediate type variable — spurious (free in the capture, not
    /// in `zh`'s own type `unit -> ty`). `rg` keeps the region alive;
    /// `rg-` dangles when the forced collection traces the closure.
    fn figure1(&mut self, env: &mut Env, ty: &GTy, depth: u32) -> Expr {
        let zc = self.comb(Comb::Compose);
        let x = self.fresh("zv");
        // The captured value must be a *fresh allocation* tied to the
        // inner scope: a concat or an explicit pair, never a bare
        // variable or literal that might live elsewhere.
        let bound = if self.chance(1, 2) {
            let n = self.expr(env, &GTy::Int, depth + 1);
            prim(
                PrimOp::Concat,
                vec![prim(PrimOp::Itos, vec![n]), self.min_value(&GTy::Str)],
            )
        } else {
            let n = self.expr(env, &GTy::Int, depth + 1);
            pair(n, self.min_value(&GTy::Str))
        };
        // f : _ -> ty, discarding its argument (`zw` stays out of scope
        // for the body so the captured value really is dead).
        let w = self.fresh("zp");
        let fbody = self.expr(env, ty, depth + 1);
        let f = e(ExprKind::Lam {
            param: w,
            ann: None,
            body: Box::new(fbody),
        });
        // g : unit -> m, returning the captured value.
        let u = self.fresh("zp");
        let g = e(ExprKind::Lam {
            param: u,
            ann: None,
            body: Box::new(e(ExprKind::Var(x))),
        });
        let h = self.fresh("zv");
        let d = self.fresh("zv");
        e(ExprKind::Let {
            decls: vec![
                Decl::Val(
                    h,
                    app(
                        zc,
                        e(ExprKind::Let {
                            decls: vec![Decl::Val(x, bound)],
                            body: Box::new(pair(f, g)),
                        }),
                    ),
                ),
                Decl::Val(d, prim(PrimOp::ForceGc, vec![e(ExprKind::Unit)])),
            ],
            body: Box::new(app(e(ExprKind::Var(h)), e(ExprKind::Unit))),
        })
    }

    /// Type-directed productions for each target type.
    fn directed(&mut self, env: &mut Env, ty: &GTy, depth: u32) -> Expr {
        match ty.clone() {
            GTy::Int => self.int_expr(env, depth),
            GTy::Bool => match self.pick(6) {
                0 => e(ExprKind::Bool(self.chance(1, 2))),
                1 => {
                    let a = self.expr(env, &GTy::Bool, depth + 1);
                    prim(PrimOp::Not, vec![a])
                }
                n => {
                    let op = match n {
                        2 => PrimOp::Lt,
                        3 => PrimOp::Le,
                        4 => PrimOp::Eq,
                        _ => PrimOp::Ne,
                    };
                    let a = self.expr(env, &GTy::Int, depth + 1);
                    let b = self.expr(env, &GTy::Int, depth + 1);
                    prim(op, vec![a, b])
                }
            },
            GTy::Str => match self.pick(5) {
                0 | 1 => self.min_value(&GTy::Str),
                2 => {
                    let a = self.expr(env, &GTy::Int, depth + 1);
                    prim(PrimOp::Itos, vec![a])
                }
                _ => {
                    let a = self.expr(env, &GTy::Str, depth + 1);
                    let b = self.expr(env, &GTy::Str, depth + 1);
                    prim(PrimOp::Concat, vec![a, b])
                }
            },
            GTy::Unit => match self.pick(8) {
                0 | 1 => e(ExprKind::Unit),
                2 => {
                    let s = self.expr(env, &GTy::Str, depth + 1);
                    prim(PrimOp::Print, vec![s])
                }
                // Forced collections are the schedule points where a
                // dangling capture becomes observable.
                3 | 4 => prim(PrimOp::ForceGc, vec![e(ExprKind::Unit)]),
                5 => {
                    // Assign through a ref variable in scope, if any.
                    let refs: Vec<(Symbol, GTy)> = env
                        .iter()
                        .filter_map(|(s, t)| match t {
                            GTy::Ref(inner) => Some((*s, (**inner).clone())),
                            _ => None,
                        })
                        .collect();
                    if refs.is_empty() {
                        e(ExprKind::Unit)
                    } else {
                        let (s, inner) = refs[self.pick(refs.len() as u64) as usize].clone();
                        let v = self.expr(env, &inner, depth + 1);
                        e(ExprKind::Assign(Box::new(e(ExprKind::Var(s))), Box::new(v)))
                    }
                }
                _ => {
                    let a = self.expr(env, &GTy::Unit, depth + 1);
                    let b = self.expr(env, &GTy::Unit, depth + 1);
                    e(ExprKind::Seq(Box::new(a), Box::new(b)))
                }
            },
            GTy::Pair(a, b) => {
                let x = self.expr(env, &a, depth + 1);
                let y = self.expr(env, &b, depth + 1);
                pair(x, y)
            }
            GTy::List(elem) => match self.pick(7) {
                0 => e(ExprKind::Nil),
                1 | 2 => {
                    let h = self.expr(env, &elem, depth + 1);
                    let t = self.expr(env, &GTy::List(elem.clone()), depth + 1);
                    e(ExprKind::Cons(Box::new(h), Box::new(t)))
                }
                3 if *elem == GTy::Int => {
                    // zb (e mod k): a region-polymorphic recursive
                    // builder with a bounded argument.
                    let f = self.comb(Comb::Build);
                    let n = self.expr(env, &GTy::Int, depth + 1);
                    let k = 2 + self.pick(5) as i64;
                    app(f, prim(PrimOp::Mod, vec![n, int(k)]))
                }
                4 => {
                    // zm (fn h => e) xs: map from a random element type.
                    let from = self.rty(depth + 1);
                    let f = self.comb(Comb::MapList);
                    let h = self.fresh("zp");
                    env.push((h, from.clone()));
                    let body = self.expr(env, &elem, depth + 1);
                    env.pop();
                    let xs = self.expr(env, &GTy::List(Box::new(from)), depth + 1);
                    app2(
                        f,
                        e(ExprKind::Lam {
                            param: h,
                            ann: None,
                            body: Box::new(body),
                        }),
                        xs,
                    )
                }
                5 => {
                    // za (xs, ys): polymorphic append.
                    let f = self.comb(Comb::Append);
                    let xs = self.expr(env, &GTy::List(elem.clone()), depth + 1);
                    let ys = self.expr(env, &GTy::List(elem.clone()), depth + 1);
                    app(f, pair(xs, ys))
                }
                _ => {
                    let h = self.expr(env, &elem, depth + 1);
                    e(ExprKind::Cons(Box::new(h), Box::new(e(ExprKind::Nil))))
                }
            },
            GTy::Ref(inner) => {
                let v = self.expr(env, &inner, depth + 1);
                e(ExprKind::Ref(Box::new(v)))
            }
            GTy::Arrow(a, b) => self.arrow_expr(env, &a, &b, depth),
        }
    }

    /// Productions for `Int` targets.
    fn int_expr(&mut self, env: &mut Env, depth: u32) -> Expr {
        match self.pick(11) {
            0 => int(self.pick(50) as i64),
            1 | 2 => {
                let op = match self.pick(3) {
                    0 => PrimOp::Add,
                    1 => PrimOp::Sub,
                    _ => PrimOp::Mul,
                };
                let a = self.expr(env, &GTy::Int, depth + 1);
                let b = self.expr(env, &GTy::Int, depth + 1);
                if op == PrimOp::Mul {
                    // Keep products bounded-ish (wrapping is defined on
                    // both machines, but small numbers read better in
                    // shrunk repros).
                    let k = 2 + self.pick(7) as i64;
                    prim(PrimOp::Mul, vec![a, prim(PrimOp::Mod, vec![b, int(k)])])
                } else {
                    prim(op, vec![a, b])
                }
            }
            3 => {
                let a = self.expr(env, &GTy::Int, depth + 1);
                // `~<literal>` lexes back as a negative literal, so fold
                // it here to keep printing a parse fixed point.
                if let ExprKind::Int(n) = a.kind {
                    int(n.wrapping_neg())
                } else {
                    prim(PrimOp::Neg, vec![a])
                }
            }
            4 => {
                let s = self.expr(env, &GTy::Str, depth + 1);
                prim(PrimOp::Size, vec![s])
            }
            5 => {
                // zs (int list consumer)
                let f = self.comb(Comb::Sum);
                let xs = self.expr(env, &GTy::List(Box::new(GTy::Int)), depth + 1);
                app(f, xs)
            }
            6 => {
                // zln at a boxed-biased element type (polymorphic length)
                let f = self.comb(Comb::Len);
                let elem = self.rty_boxed(depth + 1);
                let xs = self.expr(env, &GTy::List(Box::new(elem)), depth + 1);
                app(f, xs)
            }
            7 => {
                // zlp (e mod k): bounded structural recursion
                let f = self.comb(Comb::Loop);
                let n = self.expr(env, &GTy::Int, depth + 1);
                let k = 2 + self.pick(7) as i64;
                app(f, prim(PrimOp::Mod, vec![n, int(k)]))
            }
            8 => {
                // let val zr = ref e in (zr := !zr + e'; !zr) end
                let r = self.fresh("zv");
                let init = self.expr(env, &GTy::Int, depth + 1);
                env.push((r, GTy::Ref(Box::new(GTy::Int))));
                let add = self.expr(env, &GTy::Int, depth + 1);
                env.pop();
                let rv = e(ExprKind::Var(r));
                let body = e(ExprKind::Seq(
                    Box::new(e(ExprKind::Assign(
                        Box::new(rv.clone()),
                        Box::new(prim(
                            PrimOp::Add,
                            vec![e(ExprKind::Deref(Box::new(rv.clone()))), add],
                        )),
                    ))),
                    Box::new(e(ExprKind::Deref(Box::new(rv)))),
                ));
                e(ExprKind::Let {
                    decls: vec![Decl::Val(r, e(ExprKind::Ref(Box::new(init))))],
                    body: Box::new(body),
                })
            }
            _ => {
                let a = self.expr(env, &GTy::Int, depth + 1);
                let b = self.expr(env, &GTy::Int, depth + 1);
                prim(PrimOp::Add, vec![a, b])
            }
        }
    }

    /// Productions for `Arrow(a, b)` targets: lambdas, bare combinator
    /// instantiations, partial applications, and composition chains.
    fn arrow_expr(&mut self, env: &mut Env, a: &GTy, b: &GTy, depth: u32) -> Expr {
        match self.pick(8) {
            // zc (f, g): the composition production. The intermediate
            // type is boxed-biased — this is where spurious type
            // variables meet boxed instantiation.
            0 | 1 => {
                let m = self.rty_boxed(depth + 1);
                let zc = self.comb(Comb::Compose);
                let f = self.expr(
                    env,
                    &GTy::Arrow(Box::new(m.clone()), Box::new(b.clone())),
                    depth + 1,
                );
                let g = self.expr(
                    env,
                    &GTy::Arrow(Box::new(a.clone()), Box::new(m)),
                    depth + 1,
                );
                app(zc, pair(f, g))
            }
            // bare zid at a == b
            2 if a == b => self.comb(Comb::Id),
            // zk e : any -> b
            3 => {
                let zk = self.comb(Comb::Konst);
                let keep = self.expr(env, b, depth + 1);
                app(zk, keep)
            }
            // zt f : (a -> a) -> a -> a, partially applied, when a == b
            4 if a == b => {
                let zt = self.comb(Comb::Twice);
                let f = self.expr(
                    env,
                    &GTy::Arrow(Box::new(a.clone()), Box::new(a.clone())),
                    depth + 1,
                );
                app(zt, f)
            }
            // fn zpN => body
            _ => {
                let p = self.fresh("zp");
                env.push((p, a.clone()));
                let body = self.expr(env, b, depth + 1);
                env.pop();
                e(ExprKind::Lam {
                    param: p,
                    ann: None,
                    body: Box::new(body),
                })
            }
        }
    }
}

/// Generates a whole well-typed program from `(seed, fuel)`.
///
/// The program always declares `fun main () = <int expr>` last; before
/// it come the exception declarations, the polymorphic combinators the
/// body actually uses (in first-use order), and any monomorphic helper
/// functions.
pub fn generate(opts: &GenOpts) -> Program {
    let mut g = Gen::new(opts);
    let mut env: Env = Vec::new();

    // Optional monomorphic helpers `fun zfN zpM = <int expr>`; they
    // close over nothing but may register combinators and give `main` a
    // first-order call target.
    let mut helpers: Vec<(Symbol, Symbol, Expr)> = Vec::new();
    let n_helpers = g.pick(3);
    for _ in 0..n_helpers {
        let pty = g.rty(1);
        let name = g.fresh("zf");
        let param = g.fresh("zp");
        let mut henv: Env = vec![(param, pty.clone())];
        let body = g.expr(&mut henv, &GTy::Int, 3);
        helpers.push((name, param, body));
        env.push((name, GTy::Arrow(Box::new(pty), Box::new(GTy::Int))));
    }
    // Refill the budget for main so helpers don't starve it.
    g.fuel = g.fuel.max(i64::from(opts.fuel) / 2);

    let body = g.expr(&mut env, &GTy::Int, 0);

    let mut decls: Vec<Decl> = Vec::new();
    for x in &g.exns {
        decls.push(Decl::Exception(*x, Some(TyAnn::Int)));
    }
    for c in &g.combos {
        decls.push(comb_decl(*c));
    }
    for (name, param, hbody) in helpers {
        decls.push(Decl::Fun(vec![FunBind {
            name,
            params: vec![(param, None)],
            ret: None,
            body: hbody,
            span: Span::DUMMY,
        }]));
    }
    decls.push(Decl::Fun(vec![FunBind {
        name: Symbol::intern("main"),
        params: vec![(Symbol::intern("zu"), Some(TyAnn::Unit))],
        ret: None,
        body,
        span: Span::DUMMY,
    }]));
    Program { decls }
}
