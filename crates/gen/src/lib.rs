//! `rml-gen` — a type-directed generator (and shrinker) of well-typed
//! `rml` programs.
//!
//! The paper's soundness bug lives in *higher-order type-polymorphic*
//! territory: a composition closure capturing a value whose type
//! variable is spurious (free in the captured environment but not in the
//! closure's own type) is exactly what separates `rg` from `rg-`. A
//! fuzzer that emits first-order integer arithmetic can never get there.
//! This crate generates programs *aimed* at that territory:
//!
//! * **type-directed**: every expression is built against a target type
//!   from a small grammar (ints, bools, strings, unit, pairs, lists,
//!   refs, arrows), so generated programs are well-typed by
//!   construction — and re-validated through the real Hindley–Milner
//!   checker ([`validate`]);
//! * **biased toward the paper's hard shapes**: let-polymorphic
//!   combinators (`id`, `konst`, `compose`, `twice`, `map`, `append`,
//!   `length`) instantiated at many types, composition chains whose
//!   *intermediate* type variable is instantiated at a boxed type (the
//!   spurious-variable generator), Figure 1-style dead captures followed
//!   by a forced collection, region-polymorphic recursion (list builders
//!   and consumers), refs, and caught exceptions;
//! * **deterministic**: generation is driven by the torture rig's seeded
//!   [`rml_runtime::Xorshift64`] — no ambient randomness — so a
//!   `(seed, fuel)` pair fully determines a program. A failure reported
//!   by the `fuzzgen` driver is reproducible from its one-line seed.
//! * **terminating**: recursion only happens through structurally
//!   decreasing templates whose arguments are bounded (`e mod k`), so
//!   every generated program halts — oracle fuel is never the limiting
//!   factor.
//!
//! The companion [`shrink`] module minimises failing programs by typed
//! subterm deletion and constant folding, re-validating through HM after
//! every step, so fuzzer findings check in as small `.rml` regression
//! corpus entries.
//!
//! # Example
//!
//! ```
//! use rml_gen::{generate_source, GenOpts};
//! let a = generate_source(&GenOpts { seed: 7, fuel: 40 });
//! let b = generate_source(&GenOpts { seed: 7, fuel: 40 });
//! assert_eq!(a, b); // (seed, fuel) fully determines the program
//! let prog = rml_syntax::parse_program(&a).unwrap();
//! rml_hm::infer_program(&prog).unwrap(); // well-typed by construction
//! ```

mod gen;
pub mod shrink;

pub use gen::{generate, GenOpts};
pub use shrink::{fold_constants, shrink};

use rml_syntax::Program;

/// Renders a generated program as parseable source (one declaration per
/// line, fully parenthesised — see `rml_syntax::pretty`).
pub fn generate_source(opts: &GenOpts) -> String {
    rml_syntax::pretty::program_to_string(&generate(opts))
}

/// Re-validates a program through the *real* front end: pretty-print,
/// re-parse, and run Hindley–Milner inference. This is the shrinker's
/// per-step gate and the generator's own acceptance test — a program
/// that fails here is an `rml-gen` bug.
///
/// # Errors
///
/// A description of the first re-parse or typing failure.
pub fn validate(p: &Program) -> Result<(), String> {
    let src = rml_syntax::pretty::program_to_string(p);
    let p2 = rml_syntax::parse_program(&src)
        .map_err(|e| format!("generated program does not re-parse: {} in\n{src}", e.msg))?;
    rml_hm::infer_program(&p2)
        .map_err(|e| format!("generated program does not type: {} in\n{src}", e.msg))?;
    Ok(())
}
