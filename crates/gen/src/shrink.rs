//! Deterministic shrinking of failing generated programs.
//!
//! [`shrink`] minimises a program with respect to a caller-supplied
//! failure predicate (e.g. "the torture oracle still disagrees"). The
//! candidate moves are
//!
//! 1. whole-declaration deletion (everything except `main`),
//! 2. one-pass [`fold_constants`], and
//! 3. replacing any expression node by one of its immediate children or
//!    by a canonical minimal literal (`0`, `()`, `true`, `""`, `nil`).
//!
//! Every candidate is re-validated through the real front end
//! ([`crate::validate`]: pretty-print → parse → Hindley–Milner) *before*
//! the failure predicate runs, so the shrinker can only ever move
//! between well-typed programs — a type-directed deletion, not textual
//! delta debugging. Enumeration order is fixed and the first strictly
//! smaller surviving candidate is taken, so shrinking is deterministic:
//! the same failing program and predicate always minimise to the same
//! repro.

use rml_syntax::ast::PrimOp;
use rml_syntax::{Decl, Expr, ExprKind, Program};

/// One-pass bottom-up constant folding. Only semantics-preserving rules
/// are applied (literal arithmetic with the machines' wrapping
/// semantics, literal comparisons, branch selection on literal
/// conditions, dropping a literal-`()` sequence head), so the folded
/// program behaves identically on every oracle.
pub fn fold_constants(p: &Program) -> Program {
    Program {
        decls: p.decls.iter().map(fold_decl).collect(),
    }
}

fn fold_decl(d: &Decl) -> Decl {
    match d {
        Decl::Val(x, e) => Decl::Val(*x, fold_expr(e)),
        Decl::Fun(binds) => Decl::Fun(
            binds
                .iter()
                .map(|b| {
                    let mut b = b.clone();
                    b.body = fold_expr(&b.body);
                    b
                })
                .collect(),
        ),
        Decl::Exception(..) => d.clone(),
    }
}

fn as_int(e: &Expr) -> Option<i64> {
    match e.kind {
        ExprKind::Int(n) => Some(n),
        _ => None,
    }
}

fn fold_expr(e: &Expr) -> Expr {
    // Fold children first, then look at the rebuilt node.
    let e = rebuild(e, &mut |c| fold_expr(c));
    match &e.kind {
        ExprKind::Prim(op, args) => {
            let ints: Vec<Option<i64>> = args.iter().map(as_int).collect();
            let folded = match (op, ints.as_slice()) {
                (PrimOp::Add, [Some(a), Some(b)]) => Some(ExprKind::Int(a.wrapping_add(*b))),
                (PrimOp::Sub, [Some(a), Some(b)]) => Some(ExprKind::Int(a.wrapping_sub(*b))),
                (PrimOp::Mul, [Some(a), Some(b)]) => Some(ExprKind::Int(a.wrapping_mul(*b))),
                (PrimOp::Mod, [Some(a), Some(b)]) if *b != 0 => {
                    Some(ExprKind::Int(a.wrapping_rem(*b)))
                }
                (PrimOp::Neg, [Some(a)]) => Some(ExprKind::Int(a.wrapping_neg())),
                (PrimOp::Lt, [Some(a), Some(b)]) => Some(ExprKind::Bool(a < b)),
                (PrimOp::Le, [Some(a), Some(b)]) => Some(ExprKind::Bool(a <= b)),
                (PrimOp::Gt, [Some(a), Some(b)]) => Some(ExprKind::Bool(a > b)),
                (PrimOp::Ge, [Some(a), Some(b)]) => Some(ExprKind::Bool(a >= b)),
                (PrimOp::Eq, [Some(a), Some(b)]) => Some(ExprKind::Bool(a == b)),
                (PrimOp::Ne, [Some(a), Some(b)]) => Some(ExprKind::Bool(a != b)),
                _ => None,
            };
            if let Some(kind) = folded {
                return kind.into();
            }
            match (op, args.as_slice()) {
                (PrimOp::Not, [a]) => {
                    if let ExprKind::Bool(b) = a.kind {
                        return ExprKind::Bool(!b).into();
                    }
                }
                (PrimOp::Size, [a]) => {
                    if let ExprKind::Str(s) = &a.kind {
                        return ExprKind::Int(s.len() as i64).into();
                    }
                }
                (PrimOp::Concat, [a, b]) => {
                    if let (ExprKind::Str(x), ExprKind::Str(y)) = (&a.kind, &b.kind) {
                        return ExprKind::Str(format!("{x}{y}")).into();
                    }
                }
                _ => {}
            }
            e
        }
        ExprKind::If(c, t, f) => match c.kind {
            ExprKind::Bool(true) => (**t).clone(),
            ExprKind::Bool(false) => (**f).clone(),
            _ => e.clone(),
        },
        ExprKind::Seq(a, b) => {
            if a.kind == ExprKind::Unit {
                (**b).clone()
            } else {
                e.clone()
            }
        }
        _ => e,
    }
}

/// Rebuilds `e` with every immediate child expression mapped through
/// `f`. The traversal order matches [`Expr::for_children`], which keeps
/// the shrinker's node numbering consistent between counting, lookup,
/// and replacement passes.
fn rebuild(e: &Expr, f: &mut dyn FnMut(&Expr) -> Expr) -> Expr {
    let kind = match &e.kind {
        k @ (ExprKind::Unit
        | ExprKind::Int(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Var(_)
        | ExprKind::Nil) => k.clone(),
        ExprKind::Lam { param, ann, body } => ExprKind::Lam {
            param: *param,
            ann: ann.clone(),
            body: Box::new(f(body)),
        },
        ExprKind::App(a, b) => ExprKind::App(Box::new(f(a)), Box::new(f(b))),
        ExprKind::Pair(a, b) => ExprKind::Pair(Box::new(f(a)), Box::new(f(b))),
        ExprKind::Cons(a, b) => ExprKind::Cons(Box::new(f(a)), Box::new(f(b))),
        ExprKind::Assign(a, b) => ExprKind::Assign(Box::new(f(a)), Box::new(f(b))),
        ExprKind::Seq(a, b) => ExprKind::Seq(Box::new(f(a)), Box::new(f(b))),
        ExprKind::Let { decls, body } => ExprKind::Let {
            decls: decls
                .iter()
                .map(|d| match d {
                    Decl::Val(x, e) => Decl::Val(*x, f(e)),
                    Decl::Fun(binds) => Decl::Fun(
                        binds
                            .iter()
                            .map(|b| {
                                let mut b = b.clone();
                                b.body = f(&b.body);
                                b
                            })
                            .collect(),
                    ),
                    Decl::Exception(..) => d.clone(),
                })
                .collect(),
            body: Box::new(f(body)),
        },
        ExprKind::Sel(i, a) => ExprKind::Sel(*i, Box::new(f(a))),
        ExprKind::Ref(a) => ExprKind::Ref(Box::new(f(a))),
        ExprKind::Deref(a) => ExprKind::Deref(Box::new(f(a))),
        ExprKind::Ann(a, t) => ExprKind::Ann(Box::new(f(a)), t.clone()),
        ExprKind::Raise(a) => ExprKind::Raise(Box::new(f(a))),
        ExprKind::If(a, b, c) => ExprKind::If(Box::new(f(a)), Box::new(f(b)), Box::new(f(c))),
        ExprKind::Prim(op, args) => ExprKind::Prim(*op, args.iter().map(&mut *f).collect()),
        ExprKind::CaseList {
            scrut,
            nil_rhs,
            head,
            tail,
            cons_rhs,
        } => ExprKind::CaseList {
            scrut: Box::new(f(scrut)),
            nil_rhs: Box::new(f(nil_rhs)),
            head: *head,
            tail: *tail,
            cons_rhs: Box::new(f(cons_rhs)),
        },
        ExprKind::Handle {
            body,
            exn,
            arg,
            handler,
        } => ExprKind::Handle {
            body: Box::new(f(body)),
            exn: *exn,
            arg: *arg,
            handler: Box::new(f(handler)),
        },
        ExprKind::Con(c, arg) => ExprKind::Con(*c, arg.as_ref().map(|a| Box::new(f(a)))),
    };
    kind.into()
}

/// Preorder visit of every expression node in the program (declaration
/// order, then [`Expr::for_children`] order within each body).
fn visit_exprs(p: &Program, f: &mut dyn FnMut(&Expr)) {
    fn go(e: &Expr, f: &mut dyn FnMut(&Expr)) {
        f(e);
        e.for_children(|c| go(c, f));
    }
    for d in &p.decls {
        match d {
            Decl::Val(_, e) => go(e, f),
            Decl::Fun(binds) => {
                for b in binds {
                    go(&b.body, f);
                }
            }
            Decl::Exception(..) => {}
        }
    }
}

/// Rebuilds the program with the `target`-th preorder expression node
/// (same numbering as [`visit_exprs`]) replaced by `replacement`.
fn replace_nth(p: &Program, target: usize, replacement: &Expr) -> Program {
    fn go(e: &Expr, n: &mut usize, target: usize, replacement: &Expr) -> Expr {
        let here = *n;
        *n += 1;
        if here == target {
            // Children of the replaced node are not renumbered — the
            // caller restarts numbering after every accepted candidate.
            return replacement.clone();
        }
        rebuild(e, &mut |c| go(c, n, target, replacement))
    }
    let mut n = 0usize;
    Program {
        decls: p
            .decls
            .iter()
            .map(|d| match d {
                Decl::Val(x, e) => Decl::Val(*x, go(e, &mut n, target, replacement)),
                Decl::Fun(binds) => Decl::Fun(
                    binds
                        .iter()
                        .map(|b| {
                            let mut b = b.clone();
                            b.body = go(&b.body, &mut n, target, replacement);
                            b
                        })
                        .collect(),
                ),
                Decl::Exception(..) => d.clone(),
            })
            .collect(),
    }
}

/// The canonical minimal literals tried as replacements. Type mismatch
/// is fine — ill-typed candidates are rejected by the validation gate.
fn minima() -> Vec<Expr> {
    vec![
        ExprKind::Int(0).into(),
        ExprKind::Unit.into(),
        ExprKind::Bool(true).into(),
        ExprKind::Nil.into(),
        ExprKind::Str(String::new()).into(),
    ]
}

/// Whether `d` declares (only) `main` — the one declaration the shrinker
/// must never delete.
fn is_main(d: &Decl) -> bool {
    match d {
        Decl::Fun(binds) => binds.iter().any(|b| b.name.as_str() == "main"),
        _ => false,
    }
}

/// Shrinks `p` to a smaller program on which `still_fails` still holds.
///
/// `max_checks` bounds the number of predicate invocations (each of
/// which typically re-runs the full oracle stack, so this is the knob
/// that keeps shrinking inside a CI budget). Candidates that do not
/// survive [`crate::validate`] are discarded *without* charging the
/// budget. The result is `p` itself if no smaller failing program is
/// found; `still_fails(&result)` is always true provided it was true of
/// `p`.
pub fn shrink<F: FnMut(&Program) -> bool>(
    p: &Program,
    max_checks: usize,
    mut still_fails: F,
) -> Program {
    let mut cur = p.clone();
    let mut checks = 0usize;

    'outer: loop {
        if checks >= max_checks {
            return cur;
        }
        let cur_size = cur.size();

        // Candidate source 1: drop a whole declaration.
        let mut candidates: Vec<Program> = Vec::new();
        for i in 0..cur.decls.len() {
            if is_main(&cur.decls[i]) {
                continue;
            }
            let mut q = cur.clone();
            q.decls.remove(i);
            candidates.push(q);
        }

        // Candidate source 2: constant folding (often enables more
        // deletions on the next round).
        let folded = fold_constants(&cur);
        if folded.size() < cur_size {
            candidates.push(folded);
        }

        // Candidate source 3: hoist a child over its parent, or replace
        // a node by a minimal literal.
        let mut nodes: Vec<Expr> = Vec::new();
        visit_exprs(&cur, &mut |e| nodes.push(e.clone()));
        for (i, node) in nodes.iter().enumerate() {
            let mut reps: Vec<Expr> = Vec::new();
            node.for_children(|c| reps.push(c.clone()));
            reps.extend(minima());
            for r in reps {
                if r.size() < node.size() {
                    candidates.push(replace_nth(&cur, i, &r));
                }
            }
        }

        for cand in candidates {
            if cand.size() >= cur_size || crate::validate(&cand).is_err() {
                continue;
            }
            checks += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
            if checks >= max_checks {
                return cur;
            }
        }
        // No candidate survived: local minimum.
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rml_syntax::parse_program;

    fn parse(src: &str) -> Program {
        parse_program(src).expect("test program parses")
    }

    #[test]
    fn folds_literal_arithmetic() {
        let p = parse("fun main () = (1 + 2) * (10 - 4)");
        let q = fold_constants(&p);
        let src = rml_syntax::pretty::program_to_string(&q);
        assert!(src.contains("18"), "got: {src}");
    }

    #[test]
    fn folds_literal_branches_and_seq() {
        let p = parse("fun main () = ((); if 1 < 2 then 7 else 8)");
        let q = fold_constants(&p);
        let src = rml_syntax::pretty::program_to_string(&q);
        assert!(src.contains('7') && !src.contains('8'), "got: {src}");
    }

    #[test]
    fn shrinks_to_local_minimum_deterministically() {
        let p = parse(
            "fun dead x = x + 1\n\
             fun main () = let val u = \"abc\" in size u + (2 * 3) end",
        );
        // Predicate: the program still mentions `size` somewhere — a
        // stand-in for "still triggers the bug".
        let pred = |q: &Program| rml_syntax::pretty::program_to_string(q).contains("size");
        let a = shrink(&p, 500, pred);
        let b = shrink(&p, 500, pred);
        assert_eq!(a, b, "shrinking must be deterministic");
        assert!(a.size() < p.size(), "must make progress");
        assert!(rml_syntax::pretty::program_to_string(&a).contains("size"));
        // The dead helper must be gone.
        assert!(!rml_syntax::pretty::program_to_string(&a).contains("dead"));
    }

    #[test]
    fn shrink_preserves_failure_or_returns_input() {
        let p = parse("fun main () = 1 + 2");
        // Unsatisfiable-by-smaller predicate: only the original fails.
        let orig = p.clone();
        let out = shrink(&p, 100, |q| *q == orig);
        assert_eq!(out, p);
    }
}
