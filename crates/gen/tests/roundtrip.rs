//! The tentpole acceptance test: every generated program pretty-prints
//! to source that re-parses and types under Hindley–Milner, and
//! generation is a pure function of `(seed, fuel)`.

use rml_gen::{generate, generate_source, GenOpts};

#[test]
fn generate_parse_type_roundtrip_many_seeds() {
    let mut checked = 0usize;
    for fuel in [10u32, 25, 40, 60] {
        for seed in 1..=60u64 {
            let opts = GenOpts { seed, fuel };
            let p = generate(&opts);
            rml_gen::validate(&p).unwrap_or_else(|e| panic!("seed {seed} fuel {fuel}: {e}"));
            // Second round trip: printing the re-parse of the print is a
            // fixed point (the printer is fully parenthesised, so the
            // parse is unambiguous).
            let src = rml_syntax::pretty::program_to_string(&p);
            let p2 = rml_syntax::parse_program(&src).expect("validated above");
            assert_eq!(
                src,
                rml_syntax::pretty::program_to_string(&p2),
                "print/parse fixed point, seed {seed} fuel {fuel}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 240);
}

#[test]
fn same_seed_same_program() {
    for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF] {
        let a = generate_source(&GenOpts { seed, fuel: 40 });
        let b = generate_source(&GenOpts { seed, fuel: 40 });
        assert_eq!(a, b, "seed {seed} must be deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    // Not a tautology, but a cheap sanity check that the seed actually
    // reaches the generator.
    let a = generate_source(&GenOpts { seed: 1, fuel: 40 });
    let b = generate_source(&GenOpts { seed: 2, fuel: 40 });
    assert_ne!(a, b);
}

#[test]
fn programs_declare_main_last() {
    for seed in 1..=20u64 {
        let src = generate_source(&GenOpts { seed, fuel: 30 });
        let p = rml_syntax::parse_program(&src).expect("parses");
        let last = p.decls.last().expect("nonempty");
        match last {
            rml_syntax::Decl::Fun(binds) => {
                assert!(binds.iter().any(|b| b.name.as_str() == "main"))
            }
            d => panic!("last decl must be fun main, got {d:?}"),
        }
    }
}
