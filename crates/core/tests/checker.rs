//! Rule-by-rule tests for the Figure 4 checker: every typing rule has a
//! positive case and at least one violated side condition.

use rml_core::terms::{FixDef, Term, Value};
use rml_core::types::{BoxTy, Mu, Pi, Scheme};
use rml_core::typing::{Checker, GcCheck, TypeEnv};
use rml_core::vars::{effect, ArrowEff, Atom, EffVar, Effect, RegVar};
use rml_core::Subst;
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::rc::Rc;

fn checker() -> Checker {
    Checker::default()
}

fn check(e: &Term) -> Result<(Pi, Effect), rml_core::CheckError> {
    checker().check(&TypeEnv::default(), e)
}

// ---------------------------------------------------------------- values

#[test]
fn literals_type() {
    assert_eq!(check(&Term::Int(3)).unwrap().0.as_mu(), Some(&Mu::Int));
    assert_eq!(check(&Term::Bool(true)).unwrap().0.as_mu(), Some(&Mu::Bool));
    assert_eq!(check(&Term::Unit).unwrap().0.as_mu(), Some(&Mu::Unit));
}

#[test]
fn string_has_place_and_put_effect() {
    let r = RegVar::fresh();
    let (pi, phi) = check(&Term::Str("s".into(), r)).unwrap();
    assert_eq!(pi.as_mu(), Some(&Mu::string(r)));
    assert!(phi.contains(&Atom::Reg(r)));
}

#[test]
fn unbound_variable_rejected() {
    assert!(check(&Term::var("nope")).unwrap_err().contains("unbound"));
}

// ---------------------------------------------------------------- TeLam

fn id_lam(rho: RegVar, eps: EffVar) -> Term {
    let mu = Mu::arrow(Mu::Int, ArrowEff::new(eps, Effect::new()), Mu::Int, rho);
    Term::lam("x", mu, Term::var("x"), rho)
}

#[test]
fn telam_accepts_identity() {
    let rho = RegVar::fresh();
    let (pi, phi) = check(&id_lam(rho, EffVar::fresh())).unwrap();
    assert!(pi.as_mu().unwrap().as_arrow().is_some());
    assert_eq!(phi, effect([Atom::Reg(rho)]));
}

#[test]
fn telam_rejects_wrong_body_type() {
    let rho = RegVar::fresh();
    let mu = Mu::arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Bool, rho);
    let e = Term::lam("x", mu, Term::var("x"), rho);
    assert!(check(&e).unwrap_err().contains("body type mismatch"));
}

#[test]
fn telam_rejects_effect_escaping_latent() {
    // Body allocates in ρ2 but the latent effect is empty.
    let rho = RegVar::fresh();
    let rho2 = RegVar::fresh();
    let mu = Mu::arrow(
        Mu::Int,
        ArrowEff::fresh_empty(),
        Mu::pair(Mu::Int, Mu::Int, rho2),
        rho,
    );
    let body = Term::Pair(Box::new(Term::var("x")), Box::new(Term::var("x")), rho2);
    let e = Term::letregion(
        vec![rho, rho2],
        vec![],
        Term::app(Term::lam("x", mu, body, rho), Term::Int(1)),
    );
    assert!(check(&e)
        .unwrap_err()
        .contains("not included in latent effect"));
}

#[test]
fn telam_rejects_place_mismatch() {
    let rho = RegVar::fresh();
    let other = RegVar::fresh();
    let mu = Mu::arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Int, other);
    let e = Term::lam("x", mu, Term::var("x"), rho);
    assert!(check(&e).unwrap_err().contains("place"));
}

// ------------------------------------------------------------ G relation

/// A lambda capturing a string it never touches (so nothing forces the
/// region into its effect or type): full G rejects, Off accepts — this is
/// the dead-capture pattern of Figure 1 in miniature.
#[test]
fn g_modes_differ_on_dangling_capture() {
    let rho = RegVar::fresh();
    let rs = RegVar::fresh();
    let mu = Mu::arrow(Mu::Unit, ArrowEff::fresh_empty(), Mu::Int, rho);
    let lam = Term::lam("u", mu, Term::let_("_", Term::var("s"), Term::Int(0)), rho);
    let e = Term::let_("s", Term::Str("x".into(), rs), lam);
    let wrapped = Term::letregion(vec![rho, rs], vec![], Term::let_("_", e, Term::Int(0)));
    let full = Checker {
        gc: GcCheck::Full,
        ..checker()
    };
    assert!(full
        .check(&TypeEnv::default(), &wrapped)
        .unwrap_err()
        .contains("captured variable"));
    let off = Checker {
        gc: GcCheck::Off,
        ..checker()
    };
    off.check(&TypeEnv::default(), &wrapped).unwrap();
}

// ---------------------------------------------------------------- TeApp

#[test]
fn teapp_effect_includes_latent_handle_and_place() {
    let rho = RegVar::fresh();
    let eps = EffVar::fresh();
    let e = Term::app(id_lam(rho, eps), Term::Int(1));
    let (pi, phi) = check(&e).unwrap();
    assert_eq!(pi.as_mu(), Some(&Mu::Int));
    assert!(phi.contains(&Atom::Eff(eps)));
    assert!(phi.contains(&Atom::Reg(rho)));
}

#[test]
fn teapp_rejects_argument_mismatch() {
    let rho = RegVar::fresh();
    let e = Term::app(id_lam(rho, EffVar::fresh()), Term::Bool(true));
    assert!(check(&e).unwrap_err().contains("argument type mismatch"));
}

#[test]
fn teapp_rejects_nonfunction() {
    let e = Term::app(Term::Int(1), Term::Int(2));
    assert!(check(&e).unwrap_err().contains("non-function"));
}

// ---------------------------------------------------------------- TeReg

#[test]
fn tereg_discharges_bound_effects() {
    let rho = RegVar::fresh();
    let e = Term::letregion(
        vec![rho],
        vec![],
        Term::Sel(
            1,
            Box::new(Term::Pair(
                Box::new(Term::Int(1)),
                Box::new(Term::Int(2)),
                rho,
            )),
        ),
    );
    let (_, phi) = check(&e).unwrap();
    assert!(phi.is_empty());
}

#[test]
fn tereg_rejects_escaping_region() {
    // The pair escapes; ρ is free in the result type.
    let rho = RegVar::fresh();
    let e = Term::letregion(
        vec![rho],
        vec![],
        Term::Pair(Box::new(Term::Int(1)), Box::new(Term::Int(2)), rho),
    );
    assert!(check(&e).unwrap_err().contains("occurs free"));
}

#[test]
fn tereg_rejects_region_free_in_env() {
    // letregion ρ where ρ is the region of an outer binding.
    let rho = RegVar::fresh();
    let e = Term::let_(
        "s",
        Term::Str("a".into(), rho),
        Term::letregion(
            vec![rho],
            vec![],
            Term::Prim(PrimOp::Size, vec![Term::var("s")], None),
        ),
    );
    let wrapped = Term::letregion(vec![rho], vec![], e);
    assert!(check(&wrapped).is_err());
}

// ------------------------------------------------------- pairs and lists

#[test]
fn pair_and_sel_effects() {
    let rho = RegVar::fresh();
    let e = Term::Sel(
        2,
        Box::new(Term::Pair(
            Box::new(Term::Int(1)),
            Box::new(Term::Bool(true)),
            rho,
        )),
    );
    let (pi, phi) = check(&Term::letregion(vec![rho], vec![], e)).unwrap();
    assert_eq!(pi.as_mu(), Some(&Mu::Bool));
    assert!(phi.is_empty());
}

#[test]
fn cons_requires_shared_spine_region() {
    let r1 = RegVar::fresh();
    let r2 = RegVar::fresh();
    let nil = Term::Nil(Mu::list(Mu::Int, r1));
    let bad = Term::Cons(Box::new(Term::Int(1)), Box::new(nil), r2);
    let e = Term::letregion(vec![r1, r2], vec![], Term::let_("_", bad, Term::Int(0)));
    assert!(check(&e).unwrap_err().contains("spine"));
}

#[test]
fn case_branches_must_agree() {
    let r = RegVar::fresh();
    let nil = Term::Nil(Mu::list(Mu::Int, r));
    let e = Term::CaseList {
        scrut: Box::new(nil),
        nil_rhs: Box::new(Term::Int(0)),
        head: Symbol::intern("h"),
        tail: Symbol::intern("t"),
        cons_rhs: Box::new(Term::Bool(true)),
    };
    assert!(check(&Term::letregion(vec![r], vec![], e))
        .unwrap_err()
        .contains("different types"));
}

// ---------------------------------------------------------------- TeFun

fn int_id_scheme(eps: EffVar) -> Scheme {
    Scheme {
        rvars: vec![],
        evars: vec![eps],
        delta: vec![],
        body: BoxTy::Arrow(Mu::Int, ArrowEff::new(eps, Effect::new()), Mu::Int),
    }
}

fn fix1(name: &str, scheme: Scheme, body: Term, at: RegVar) -> Term {
    Term::Fix {
        defs: Rc::new(vec![FixDef {
            f: Symbol::intern(name),
            scheme,
            param: Symbol::intern("n"),
            body,
        }]),
        ats: Rc::new(vec![at]),
        index: 0,
    }
}

#[test]
fn tefun_accepts_and_rapp_instantiates() {
    let at = RegVar::fresh();
    let eps = EffVar::fresh();
    let fix = fix1("f", int_id_scheme(eps), Term::var("n"), at);
    let inst_eff = ArrowEff::fresh_empty();
    let discharged = inst_eff.handle;
    let inst = Subst::effects([(eps, inst_eff)]);
    let e = Term::letregion(
        vec![at],
        vec![discharged],
        Term::let_(
            "f",
            fix,
            Term::app(
                Term::RApp {
                    f: Box::new(Term::var("f")),
                    inst,
                    at,
                },
                Term::Int(5),
            ),
        ),
    );
    let (pi, phi) = check(&e).unwrap();
    assert_eq!(pi.as_mu(), Some(&Mu::Int));
    assert!(phi.is_empty());
}

#[test]
fn tefun_rejects_quantified_var_free_in_env() {
    // Scheme quantifies ρq but ρq is the region of a captured string.
    let at = RegVar::fresh();
    let rq = RegVar::fresh();
    let eps = EffVar::fresh();
    let scheme = Scheme {
        rvars: vec![rq],
        evars: vec![eps],
        delta: vec![],
        body: BoxTy::Arrow(
            Mu::Int,
            ArrowEff::new(eps, effect([Atom::Reg(rq)])),
            Mu::Int,
        ),
    };
    let body = Term::Prim(PrimOp::Size, vec![Term::var("s")], None);
    let fix = fix1("f", scheme, body, at);
    let e = Term::letregion(
        vec![at, rq],
        vec![],
        Term::let_(
            "s",
            Term::Str("x".into(), rq),
            Term::let_("f", fix, Term::Int(0)),
        ),
    );
    assert!(check(&e)
        .unwrap_err()
        .contains("quantified variables occur free"));
}

#[test]
fn terapp_rejects_wrong_instantiation_domain() {
    let at = RegVar::fresh();
    let eps = EffVar::fresh();
    let fix = fix1("f", int_id_scheme(eps), Term::var("n"), at);
    // Missing the effect instantiation entirely.
    let e = Term::letregion(
        vec![at],
        vec![],
        Term::let_(
            "f",
            fix,
            Term::RApp {
                f: Box::new(Term::var("f")),
                inst: Subst::identity(),
                at,
            },
        ),
    );
    assert!(check(&e).unwrap_err().contains("domain mismatch"));
}

// ------------------------------------------------------------ exceptions

#[test]
fn exceptions_require_declared_constructors() {
    let r = RegVar::fresh();
    let e = Term::Exn {
        name: Symbol::intern("Nope"),
        arg: None,
        at: r,
    };
    assert!(check(&Term::letregion(
        vec![r],
        vec![],
        Term::let_("_", e, Term::Int(0))
    ))
    .unwrap_err()
    .contains("unknown exception"));
}

#[test]
fn handle_checks_and_unions_effects() {
    let r = RegVar::fresh();
    let exn = Symbol::intern("E");
    let mut ck = checker();
    ck.exns.insert(exn, Some(Mu::Int));
    let e = Term::letregion(
        vec![r],
        vec![],
        Term::Handle {
            body: Box::new(Term::Raise(
                Box::new(Term::Exn {
                    name: exn,
                    arg: Some(Box::new(Term::Int(1))),
                    at: r,
                }),
                Mu::Int,
            )),
            exn,
            arg: Symbol::intern("x"),
            handler: Box::new(Term::var("x")),
        },
    );
    let (pi, _) = ck.check(&TypeEnv::default(), &e).unwrap();
    assert_eq!(pi.as_mu(), Some(&Mu::Int));
}

#[test]
fn raise_requires_exception_type() {
    let e = Term::Raise(Box::new(Term::Int(3)), Mu::Int);
    assert!(check(&e).unwrap_err().contains("non-exception"));
}

// -------------------------------------------------------------- values

#[test]
fn closure_values_type_via_tvlam() {
    let rho = RegVar::fresh();
    let mu = Mu::arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Int, rho);
    let v = Value::Clos {
        param: Symbol::intern("x"),
        ann: mu.clone(),
        body: Box::new(Term::var("x")),
        at: rho,
    };
    let pi = checker().check_value(&v).unwrap();
    assert_eq!(pi.as_mu(), Some(&mu));
}

#[test]
fn closure_value_with_dangling_payload_rejected() {
    // TvLam's frv(µ) |=v e condition: a value in a region outside frv(µ).
    let rho = RegVar::fresh();
    let dead = RegVar::fresh();
    let mu = Mu::arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Int, rho);
    let v = Value::Clos {
        param: Symbol::intern("x"),
        ann: mu,
        body: Box::new(Term::let_(
            "_",
            Term::Val(Value::Str("dead".into(), dead)),
            Term::var("x"),
        )),
        at: rho,
    };
    let err = checker().check_value(&v).unwrap_err();
    assert!(
        err.contains("not contained") || err.contains("dangling"),
        "{err}"
    );
}

#[test]
fn ref_values_need_store_typing() {
    let r = RegVar::fresh();
    let v = Value::RefLoc(0, r);
    assert!(checker().check_value(&v).is_err());
    let with_store = Checker {
        store: vec![Mu::Int],
        ..checker()
    };
    let pi = with_store.check_value(&v).unwrap();
    assert_eq!(pi.as_mu(), Some(&Mu::reference(Mu::Int, r)));
}

#[test]
fn prim_arity_and_types_enforced() {
    assert!(check(&Term::Prim(
        PrimOp::Add,
        vec![Term::Int(1), Term::Bool(true)],
        None
    ))
    .unwrap_err()
    .contains("two ints"));
    assert!(check(&Term::Prim(PrimOp::Not, vec![Term::Int(1)], None))
        .unwrap_err()
        .contains("bool"));
    let r = RegVar::fresh();
    assert!(check(&Term::letregion(
        vec![r],
        vec![],
        Term::Prim(
            PrimOp::Concat,
            vec![Term::Str("a".into(), r), Term::Str("b".into(), r)],
            None // missing result region
        )
    ))
    .unwrap_err()
    .contains("result region"));
}

#[test]
fn equality_reads_operand_regions() {
    let r = RegVar::fresh();
    let e = Term::Prim(
        PrimOp::Eq,
        vec![Term::Str("a".into(), r), Term::Str("a".into(), r)],
        None,
    );
    let (_, phi) = check(&Term::letregion(vec![r], vec![], e)).unwrap();
    assert!(phi.is_empty()); // discharged by the letregion
}
