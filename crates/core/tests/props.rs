//! Property-based tests for the substitution and containment laws of
//! Section 3 (Propositions 1–7), over randomly generated types, effects,
//! and substitutions.

use proptest::prelude::*;
use rml_core::containment::{mu_contained, pi_contained};
use rml_core::subst::freshen_scheme;
use rml_core::types::{wf_mu, BoxTy, Delta, Mu, Pi, Scheme};
use rml_core::vars::{ArrowEff, Atom, EffVar, Effect, RegVar, TyVar};
use rml_core::Subst;

/// A small universe of variables so substitutions actually hit. Offset
/// far above the global fresh-variable counters so `freshen_scheme`'s
/// fresh variables can never collide with it.
const BASE: u32 = 1 << 30;
const NR: u32 = 8;
const NE: u32 = 8;
const NA: u32 = 4;

fn rvar() -> impl Strategy<Value = RegVar> {
    (0..NR).prop_map(|i| RegVar(BASE + i))
}

fn evar() -> impl Strategy<Value = EffVar> {
    (0..NE).prop_map(|i| EffVar(BASE + i))
}

fn tvar() -> impl Strategy<Value = TyVar> {
    (0..NA).prop_map(|i| TyVar(BASE + i))
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![rvar().prop_map(Atom::Reg), evar().prop_map(Atom::Eff)]
}

fn effect() -> impl Strategy<Value = Effect> {
    proptest::collection::btree_set(atom(), 0..5)
}

fn arrow_eff() -> impl Strategy<Value = ArrowEff> {
    (evar(), effect()).prop_map(|(h, l)| ArrowEff::new(h, l))
}

fn mu() -> impl Strategy<Value = Mu> {
    let leaf = prop_oneof![
        Just(Mu::Int),
        Just(Mu::Bool),
        Just(Mu::Unit),
        tvar().prop_map(Mu::Var),
        rvar().prop_map(Mu::string),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), rvar()).prop_map(|(a, b, r)| Mu::pair(a, b, r)),
            (inner.clone(), arrow_eff(), inner.clone(), rvar())
                .prop_map(|(a, ae, b, r)| Mu::arrow(a, ae, b, r)),
            (inner.clone(), rvar()).prop_map(|(e, r)| Mu::list(e, r)),
            (inner, rvar()).prop_map(|(e, r)| Mu::reference(e, r)),
        ]
    })
}

fn subst() -> impl Strategy<Value = Subst> {
    (
        proptest::collection::btree_map(tvar(), mu(), 0..3),
        proptest::collection::btree_map(rvar(), rvar(), 0..4),
        proptest::collection::btree_map(evar(), arrow_eff(), 0..4),
    )
        .prop_map(|(ty, reg, eff)| Subst { ty, reg, eff })
}

fn region_effect_subst() -> impl Strategy<Value = Subst> {
    (
        proptest::collection::btree_map(rvar(), rvar(), 0..4),
        proptest::collection::btree_map(evar(), arrow_eff(), 0..4),
    )
        .prop_map(|(reg, eff)| Subst {
            ty: Default::default(),
            reg,
            eff,
        })
}

/// An Ω covering the whole tyvar universe.
fn omega() -> impl Strategy<Value = Delta> {
    proptest::collection::vec(arrow_eff(), NA as usize).prop_map(|aes| {
        aes.into_iter()
            .enumerate()
            .map(|(i, ae)| (TyVar(BASE + i as u32), ae))
            .collect()
    })
}

/// The least effect containing `mu` under `omega` (so containment holds by
/// construction).
fn closing_effect(omega: &Delta, m: &Mu) -> Effect {
    let mut phi = Effect::new();
    m.frev(&mut phi);
    let mut tvs = std::collections::BTreeSet::new();
    m.ftv(&mut tvs);
    for a in tvs {
        if let Some(ae) = omega.get(&a) {
            phi.extend(ae.frev());
        }
    }
    phi
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Proposition 3: φ ⊆ φ' ⟹ S(φ) ⊆ S(φ').
    #[test]
    fn substitution_effect_monotonicity(s in subst(), phi in effect(), extra in effect()) {
        let mut phi2 = phi.clone();
        phi2.extend(extra);
        prop_assert!(s.effect(&phi).is_subset(&s.effect(&phi2)));
    }

    /// The arrow-effect-substitution interchange property:
    /// frev(S(ε.φ)) = S({ε} ∪ φ).
    #[test]
    fn arrow_effect_interchange(s in subst(), ae in arrow_eff()) {
        let lhs = s.arrow_eff(&ae).frev();
        let mut dom = ae.latent.clone();
        dom.insert(Atom::Eff(ae.handle));
        let rhs = s.effect(&dom);
        prop_assert_eq!(lhs, rhs);
    }

    /// Substituting an effect yields an effect closed under the map (no
    /// domain variables survive unless mapped to themselves).
    #[test]
    fn effect_substitution_removes_domain(s in subst(), phi in effect()) {
        let out = s.effect(&phi);
        for (r, r2) in &s.reg {
            if r != r2 && !s.reg.values().any(|v| v == r) {
                // r only survives if some OTHER variable maps onto it or an
                // effect var's latent mentions it.
                let via_eff = s.eff.values().any(|ae| ae.frev().contains(&Atom::Reg(*r)));
                if !via_eff {
                    prop_assert!(!out.contains(&Atom::Reg(*r)));
                }
            }
        }
    }

    /// Proposition 1 + 2: Ω ⊢ µ : φ implies Ω ⊢ µ and frev(µ) ⊆ φ.
    #[test]
    fn containment_implies_wf_and_frev(om in omega(), m in mu()) {
        let phi = closing_effect(&om, &m);
        prop_assert!(mu_contained(&om, &m, &phi));
        prop_assert!(wf_mu(&om, &m));
        let mut fr = Effect::new();
        m.frev(&mut fr);
        prop_assert!(fr.is_subset(&phi));
    }

    /// Effect extensibility: Ω ⊢ µ : φ and φ ⊆ φ' imply Ω ⊢ µ : φ'.
    #[test]
    fn containment_effect_extensibility(om in omega(), m in mu(), extra in effect()) {
        let phi = closing_effect(&om, &m);
        let mut phi2 = phi.clone();
        phi2.extend(extra);
        prop_assert!(mu_contained(&om, &m, &phi2));
    }

    /// Proposition 4: containment is closed under region-effect
    /// substitution: Ω ⊢ µ : φ ⟹ S(Ω) ⊢ S(µ) : S(φ).
    #[test]
    fn containment_closed_under_region_effect_subst(
        om in omega(),
        m in mu(),
        s in region_effect_subst(),
    ) {
        let phi = closing_effect(&om, &m);
        prop_assume!(mu_contained(&om, &m, &phi));
        let om2: Delta = om.iter().map(|(a, ae)| (*a, s.arrow_eff(ae))).collect();
        let m2 = s.mu(&m);
        let phi2 = s.effect(&phi);
        prop_assert!(mu_contained(&om2, &m2, &phi2));
    }

    /// Substitution distributes over type constructors.
    #[test]
    fn substitution_is_structural(s in subst(), a in mu(), b in mu(), r in rvar()) {
        let pair = Mu::pair(a.clone(), b.clone(), r);
        let out = s.mu(&pair);
        prop_assert_eq!(out, Mu::pair(s.mu(&a), s.mu(&b), s.reg_var(r)));
    }

    /// freshen_scheme produces an equivalent scheme: same shape, fresh
    /// bound variables, same free atoms.
    #[test]
    fn freshening_preserves_free_atoms(m1 in mu(), ae in arrow_eff(), m2 in mu(),
                                       rv in rvar(), ev in evar()) {
        let scheme = Scheme {
            rvars: vec![rv],
            evars: vec![ev],
            delta: vec![],
            body: BoxTy::Arrow(m1, ae, m2),
        };
        let fresh = freshen_scheme(&scheme);
        let mut free_a = Effect::new();
        scheme.frev(&mut free_a);
        let mut free_b = Effect::new();
        fresh.frev(&mut free_b);
        prop_assert_eq!(free_a, free_b);
        prop_assert_ne!(fresh.rvars[0], scheme.rvars[0]);
        prop_assert_ne!(fresh.evars[0], scheme.evars[0]);
    }

    /// Scheme-and-place containment is invariant under freshening.
    #[test]
    fn pi_containment_alpha_invariant(m1 in mu(), ae in arrow_eff(), m2 in mu(),
                                      place in rvar(), phi in effect()) {
        let scheme = Scheme {
            rvars: vec![],
            evars: vec![],
            delta: vec![],
            body: BoxTy::Arrow(m1, ae, m2),
        };
        let mut full = phi;
        full.insert(Atom::Reg(place));
        let pi1 = Pi::Scheme(scheme.clone(), place);
        let pi2 = Pi::Scheme(freshen_scheme(&scheme), place);
        prop_assert_eq!(
            pi_contained(&Delta::new(), &pi1, &full),
            pi_contained(&Delta::new(), &pi2, &full)
        );
    }
}
