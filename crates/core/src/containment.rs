//! Type containment `Ω ⊢ µ : φ` and type scheme containment `Ω ⊢ π : φ`
//! (paper Section 3.2).
//!
//! Containment expresses that a type "lives within" an effect: all the
//! regions and effect variables the type mentions — **including, through
//! `Ω`, the arrow effects associated with its type variables** — appear in
//! `φ`. This is the relation the GC-safety side condition is built from,
//! and the `Ω ⊢ α : φ  ⇔  frev(Ω(α)) ⊆ φ` rule for type variables is the
//! paper's key addition over earlier work.

use crate::types::{BoxTy, Delta, Mu, Pi};
use crate::vars::{Atom, Effect};

/// Checks `Ω ⊢ µ : φ`.
pub fn mu_contained(omega: &Delta, mu: &Mu, phi: &Effect) -> bool {
    mu_contained_with(omega, mu, phi, false)
}

/// Checks `Ω ⊢ µ : φ`, optionally treating type variables as vacuously
/// contained (`vacuous_tyvars = true` reproduces the *pre-paper* relation
/// of \[13\]/\[45, p. 50\], which is not closed under type substitution — the
/// unsound `rg-` discipline of the benchmarks).
pub fn mu_contained_with(omega: &Delta, mu: &Mu, phi: &Effect, vacuous_tyvars: bool) -> bool {
    match mu {
        Mu::Int | Mu::Bool | Mu::Unit => true,
        Mu::Var(a) => {
            if vacuous_tyvars {
                return true;
            }
            match omega.get(a) {
                Some(ae) => ae.frev().is_subset(phi),
                // A type variable not in Ω cannot be contained (the
                // sentence is only derivable when α ∈ dom(Ω)).
                None => false,
            }
        }
        Mu::Boxed(b, rho) => {
            phi.contains(&Atom::Reg(*rho)) && boxty_contained_with(omega, b, phi, vacuous_tyvars)
        }
    }
}

/// Checks containment for the body constructors of a boxed type (the place
/// itself is checked by [`mu_contained`]).
pub fn boxty_contained(omega: &Delta, t: &BoxTy, phi: &Effect) -> bool {
    boxty_contained_with(omega, t, phi, false)
}

/// As [`boxty_contained`], with optional vacuous type variables.
pub fn boxty_contained_with(omega: &Delta, t: &BoxTy, phi: &Effect, vac: bool) -> bool {
    match t {
        BoxTy::Pair(a, b) => {
            mu_contained_with(omega, a, phi, vac) && mu_contained_with(omega, b, phi, vac)
        }
        BoxTy::Arrow(a, ae, b) => {
            mu_contained_with(omega, a, phi, vac)
                && mu_contained_with(omega, b, phi, vac)
                && ae.latent.is_subset(phi)
                && phi.contains(&Atom::Eff(ae.handle))
        }
        BoxTy::Str | BoxTy::Exn => true,
        BoxTy::List(e) | BoxTy::Ref(e) => mu_contained_with(omega, e, phi, vac),
    }
}

/// Checks `Ω ⊢ π : φ`.
///
/// For the scheme form `(∀ρ⃗ε⃗.∀∆.τ, ρ)`, bound variables are first renamed
/// fresh (types are identified up to renaming of bound variables), then the
/// body is checked in `Ω + ∆` against `φ` extended with the bound
/// variables, mirroring the rule
///
/// ```text
/// Ω ⊢ σ : φ    ρ ∈ φ    {ρ⃗ε⃗} ∩ frev(Ω, ρ) = ∅
/// ---------------------------------------------
/// Ω ⊢ (∀ρ⃗ε⃗.σ, ρ) : φ \ {ρ⃗ε⃗}
/// ```
pub fn pi_contained(omega: &Delta, pi: &Pi, phi: &Effect) -> bool {
    pi_contained_with(omega, pi, phi, false)
}

/// As [`pi_contained`], with optional vacuous type variables.
pub fn pi_contained_with(omega: &Delta, pi: &Pi, phi: &Effect, vac: bool) -> bool {
    match pi {
        Pi::Mu(m) => mu_contained_with(omega, m, phi, vac),
        Pi::Scheme(s, rho) => {
            if !phi.contains(&Atom::Reg(*rho)) {
                return false;
            }
            let s = crate::subst::freshen_scheme(s);
            // dom(∆) ∩ dom(Ω) = ∅ holds after freshening.
            let mut ext = omega.clone();
            ext.extend(s.delta.iter().cloned());
            let mut phi2 = phi.clone();
            for r in &s.rvars {
                phi2.insert(Atom::Reg(*r));
            }
            for e in &s.evars {
                phi2.insert(Atom::Eff(*e));
            }
            // The arrow effects recorded in ∆ are part of the scheme and
            // must be contained as well (they stand for effects that the
            // instantiation of each type variable will flow into).
            for (_, ae) in &s.delta {
                if !ae.frev().is_subset(&phi2) {
                    return false;
                }
            }
            boxty_contained_with(&ext, &s.body, &phi2, vac)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Scheme;
    use crate::vars::{effect, ArrowEff, EffVar, RegVar, TyVar};

    #[test]
    fn ints_always_contained() {
        assert!(mu_contained(&Delta::new(), &Mu::Int, &Effect::new()));
        assert!(mu_contained(&Delta::new(), &Mu::Unit, &Effect::new()));
    }

    #[test]
    fn boxed_requires_place() {
        let r = RegVar::fresh();
        let m = Mu::string(r);
        assert!(!mu_contained(&Delta::new(), &m, &Effect::new()));
        assert!(mu_contained(&Delta::new(), &m, &effect([Atom::Reg(r)])));
    }

    #[test]
    fn tyvar_contained_through_omega() {
        // Ω ⊢ α : φ iff frev(Ω(α)) ⊆ φ — the paper's crucial rule.
        let a = TyVar::fresh();
        let e = EffVar::fresh();
        let r = RegVar::fresh();
        let mut omega = Delta::new();
        omega.insert(a, ArrowEff::new(e, effect([Atom::Reg(r)])));
        let m = Mu::Var(a);
        assert!(!mu_contained(&omega, &m, &effect([Atom::Eff(e)])));
        assert!(mu_contained(
            &omega,
            &m,
            &effect([Atom::Eff(e), Atom::Reg(r)])
        ));
    }

    #[test]
    fn tyvar_without_omega_entry_not_contained() {
        let a = TyVar::fresh();
        assert!(!mu_contained(&Delta::new(), &Mu::Var(a), &Effect::new()));
    }

    #[test]
    fn arrow_requires_latent_handle_and_place() {
        let r = RegVar::fresh();
        let r2 = RegVar::fresh();
        let e = EffVar::fresh();
        let m = Mu::arrow(
            Mu::Int,
            ArrowEff::new(e, effect([Atom::Reg(r2)])),
            Mu::Int,
            r,
        );
        let full = effect([Atom::Reg(r), Atom::Reg(r2), Atom::Eff(e)]);
        assert!(mu_contained(&Delta::new(), &m, &full));
        // Missing any component fails.
        for drop in full.iter() {
            let mut phi = full.clone();
            phi.remove(drop);
            assert!(!mu_contained(&Delta::new(), &m, &phi), "dropped {drop}");
        }
    }

    #[test]
    fn containment_implies_frev_subset_prop2() {
        // Proposition 2: Ω ⊢ µ : φ implies frev(µ) ⊆ φ.
        let r = RegVar::fresh();
        let e = EffVar::fresh();
        let m = Mu::arrow(Mu::Int, ArrowEff::new(e, Effect::new()), Mu::Int, r);
        let phi = effect([Atom::Reg(r), Atom::Eff(e)]);
        assert!(mu_contained(&Delta::new(), &m, &phi));
        let mut fr = Effect::new();
        m.frev(&mut fr);
        assert!(fr.is_subset(&phi));
    }

    #[test]
    fn effect_extensibility() {
        // If Ω ⊢ µ : φ and φ ⊆ φ' then Ω ⊢ µ : φ'.
        let r = RegVar::fresh();
        let m = Mu::string(r);
        let phi = effect([Atom::Reg(r)]);
        let mut phi2 = phi.clone();
        phi2.insert(Atom::Reg(RegVar::fresh()));
        assert!(mu_contained(&Delta::new(), &m, &phi));
        assert!(mu_contained(&Delta::new(), &m, &phi2));
    }

    #[test]
    fn scheme_containment_discharges_bound_vars() {
        // (∀ρ'ε. (int --ε.{ρ'}--> int), ρ) : {ρ} holds: bound variables
        // are not required in φ.
        let rho = RegVar::fresh();
        let rho2 = RegVar::fresh();
        let eps = EffVar::fresh();
        let s = Scheme {
            rvars: vec![rho2],
            evars: vec![eps],
            delta: vec![],
            body: BoxTy::Arrow(
                Mu::Int,
                ArrowEff::new(eps, effect([Atom::Reg(rho2)])),
                Mu::Int,
            ),
        };
        let pi = Pi::Scheme(s, rho);
        assert!(pi_contained(&Delta::new(), &pi, &effect([Atom::Reg(rho)])));
        assert!(!pi_contained(&Delta::new(), &pi, &Effect::new()));
    }

    #[test]
    fn scheme_containment_requires_free_vars() {
        // A free region in the body must be in φ.
        let rho = RegVar::fresh();
        let free = RegVar::fresh();
        let eps = EffVar::fresh();
        let s = Scheme {
            rvars: vec![],
            evars: vec![eps],
            delta: vec![],
            body: BoxTy::Arrow(
                Mu::Int,
                ArrowEff::new(eps, effect([Atom::Reg(free)])),
                Mu::Int,
            ),
        };
        let pi = Pi::Scheme(s, rho);
        assert!(!pi_contained(&Delta::new(), &pi, &effect([Atom::Reg(rho)])));
        assert!(pi_contained(
            &Delta::new(),
            &pi,
            &effect([Atom::Reg(rho), Atom::Reg(free)])
        ));
    }
}
