//! Region-annotated types, type schemes, and type variable contexts
//! (paper Section 3.2).
//!
//! The grammar follows the paper, extended with the ground types and type
//! constructors of the full source language:
//!
//! ```text
//! µ ::= (τ, ρ) | α | int | bool | unit
//! τ ::= µ1 × µ2 | µ1 --ε.φ--> µ2 | string | µ list | µ ref | exn
//! σ ::= ∀ρ⃗ε⃗.∀∆.τ        π ::= (σ, ρ) | µ
//! ```
//!
//! A *type variable context* `Ω` (or `∆`) maps type variables to arrow
//! effects; it is the paper's device for tracking which effects the
//! instantiation of a quantified type variable must flow into.

use crate::vars::{ArrowEff, Atom, EffVar, Effect, RegVar, TyVar};
use std::collections::BTreeMap;

/// A type-and-place `µ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mu {
    /// A type variable `α`.
    Var(TyVar),
    /// Unboxed `int`.
    Int,
    /// Unboxed `bool`.
    Bool,
    /// Unboxed `unit`.
    Unit,
    /// A boxed type at a place: `(τ, ρ)`.
    Boxed(Box<BoxTy>, RegVar),
}

/// A boxed type constructor `τ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BoxTy {
    /// `µ1 × µ2`
    Pair(Mu, Mu),
    /// `µ1 --ε.φ--> µ2`
    Arrow(Mu, ArrowEff, Mu),
    /// `string`
    Str,
    /// `µ list` (the spine lives in the annotated region).
    List(Mu),
    /// `µ ref`
    Ref(Mu),
    /// `exn` (exception values are boxed).
    Exn,
}

impl Mu {
    /// Builds a boxed pair type.
    pub fn pair(a: Mu, b: Mu, rho: RegVar) -> Mu {
        Mu::Boxed(Box::new(BoxTy::Pair(a, b)), rho)
    }

    /// Builds a boxed arrow type.
    pub fn arrow(a: Mu, eff: ArrowEff, b: Mu, rho: RegVar) -> Mu {
        Mu::Boxed(Box::new(BoxTy::Arrow(a, eff, b)), rho)
    }

    /// Builds a boxed string type.
    pub fn string(rho: RegVar) -> Mu {
        Mu::Boxed(Box::new(BoxTy::Str), rho)
    }

    /// Builds a boxed list type.
    pub fn list(elem: Mu, rho: RegVar) -> Mu {
        Mu::Boxed(Box::new(BoxTy::List(elem)), rho)
    }

    /// Builds a boxed ref type.
    pub fn reference(elem: Mu, rho: RegVar) -> Mu {
        Mu::Boxed(Box::new(BoxTy::Ref(elem)), rho)
    }

    /// Builds a boxed exception type.
    pub fn exn(rho: RegVar) -> Mu {
        Mu::Boxed(Box::new(BoxTy::Exn), rho)
    }

    /// The place of a boxed type, if any.
    pub fn place(&self) -> Option<RegVar> {
        match self {
            Mu::Boxed(_, r) => Some(*r),
            _ => None,
        }
    }

    /// Deconstructs an arrow type-and-place.
    pub fn as_arrow(&self) -> Option<(&Mu, &ArrowEff, &Mu, RegVar)> {
        match self {
            Mu::Boxed(b, r) => match &**b {
                BoxTy::Arrow(a, eff, c) => Some((a, eff, c, *r)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Free region and effect variables `frev(µ)`, inserted into `out`.
    pub fn frev(&self, out: &mut Effect) {
        match self {
            Mu::Var(_) | Mu::Int | Mu::Bool | Mu::Unit => {}
            Mu::Boxed(b, r) => {
                out.insert(Atom::Reg(*r));
                b.frev(out);
            }
        }
    }

    /// Free region variables `frv(µ)`.
    pub fn frv(&self) -> Vec<RegVar> {
        let mut phi = Effect::new();
        self.frev(&mut phi);
        crate::vars::regions_of(&phi).collect()
    }

    /// Free type variables, inserted into `out`.
    pub fn ftv(&self, out: &mut std::collections::BTreeSet<TyVar>) {
        match self {
            Mu::Var(a) => {
                out.insert(*a);
            }
            Mu::Int | Mu::Bool | Mu::Unit => {}
            Mu::Boxed(b, _) => b.ftv(out),
        }
    }
}

impl BoxTy {
    /// Free region and effect variables, inserted into `out`.
    pub fn frev(&self, out: &mut Effect) {
        match self {
            BoxTy::Pair(a, b) => {
                a.frev(out);
                b.frev(out);
            }
            BoxTy::Arrow(a, eff, b) => {
                a.frev(out);
                out.insert(Atom::Eff(eff.handle));
                out.extend(eff.latent.iter().copied());
                b.frev(out);
            }
            BoxTy::Str | BoxTy::Exn => {}
            BoxTy::List(e) | BoxTy::Ref(e) => e.frev(out),
        }
    }

    /// Free type variables, inserted into `out`.
    pub fn ftv(&self, out: &mut std::collections::BTreeSet<TyVar>) {
        match self {
            BoxTy::Pair(a, b) | BoxTy::Arrow(a, _, b) => {
                a.ftv(out);
                b.ftv(out);
            }
            BoxTy::Str | BoxTy::Exn => {}
            BoxTy::List(e) | BoxTy::Ref(e) => e.ftv(out),
        }
    }
}

/// A type variable context `Ω` / `∆`: a finite map from type variables to
/// arrow effects.
pub type Delta = BTreeMap<TyVar, ArrowEff>;

/// Free region and effect variables of a context.
pub fn delta_frev(d: &Delta, out: &mut Effect) {
    for ae in d.values() {
        out.insert(Atom::Eff(ae.handle));
        out.extend(ae.latent.iter().copied());
    }
}

/// A type scheme `σ = ∀ρ⃗ ε⃗. ∀∆. τ`.
///
/// The paper's grammar nests the two quantifier layers
/// (`σ ::= ∀ρ⃗ε⃗.σ | ∀∆.τ`); we keep them in normal form. The region and
/// effect variables `rvars`/`evars` and the type variables in `delta` are
/// bound in `body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// Quantified region variables `ρ⃗`.
    pub rvars: Vec<RegVar>,
    /// Quantified effect variables `ε⃗`.
    pub evars: Vec<EffVar>,
    /// The type variable context `∆` (quantified type variables with their
    /// arrow effects, in instantiation order).
    pub delta: Vec<(TyVar, ArrowEff)>,
    /// The scheme body `τ` — always a boxed constructor (arrows, in
    /// practice, since only functions are scheme-bound).
    pub body: BoxTy,
}

impl Scheme {
    /// A scheme with no quantification.
    pub fn mono(body: BoxTy) -> Scheme {
        Scheme {
            rvars: Vec::new(),
            evars: Vec::new(),
            delta: Vec::new(),
            body,
        }
    }

    /// The `∆` as a map.
    pub fn delta_map(&self) -> Delta {
        self.delta.iter().cloned().collect()
    }

    /// Free region and effect variables of the scheme (bound variables
    /// removed). The arrow effects in `∆` are part of the scheme, so their
    /// free atoms count, minus the bound `ρ⃗ε⃗`.
    pub fn frev(&self, out: &mut Effect) {
        let mut inner = Effect::new();
        self.body.frev(&mut inner);
        for (_, ae) in &self.delta {
            inner.insert(Atom::Eff(ae.handle));
            inner.extend(ae.latent.iter().copied());
        }
        for r in &self.rvars {
            inner.remove(&Atom::Reg(*r));
        }
        for e in &self.evars {
            inner.remove(&Atom::Eff(*e));
        }
        out.extend(inner);
    }

    /// Free type variables of the scheme (those in the body minus `∆`).
    pub fn ftv(&self, out: &mut std::collections::BTreeSet<TyVar>) {
        let mut inner = std::collections::BTreeSet::new();
        self.body.ftv(&mut inner);
        for (a, _) in &self.delta {
            inner.remove(a);
        }
        out.extend(inner);
    }
}

/// A type scheme and place `π ::= (σ, ρ) | µ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pi {
    /// `(σ, ρ)`
    Scheme(Scheme, RegVar),
    /// `µ`
    Mu(Mu),
}

impl Pi {
    /// Views the `µ` form.
    pub fn as_mu(&self) -> Option<&Mu> {
        match self {
            Pi::Mu(m) => Some(m),
            Pi::Scheme(..) => None,
        }
    }

    /// Views the scheme form.
    pub fn as_scheme(&self) -> Option<(&Scheme, RegVar)> {
        match self {
            Pi::Scheme(s, r) => Some((s, *r)),
            Pi::Mu(_) => None,
        }
    }

    /// Free region and effect variables.
    pub fn frev(&self, out: &mut Effect) {
        match self {
            Pi::Scheme(s, r) => {
                out.insert(Atom::Reg(*r));
                s.frev(out);
            }
            Pi::Mu(m) => m.frev(out),
        }
    }

    /// Free region variables.
    pub fn frv(&self) -> Vec<RegVar> {
        let mut phi = Effect::new();
        self.frev(&mut phi);
        crate::vars::regions_of(&phi).collect()
    }

    /// Free type variables.
    pub fn ftv(&self, out: &mut std::collections::BTreeSet<TyVar>) {
        match self {
            Pi::Scheme(s, _) => s.ftv(out),
            Pi::Mu(m) => m.ftv(out),
        }
    }
}

impl From<Mu> for Pi {
    fn from(m: Mu) -> Pi {
        Pi::Mu(m)
    }
}

// ---------------------------------------------------------------------
// Well-formedness (paper Section 3.2).
// ---------------------------------------------------------------------

/// Well-formedness `Ω ⊢ µ`: every type variable is in `dom(Ω)`.
pub fn wf_mu(omega: &Delta, mu: &Mu) -> bool {
    match mu {
        Mu::Var(a) => omega.contains_key(a),
        Mu::Int | Mu::Bool | Mu::Unit => true,
        Mu::Boxed(b, _) => wf_boxty(omega, b),
    }
}

/// Well-formedness for boxed types.
pub fn wf_boxty(omega: &Delta, t: &BoxTy) -> bool {
    match t {
        BoxTy::Pair(a, b) => wf_mu(omega, a) && wf_mu(omega, b),
        BoxTy::Arrow(a, _, b) => wf_mu(omega, a) && wf_mu(omega, b),
        BoxTy::Str | BoxTy::Exn => true,
        BoxTy::List(e) | BoxTy::Ref(e) => wf_mu(omega, e),
    }
}

/// Well-formedness `Ω ⊢ π`: for schemes, `dom(∆) ∩ dom(Ω) = ∅` and the
/// body is well-formed in `Ω + ∆`.
pub fn wf_pi(omega: &Delta, pi: &Pi) -> bool {
    match pi {
        Pi::Mu(m) => wf_mu(omega, m),
        Pi::Scheme(s, _) => {
            if s.delta.iter().any(|(a, _)| omega.contains_key(a)) {
                return false;
            }
            let mut ext = omega.clone();
            ext.extend(s.delta.iter().cloned());
            wf_boxty(&ext, &s.body)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_arrow() -> (Mu, RegVar, EffVar) {
        let r = RegVar::fresh();
        let e = EffVar::fresh();
        let mu = Mu::arrow(Mu::Int, ArrowEff::new(e, Effect::new()), Mu::Int, r);
        (mu, r, e)
    }

    #[test]
    fn frev_of_arrow() {
        let (mu, r, e) = sample_arrow();
        let mut phi = Effect::new();
        mu.frev(&mut phi);
        assert!(phi.contains(&Atom::Reg(r)));
        assert!(phi.contains(&Atom::Eff(e)));
    }

    #[test]
    fn scheme_frev_removes_bound() {
        let (mu, r, e) = sample_arrow();
        let Mu::Boxed(b, _) = mu else { panic!() };
        let outer = RegVar::fresh();
        let s = Scheme {
            rvars: vec![r],
            evars: vec![e],
            delta: vec![],
            body: *b,
        };
        let mut phi = Effect::new();
        Pi::Scheme(s, outer).frev(&mut phi);
        assert_eq!(phi, crate::vars::effect([Atom::Reg(outer)]));
    }

    #[test]
    fn delta_arrow_effects_are_free_in_scheme() {
        // ∆ = {α : ε'.{ρ'}} — ε' and ρ' are free in the scheme unless
        // quantified.
        let a = TyVar::fresh();
        let e2 = EffVar::fresh();
        let r2 = RegVar::fresh();
        let s = Scheme {
            rvars: vec![],
            evars: vec![],
            delta: vec![(a, ArrowEff::new(e2, crate::vars::effect([Atom::Reg(r2)])))],
            body: BoxTy::Arrow(Mu::Var(a), ArrowEff::fresh_empty(), Mu::Unit),
        };
        let mut phi = Effect::new();
        s.frev(&mut phi);
        assert!(phi.contains(&Atom::Eff(e2)));
        assert!(phi.contains(&Atom::Reg(r2)));
    }

    #[test]
    fn wf_requires_tyvars_in_context() {
        let a = TyVar::fresh();
        let omega = Delta::new();
        assert!(!wf_mu(&omega, &Mu::Var(a)));
        let mut omega2 = Delta::new();
        omega2.insert(a, ArrowEff::fresh_empty());
        assert!(wf_mu(&omega2, &Mu::Var(a)));
    }

    #[test]
    fn wf_scheme_rejects_shadowed_delta() {
        let a = TyVar::fresh();
        let mut omega = Delta::new();
        omega.insert(a, ArrowEff::fresh_empty());
        let s = Scheme {
            rvars: vec![],
            evars: vec![],
            delta: vec![(a, ArrowEff::fresh_empty())],
            body: BoxTy::Arrow(Mu::Var(a), ArrowEff::fresh_empty(), Mu::Unit),
        };
        assert!(!wf_pi(&omega, &Pi::Scheme(s, RegVar::fresh())));
    }

    #[test]
    fn ftv_collects() {
        let a = TyVar::fresh();
        let r = RegVar::fresh();
        let mu = Mu::pair(Mu::Var(a), Mu::Int, r);
        let mut tvs = std::collections::BTreeSet::new();
        mu.ftv(&mut tvs);
        assert!(tvs.contains(&a));
        assert_eq!(tvs.len(), 1);
    }
}
