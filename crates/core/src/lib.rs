//! The GC-safe region type system of Elsman's *Garbage-Collection Safety
//! for Region-Based Type-Polymorphic Programs* (PLDI 2023), Section 3 —
//! the paper's primary contribution — implemented as a checkable calculus.
//!
//! The crate provides, in one-to-one correspondence with the paper:
//!
//! * region, effect, and type variables; effects and **arrow effects**
//!   `ε.φ` ([`vars`]),
//! * types and places `µ`, type schemes `∀ρ⃗ε⃗.∀∆.τ` with **type variable
//!   contexts** `∆` mapping quantified type variables to arrow effects,
//!   well-formedness `Ω ⊢ µ` ([`types`]),
//! * substitutions `S = (Sᵗ, Sʳ, Sᵉ)` and their action on every object,
//!   with capture avoidance ([`subst`]),
//! * type containment `Ω ⊢ µ : φ` and scheme containment `Ω ⊢ π : φ`
//!   ([`containment`]),
//! * **substitution coverage** `Ω ⊢ S : ∆` and instantiation
//!   `Ω ⊢ σ ≥ τ via S` ([`instantiate`]) — the paper's key device for
//!   closing the system under type substitution,
//! * the region-annotated term language with values ([`terms`]),
//! * value containment `φ |=ᵥ e`, context containment `φ |=c e`, and the
//!   GC-safety relation `G(Ω, Γ, e, X, π)` ([`gcsafe`]),
//! * the typing rules of Figure 4 as a syntax-directed checker
//!   ([`typing`]), and
//! * the small-step dynamic semantics of Figure 6 with a dangling-pointer-
//!   free containment monitor (Theorem 2) ([`semantics`]).
//!
//! The term language extends the paper's calculus with the ML features the
//! paper says the system scales to (Section 4): strings, booleans,
//! conditionals, built-in lists, references, and exceptions. The
//! metatheory (Propositions 3–16) is exercised by unit and property tests
//! across the modules.
//!
//! # Example
//!
//! Build and check the term `letregion ρ in (λx.x at ρ) 5`:
//!
//! ```
//! use rml_core::terms::Term;
//! use rml_core::types::Mu;
//! use rml_core::vars::{ArrowEff, EffVar, RegVar};
//! use rml_core::typing::{Checker, TypeEnv};
//!
//! let rho = RegVar::fresh();
//! let eps = EffVar::fresh();
//! let id_ty = Mu::arrow(Mu::Int, ArrowEff::new(eps, Default::default()), Mu::Int, rho);
//! let id = Term::lam("x", id_ty, Term::var("x"), rho);
//! let e = Term::letregion(vec![rho], vec![eps], Term::app(id, Term::Int(5)));
//! let (pi, eff) = Checker::default().check(&TypeEnv::default(), &e).unwrap();
//! assert_eq!(pi.as_mu().unwrap(), &Mu::Int);
//! assert!(eff.is_empty()); // ρ and ε are discharged by letregion
//! ```

pub mod containment;
pub mod error;
pub mod gcsafe;
pub mod instantiate;
pub mod ir;
pub mod pretty;
pub mod semantics;
pub mod subst;
pub mod terms;
pub mod types;
pub mod typing;
pub mod vars;

pub use error::CheckError;
pub use subst::Subst;
pub use terms::{Term, Value};
pub use types::{BoxTy, Delta, Mu, Pi, Scheme};
pub use typing::{Checker, TypeEnv};
pub use vars::{ArrowEff, Atom, EffVar, Effect, RegVar, TyVar};
