//! Substitutions `S = (Sᵗ, Sʳ, Sᵉ)` and their action on effects, arrow
//! effects, types, contexts, and schemes (paper Section 3.3).
//!
//! The three component maps are applied **simultaneously**. Substitution on
//! effects follows the paper exactly:
//!
//! ```text
//! S(φ)    = { Sʳ(ρ) | ρ ∈ φ } ∪ { η | ∃ε. ε ∈ φ ∧ η ∈ frev(Sᵉ(ε)) }
//! S(ε.φ)  = ε′.(φ′ ∪ S(φ))   where Sᵉ(ε) = ε′.φ′
//! ```
//!
//! so applying a substitution to an effect again yields an effect, and
//! effects can only *grow* (Proposition 3, tested below).

use crate::types::{BoxTy, Delta, Mu, Pi, Scheme};
use crate::vars::{ArrowEff, Atom, EffVar, Effect, RegVar, TyVar};
use std::collections::{BTreeMap, BTreeSet};

/// A substitution: a triple of a type substitution, a region substitution,
/// and an effect substitution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    /// `Sᵗ`: type variables to types-and-places.
    pub ty: BTreeMap<TyVar, Mu>,
    /// `Sʳ`: region variables to region variables.
    pub reg: BTreeMap<RegVar, RegVar>,
    /// `Sᵉ`: effect variables to arrow effects.
    pub eff: BTreeMap<EffVar, ArrowEff>,
}

impl Subst {
    /// The identity substitution.
    pub fn identity() -> Subst {
        Subst::default()
    }

    /// A pure region renaming.
    pub fn regions<I: IntoIterator<Item = (RegVar, RegVar)>>(map: I) -> Subst {
        Subst {
            reg: map.into_iter().collect(),
            ..Subst::default()
        }
    }

    /// A pure effect substitution.
    pub fn effects<I: IntoIterator<Item = (EffVar, ArrowEff)>>(map: I) -> Subst {
        Subst {
            eff: map.into_iter().collect(),
            ..Subst::default()
        }
    }

    /// A pure type substitution.
    pub fn types<I: IntoIterator<Item = (TyVar, Mu)>>(map: I) -> Subst {
        Subst {
            ty: map.into_iter().collect(),
            ..Subst::default()
        }
    }

    /// Is this a *region-effect* substitution (`dom(Sᵗ) = ∅`)?
    pub fn is_region_effect(&self) -> bool {
        self.ty.is_empty()
    }

    /// Applies `Sʳ` to a region variable.
    pub fn reg_var(&self, r: RegVar) -> RegVar {
        self.reg.get(&r).copied().unwrap_or(r)
    }

    /// Applies the substitution to an effect.
    pub fn effect(&self, phi: &Effect) -> Effect {
        let mut out = Effect::new();
        for a in phi {
            match a {
                Atom::Reg(r) => {
                    out.insert(Atom::Reg(self.reg_var(*r)));
                }
                Atom::Eff(e) => match self.eff.get(e) {
                    Some(ae) => out.extend(ae.frev()),
                    None => {
                        out.insert(Atom::Eff(*e));
                    }
                },
            }
        }
        out
    }

    /// Applies the substitution to an arrow effect (canonicalised: the
    /// result handle never appears in its own latent set).
    pub fn arrow_eff(&self, ae: &ArrowEff) -> ArrowEff {
        let sphi = self.effect(&ae.latent);
        match self.eff.get(&ae.handle) {
            Some(target) => {
                let mut latent = target.latent.clone();
                latent.extend(sphi);
                ArrowEff::new(target.handle, latent)
            }
            None => ArrowEff::new(ae.handle, sphi),
        }
    }

    /// Applies the substitution to a type-and-place.
    pub fn mu(&self, m: &Mu) -> Mu {
        match m {
            Mu::Var(a) => self.ty.get(a).cloned().unwrap_or(Mu::Var(*a)),
            Mu::Int => Mu::Int,
            Mu::Bool => Mu::Bool,
            Mu::Unit => Mu::Unit,
            Mu::Boxed(b, r) => Mu::Boxed(Box::new(self.boxty(b)), self.reg_var(*r)),
        }
    }

    /// Applies the substitution to a boxed type.
    pub fn boxty(&self, t: &BoxTy) -> BoxTy {
        match t {
            BoxTy::Pair(a, b) => BoxTy::Pair(self.mu(a), self.mu(b)),
            BoxTy::Arrow(a, ae, b) => BoxTy::Arrow(self.mu(a), self.arrow_eff(ae), self.mu(b)),
            BoxTy::Str => BoxTy::Str,
            BoxTy::Exn => BoxTy::Exn,
            BoxTy::List(e) => BoxTy::List(self.mu(e)),
            BoxTy::Ref(e) => BoxTy::Ref(self.mu(e)),
        }
    }

    /// Applies the substitution to a type variable context.
    ///
    /// # Panics
    ///
    /// Panics if `dom(Sᵗ)` intersects `dom(∆)` — per the paper, the
    /// application is undefined in that case.
    pub fn delta(&self, d: &Delta) -> Delta {
        assert!(
            d.keys().all(|a| !self.ty.contains_key(a)),
            "substitution domain overlaps type variable context"
        );
        d.iter().map(|(a, ae)| (*a, self.arrow_eff(ae))).collect()
    }

    /// Free type, region, and effect variables of the substitution's range
    /// plus its domain — the set a scheme's bound variables must avoid.
    fn avoid_set(&self) -> (BTreeSet<TyVar>, Effect) {
        let mut tvs: BTreeSet<TyVar> = self.ty.keys().copied().collect();
        let mut atoms = Effect::new();
        for m in self.ty.values() {
            m.ftv(&mut tvs);
            m.frev(&mut atoms);
        }
        for r in self.reg.keys() {
            atoms.insert(Atom::Reg(*r));
        }
        for r in self.reg.values() {
            atoms.insert(Atom::Reg(*r));
        }
        for e in self.eff.keys() {
            atoms.insert(Atom::Eff(*e));
        }
        for ae in self.eff.values() {
            atoms.extend(ae.frev());
        }
        (tvs, atoms)
    }

    /// Applies the substitution to a scheme, renaming bound variables to
    /// avoid capture.
    pub fn scheme(&self, s: &Scheme) -> Scheme {
        let (avoid_tvs, avoid_atoms) = self.avoid_set();
        let needs_rename = s.rvars.iter().any(|r| avoid_atoms.contains(&Atom::Reg(*r)))
            || s.evars.iter().any(|e| avoid_atoms.contains(&Atom::Eff(*e)))
            || s.delta.iter().any(|(a, _)| avoid_tvs.contains(a));
        let s = if needs_rename {
            let mut rename = Subst::default();
            let mut new_rvars = Vec::new();
            for r in &s.rvars {
                let fresh = RegVar::fresh();
                rename.reg.insert(*r, fresh);
                new_rvars.push(fresh);
            }
            let mut new_evars = Vec::new();
            for e in &s.evars {
                let fresh = EffVar::fresh();
                rename.eff.insert(*e, ArrowEff::new(fresh, Effect::new()));
                new_evars.push(fresh);
            }
            let mut new_delta = Vec::new();
            for (a, ae) in &s.delta {
                let fresh = TyVar::fresh();
                rename.ty.insert(*a, Mu::Var(fresh));
                new_delta.push((fresh, ae.clone()));
            }
            let renamed_delta = new_delta
                .into_iter()
                .map(|(a, ae)| (a, rename.arrow_eff(&ae)))
                .collect();
            Scheme {
                rvars: new_rvars,
                evars: new_evars,
                delta: renamed_delta,
                body: rename.boxty(&s.body),
            }
        } else {
            s.clone()
        };
        Scheme {
            rvars: s.rvars.clone(),
            evars: s.evars.clone(),
            delta: s
                .delta
                .iter()
                .map(|(a, ae)| (*a, self.arrow_eff(ae)))
                .collect(),
            body: self.boxty(&s.body),
        }
    }

    /// Applies the substitution to a `π`.
    pub fn pi(&self, p: &Pi) -> Pi {
        match p {
            Pi::Mu(m) => Pi::Mu(self.mu(m)),
            Pi::Scheme(s, r) => Pi::Scheme(self.scheme(s), self.reg_var(*r)),
        }
    }
}

/// Renames all bound variables of a scheme to fresh ones. Schemes are
/// identified up to renaming of bound variables, so the result is
/// equivalent to the input.
pub fn freshen_scheme(s: &Scheme) -> Scheme {
    let mut rename = Subst::default();
    let mut rvars = Vec::new();
    for r in &s.rvars {
        let fresh = RegVar::fresh();
        rename.reg.insert(*r, fresh);
        rvars.push(fresh);
    }
    let mut evars = Vec::new();
    for e in &s.evars {
        let fresh = EffVar::fresh();
        rename.eff.insert(*e, ArrowEff::new(fresh, Effect::new()));
        evars.push(fresh);
    }
    let mut delta = Vec::new();
    for (a, ae) in &s.delta {
        let fresh = TyVar::fresh();
        rename.ty.insert(*a, Mu::Var(fresh));
        delta.push((fresh, ae.clone()));
    }
    let delta = delta
        .into_iter()
        .map(|(a, ae)| (a, rename.arrow_eff(&ae)))
        .collect();
    Scheme {
        rvars,
        evars,
        delta,
        body: rename.boxty(&s.body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::effect;

    #[test]
    fn effect_substitution_expands_handles() {
        // S = [ε ↦ ε'.{ρ'}]; S({ε, ρ}) = {ε', ρ', ρ}
        let e = EffVar::fresh();
        let e2 = EffVar::fresh();
        let r = RegVar::fresh();
        let r2 = RegVar::fresh();
        let s = Subst::effects([(e, ArrowEff::new(e2, effect([Atom::Reg(r2)])))]);
        let phi = effect([Atom::Eff(e), Atom::Reg(r)]);
        let out = s.effect(&phi);
        assert_eq!(out, effect([Atom::Eff(e2), Atom::Reg(r2), Atom::Reg(r)]));
    }

    #[test]
    fn arrow_effect_substitution_grows() {
        // S(ε.φ) = ε′.(φ′ ∪ S(φ))
        let e = EffVar::fresh();
        let e2 = EffVar::fresh();
        let r = RegVar::fresh();
        let r2 = RegVar::fresh();
        let s = Subst::effects([(e, ArrowEff::new(e2, effect([Atom::Reg(r2)])))]);
        let ae = ArrowEff::new(e, effect([Atom::Reg(r)]));
        let out = s.arrow_eff(&ae);
        assert_eq!(out.handle, e2);
        assert_eq!(out.latent, effect([Atom::Reg(r2), Atom::Reg(r)]));
    }

    #[test]
    fn substitution_effect_monotonicity_prop3() {
        // Proposition 3: φ ⊆ φ' implies S(φ) ⊆ S(φ').
        let e = EffVar::fresh();
        let r = RegVar::fresh();
        let r2 = RegVar::fresh();
        let s = Subst {
            ty: BTreeMap::new(),
            reg: [(r, r2)].into_iter().collect(),
            eff: [(e, ArrowEff::fresh_empty())].into_iter().collect(),
        };
        let small = effect([Atom::Reg(r)]);
        let big = effect([Atom::Reg(r), Atom::Eff(e)]);
        assert!(s.effect(&small).is_subset(&s.effect(&big)));
    }

    #[test]
    fn arrow_effect_substitution_interchange() {
        // frev(S(ε.φ)) = S({ε} ∪ φ)
        let e = EffVar::fresh();
        let e2 = EffVar::fresh();
        let r = RegVar::fresh();
        let s = Subst::effects([(e, ArrowEff::new(e2, effect([Atom::Reg(r)])))]);
        let ae = ArrowEff::new(e, effect([]));
        let lhs = s.arrow_eff(&ae).frev();
        let mut dom = effect([Atom::Eff(e)]);
        dom.extend(ae.latent.iter().copied());
        let rhs = s.effect(&dom);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mu_substitution_replaces_tyvars() {
        let a = TyVar::fresh();
        let r = RegVar::fresh();
        let s = Subst::types([(a, Mu::string(r))]);
        let m = Mu::pair(Mu::Var(a), Mu::Int, RegVar::fresh());
        let out = s.mu(&m);
        let Mu::Boxed(b, _) = out else { panic!() };
        let BoxTy::Pair(first, _) = *b else { panic!() };
        assert_eq!(first, Mu::string(r));
    }

    #[test]
    fn scheme_substitution_avoids_capture() {
        // σ = ∀ρ. (int --ε.∅--> int, ρ); S = [ρ' ↦ ρ] must not capture ρ.
        let rho = RegVar::fresh();
        let rho2 = RegVar::fresh();
        let eps = EffVar::fresh();
        let scheme = Scheme {
            rvars: vec![rho],
            evars: vec![],
            delta: vec![],
            body: BoxTy::Arrow(
                Mu::Int,
                ArrowEff::new(eps, effect([Atom::Reg(rho2)])),
                Mu::Int,
            ),
        };
        let s = Subst::regions([(rho2, rho)]);
        let out = s.scheme(&scheme);
        // The free ρ2 became ρ; the bound variable must have been renamed
        // away from ρ.
        let BoxTy::Arrow(_, ae, _) = &out.body else {
            panic!()
        };
        assert!(ae.latent.contains(&Atom::Reg(rho)));
        assert!(!out.rvars.contains(&rho));
    }

    #[test]
    fn delta_substitution_requires_disjointness() {
        let a = TyVar::fresh();
        let mut d = Delta::new();
        d.insert(a, ArrowEff::fresh_empty());
        let s = Subst::types([(a, Mu::Int)]);
        let res = std::panic::catch_unwind(|| s.delta(&d));
        assert!(res.is_err());
    }

    #[test]
    fn identity_substitution_is_identity() {
        let r = RegVar::fresh();
        let e = EffVar::fresh();
        let m = Mu::arrow(
            Mu::Int,
            ArrowEff::new(e, effect([Atom::Reg(r)])),
            Mu::Unit,
            r,
        );
        assert_eq!(Subst::identity().mu(&m), m);
    }
}
