//! Region variables, effect variables, type variables, atomic effects,
//! effects, and arrow effects (paper Section 3.1).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

macro_rules! var_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Allocates a globally fresh variable.
            pub fn fresh() -> $name {
                static NEXT: AtomicU32 = AtomicU32::new(0);
                $name(NEXT.fetch_add(1, Ordering::Relaxed))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

var_type!(
    /// A region variable `ρ`.
    RegVar,
    "r"
);
var_type!(
    /// An effect variable `ε`.
    EffVar,
    "e"
);
var_type!(
    /// A type variable `α`.
    TyVar,
    "a"
);

/// An atomic effect `η`: a region variable or an effect variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// A region variable.
    Reg(RegVar),
    /// An effect variable.
    Eff(EffVar),
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Reg(r) => write!(f, "{r}"),
            Atom::Eff(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<RegVar> for Atom {
    fn from(r: RegVar) -> Atom {
        Atom::Reg(r)
    }
}

impl From<EffVar> for Atom {
    fn from(e: EffVar) -> Atom {
        Atom::Eff(e)
    }
}

/// An effect `φ`: a finite set of atomic effects.
pub type Effect = BTreeSet<Atom>;

/// Builds an effect from atoms.
///
/// # Example
///
/// ```
/// use rml_core::vars::{effect, Atom, RegVar};
/// let r = RegVar::fresh();
/// let phi = effect([Atom::Reg(r)]);
/// assert!(phi.contains(&Atom::Reg(r)));
/// ```
pub fn effect<I: IntoIterator<Item = Atom>>(atoms: I) -> Effect {
    atoms.into_iter().collect()
}

/// An arrow effect `ε.φ`: an effect variable (the *handle*) paired with a
/// latent effect. Function types are annotated with arrow effects — not
/// bare effects — so that effects can *grow* under effect substitution and
/// so the unification-based inference algorithm has unifiers (paper
/// Section 3.5).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrowEff {
    /// The handle `ε`.
    pub handle: EffVar,
    /// The latent effect `φ`.
    pub latent: Effect,
}

impl ArrowEff {
    /// Creates `ε.φ`, in canonical form: the handle is removed from the
    /// latent set. (`frev(ε.φ) = {ε} ∪ φ` regardless, so `ε ∈ φ` is
    /// redundant; keeping arrow effects canonical makes structural type
    /// equality coincide with semantic equality.)
    pub fn new(handle: EffVar, mut latent: Effect) -> ArrowEff {
        latent.remove(&Atom::Eff(handle));
        ArrowEff { handle, latent }
    }

    /// Creates `ε.∅` with a fresh handle.
    pub fn fresh_empty() -> ArrowEff {
        ArrowEff::new(EffVar::fresh(), Effect::new())
    }

    /// The free region and effect variables `frev(ε.φ) = {ε} ∪ φ`.
    pub fn frev(&self) -> Effect {
        let mut s = self.latent.clone();
        s.insert(Atom::Eff(self.handle));
        s
    }
}

impl fmt::Debug for ArrowEff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{{", self.handle)?;
        for (i, a) in self.latent.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ArrowEff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Returns the region variables of an effect.
pub fn regions_of(phi: &Effect) -> impl Iterator<Item = RegVar> + '_ {
    phi.iter().filter_map(|a| match a {
        Atom::Reg(r) => Some(*r),
        Atom::Eff(_) => None,
    })
}

/// Returns the effect variables of an effect.
pub fn effvars_of(phi: &Effect) -> impl Iterator<Item = EffVar> + '_ {
    phi.iter().filter_map(|a| match a {
        Atom::Eff(e) => Some(*e),
        Atom::Reg(_) => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        assert_ne!(RegVar::fresh(), RegVar::fresh());
        assert_ne!(EffVar::fresh(), EffVar::fresh());
        assert_ne!(TyVar::fresh(), TyVar::fresh());
    }

    #[test]
    fn arrow_effect_frev() {
        let e = EffVar::fresh();
        let r = RegVar::fresh();
        let ae = ArrowEff::new(e, effect([Atom::Reg(r)]));
        let fr = ae.frev();
        assert!(fr.contains(&Atom::Eff(e)));
        assert!(fr.contains(&Atom::Reg(r)));
        assert_eq!(fr.len(), 2);
    }

    #[test]
    fn effect_partition() {
        let r = RegVar::fresh();
        let e = EffVar::fresh();
        let phi = effect([Atom::Reg(r), Atom::Eff(e)]);
        assert_eq!(regions_of(&phi).collect::<Vec<_>>(), vec![r]);
        assert_eq!(effvars_of(&phi).collect::<Vec<_>>(), vec![e]);
    }

    #[test]
    fn arrow_effects_are_canonical() {
        // ε ∈ φ is redundant (frev includes the handle anyway); `new`
        // normalises so structural equality is semantic equality.
        let e = EffVar::fresh();
        let r = RegVar::fresh();
        let ae = ArrowEff::new(e, effect([Atom::Eff(e), Atom::Reg(r)]));
        assert!(!ae.latent.contains(&Atom::Eff(e)));
        assert_eq!(ae, ArrowEff::new(e, effect([Atom::Reg(r)])));
        assert!(ae.frev().contains(&Atom::Eff(e)));
    }

    #[test]
    fn display_forms() {
        let ae = ArrowEff::new(EffVar(3), effect([Atom::Reg(RegVar(1))]));
        assert_eq!(format!("{ae}"), "e3.{r1}");
    }
}
