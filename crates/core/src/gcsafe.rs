//! Value containment `φ |= v` / `φ |=ᵥ e` (Figure 3), context containment
//! `φ |=c e` (Figure 7), and the GC-safety relation `G` (paper
//! Section 3.7).
//!
//! `G(Ω, Γ, e, X, π)` strengthens the typing rules for functions so that no
//! dangling pointers arise during evaluation:
//!
//! ```text
//! G(Ω, Γ, e, X, π)  =  frv(π) |=ᵥ e
//!                   ∧  ∀y ∈ fpv(e) \ X.  Ω ⊢ Γ(y) : frev(π)
//! ```
//!
//! The second conjunct is where the paper departs from prior work: through
//! the containment rule for type variables (`Ω ⊢ α : φ ⇔ frev(Ω(α)) ⊆ φ`),
//! a captured variable whose type mentions a quantified type variable
//! forces that variable's arrow effect into the function's type — which
//! instantiation (substitution coverage) later refuses to forget.

use crate::containment::pi_contained_with;
use crate::error::CheckError;
use crate::terms::{Term, Value};
use crate::types::{Delta, Pi};
use crate::typing::TypeEnv;
use crate::vars::{Effect, RegVar};
use rml_syntax::Symbol;
use std::collections::BTreeSet;

/// A set of regions (the `φ` of Figures 3 and 7 ranges over regions only).
pub type Regions = BTreeSet<RegVar>;

/// Checks `φ |= v` (Figure 3, values).
pub fn value_contained(phi: &Regions, v: &Value) -> bool {
    match v {
        Value::Int(_) | Value::Bool(_) | Value::Unit | Value::NilV(_) => true,
        Value::Str(_, r) | Value::RefLoc(_, r) => phi.contains(r),
        Value::Pair(a, b, r) | Value::Cons(a, b, r) => {
            phi.contains(r) && value_contained(phi, a) && value_contained(phi, b)
        }
        Value::Clos { body, at, .. } => phi.contains(at) && expr_contained(phi, body),
        Value::FixClos { defs, ats, .. } => {
            ats.iter().all(|r| phi.contains(r))
                && defs.iter().all(|d| {
                    expr_contained(phi, &d.body) && d.scheme.rvars.iter().all(|r| !phi.contains(r))
                })
        }
        Value::ExnVal { arg, at, .. } => {
            phi.contains(at)
                && arg
                    .as_ref()
                    .map(|a| value_contained(phi, a))
                    .unwrap_or(true)
        }
    }
}

/// Checks `φ |=ᵥ e` (Figure 3, expressions): every value occurring in `e`
/// is contained in `φ`, and `letregion`/`fun`-bound regions are disjoint
/// from `φ`.
pub fn expr_contained(phi: &Regions, e: &Term) -> bool {
    match e {
        Term::Var(_) | Term::Unit | Term::Int(_) | Term::Bool(_) | Term::Str(..) | Term::Nil(_) => {
            true
        }
        Term::Val(v) => value_contained(phi, v),
        Term::Lam { body, .. } => expr_contained(phi, body),
        Term::Fix { defs, .. } => defs.iter().all(|d| {
            d.scheme.rvars.iter().all(|r| !phi.contains(r)) && expr_contained(phi, &d.body)
        }),
        Term::App(a, b) | Term::Assign(a, b) => expr_contained(phi, a) && expr_contained(phi, b),
        Term::RApp { f, .. } => expr_contained(phi, f),
        Term::Let { rhs, body, .. } => expr_contained(phi, rhs) && expr_contained(phi, body),
        Term::Letregion { rvars, body, .. } => {
            rvars.iter().all(|r| !phi.contains(r)) && expr_contained(phi, body)
        }
        Term::Pair(a, b, _) | Term::Cons(a, b, _) => {
            expr_contained(phi, a) && expr_contained(phi, b)
        }
        Term::Sel(_, e) | Term::RefNew(e, _) | Term::Deref(e) | Term::Raise(e, _) => {
            expr_contained(phi, e)
        }
        Term::If(a, b, c) => {
            expr_contained(phi, a) && expr_contained(phi, b) && expr_contained(phi, c)
        }
        Term::Prim(_, args, _) => args.iter().all(|a| expr_contained(phi, a)),
        Term::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            expr_contained(phi, scrut)
                && expr_contained(phi, nil_rhs)
                && expr_contained(phi, cons_rhs)
        }
        Term::Exn { arg, .. } => arg.as_ref().map(|a| expr_contained(phi, a)).unwrap_or(true),
        Term::Handle { body, handler, .. } => {
            expr_contained(phi, body) && expr_contained(phi, handler)
        }
    }
}

/// Checks context containment `φ |=c e` (Figure 7): values in the
/// evaluation-context spine must be contained in `φ` *extended with the
/// regions of the enclosing `letregion`s*, values elsewhere in `φ` itself.
pub fn context_contained(phi: &Regions, e: &Term) -> bool {
    match e {
        Term::Var(_) => true,
        Term::Val(v) => value_contained(phi, v),
        Term::Letregion { rvars, body, .. } => {
            let mut phi2 = phi.clone();
            for r in rvars {
                if phi.contains(r) {
                    return false;
                }
                phi2.insert(*r);
            }
            context_contained(&phi2, body)
        }
        Term::Let { rhs, body, .. } => context_contained(phi, rhs) && expr_contained(phi, body),
        Term::App(a, b) | Term::Assign(a, b) => spine2(phi, a, b),
        Term::Pair(a, b, _) | Term::Cons(a, b, _) => spine2(phi, a, b),
        Term::RApp { f, .. } => context_contained(phi, f),
        Term::Sel(_, e) | Term::RefNew(e, _) | Term::Deref(e) | Term::Raise(e, _) => {
            context_contained(phi, e)
        }
        Term::If(c, t, f) => {
            context_contained(phi, c) && expr_contained(phi, t) && expr_contained(phi, f)
        }
        Term::Prim(_, args, _) => {
            // Left-to-right evaluation: leading values, one context
            // position, remaining expressions.
            let mut ctx_seen = false;
            for a in args {
                if !ctx_seen {
                    if let Term::Val(v) = a {
                        if !value_contained(phi, v) {
                            return false;
                        }
                        continue;
                    }
                    ctx_seen = true;
                    if !context_contained(phi, a) {
                        return false;
                    }
                } else if !expr_contained(phi, a) {
                    return false;
                }
            }
            true
        }
        Term::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            context_contained(phi, scrut)
                && expr_contained(phi, nil_rhs)
                && expr_contained(phi, cons_rhs)
        }
        Term::Exn { arg, .. } => arg
            .as_ref()
            .map(|a| context_contained(phi, a))
            .unwrap_or(true),
        Term::Handle { body, handler, .. } => {
            context_contained(phi, body) && expr_contained(phi, handler)
        }
        // Values-to-be (allocation instructions) and the rest: all values
        // inside must be contained in φ.
        other => expr_contained(phi, other),
    }
}

fn spine2(phi: &Regions, a: &Term, b: &Term) -> bool {
    if let Term::Val(v) = a {
        value_contained(phi, v) && context_contained(phi, b)
    } else {
        context_contained(phi, a) && expr_contained(phi, b)
    }
}

/// Checks the GC-safety relation `G(Ω, Γ, e, X, π)`.
///
/// # Errors
///
/// Reports which conjunct failed and, for the second conjunct, which
/// captured variable's type is not contained in `frev(π)`.
pub fn check_g(
    omega: &Delta,
    gamma: &TypeEnv,
    e: &Term,
    xs: &[Symbol],
    pi: &Pi,
) -> Result<(), CheckError> {
    check_g_with(omega, gamma, e, xs, pi, false)
}

/// As [`check_g`], optionally with the pre-paper treatment of type
/// variables (vacuously contained), which reproduces the check of
/// \[13\]/\[45, p. 50\] that the paper shows insufficient.
pub fn check_g_with(
    omega: &Delta,
    gamma: &TypeEnv,
    e: &Term,
    xs: &[Symbol],
    pi: &Pi,
    vacuous_tyvars: bool,
) -> Result<(), CheckError> {
    let frv: Regions = pi.frv().into_iter().collect();
    if !expr_contained(&frv, e) {
        return Err("G: body values not contained in frv(π)".into());
    }
    let mut frev = Effect::new();
    pi.frev(&mut frev);
    for y in e.fpv() {
        if xs.contains(&y) {
            continue;
        }
        let Some(py) = gamma.lookup(y) else {
            return Err(format!("G: free variable `{y}` not in Γ").into());
        };
        if !pi_contained_with(omega, py, &frev, vacuous_tyvars) {
            return Err(format!(
                "G: captured variable `{y}` has a type not contained in frev(π) — \
                 its regions could dangle (this is the paper's soundness condition)"
            )
            .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Mu;
    use crate::vars::ArrowEff;

    fn regions<const N: usize>(rs: [RegVar; N]) -> Regions {
        rs.into_iter().collect()
    }

    #[test]
    fn literals_always_contained() {
        assert!(value_contained(&Regions::new(), &Value::Int(3)));
        assert!(value_contained(
            &Regions::new(),
            &Value::NilV(crate::types::Mu::list(
                crate::types::Mu::Int,
                RegVar::fresh()
            ))
        ));
    }

    #[test]
    fn boxed_values_need_their_region() {
        let r = RegVar::fresh();
        let v = Value::Str("x".into(), r);
        assert!(!value_contained(&Regions::new(), &v));
        assert!(value_contained(&regions([r]), &v));
    }

    #[test]
    fn pair_containment_is_deep() {
        let r1 = RegVar::fresh();
        let r2 = RegVar::fresh();
        let v = Value::Pair(
            Box::new(Value::Str("a".into(), r2)),
            Box::new(Value::Int(1)),
            r1,
        );
        assert!(!value_contained(&regions([r1]), &v));
        assert!(value_contained(&regions([r1, r2]), &v));
    }

    #[test]
    fn letregion_bound_region_must_be_fresh() {
        let r = RegVar::fresh();
        let e = Term::letregion(vec![r], vec![], Term::Int(1));
        assert!(expr_contained(&Regions::new(), &e));
        assert!(!expr_contained(&regions([r]), &e));
    }

    #[test]
    fn closure_with_dangling_capture_detected() {
        // A closure at ρ1 whose body contains a value in ρ — with φ = {ρ1}
        // only, containment fails: the classic dangling pointer.
        let r1 = RegVar::fresh();
        let r = RegVar::fresh();
        let v = Value::Clos {
            param: Symbol::intern("u"),
            ann: Mu::arrow(Mu::Unit, ArrowEff::fresh_empty(), Mu::string(r), r1),
            body: Box::new(Term::Val(Value::Str("ohno".into(), r))),
            at: r1,
        };
        assert!(!value_contained(&regions([r1]), &v));
        assert!(value_contained(&regions([r1, r]), &v));
    }

    #[test]
    fn containment_extensibility() {
        // φ |=v e and φ ⊆ φ' imply φ' |=v e (for letregion-free e).
        let r = RegVar::fresh();
        let e = Term::Val(Value::Str("a".into(), r));
        let phi = regions([r]);
        let mut phi2 = phi.clone();
        phi2.insert(RegVar::fresh());
        assert!(expr_contained(&phi, &e));
        assert!(expr_contained(&phi2, &e));
    }

    #[test]
    fn containment_closed_under_value_substitution() {
        // φ |=v e and φ |= v imply φ |=v e[v/x].
        let r = RegVar::fresh();
        let x = Symbol::intern("x");
        let e = Term::Pair(Box::new(Term::Var(x)), Box::new(Term::Int(1)), r);
        let v = Value::Str("s".into(), r);
        let phi = regions([r]);
        assert!(expr_contained(&phi, &e));
        assert!(value_contained(&phi, &v));
        assert!(expr_contained(&phi, &e.subst_value(x, &v)));
    }

    #[test]
    fn context_containment_extends_under_letregion() {
        // letregion ρ in ⟨v⟩ρ is context-contained in ∅ (the context rule
        // adds ρ), but not value-contained.
        let r = RegVar::fresh();
        let e = Term::letregion(vec![r], vec![], Term::Val(Value::Str("a".into(), r)));
        assert!(context_contained(&Regions::new(), &e));
        assert!(!expr_contained(&Regions::new(), &e));
    }

    #[test]
    fn context_containment_spine_rules() {
        // (v, e): v must be contained in φ, e in context position.
        let r = RegVar::fresh();
        let inner = RegVar::fresh();
        let v = Value::Str("a".into(), r);
        let e = Term::Pair(
            Box::new(Term::Val(v)),
            Box::new(Term::letregion(
                vec![inner],
                vec![],
                Term::Val(Value::Str("b".into(), inner)),
            )),
            r,
        );
        assert!(context_contained(&regions([r]), &e));
        assert!(!context_contained(&Regions::new(), &e));
    }

    #[test]
    fn g_rejects_uncovered_capture() {
        // Γ(y) = (string, ρ), π mentions only ρ1: G must fail.
        let r1 = RegVar::fresh();
        let r = RegVar::fresh();
        let y = Symbol::intern("y");
        let pi = Pi::Mu(Mu::arrow(Mu::Unit, ArrowEff::fresh_empty(), Mu::Unit, r1));
        let mut gamma = TypeEnv::default();
        gamma.insert(y, Pi::Mu(Mu::string(r)));
        let body = Term::Var(y);
        let err = check_g(&Delta::new(), &gamma, &body, &[], &pi).unwrap_err();
        assert!(err.contains("captured variable"), "{err}");
    }

    #[test]
    fn g_accepts_covered_capture() {
        // Same, but π's latent effect mentions ρ: G holds.
        let r1 = RegVar::fresh();
        let r = RegVar::fresh();
        let y = Symbol::intern("y");
        let eps = crate::vars::EffVar::fresh();
        let pi = Pi::Mu(Mu::arrow(
            Mu::Unit,
            ArrowEff::new(eps, crate::vars::effect([crate::vars::Atom::Reg(r)])),
            Mu::Unit,
            r1,
        ));
        let mut gamma = TypeEnv::default();
        gamma.insert(y, Pi::Mu(Mu::string(r)));
        let body = Term::Var(y);
        check_g(&Delta::new(), &gamma, &body, &[], &pi).unwrap();
    }

    #[test]
    fn g_tyvar_capture_needs_omega_effect_in_pi() {
        // Γ(y) = α with Ω(α) = ε_α.∅: G holds only if ε_α ∈ frev(π).
        let r1 = RegVar::fresh();
        let a = crate::vars::TyVar::fresh();
        let e_a = crate::vars::EffVar::fresh();
        let y = Symbol::intern("y");
        let mut omega = Delta::new();
        omega.insert(a, ArrowEff::new(e_a, Effect::new()));
        let mut gamma = TypeEnv::default();
        gamma.insert(y, Pi::Mu(Mu::Var(a)));
        let body = Term::Var(y);
        let eps = crate::vars::EffVar::fresh();
        // Without ε_α in the arrow effect: fail.
        let pi_bad = Pi::Mu(Mu::arrow(
            Mu::Unit,
            ArrowEff::new(eps, Effect::new()),
            Mu::Unit,
            r1,
        ));
        assert!(check_g(&omega, &gamma, &body, &[], &pi_bad).is_err());
        // With it: succeed.
        let pi_good = Pi::Mu(Mu::arrow(
            Mu::Unit,
            ArrowEff::new(eps, crate::vars::effect([crate::vars::Atom::Eff(e_a)])),
            Mu::Unit,
            r1,
        ));
        check_g(&omega, &gamma, &body, &[], &pi_good).unwrap();
    }

    #[test]
    fn g_ignores_parameters() {
        let r1 = RegVar::fresh();
        let x = Symbol::intern("x");
        let pi = Pi::Mu(Mu::arrow(Mu::Unit, ArrowEff::fresh_empty(), Mu::Unit, r1));
        let body = Term::Var(x);
        check_g(&Delta::new(), &TypeEnv::default(), &body, &[x], &pi).unwrap();
    }
}
