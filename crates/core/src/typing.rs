//! The typing rules of Figure 4 as a syntax-directed checker.
//!
//! Region inference (crate `rml-infer`) produces fully annotated terms;
//! this module *validates* them against the paper's rules, synthesising a
//! `π` and an effect `φ` for every term. Effect subsumption (\[TeSub\]) is
//! folded into the places the rules need it (a lambda's body effect must be
//! a subset of the annotated latent effect).
//!
//! The checker has three GC-safety modes, matching the benchmark
//! strategies of Section 5:
//!
//! * [`GcCheck::Full`] — the paper's `G` relation (strategy `rg`),
//! * [`GcCheck::NoTyVars`] — the pre-paper side condition that treats type
//!   variables as vacuously contained (strategy `rg-`; **unsound**, the
//!   checker exists to demonstrate exactly where it fails),
//! * [`GcCheck::Off`] — no dangling-pointer conditions (strategy `r`,
//!   pure region inference à la Tofte–Talpin).

use crate::error::CheckError;
use crate::gcsafe::check_g_with;
use crate::instantiate::check_instance_with;
use crate::terms::{Term, Value};
use crate::types::{delta_frev, wf_mu, wf_pi, BoxTy, Delta, Mu, Pi, Scheme};
use crate::vars::{Atom, Effect, RegVar};
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::collections::BTreeMap;

/// A type environment `Γ`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeEnv {
    map: BTreeMap<Symbol, Pi>,
}

impl TypeEnv {
    /// Looks up a variable.
    pub fn lookup(&self, x: Symbol) -> Option<&Pi> {
        self.map.get(&x)
    }

    /// Binds a variable (shadowing any previous binding).
    pub fn insert(&mut self, x: Symbol, pi: Pi) {
        self.map.insert(x, pi);
    }

    /// Returns an extended copy.
    pub fn extended(&self, x: Symbol, pi: Pi) -> TypeEnv {
        let mut e = self.clone();
        e.insert(x, pi);
        e
    }

    /// Free region and effect variables of all bindings.
    pub fn frev(&self, out: &mut Effect) {
        for pi in self.map.values() {
            pi.frev(out);
        }
    }

    /// Free type variables of all bindings.
    pub fn ftv(&self, out: &mut std::collections::BTreeSet<crate::vars::TyVar>) {
        for pi in self.map.values() {
            pi.ftv(out);
        }
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Pi)> {
        self.map.iter()
    }
}

/// Which dangling-pointer side conditions to enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcCheck {
    /// The paper's `G` relation (sound; strategy `rg`).
    #[default]
    Full,
    /// Pre-paper conditions ignoring type variables (unsound; `rg-`).
    NoTyVars,
    /// No conditions (pure region typing; strategy `r`).
    Off,
}

/// The Figure 4 checker.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    /// Exception constructors in scope, with their argument types.
    pub exns: BTreeMap<Symbol, Option<Mu>>,
    /// Which GC-safety conditions to enforce.
    pub gc: GcCheck,
    /// Store typing for reference cells (content type per location), used
    /// when checking run-time configurations in preservation tests.
    pub store: Vec<Mu>,
}

type CResult<T> = Result<T, CheckError>;

impl Checker {
    /// Checks a closed term in an empty type variable context.
    ///
    /// # Errors
    ///
    /// Returns a description of the first rule violation encountered.
    pub fn check(&self, gamma: &TypeEnv, e: &Term) -> CResult<(Pi, Effect)> {
        self.check_in(&Delta::new(), gamma, e)
    }

    /// Checks `Ω, Γ ⊢ e : π, φ`.
    pub fn check_in(&self, omega: &Delta, gamma: &TypeEnv, e: &Term) -> CResult<(Pi, Effect)> {
        match e {
            Term::Var(x) => match gamma.lookup(*x) {
                Some(pi) => Ok((pi.clone(), Effect::new())),
                None => Err(format!("unbound variable `{x}`").into()),
            },
            Term::Unit => Ok((Pi::Mu(Mu::Unit), Effect::new())),
            Term::Int(_) => Ok((Pi::Mu(Mu::Int), Effect::new())),
            Term::Bool(_) => Ok((Pi::Mu(Mu::Bool), Effect::new())),
            Term::Nil(mu) => {
                if !matches!(mu, Mu::Boxed(b, _) if matches!(&**b, BoxTy::List(_))) {
                    return Err("nil annotated with a non-list type".into());
                }
                Ok((Pi::Mu(mu.clone()), Effect::new()))
            }
            Term::Str(_, rho) => Ok((
                Pi::Mu(Mu::string(*rho)),
                crate::vars::effect([Atom::Reg(*rho)]),
            )),
            Term::Val(v) => Ok((self.check_value(v)?, Effect::new())),
            Term::Lam {
                param,
                ann,
                body,
                at,
            } => {
                let Some((mu1, ae, mu2, rho)) = ann.as_arrow() else {
                    return Err("lambda annotation is not an arrow type".into());
                };
                if rho != *at {
                    return Err("lambda annotation place differs from `at` region".into());
                }
                if !wf_mu(omega, ann) {
                    return Err("lambda type not well-formed in Ω".into());
                }
                let g2 = gamma.extended(*param, Pi::Mu(mu1.clone()));
                let (pb, phib) = self.check_in(omega, &g2, body)?;
                let got = pb.as_mu().ok_or("lambda body has a scheme type")?;
                if got != mu2 {
                    return Err(format!(
                        "lambda body type mismatch:\n  annotated: {mu2:?}\n  computed:  {got:?}"
                    )
                    .into());
                }
                let mut denoted = ae.latent.clone();
                denoted.insert(Atom::Eff(ae.handle));
                if !phib.is_subset(&denoted) {
                    let missing: Vec<_> = phib.difference(&denoted).collect();
                    return Err(format!(
                        "lambda body effect not included in latent effect; missing {missing:?}"
                    )
                    .into());
                }
                self.gc_condition(omega, gamma, body, &[*param], &Pi::Mu(ann.clone()))
                    .map_err(|e| e.with_blame(*param))?;
                Ok((Pi::Mu(ann.clone()), crate::vars::effect([Atom::Reg(*at)])))
            }
            Term::Fix { defs, ats, index } => {
                if defs.len() != ats.len() || *index >= defs.len() {
                    return Err("malformed fun group".into());
                }
                // Environment for the bodies: every sibling bound with its
                // ∀ρ⃗ε⃗ scheme *without* ∆ — type-monomorphic, region- and
                // effect-polymorphic recursion (rule [TeRec], extended to
                // groups).
                let mut g_rec = gamma.clone();
                for (d, at) in defs.iter().zip(ats.iter()) {
                    let f_scheme = Scheme {
                        rvars: d.scheme.rvars.clone(),
                        evars: d.scheme.evars.clone(),
                        delta: Vec::new(),
                        body: d.scheme.body.clone(),
                    };
                    g_rec.insert(d.f, Pi::Scheme(f_scheme, *at));
                }
                // Ω for the bodies includes every member's ∆ (type
                // variables are shared across a group under monomorphic
                // type recursion).
                let mut omega2 = omega.clone();
                for d in defs.iter() {
                    omega2.extend(d.scheme.delta.iter().cloned());
                }
                let group_names: Vec<Symbol> = defs.iter().map(|d| d.f).collect();
                // The ∆-disjointness condition belongs to the recursive
                // rule [TvRec]; the non-recursive rule [TvFun] permits
                // quantified effect variables in ∆ ("parameterisation of
                // effects associated with quantified type variables").
                let recursive = defs.iter().any(|d| {
                    let fv = d.body.fpv();
                    group_names.iter().any(|n| fv.contains(n))
                });
                let mut outer_tvs = std::collections::BTreeSet::new();
                gamma.ftv(&mut outer_tvs);
                for a in omega.keys() {
                    outer_tvs.insert(*a);
                }
                for (d, at) in defs.iter().zip(ats.iter()) {
                    let scheme = &d.scheme;
                    let pi = Pi::Scheme(scheme.clone(), *at);
                    let BoxTy::Arrow(mu1, ae, mu2) = &scheme.body else {
                        return Err("fun scheme body is not an arrow".into());
                    };
                    if !wf_pi(omega, &pi) {
                        return Err(format!("fun `{}` scheme not well-formed in Ω", d.f).into());
                    }
                    // Side conditions.
                    let bound: Effect = scheme
                        .rvars
                        .iter()
                        .map(|r| Atom::Reg(*r))
                        .chain(scheme.evars.iter().map(|e| Atom::Eff(*e)))
                        .collect();
                    if recursive {
                        let mut dfr = Effect::new();
                        delta_frev(&scheme.delta_map(), &mut dfr);
                        if bound.intersection(&dfr).next().is_some() {
                            return Err("recursive fun: quantified ρ⃗ε⃗ intersect frev(∆)".into());
                        }
                    }
                    let mut outer = Effect::new();
                    delta_frev(omega, &mut outer);
                    gamma.frev(&mut outer);
                    outer.insert(Atom::Reg(*at));
                    if bound.intersection(&outer).next().is_some() {
                        return Err(format!(
                            "fun `{}`: quantified variables occur free in Ω, Γ, or ρ",
                            d.f
                        )
                        .into());
                    }
                    if scheme.delta.iter().any(|(a, _)| outer_tvs.contains(a)) {
                        return Err("fun: dom(∆) occurs free in Ω or Γ".into());
                    }
                    let g2 = g_rec.extended(d.param, Pi::Mu(mu1.clone()));
                    let (pb, phib) = self.check_in(&omega2, &g2, &d.body)?;
                    let got = pb.as_mu().ok_or("fun body has a scheme type")?;
                    if got != mu2 {
                        return Err(format!(
                            "fun `{}` body type mismatch:\n  annotated: {mu2:?}\n  computed:  {got:?}",
                            d.f
                        ).into());
                    }
                    // The arrow effect ε.φ denotes {ε} ∪ φ: recursive calls
                    // put the handle itself into the body effect.
                    let mut denoted = ae.latent.clone();
                    denoted.insert(Atom::Eff(ae.handle));
                    if !phib.is_subset(&denoted) {
                        let missing: Vec<_> = phib.difference(&denoted).collect();
                        return Err(format!(
                            "fun `{}` body effect not included in latent effect; missing {missing:?}",
                            d.f
                        ).into());
                    }
                    let mut xs = group_names.clone();
                    xs.push(d.param);
                    self.gc_condition(omega, gamma, &d.body, &xs, &pi)
                        .map_err(|e| e.with_blame(d.f))?;
                }
                let pi = Pi::Scheme(defs[*index].scheme.clone(), ats[*index]);
                let eff: Effect = ats.iter().map(|r| Atom::Reg(*r)).collect();
                Ok((pi, eff))
            }
            Term::App(e1, e2) => {
                let (p1, phi1) = self.check_in(omega, gamma, e1)?;
                let m1 = p1
                    .as_mu()
                    .ok_or("applying a region-polymorphic function without region application")?;
                let Some((mu_arg, ae, mu_res, rho)) = m1.as_arrow() else {
                    return Err("application of a non-function".into());
                };
                let (p2, phi2) = self.check_in(omega, gamma, e2)?;
                let m2 = p2.as_mu().ok_or("argument has a scheme type")?;
                if m2 != mu_arg {
                    return Err(format!(
                        "argument type mismatch:\n  expected: {mu_arg:?}\n  got:      {m2:?}"
                    )
                    .into());
                }
                let mut phi = ae.latent.clone();
                phi.extend(phi1);
                phi.extend(phi2);
                phi.insert(Atom::Eff(ae.handle));
                phi.insert(Atom::Reg(rho));
                Ok((Pi::Mu(mu_res.clone()), phi))
            }
            Term::RApp { f, inst, at } => {
                let (pf, phi) = self.check_in(omega, gamma, f)?;
                let Pi::Scheme(scheme, rho2) = &pf else {
                    return Err("region application of a non-polymorphic value".into());
                };
                let vac = !matches!(self.gc, GcCheck::Full);
                let tau = check_instance_with(omega, scheme, inst, None, vac)?;
                let mut phi = phi;
                phi.insert(Atom::Reg(*at));
                phi.insert(Atom::Reg(*rho2));
                Ok((Pi::Mu(Mu::Boxed(Box::new(tau), *at)), phi))
            }
            Term::Let { x, rhs, body } => {
                let (p1, phi1) = self.check_in(omega, gamma, rhs)?;
                let g2 = gamma.extended(*x, p1);
                let (p2, phi2) = self.check_in(omega, &g2, body)?;
                let mut phi = phi1;
                phi.extend(phi2);
                Ok((p2, phi))
            }
            Term::Letregion { rvars, evars, body } => {
                let (p, phi) = self.check_in(omega, gamma, body)?;
                let mu = p.as_mu().ok_or("letregion body has a scheme type")?;
                let mut outer = Effect::new();
                delta_frev(omega, &mut outer);
                gamma.frev(&mut outer);
                mu.frev(&mut outer);
                for r in rvars {
                    if outer.contains(&Atom::Reg(*r)) {
                        return Err(format!(
                            "letregion-bound {r} occurs free in Ω, Γ, or the result type"
                        )
                        .into());
                    }
                }
                for ev in evars {
                    if outer.contains(&Atom::Eff(*ev)) {
                        return Err(format!(
                            "letregion-discharged {ev} occurs free in Ω, Γ, or the result type"
                        )
                        .into());
                    }
                }
                let mut phi2 = phi;
                for r in rvars {
                    phi2.remove(&Atom::Reg(*r));
                }
                for ev in evars {
                    phi2.remove(&Atom::Eff(*ev));
                }
                Ok((p, phi2))
            }
            Term::Pair(e1, e2, rho) => {
                let (p1, phi1) = self.check_in(omega, gamma, e1)?;
                let (p2, phi2) = self.check_in(omega, gamma, e2)?;
                let m1 = p1.as_mu().ok_or("pair component has a scheme type")?;
                let m2 = p2.as_mu().ok_or("pair component has a scheme type")?;
                let mut phi = phi1;
                phi.extend(phi2);
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(Mu::pair(m1.clone(), m2.clone(), *rho)), phi))
            }
            Term::Sel(i, e) => {
                let (p, phi) = self.check_in(omega, gamma, e)?;
                let m = p.as_mu().ok_or("projection of a scheme")?;
                let Mu::Boxed(b, rho) = m else {
                    return Err("projection of a non-pair".into());
                };
                let BoxTy::Pair(m1, m2) = &**b else {
                    return Err("projection of a non-pair".into());
                };
                let mut phi = phi;
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(if *i == 1 { m1.clone() } else { m2.clone() }), phi))
            }
            Term::If(c, t, f) => {
                let (pc, phic) = self.check_in(omega, gamma, c)?;
                if pc.as_mu() != Some(&Mu::Bool) {
                    return Err("if condition is not bool".into());
                }
                let (pt, phit) = self.check_in(omega, gamma, t)?;
                let (pf, phif) = self.check_in(omega, gamma, f)?;
                if pt != pf {
                    return Err(format!(
                        "if branches have different types:\n  then: {pt:?}\n  else: {pf:?}"
                    )
                    .into());
                }
                let mut phi = phic;
                phi.extend(phit);
                phi.extend(phif);
                Ok((pt, phi))
            }
            Term::Prim(op, args, res_rho) => self.check_prim(omega, gamma, *op, args, *res_rho),
            Term::Cons(h, t, rho) => {
                let (ph, phih) = self.check_in(omega, gamma, h)?;
                let (pt, phit) = self.check_in(omega, gamma, t)?;
                let mh = ph.as_mu().ok_or("cons head has a scheme type")?;
                let mt = pt.as_mu().ok_or("cons tail has a scheme type")?;
                let want = Mu::list(mh.clone(), *rho);
                if *mt != want {
                    return Err(format!(
                        "cons tail type mismatch (list spines share one region):\n  expected: {want:?}\n  got:      {mt:?}"
                    ).into());
                }
                let mut phi = phih;
                phi.extend(phit);
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(want), phi))
            }
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                let (ps, phis) = self.check_in(omega, gamma, scrut)?;
                let ms = ps.as_mu().ok_or("case scrutinee has a scheme type")?;
                let Mu::Boxed(b, rho) = ms else {
                    return Err("case scrutinee is not a list".into());
                };
                let BoxTy::List(elem) = &**b else {
                    return Err("case scrutinee is not a list".into());
                };
                let (pn, phin) = self.check_in(omega, gamma, nil_rhs)?;
                let mut g2 = gamma.extended(*head, Pi::Mu(elem.clone()));
                g2.insert(*tail, Pi::Mu(ms.clone()));
                let (pc, phic) = self.check_in(omega, &g2, cons_rhs)?;
                if pn != pc {
                    return Err("case branches have different types".into());
                }
                let mut phi = phis;
                phi.insert(Atom::Reg(*rho));
                phi.extend(phin);
                phi.extend(phic);
                Ok((pn, phi))
            }
            Term::RefNew(e, rho) => {
                let (p, phi) = self.check_in(omega, gamma, e)?;
                let m = p.as_mu().ok_or("ref content has a scheme type")?;
                let mut phi = phi;
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(Mu::reference(m.clone(), *rho)), phi))
            }
            Term::Deref(e) => {
                let (p, phi) = self.check_in(omega, gamma, e)?;
                let m = p.as_mu().ok_or("deref of a scheme")?;
                let Mu::Boxed(b, rho) = m else {
                    return Err("deref of a non-ref".into());
                };
                let BoxTy::Ref(inner) = &**b else {
                    return Err("deref of a non-ref".into());
                };
                let mut phi = phi;
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(inner.clone()), phi))
            }
            Term::Assign(r, v) => {
                let (pr, phir) = self.check_in(omega, gamma, r)?;
                let (pv, phiv) = self.check_in(omega, gamma, v)?;
                let mr = pr.as_mu().ok_or("assign target has a scheme type")?;
                let Mu::Boxed(b, rho) = mr else {
                    return Err("assignment to a non-ref".into());
                };
                let BoxTy::Ref(inner) = &**b else {
                    return Err("assignment to a non-ref".into());
                };
                if pv.as_mu() != Some(inner) {
                    return Err("assigned value type mismatch".into());
                }
                let mut phi = phir;
                phi.extend(phiv);
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(Mu::Unit), phi))
            }
            Term::Exn { name, arg, at } => {
                let Some(want) = self.exns.get(name) else {
                    return Err(format!("unknown exception constructor `{name}`").into());
                };
                let mut phi = Effect::new();
                match (arg, want) {
                    (None, None) => {}
                    (Some(a), Some(w)) => {
                        let (pa, phia) = self.check_in(omega, gamma, a)?;
                        if pa.as_mu() != Some(w) {
                            return Err(format!("exception `{name}` argument type mismatch").into());
                        }
                        phi.extend(phia);
                    }
                    _ => return Err(format!("exception `{name}` arity mismatch").into()),
                }
                phi.insert(Atom::Reg(*at));
                Ok((Pi::Mu(Mu::exn(*at)), phi))
            }
            Term::Raise(e, ann) => {
                let (p, phi) = self.check_in(omega, gamma, e)?;
                let m = p.as_mu().ok_or("raise of a scheme")?;
                let Mu::Boxed(b, rho) = m else {
                    return Err("raise of a non-exception".into());
                };
                if !matches!(&**b, BoxTy::Exn) {
                    return Err("raise of a non-exception".into());
                }
                if !wf_mu(omega, ann) {
                    return Err("raise annotation not well-formed".into());
                }
                let mut phi = phi;
                phi.insert(Atom::Reg(*rho));
                Ok((Pi::Mu(ann.clone()), phi))
            }
            Term::Handle {
                body,
                exn,
                arg,
                handler,
            } => {
                let Some(want) = self.exns.get(exn) else {
                    return Err(format!("unknown exception constructor `{exn}`").into());
                };
                let (pb, phib) = self.check_in(omega, gamma, body)?;
                let arg_mu = want.clone().unwrap_or(Mu::Unit);
                let g2 = gamma.extended(*arg, Pi::Mu(arg_mu));
                let (ph, phih) = self.check_in(omega, &g2, handler)?;
                if pb != ph {
                    return Err("handler result type differs from body".into());
                }
                let mut phi = phib;
                phi.extend(phih);
                Ok((pb, phi))
            }
        }
    }

    fn gc_condition(
        &self,
        omega: &Delta,
        gamma: &TypeEnv,
        body: &Term,
        xs: &[Symbol],
        pi: &Pi,
    ) -> CResult<()> {
        match self.gc {
            GcCheck::Off => Ok(()),
            GcCheck::Full => check_g_with(omega, gamma, body, xs, pi, false),
            GcCheck::NoTyVars => check_g_with(omega, gamma, body, xs, pi, true),
        }
    }

    fn check_prim(
        &self,
        omega: &Delta,
        gamma: &TypeEnv,
        op: PrimOp,
        args: &[Term],
        res_rho: Option<RegVar>,
    ) -> CResult<(Pi, Effect)> {
        let mut phis = Effect::new();
        let mut mus = Vec::new();
        for a in args {
            let (p, phi) = self.check_in(omega, gamma, a)?;
            let m = p.as_mu().ok_or("prim argument has a scheme type")?.clone();
            phis.extend(phi);
            mus.push(m);
        }
        let str_place = |m: &Mu| -> CResult<RegVar> {
            match m {
                Mu::Boxed(b, r) if matches!(&**b, BoxTy::Str) => Ok(*r),
                _ => Err(format!("`{op}` expects a string argument").into()),
            }
        };
        use PrimOp::*;
        match op {
            Add | Sub | Mul | Div | Mod => {
                if mus != [Mu::Int, Mu::Int] {
                    return Err(format!("`{op}` expects two ints").into());
                }
                Ok((Pi::Mu(Mu::Int), phis))
            }
            Neg => {
                if mus != [Mu::Int] {
                    return Err("`~` expects an int".into());
                }
                Ok((Pi::Mu(Mu::Int), phis))
            }
            Lt | Le | Gt | Ge => {
                if mus != [Mu::Int, Mu::Int] {
                    return Err(format!("`{op}` expects two ints").into());
                }
                Ok((Pi::Mu(Mu::Bool), phis))
            }
            Eq | Ne => {
                if mus.len() != 2 || mus[0] != mus[1] {
                    return Err("equality operands have different types".into());
                }
                // Equality reads both operands.
                let mut phi = phis;
                mus[0].frev(&mut phi);
                Ok((Pi::Mu(Mu::Bool), phi))
            }
            Not => {
                if mus != [Mu::Bool] {
                    return Err("`not` expects a bool".into());
                }
                Ok((Pi::Mu(Mu::Bool), phis))
            }
            Concat => {
                let r1 = str_place(&mus[0])?;
                let r2 = str_place(&mus[1])?;
                let out = res_rho.ok_or("`^` needs a result region")?;
                let mut phi = phis;
                phi.insert(Atom::Reg(r1));
                phi.insert(Atom::Reg(r2));
                phi.insert(Atom::Reg(out));
                Ok((Pi::Mu(Mu::string(out)), phi))
            }
            Size => {
                let r = str_place(&mus[0])?;
                let mut phi = phis;
                phi.insert(Atom::Reg(r));
                Ok((Pi::Mu(Mu::Int), phi))
            }
            Itos => {
                if mus != [Mu::Int] {
                    return Err("`itos` expects an int".into());
                }
                let out = res_rho.ok_or("`itos` needs a result region")?;
                let mut phi = phis;
                phi.insert(Atom::Reg(out));
                Ok((Pi::Mu(Mu::string(out)), phi))
            }
            Print => {
                let r = str_place(&mus[0])?;
                let mut phi = phis;
                phi.insert(Atom::Reg(r));
                Ok((Pi::Mu(Mu::Unit), phi))
            }
            ForceGc => {
                if mus != [Mu::Unit] {
                    return Err("`forcegc` expects unit".into());
                }
                Ok((Pi::Mu(Mu::Unit), phis))
            }
        }
    }

    /// Checks a value: `⊢ v : π` (values are closed).
    pub fn check_value(&self, v: &Value) -> CResult<Pi> {
        match v {
            Value::Int(_) => Ok(Pi::Mu(Mu::Int)),
            Value::Bool(_) => Ok(Pi::Mu(Mu::Bool)),
            Value::Unit => Ok(Pi::Mu(Mu::Unit)),
            Value::NilV(mu) => {
                if !matches!(mu, Mu::Boxed(b, _) if matches!(&**b, BoxTy::List(_))) {
                    return Err("nil value annotated with non-list type".into());
                }
                Ok(Pi::Mu(mu.clone()))
            }
            Value::Str(_, r) => Ok(Pi::Mu(Mu::string(*r))),
            Value::Pair(a, b, r) => {
                let ma = self
                    .check_value(a)?
                    .as_mu()
                    .ok_or("pair of schemes")?
                    .clone();
                let mb = self
                    .check_value(b)?
                    .as_mu()
                    .ok_or("pair of schemes")?
                    .clone();
                Ok(Pi::Mu(Mu::pair(ma, mb, *r)))
            }
            Value::Cons(h, t, r) => {
                let mh = self
                    .check_value(h)?
                    .as_mu()
                    .ok_or("cons of schemes")?
                    .clone();
                let mt = self
                    .check_value(t)?
                    .as_mu()
                    .ok_or("cons of schemes")?
                    .clone();
                let want = Mu::list(mh, *r);
                if mt != want {
                    return Err("cons value tail type mismatch".into());
                }
                Ok(Pi::Mu(want))
            }
            Value::Clos {
                param,
                ann,
                body,
                at,
            } => {
                // [TvLam]: {}, {x : µ1} ⊢ e : µ2, φ; frv(µ) |=v e.
                let lam = Term::Lam {
                    param: *param,
                    ann: ann.clone(),
                    body: body.clone(),
                    at: *at,
                };
                let (pi, _) = self.check_in(&Delta::new(), &TypeEnv::default(), &lam)?;
                let frv: crate::gcsafe::Regions = pi.frv().into_iter().collect();
                if !crate::gcsafe::expr_contained(&frv, body) {
                    return Err(
                        "closure body values not contained in frv(µ) — dangling pointer".into(),
                    );
                }
                Ok(pi)
            }
            Value::FixClos { defs, ats, index } => {
                let fix = Term::Fix {
                    defs: defs.clone(),
                    ats: ats.clone(),
                    index: *index,
                };
                let (pi, _) = self.check_in(&Delta::new(), &TypeEnv::default(), &fix)?;
                let frv: crate::gcsafe::Regions = pi.frv().into_iter().collect();
                for d in defs.iter() {
                    if !crate::gcsafe::expr_contained(&frv, &d.body) {
                        return Err("fun closure body values not contained in frv(π)".into());
                    }
                }
                Ok(pi)
            }
            Value::RefLoc(i, r) => match self.store.get(*i) {
                Some(mu) => Ok(Pi::Mu(Mu::reference(mu.clone(), *r))),
                None => Err(format!("dangling store location {i}").into()),
            },
            Value::ExnVal { name, arg, at, .. } => {
                let Some(want) = self.exns.get(name) else {
                    return Err(format!("unknown exception constructor `{name}`").into());
                };
                match (arg, want) {
                    (None, None) => {}
                    (Some(a), Some(w)) => {
                        let pa = self.check_value(a)?;
                        if pa.as_mu() != Some(w) {
                            return Err("exception value argument type mismatch".into());
                        }
                    }
                    _ => return Err("exception value arity mismatch".into()),
                }
                Ok(Pi::Mu(Mu::exn(*at)))
            }
        }
    }
}

/// Checks containment of every binding in an environment — a helper used
/// by tests and by the inference validator.
pub fn env_contained(omega: &Delta, gamma: &TypeEnv, phi: &Effect) -> bool {
    gamma
        .iter()
        .all(|(_, pi)| crate::containment::pi_contained(omega, pi, phi))
}
