//! The checker's structured error type.
//!
//! [`CheckError`] is a message plus an optional *blame* binder: the
//! `fn`-parameter or `fun` name of the function whose GC-safety condition
//! failed. Front ends that keep a provenance table (binder → source span,
//! see `rml-infer`) can turn the blame into a source-located diagnostic;
//! everything else treats the error as a string via [`Display`].
//!
//! [`Display`]: std::fmt::Display

use rml_syntax::Symbol;
use std::fmt;

/// An error from the Figure 4 checker (or the `G` relation behind it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Human-readable description of the violated rule.
    pub msg: String,
    /// The binder (lambda parameter or `fun` name) identifying the
    /// function the violation occurred in, when known.
    pub blame: Option<Symbol>,
}

impl CheckError {
    /// Creates an error with no blame.
    pub fn new(msg: impl Into<String>) -> Self {
        CheckError {
            msg: msg.into(),
            blame: None,
        }
    }

    /// Attaches a blame binder, keeping an earlier (more precise) one.
    #[must_use]
    pub fn with_blame(mut self, x: Symbol) -> Self {
        self.blame.get_or_insert(x);
        self
    }

    /// Does the message contain `pat`? (String-compatibility shim: callers
    /// that used to match on the raw `String` error keep working.)
    pub fn contains(&self, pat: &str) -> bool {
        self.msg.contains(pat)
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CheckError {}

impl From<String> for CheckError {
    fn from(msg: String) -> Self {
        CheckError::new(msg)
    }
}

impl From<&str> for CheckError {
    fn from(msg: &str) -> Self {
        CheckError::new(msg)
    }
}

impl From<CheckError> for String {
    fn from(e: CheckError) -> Self {
        e.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blame_keeps_first() {
        let e = CheckError::new("boom")
            .with_blame(Symbol::intern("inner"))
            .with_blame(Symbol::intern("outer"));
        assert_eq!(e.blame, Some(Symbol::intern("inner")));
    }

    #[test]
    fn string_shims() {
        let e: CheckError = format!("bad {}", 7).into();
        assert!(e.contains("bad 7"));
        assert_eq!(e.to_string(), "bad 7");
        let s: String = e.into();
        assert_eq!(s, "bad 7");
    }
}
