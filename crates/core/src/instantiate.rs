//! Substitution coverage `Ω ⊢ Sᵗ : ∆` and the instance-of relation
//! `Ω ⊢ σ ≥ τ via S` (paper Section 3.4).
//!
//! Coverage is the paper's central repair: when a type scheme is
//! instantiated, the type substituted for each quantified type variable
//! `α` must be *contained* in the (instantiated) arrow effect `∆(α)` —
//! `Ω ⊢ Sᵗ(α) : frev(∆(α))`. This forces the regions of the instance type
//! into an effect that the scheme's body mentions, which is what rules out
//! the dangling pointers of Figure 1.

use crate::subst::Subst;
use crate::types::{BoxTy, Delta, Scheme};
use crate::vars::{Atom, Effect};

/// Checks substitution coverage `Ω ⊢ Sᵗ : ∆`: `dom(Sᵗ) = dom(∆)` and
/// `Ω ⊢ Sᵗ(α) : frev(∆(α))` for every `α`.
pub fn coverage(
    omega: &Delta,
    s: &Subst,
    delta: &[(crate::vars::TyVar, crate::vars::ArrowEff)],
) -> Result<(), String> {
    coverage_with(omega, s, delta, false)
}

/// As [`coverage`], optionally with the pre-paper vacuous treatment of
/// type variables (the `rg-` discipline, which the paper shows is not
/// closed under type substitution).
pub fn coverage_with(
    omega: &Delta,
    s: &Subst,
    delta: &[(crate::vars::TyVar, crate::vars::ArrowEff)],
    vac: bool,
) -> Result<(), String> {
    if s.ty.len() != delta.len() {
        return Err(format!(
            "coverage: |dom(St)| = {} but |dom(∆)| = {}",
            s.ty.len(),
            delta.len()
        ));
    }
    for (a, ae) in delta {
        let Some(inst) = s.ty.get(a) else {
            return Err(format!("coverage: {a} not in dom(St)"));
        };
        if !crate::containment::mu_contained_with(omega, inst, &ae.frev(), vac) {
            return Err(format!(
                "coverage: instance for {a} not contained in frev({ae})"
            ));
        }
    }
    Ok(())
}

/// Checks `Ω ⊢ σ ≥ τ via S`, where `S` instantiates all three quantifier
/// layers of the scheme. Returns the instance type (equal to `expected` if
/// supplied).
///
/// # Errors
///
/// Returns a message if the substitution domains do not match the bound
/// variables, coverage fails, or the instance differs from `expected`.
pub fn check_instance(
    omega: &Delta,
    scheme: &Scheme,
    s: &Subst,
    expected: Option<&BoxTy>,
) -> Result<BoxTy, String> {
    check_instance_with(omega, scheme, s, expected, false)
}

/// As [`check_instance`], optionally with vacuous type variables in the
/// coverage check (matching the `rg-`/`r` checker modes).
pub fn check_instance_with(
    omega: &Delta,
    scheme: &Scheme,
    s: &Subst,
    expected: Option<&BoxTy>,
    vac: bool,
) -> Result<BoxTy, String> {
    // 1. dom(Sʳ) = {ρ⃗}, dom(Sᵉ) = {ε⃗}.
    let rdom: std::collections::BTreeSet<_> = s.reg.keys().copied().collect();
    let rbound: std::collections::BTreeSet<_> = scheme.rvars.iter().copied().collect();
    if rdom != rbound {
        return Err("instance: region substitution domain mismatch".into());
    }
    let edom: std::collections::BTreeSet<_> = s.eff.keys().copied().collect();
    let ebound: std::collections::BTreeSet<_> = scheme.evars.iter().copied().collect();
    if edom != ebound {
        return Err("instance: effect substitution domain mismatch".into());
    }
    // 2. Apply the region-effect part to ∀∆.τ, then check the type layer.
    let s_re = Subst {
        ty: Default::default(),
        reg: s.reg.clone(),
        eff: s.eff.clone(),
    };
    let delta2: Vec<_> = scheme
        .delta
        .iter()
        .map(|(a, ae)| (*a, s_re.arrow_eff(ae)))
        .collect();
    let body2 = s_re.boxty(&scheme.body);
    let s_t = Subst {
        ty: s.ty.clone(),
        reg: Default::default(),
        eff: Default::default(),
    };
    coverage_with(omega, &s_t, &delta2, vac)?;
    let inst = s_t.boxty(&body2);
    if let Some(exp) = expected {
        if &inst != exp {
            return Err(format!(
                "instance: computed instance differs from expected type\n  computed: {inst:?}\n  expected: {exp:?}"
            ));
        }
    }
    Ok(inst)
}

/// The atoms the instantiation of `∆(α)` receives under `Sᵉ`: used by
/// clients to compute which effects grow when a spurious type variable is
/// instantiated.
pub fn instantiated_tyvar_effect(s: &Subst, ae: &crate::vars::ArrowEff) -> Effect {
    let out = s.arrow_eff(ae);
    let mut phi = out.latent;
    phi.insert(Atom::Eff(out.handle));
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Mu;
    use crate::vars::{effect, ArrowEff, EffVar, RegVar, TyVar};

    /// Builds the paper's scheme (2) for the composition function `o`,
    /// simplified to the pieces relevant for instantiation:
    ///
    /// ∀ε ε' ρ (γ : ε'.∅). (unit --ε.{ε'}--> γ, ρ)
    fn spurious_scheme() -> (Scheme, TyVar, EffVar, EffVar, RegVar) {
        let gamma = TyVar::fresh();
        let eps = EffVar::fresh();
        let eps2 = EffVar::fresh();
        let rho = RegVar::fresh();
        let s = Scheme {
            rvars: vec![rho],
            evars: vec![eps, eps2],
            delta: vec![(gamma, ArrowEff::new(eps2, Effect::new()))],
            body: BoxTy::Arrow(
                Mu::Unit,
                ArrowEff::new(eps, effect([Atom::Eff(eps2)])),
                Mu::Var(gamma),
            ),
        };
        (s, gamma, eps, eps2, rho)
    }

    #[test]
    fn coverage_forces_instance_regions_into_tyvar_effect() {
        // Instantiating γ with (string, ρs) is only covered when the
        // arrow effect instantiated for ε' mentions ρs.
        let (scheme, gamma, eps, eps2, rho) = spurious_scheme();
        let rs = RegVar::fresh();
        let rho_i = RegVar::fresh();
        let e_i = EffVar::fresh();
        let mut s = Subst::default();
        s.reg.insert(rho, rho_i);
        s.ty.insert(gamma, Mu::string(rs));
        s.eff.insert(eps, ArrowEff::fresh_empty());
        // Bad: ε' ↦ ε''.∅ does not mention ρs.
        s.eff.insert(eps2, ArrowEff::new(e_i, Effect::new()));
        assert!(check_instance(&Delta::new(), &scheme, &s, None).is_err());
        // Good: ε' ↦ ε''.{ρs}.
        s.eff
            .insert(eps2, ArrowEff::new(e_i, effect([Atom::Reg(rs)])));
        let inst = check_instance(&Delta::new(), &scheme, &s, None).unwrap();
        // And the instance's latent effect now mentions ρs (through ε').
        let BoxTy::Arrow(_, ae, _) = &inst else {
            panic!()
        };
        assert!(ae.latent.contains(&Atom::Reg(rs)), "latent: {ae}");
    }

    #[test]
    fn instance_domains_must_match() {
        let (scheme, gamma, eps, eps2, _rho) = spurious_scheme();
        let mut s = Subst::default();
        s.ty.insert(gamma, Mu::Int);
        s.eff.insert(eps, ArrowEff::fresh_empty());
        s.eff.insert(eps2, ArrowEff::fresh_empty());
        // Missing the region instantiation.
        assert!(check_instance(&Delta::new(), &scheme, &s, None)
            .unwrap_err()
            .contains("region"));
    }

    #[test]
    fn unboxed_instance_is_always_covered() {
        let (scheme, gamma, eps, eps2, rho) = spurious_scheme();
        let mut s = Subst::default();
        s.reg.insert(rho, RegVar::fresh());
        s.ty.insert(gamma, Mu::Int);
        s.eff.insert(eps, ArrowEff::fresh_empty());
        s.eff.insert(eps2, ArrowEff::fresh_empty());
        check_instance(&Delta::new(), &scheme, &s, None).unwrap();
    }

    #[test]
    fn instance_via_outer_tyvar_needs_omega() {
        // Fig. 8's mechanism: instantiating γ with another type variable α
        // is covered only if frev(Ω(α)) ⊆ frev of the instantiated ∆(γ) —
        // which marks α spurious transitively.
        let (scheme, gamma, eps, eps2, rho) = spurious_scheme();
        let alpha = TyVar::fresh();
        let e_alpha = EffVar::fresh();
        let mut omega = Delta::new();
        omega.insert(alpha, ArrowEff::new(e_alpha, Effect::new()));
        let e_i = EffVar::fresh();
        let mut s = Subst::default();
        s.reg.insert(rho, RegVar::fresh());
        s.ty.insert(gamma, Mu::Var(alpha));
        s.eff.insert(eps, ArrowEff::fresh_empty());
        // Bad: instantiated ∆(γ) effect does not include ε_α.
        s.eff.insert(eps2, ArrowEff::new(e_i, Effect::new()));
        assert!(check_instance(&omega, &scheme, &s, None).is_err());
        // Good: it does.
        s.eff
            .insert(eps2, ArrowEff::new(e_i, effect([Atom::Eff(e_alpha)])));
        check_instance(&omega, &scheme, &s, None).unwrap();
    }

    #[test]
    fn expected_type_mismatch_reported() {
        let (scheme, gamma, eps, eps2, rho) = spurious_scheme();
        let mut s = Subst::default();
        s.reg.insert(rho, RegVar::fresh());
        s.ty.insert(gamma, Mu::Int);
        s.eff.insert(eps, ArrowEff::fresh_empty());
        s.eff.insert(eps2, ArrowEff::fresh_empty());
        let wrong = BoxTy::Str;
        assert!(check_instance(&Delta::new(), &scheme, &s, Some(&wrong)).is_err());
    }
}
