//! The region-annotated term language (paper Section 3.6), extended with
//! the ML features of the source language.
//!
//! Terms carry the annotations region inference produces: allocation
//! directives `at ρ`, `letregion`-bound region and effect variables, full
//! type annotations on lambdas and recursive functions, and explicit
//! instantiation substitutions at region applications. Expressions may
//! contain [`Value`]s: during evaluation, variables are substituted with
//! values (the small-step semantics of Figure 6 is substitution-based).

use crate::subst::Subst;
use crate::types::{Mu, Scheme};
use crate::vars::{EffVar, RegVar};
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::collections::BTreeSet;
use std::rc::Rc;

/// A region-annotated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Variable occurrence.
    Var(Symbol),
    /// `()` (unboxed).
    Unit,
    /// Integer (unboxed).
    Int(i64),
    /// Boolean (unboxed).
    Bool(bool),
    /// String literal, allocated `at ρ`.
    Str(String, RegVar),
    /// An already-evaluated value (appears during evaluation).
    Val(Value),
    /// `λx.e at ρ`, annotated with its full type-and-place `µ`.
    Lam {
        /// Parameter.
        param: Symbol,
        /// The function's type-and-place (an arrow at `at`).
        ann: Mu,
        /// Body.
        body: Box<Term>,
        /// Allocation region.
        at: RegVar,
    },
    /// Application `e1 e2`.
    App(Box<Term>, Box<Term>),
    /// `fun f [ρ⃗ε⃗∆] x = e at ρ` — one member of a group of (mutually
    /// recursive) region- and effect-polymorphic functions. A single
    /// function is a group of one. All group names are bound in all
    /// bodies; the expression denotes member `index`, allocated at
    /// `ats[index]`.
    Fix {
        /// The group's definitions (shared).
        defs: Rc<Vec<FixDef>>,
        /// Allocation region of each member.
        ats: Rc<Vec<RegVar>>,
        /// Which member this expression denotes.
        index: usize,
    },
    /// Region application `e [S] at ρ`: instantiates the scheme of `e`
    /// via the explicit substitution `S` and stores the specialised
    /// closure at `ρ`.
    RApp {
        /// The region-polymorphic function.
        f: Box<Term>,
        /// Instantiating substitution (domain = the scheme's bound vars).
        inst: Subst,
        /// Allocation region for the specialised closure.
        at: RegVar,
    },
    /// `let x = e1 in e2`.
    Let {
        /// Bound variable.
        x: Symbol,
        /// Right-hand side.
        rhs: Box<Term>,
        /// Body.
        body: Box<Term>,
    },
    /// `letregion ρ⃗ (and secondary ε⃗) in e`.
    Letregion {
        /// Bound region variables.
        rvars: Vec<RegVar>,
        /// Discharged secondary effect variables.
        evars: Vec<EffVar>,
        /// Body.
        body: Box<Term>,
    },
    /// `(e1, e2) at ρ`.
    Pair(Box<Term>, Box<Term>, RegVar),
    /// Projection `#i e`.
    Sel(u8, Box<Term>),
    /// Conditional.
    If(Box<Term>, Box<Term>, Box<Term>),
    /// Primitive application; allocating primitives carry a result region.
    Prim(PrimOp, Vec<Term>, Option<RegVar>),
    /// `nil` (unboxed), annotated with its list type.
    Nil(Mu),
    /// `e1 :: e2 at ρ`.
    Cons(Box<Term>, Box<Term>, RegVar),
    /// List case.
    CaseList {
        /// Scrutinee.
        scrut: Box<Term>,
        /// `nil` branch.
        nil_rhs: Box<Term>,
        /// Head binder.
        head: Symbol,
        /// Tail binder.
        tail: Symbol,
        /// Cons branch.
        cons_rhs: Box<Term>,
    },
    /// `ref e at ρ`.
    RefNew(Box<Term>, RegVar),
    /// `!e`.
    Deref(Box<Term>),
    /// `e1 := e2`.
    Assign(Box<Term>, Box<Term>),
    /// Exception-value construction `E e at ρ`.
    Exn {
        /// Constructor name.
        name: Symbol,
        /// Argument, if any.
        arg: Option<Box<Term>>,
        /// Allocation region.
        at: RegVar,
    },
    /// `raise e`, annotated with the (arbitrary) result type.
    Raise(Box<Term>, Mu),
    /// `e handle E x => e'`.
    Handle {
        /// Protected expression.
        body: Box<Term>,
        /// Caught constructor.
        exn: Symbol,
        /// Argument binder.
        arg: Symbol,
        /// Handler.
        handler: Box<Term>,
    },
}

/// One function of a (possibly mutually recursive) `fun` group.
#[derive(Debug, Clone, PartialEq)]
pub struct FixDef {
    /// Function name (bound in every body of the group).
    pub f: Symbol,
    /// The function's type scheme `∀ρ⃗ε⃗∆. µ1 --ε.φ--> µ2`.
    pub scheme: Scheme,
    /// Parameter.
    pub param: Symbol,
    /// Body.
    pub body: Term,
}

/// A value (paper Section 3.6). All values except integers, booleans,
/// `()` and `nil` are boxed and carry their region.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unboxed integer.
    Int(i64),
    /// Unboxed boolean.
    Bool(bool),
    /// Unboxed unit.
    Unit,
    /// Unboxed empty list, annotated with its list type.
    NilV(Mu),
    /// Boxed string `⟨s⟩ρ`.
    Str(String, RegVar),
    /// Boxed pair `⟨v1, v2⟩ρ`.
    Pair(Box<Value>, Box<Value>, RegVar),
    /// Boxed cons cell.
    Cons(Box<Value>, Box<Value>, RegVar),
    /// Ordinary closure `⟨λx.e⟩ρ`.
    Clos {
        /// Parameter.
        param: Symbol,
        /// Annotated type.
        ann: Mu,
        /// Body.
        body: Box<Term>,
        /// Region.
        at: RegVar,
    },
    /// Region-polymorphic closure `⟨fun f [ρ⃗ε⃗∆] x = e⟩ρ` — member
    /// `index` of a group.
    FixClos {
        /// The group's definitions (shared).
        defs: Rc<Vec<FixDef>>,
        /// Allocation region of each member.
        ats: Rc<Vec<RegVar>>,
        /// Which member this closure is.
        index: usize,
    },
    /// Reference cell: an index into the store, tagged with its region.
    RefLoc(usize, RegVar),
    /// Boxed exception value.
    ExnVal {
        /// Constructor name.
        name: Symbol,
        /// Generative tag (distinguishes re-evaluated declarations).
        tag: u32,
        /// Argument value.
        arg: Option<Box<Value>>,
        /// Region.
        at: RegVar,
    },
}

impl Term {
    /// Convenience: variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Convenience: lambda with annotation.
    pub fn lam(param: &str, ann: Mu, body: Term, at: RegVar) -> Term {
        Term::Lam {
            param: Symbol::intern(param),
            ann,
            body: Box::new(body),
            at,
        }
    }

    /// Convenience: application.
    pub fn app(f: Term, a: Term) -> Term {
        Term::App(Box::new(f), Box::new(a))
    }

    /// Convenience: `let`.
    pub fn let_(x: &str, rhs: Term, body: Term) -> Term {
        Term::Let {
            x: Symbol::intern(x),
            rhs: Box::new(rhs),
            body: Box::new(body),
        }
    }

    /// Convenience: `letregion`.
    pub fn letregion(rvars: Vec<RegVar>, evars: Vec<EffVar>, body: Term) -> Term {
        Term::Letregion {
            rvars,
            evars,
            body: Box::new(body),
        }
    }

    /// Free program variables `fpv(e)`, inserted into `out`; `bound` is the
    /// set of binders in scope.
    pub fn fpv_into(&self, bound: &mut Vec<Symbol>, out: &mut BTreeSet<Symbol>) {
        match self {
            Term::Var(x) => {
                if !bound.contains(x) {
                    out.insert(*x);
                }
            }
            Term::Unit | Term::Int(_) | Term::Bool(_) | Term::Str(..) | Term::Nil(_) => {}
            Term::Val(v) => v.fpv_into(bound, out),
            Term::Lam { param, body, .. } => {
                bound.push(*param);
                body.fpv_into(bound, out);
                bound.pop();
            }
            Term::Fix { defs, .. } => {
                for d in defs.iter() {
                    bound.push(d.f);
                }
                for d in defs.iter() {
                    bound.push(d.param);
                    d.body.fpv_into(bound, out);
                    bound.pop();
                }
                for _ in defs.iter() {
                    bound.pop();
                }
            }
            Term::App(a, b) | Term::Assign(a, b) => {
                a.fpv_into(bound, out);
                b.fpv_into(bound, out);
            }
            Term::Pair(a, b, _) | Term::Cons(a, b, _) => {
                a.fpv_into(bound, out);
                b.fpv_into(bound, out);
            }
            Term::RApp { f, .. } => f.fpv_into(bound, out),
            Term::Let { x, rhs, body } => {
                rhs.fpv_into(bound, out);
                bound.push(*x);
                body.fpv_into(bound, out);
                bound.pop();
            }
            Term::Letregion { body, .. } => body.fpv_into(bound, out),
            Term::Sel(_, e) | Term::RefNew(e, _) | Term::Deref(e) | Term::Raise(e, _) => {
                e.fpv_into(bound, out)
            }
            Term::If(a, b, c) => {
                a.fpv_into(bound, out);
                b.fpv_into(bound, out);
                c.fpv_into(bound, out);
            }
            Term::Prim(_, args, _) => {
                for a in args {
                    a.fpv_into(bound, out);
                }
            }
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                scrut.fpv_into(bound, out);
                nil_rhs.fpv_into(bound, out);
                bound.push(*head);
                bound.push(*tail);
                cons_rhs.fpv_into(bound, out);
                bound.pop();
                bound.pop();
            }
            Term::Exn { arg, .. } => {
                if let Some(a) = arg {
                    a.fpv_into(bound, out);
                }
            }
            Term::Handle {
                body, arg, handler, ..
            } => {
                body.fpv_into(bound, out);
                bound.push(*arg);
                handler.fpv_into(bound, out);
                bound.pop();
            }
        }
    }

    /// Free program variables `fpv(e)`.
    pub fn fpv(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.fpv_into(&mut Vec::new(), &mut out);
        out
    }

    /// Capture-free substitution of a (closed) value for a variable:
    /// `e[v/x]`.
    pub fn subst_value(&self, x: Symbol, v: &Value) -> Term {
        let sub = |e: &Term| Box::new(e.subst_value(x, v));
        match self {
            Term::Var(y) => {
                if *y == x {
                    Term::Val(v.clone())
                } else {
                    self.clone()
                }
            }
            Term::Unit
            | Term::Int(_)
            | Term::Bool(_)
            | Term::Str(..)
            | Term::Nil(_)
            | Term::Val(_) => self.clone(),
            Term::Lam {
                param,
                ann,
                body,
                at,
            } => {
                if *param == x {
                    self.clone()
                } else {
                    Term::Lam {
                        param: *param,
                        ann: ann.clone(),
                        body: sub(body),
                        at: *at,
                    }
                }
            }
            Term::Fix { defs, ats, index } => {
                if defs.iter().any(|d| d.f == x) {
                    self.clone()
                } else {
                    let defs2: Vec<FixDef> = defs
                        .iter()
                        .map(|d| {
                            if d.param == x {
                                d.clone()
                            } else {
                                FixDef {
                                    f: d.f,
                                    scheme: d.scheme.clone(),
                                    param: d.param,
                                    body: d.body.subst_value(x, v),
                                }
                            }
                        })
                        .collect();
                    Term::Fix {
                        defs: Rc::new(defs2),
                        ats: ats.clone(),
                        index: *index,
                    }
                }
            }
            Term::App(a, b) => Term::App(sub(a), sub(b)),
            Term::RApp { f, inst, at } => Term::RApp {
                f: sub(f),
                inst: inst.clone(),
                at: *at,
            },
            Term::Let { x: y, rhs, body } => Term::Let {
                x: *y,
                rhs: sub(rhs),
                body: if *y == x { body.clone() } else { sub(body) },
            },
            Term::Letregion { rvars, evars, body } => Term::Letregion {
                rvars: rvars.clone(),
                evars: evars.clone(),
                body: sub(body),
            },
            Term::Pair(a, b, r) => Term::Pair(sub(a), sub(b), *r),
            Term::Sel(i, e) => Term::Sel(*i, sub(e)),
            Term::If(a, b, c) => Term::If(sub(a), sub(b), sub(c)),
            Term::Prim(op, args, r) => {
                Term::Prim(*op, args.iter().map(|a| a.subst_value(x, v)).collect(), *r)
            }
            Term::Cons(a, b, r) => Term::Cons(sub(a), sub(b), *r),
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => Term::CaseList {
                scrut: sub(scrut),
                nil_rhs: sub(nil_rhs),
                head: *head,
                tail: *tail,
                cons_rhs: if *head == x || *tail == x {
                    cons_rhs.clone()
                } else {
                    sub(cons_rhs)
                },
            },
            Term::RefNew(e, r) => Term::RefNew(sub(e), *r),
            Term::Deref(e) => Term::Deref(sub(e)),
            Term::Assign(a, b) => Term::Assign(sub(a), sub(b)),
            Term::Exn { name, arg, at } => Term::Exn {
                name: *name,
                arg: arg.as_ref().map(|a| sub(a)),
                at: *at,
            },
            Term::Raise(e, ann) => Term::Raise(sub(e), ann.clone()),
            Term::Handle {
                body,
                exn,
                arg,
                handler,
            } => Term::Handle {
                body: sub(body),
                exn: *exn,
                arg: *arg,
                handler: if *arg == x {
                    handler.clone()
                } else {
                    sub(handler)
                },
            },
        }
    }

    /// Applies a region/effect/type substitution to all annotations of the
    /// term (the `e[ρ⃗'/ρ⃗]` of rule \[Rapp\]). Binders shadow: entries whose
    /// domain variable is re-bound by `letregion` or a `Fix` scheme are
    /// dropped for the subterm.
    pub fn apply_subst(&self, s: &Subst) -> Term {
        if s.ty.is_empty() && s.reg.is_empty() && s.eff.is_empty() {
            return self.clone();
        }
        let go = |e: &Term| Box::new(e.apply_subst(s));
        match self {
            Term::Var(_) | Term::Unit | Term::Int(_) | Term::Bool(_) => self.clone(),
            Term::Nil(mu) => Term::Nil(s.mu(mu)),
            Term::Str(st, r) => Term::Str(st.clone(), s.reg_var(*r)),
            Term::Val(v) => Term::Val(v.apply_subst(s)),
            Term::Lam {
                param,
                ann,
                body,
                at,
            } => Term::Lam {
                param: *param,
                ann: s.mu(ann),
                body: go(body),
                at: s.reg_var(*at),
            },
            Term::Fix { defs, ats, index } => {
                let defs2: Vec<FixDef> = defs.iter().map(|d| apply_subst_def(d, s)).collect();
                Term::Fix {
                    defs: Rc::new(defs2),
                    ats: Rc::new(ats.iter().map(|r| s.reg_var(*r)).collect()),
                    index: *index,
                }
            }
            Term::App(a, b) => Term::App(go(a), go(b)),
            Term::RApp { f, inst, at } => {
                // Map the *range* of the inner substitution; its domain is
                // a binder reference into the instantiated scheme.
                let mut inst2 = inst.clone();
                inst2.reg = inst.reg.iter().map(|(k, v)| (*k, s.reg_var(*v))).collect();
                inst2.eff = inst.eff.iter().map(|(k, v)| (*k, s.arrow_eff(v))).collect();
                inst2.ty = inst.ty.iter().map(|(k, v)| (*k, s.mu(v))).collect();
                Term::RApp {
                    f: go(f),
                    inst: inst2,
                    at: s.reg_var(*at),
                }
            }
            Term::Let { x, rhs, body } => Term::Let {
                x: *x,
                rhs: go(rhs),
                body: go(body),
            },
            Term::Letregion { rvars, evars, body } => {
                let mut s2 = s.clone();
                for r in rvars {
                    s2.reg.remove(r);
                }
                for e in evars {
                    s2.eff.remove(e);
                }
                Term::Letregion {
                    rvars: rvars.clone(),
                    evars: evars.clone(),
                    body: Box::new(body.apply_subst(&s2)),
                }
            }
            Term::Pair(a, b, r) => Term::Pair(go(a), go(b), s.reg_var(*r)),
            Term::Sel(i, e) => Term::Sel(*i, go(e)),
            Term::If(a, b, c) => Term::If(go(a), go(b), go(c)),
            Term::Prim(op, args, r) => Term::Prim(
                *op,
                args.iter().map(|a| a.apply_subst(s)).collect(),
                r.map(|r| s.reg_var(r)),
            ),
            Term::Cons(a, b, r) => Term::Cons(go(a), go(b), s.reg_var(*r)),
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => Term::CaseList {
                scrut: go(scrut),
                nil_rhs: go(nil_rhs),
                head: *head,
                tail: *tail,
                cons_rhs: go(cons_rhs),
            },
            Term::RefNew(e, r) => Term::RefNew(go(e), s.reg_var(*r)),
            Term::Deref(e) => Term::Deref(go(e)),
            Term::Assign(a, b) => Term::Assign(go(a), go(b)),
            Term::Exn { name, arg, at } => Term::Exn {
                name: *name,
                arg: arg.as_ref().map(|a| go(a)),
                at: s.reg_var(*at),
            },
            Term::Raise(e, ann) => Term::Raise(go(e), s.mu(ann)),
            Term::Handle {
                body,
                exn,
                arg,
                handler,
            } => Term::Handle {
                body: go(body),
                exn: *exn,
                arg: *arg,
                handler: go(handler),
            },
        }
    }
}

/// Applies a substitution to one group member, shadowing its scheme's
/// bound variables. Inference produces globally unique bound variables, so
/// the range of the restricted substitution cannot capture them.
fn apply_subst_def(d: &FixDef, s: &Subst) -> FixDef {
    let mut s2 = s.clone();
    for r in &d.scheme.rvars {
        s2.reg.remove(r);
    }
    for e in &d.scheme.evars {
        s2.eff.remove(e);
    }
    for (a, _) in &d.scheme.delta {
        s2.ty.remove(a);
    }
    FixDef {
        f: d.f,
        scheme: Scheme {
            rvars: d.scheme.rvars.clone(),
            evars: d.scheme.evars.clone(),
            delta: d
                .scheme
                .delta
                .iter()
                .map(|(a, ae)| (*a, s2.arrow_eff(ae)))
                .collect(),
            body: s2.boxty(&d.scheme.body),
        },
        param: d.param,
        body: d.body.apply_subst(&s2),
    }
}

impl Value {
    /// Free program variables of a value (well-typed values are closed —
    /// Proposition 15).
    pub fn fpv_into(&self, bound: &mut Vec<Symbol>, out: &mut BTreeSet<Symbol>) {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Unit | Value::NilV(_) | Value::Str(..) => {}
            Value::Pair(a, b, _) | Value::Cons(a, b, _) => {
                a.fpv_into(bound, out);
                b.fpv_into(bound, out);
            }
            Value::Clos { param, body, .. } => {
                bound.push(*param);
                body.fpv_into(bound, out);
                bound.pop();
            }
            Value::FixClos { defs, .. } => {
                for d in defs.iter() {
                    bound.push(d.f);
                }
                for d in defs.iter() {
                    bound.push(d.param);
                    d.body.fpv_into(bound, out);
                    bound.pop();
                }
                for _ in defs.iter() {
                    bound.pop();
                }
            }
            Value::RefLoc(..) => {}
            Value::ExnVal { arg, .. } => {
                if let Some(a) = arg {
                    a.fpv_into(bound, out);
                }
            }
        }
    }

    /// `true` if the value has no free program variables.
    pub fn is_closed(&self) -> bool {
        let mut out = BTreeSet::new();
        self.fpv_into(&mut Vec::new(), &mut out);
        out.is_empty()
    }

    /// Applies a substitution to the value's regions and annotations.
    pub fn apply_subst(&self, s: &Subst) -> Value {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Unit => self.clone(),
            Value::NilV(mu) => Value::NilV(s.mu(mu)),
            Value::Str(st, r) => Value::Str(st.clone(), s.reg_var(*r)),
            Value::Pair(a, b, r) => Value::Pair(
                Box::new(a.apply_subst(s)),
                Box::new(b.apply_subst(s)),
                s.reg_var(*r),
            ),
            Value::Cons(a, b, r) => Value::Cons(
                Box::new(a.apply_subst(s)),
                Box::new(b.apply_subst(s)),
                s.reg_var(*r),
            ),
            Value::Clos {
                param,
                ann,
                body,
                at,
            } => Value::Clos {
                param: *param,
                ann: s.mu(ann),
                body: Box::new(body.apply_subst(s)),
                at: s.reg_var(*at),
            },
            Value::FixClos { defs, ats, index } => Value::FixClos {
                defs: Rc::new(defs.iter().map(|d| apply_subst_def(d, s)).collect()),
                ats: Rc::new(ats.iter().map(|r| s.reg_var(*r)).collect()),
                index: *index,
            },
            Value::RefLoc(i, r) => Value::RefLoc(*i, s.reg_var(*r)),
            Value::ExnVal { name, tag, arg, at } => Value::ExnVal {
                name: *name,
                tag: *tag,
                arg: arg.as_ref().map(|a| Box::new(a.apply_subst(s))),
                at: s.reg_var(*at),
            },
        }
    }

    /// The region the value lives in, if boxed.
    pub fn place(&self) -> Option<RegVar> {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Unit | Value::NilV(_) => None,
            Value::FixClos { ats, index, .. } => Some(ats[*index]),
            Value::Str(_, r)
            | Value::Pair(_, _, r)
            | Value::Cons(_, _, r)
            | Value::Clos { at: r, .. }
            | Value::RefLoc(_, r)
            | Value::ExnVal { at: r, .. } => Some(*r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::ArrowEff;

    fn mu_int_arrow(rho: RegVar) -> Mu {
        Mu::arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Int, rho)
    }

    #[test]
    fn fpv_respects_binders() {
        let rho = RegVar::fresh();
        let e = Term::lam(
            "x",
            mu_int_arrow(rho),
            Term::app(Term::var("f"), Term::var("x")),
            rho,
        );
        let fv = e.fpv();
        assert!(fv.contains(&Symbol::intern("f")));
        assert!(!fv.contains(&Symbol::intern("x")));
    }

    #[test]
    fn subst_value_replaces_free_occurrences_only() {
        let rho = RegVar::fresh();
        let x = Symbol::intern("x");
        // let x = x in x — the rhs x is free, the body x is bound.
        let e = Term::Let {
            x,
            rhs: Box::new(Term::Var(x)),
            body: Box::new(Term::Var(x)),
        };
        let out = e.subst_value(x, &Value::Int(7));
        let Term::Let { rhs, body, .. } = out else {
            panic!()
        };
        assert_eq!(*rhs, Term::Val(Value::Int(7)));
        assert_eq!(*body, Term::Var(x));
        let _ = rho;
    }

    #[test]
    fn region_substitution_renames_annotations() {
        let r1 = RegVar::fresh();
        let r2 = RegVar::fresh();
        let e = Term::Pair(Box::new(Term::Int(1)), Box::new(Term::Int(2)), r1);
        let s = Subst::regions([(r1, r2)]);
        assert_eq!(
            e.apply_subst(&s),
            Term::Pair(Box::new(Term::Int(1)), Box::new(Term::Int(2)), r2)
        );
    }

    #[test]
    fn letregion_shadows_substitution() {
        let r1 = RegVar::fresh();
        let r2 = RegVar::fresh();
        let inner = Term::Str("s".into(), r1);
        let e = Term::letregion(vec![r1], vec![], inner.clone());
        let s = Subst::regions([(r1, r2)]);
        // The bound r1 must not be renamed.
        let Term::Letregion { body, .. } = e.apply_subst(&s) else {
            panic!()
        };
        assert_eq!(*body, inner);
    }

    #[test]
    fn values_report_their_place() {
        let r = RegVar::fresh();
        assert_eq!(Value::Str("a".into(), r).place(), Some(r));
        assert_eq!(Value::Int(1).place(), None);
        assert_eq!(Value::NilV(Mu::list(Mu::Int, r)).place(), None);
    }

    #[test]
    fn closures_are_closed_when_fully_applied() {
        let rho = RegVar::fresh();
        let v = Value::Clos {
            param: Symbol::intern("x"),
            ann: mu_int_arrow(rho),
            body: Box::new(Term::var("x")),
            at: rho,
        };
        assert!(v.is_closed());
        let open = Value::Clos {
            param: Symbol::intern("x"),
            ann: mu_int_arrow(rho),
            body: Box::new(Term::var("y")),
            at: rho,
        };
        assert!(!open.is_closed());
    }

    #[test]
    fn rapp_substitution_maps_range_not_domain() {
        let bound = RegVar::fresh(); // scheme-bound variable (domain)
        let actual = RegVar::fresh();
        let renamed = RegVar::fresh();
        let inner = Subst::regions([(bound, actual)]);
        let e = Term::RApp {
            f: Box::new(Term::var("f")),
            inst: inner,
            at: actual,
        };
        let s = Subst::regions([(actual, renamed)]);
        let Term::RApp { inst, at, .. } = e.apply_subst(&s) else {
            panic!()
        };
        assert_eq!(inst.reg.get(&bound), Some(&renamed));
        assert_eq!(at, renamed);
    }
}
