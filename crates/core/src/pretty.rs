//! Pretty-printing of region-annotated types, schemes, and terms in the
//! paper's notation.

use crate::terms::Term;
use crate::types::{BoxTy, Mu, Pi, Scheme};
use std::fmt::Write as _;

/// Renders a type-and-place, e.g. `(int * (string,r3), r1)`.
pub fn mu_to_string(m: &Mu) -> String {
    match m {
        Mu::Var(a) => a.to_string(),
        Mu::Int => "int".into(),
        Mu::Bool => "bool".into(),
        Mu::Unit => "unit".into(),
        Mu::Boxed(b, r) => format!("({}, {r})", boxty_to_string(b)),
    }
}

/// Renders a boxed type constructor.
pub fn boxty_to_string(t: &BoxTy) -> String {
    match t {
        BoxTy::Pair(a, b) => format!("{} * {}", mu_to_string(a), mu_to_string(b)),
        BoxTy::Arrow(a, ae, b) => format!("{} -{}-> {}", mu_to_string(a), ae, mu_to_string(b)),
        BoxTy::Str => "string".into(),
        BoxTy::Exn => "exn".into(),
        BoxTy::List(e) => format!("{} list", mu_to_string(e)),
        BoxTy::Ref(e) => format!("{} ref", mu_to_string(e)),
    }
}

/// Renders a scheme, e.g.
/// `∀r1 r2 e0 e1 (a3 : e1.{}). ((a3 -e0.{}-> unit, r1) ...)`.
pub fn scheme_to_string(s: &Scheme) -> String {
    let mut out = String::new();
    if !(s.rvars.is_empty() && s.evars.is_empty() && s.delta.is_empty()) {
        out.push('∀');
        for r in &s.rvars {
            let _ = write!(out, "{r} ");
        }
        for e in &s.evars {
            let _ = write!(out, "{e} ");
        }
        for (a, ae) in &s.delta {
            let _ = write!(out, "({a} : {ae}) ");
        }
        out.push_str(". ");
    }
    out.push_str(&boxty_to_string(&s.body));
    out
}

/// Renders a `π`.
pub fn pi_to_string(p: &Pi) -> String {
    match p {
        Pi::Mu(m) => mu_to_string(m),
        Pi::Scheme(s, r) => format!("({}, {r})", scheme_to_string(s)),
    }
}

/// Renders a term with region annotations (compact, one line).
pub fn term_to_string(e: &Term) -> String {
    let mut s = String::new();
    term(e, &mut s);
    s
}

fn term(e: &Term, out: &mut String) {
    match e {
        Term::Var(x) => {
            let _ = write!(out, "{x}");
        }
        Term::Unit => out.push_str("()"),
        Term::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Term::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Term::Str(s, r) => {
            let _ = write!(out, "{s:?} at {r}");
        }
        Term::Val(v) => {
            let _ = write!(out, "{v:?}");
        }
        Term::Nil(_) => out.push_str("nil"),
        Term::Lam {
            param, body, at, ..
        } => {
            let _ = write!(out, "(fn at {at} {param} => ");
            term(body, out);
            out.push(')');
        }
        Term::Fix { defs, ats, index } => {
            for (i, d) in defs.iter().enumerate() {
                out.push_str(if i == 0 { "(fun " } else { " and " });
                let _ = write!(out, "{} [", d.f);
                for r in &d.scheme.rvars {
                    let _ = write!(out, "{r} ");
                }
                for e in &d.scheme.evars {
                    let _ = write!(out, "{e} ");
                }
                for (a, ae) in &d.scheme.delta {
                    let _ = write!(out, "({a}:{ae}) ");
                }
                let _ = write!(out, "] {} = ", d.param);
                term(&d.body, out);
                let _ = write!(out, " at {}", ats[i]);
            }
            let _ = write!(out, "){index}");
        }
        Term::App(a, b) => {
            out.push('(');
            term(a, out);
            out.push(' ');
            term(b, out);
            out.push(')');
        }
        Term::RApp { f, inst, at } => {
            term(f, out);
            out.push_str(" [");
            for (k, v) in &inst.reg {
                let _ = write!(out, "{k}:={v} ");
            }
            let _ = write!(out, "] at {at}");
        }
        Term::Let { x, rhs, body } => {
            let _ = write!(out, "let {x} = ");
            term(rhs, out);
            out.push_str(" in ");
            term(body, out);
            out.push_str(" end");
        }
        Term::Letregion { rvars, body, .. } => {
            out.push_str("letregion ");
            for r in rvars {
                let _ = write!(out, "{r} ");
            }
            out.push_str("in ");
            term(body, out);
            out.push_str(" end");
        }
        Term::Pair(a, b, r) => {
            out.push('(');
            term(a, out);
            out.push_str(", ");
            term(b, out);
            let _ = write!(out, ") at {r}");
        }
        Term::Sel(i, e) => {
            let _ = write!(out, "#{i} ");
            term(e, out);
        }
        Term::If(c, t, f) => {
            out.push_str("if ");
            term(c, out);
            out.push_str(" then ");
            term(t, out);
            out.push_str(" else ");
            term(f, out);
        }
        Term::Prim(op, args, r) => {
            let _ = write!(out, "{op}");
            if let Some(r) = r {
                let _ = write!(out, "[{r}]");
            }
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                term(a, out);
            }
            out.push(')');
        }
        Term::Cons(h, t, r) => {
            term(h, out);
            let _ = write!(out, " ::[{r}] ");
            term(t, out);
        }
        Term::CaseList {
            scrut,
            nil_rhs,
            head,
            tail,
            cons_rhs,
        } => {
            out.push_str("case ");
            term(scrut, out);
            out.push_str(" of nil => ");
            term(nil_rhs, out);
            let _ = write!(out, " | {head} :: {tail} => ");
            term(cons_rhs, out);
        }
        Term::RefNew(e, r) => {
            let _ = write!(out, "ref at {r} ");
            term(e, out);
        }
        Term::Deref(e) => {
            out.push('!');
            term(e, out);
        }
        Term::Assign(a, b) => {
            term(a, out);
            out.push_str(" := ");
            term(b, out);
        }
        Term::Exn { name, arg, at } => {
            let _ = write!(out, "{name}");
            if let Some(a) = arg {
                out.push(' ');
                term(a, out);
            }
            let _ = write!(out, " at {at}");
        }
        Term::Raise(e, _) => {
            out.push_str("raise ");
            term(e, out);
        }
        Term::Handle {
            body,
            exn,
            arg,
            handler,
        } => {
            term(body, out);
            let _ = write!(out, " handle {exn} {arg} => ");
            term(handler, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::{ArrowEff, EffVar, RegVar};

    #[test]
    fn prints_arrow_with_effect() {
        let r = RegVar::fresh();
        let e = EffVar::fresh();
        let m = Mu::arrow(Mu::Int, ArrowEff::new(e, Default::default()), Mu::Unit, r);
        let s = mu_to_string(&m);
        assert!(s.contains("int"), "{s}");
        assert!(s.contains("unit"), "{s}");
        assert!(s.contains(&e.to_string()), "{s}");
        assert!(s.contains(&r.to_string()), "{s}");
    }

    #[test]
    fn prints_terms() {
        let r = RegVar::fresh();
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Pair(Box::new(Term::Int(1)), Box::new(Term::Int(2)), r),
        );
        let s = term_to_string(&e);
        assert!(s.starts_with("letregion"), "{s}");
        assert!(s.contains("at"), "{s}");
    }
}
