//! A versioned binary codec for region-annotated programs.
//!
//! The format is a straightforward tag-prefixed tree encoding with no
//! external dependencies:
//!
//! ```text
//! file    ::= magic "RMLI" ∥ version u32 ∥ program
//! program ::= term ∥ exns ∥ global ∥ schemes
//! ```
//!
//! Integers are little-endian; strings are length-prefixed UTF-8; sets,
//! maps, and vectors are length-prefixed sequences. Region, effect, and
//! type variables are written with their numeric identifiers, but a
//! decoder **never** trusts those numbers: every distinct identifier is
//! remapped to a freshly allocated variable ([`RegVar::fresh`] etc.), so
//! a decoded program cannot collide with variables the running process
//! has already created. Decoding therefore yields an α-renamed (and
//! otherwise structurally identical) program — exactly the equivalence
//! the region calculus works modulo.

use crate::terms::{FixDef, Term, Value};
use crate::types::{BoxTy, Mu, Scheme};
use crate::vars::{ArrowEff, Atom, EffVar, Effect, RegVar, TyVar};
use crate::Subst;
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

/// The file magic.
pub const MAGIC: [u8; 4] = *b"RMLI";

/// The current format version. Bump on any change to the encoding.
pub const VERSION: u32 = 1;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The input's version differs from [`VERSION`].
    Version {
        /// Version found in the input.
        found: u32,
    },
    /// The input ended in the middle of a value.
    Truncated,
    /// The input is structurally invalid (bad tag, bad UTF-8, …).
    Corrupt(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadMagic => write!(f, "not an rml IR file (bad magic)"),
            IrError::Version { found } => {
                write!(f, "unsupported IR version {found} (expected {VERSION})")
            }
            IrError::Truncated => write!(f, "truncated IR input"),
            IrError::Corrupt(m) => write!(f, "corrupt IR input: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

type DResult<T> = Result<T, IrError>;

/// A decoded region-annotated program: the fields of region inference's
/// output that are pure data (statistics are carried separately by
/// whoever frames the file).
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// The region-annotated term.
    pub term: Term,
    /// Exception constructors with their argument types.
    pub exns: BTreeMap<Symbol, Option<Mu>>,
    /// The global (top-level) region.
    pub global: RegVar,
    /// Top-level function schemes, in declaration order.
    pub schemes: Vec<(Symbol, Scheme)>,
}

/// Encodes a program (with magic and version header).
pub fn encode_program(p: &IrProgram) -> Vec<u8> {
    let mut w = W::default();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(VERSION);
    w.term(&p.term);
    w.u32(p.exns.len() as u32);
    for (name, arg) in &p.exns {
        w.symbol(*name);
        w.opt(arg.as_ref(), |w, m| w.mu(m));
    }
    w.reg(p.global);
    w.u32(p.schemes.len() as u32);
    for (name, s) in &p.schemes {
        w.symbol(*name);
        w.scheme(s);
    }
    w.buf
}

/// Decodes a program, checking magic and version and rejecting trailing
/// garbage. All variables are freshly renamed (see the module docs).
pub fn decode_program(bytes: &[u8]) -> DResult<IrProgram> {
    let mut r = R::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(IrError::BadMagic);
    }
    let found = r.u32()?;
    if found != VERSION {
        return Err(IrError::Version { found });
    }
    let term = r.term()?;
    let n = r.count()?;
    let mut exns = BTreeMap::new();
    for _ in 0..n {
        let name = r.symbol()?;
        let arg = r.opt(|r| r.mu())?;
        exns.insert(name, arg);
    }
    let global = r.reg()?;
    let n = r.count()?;
    let mut schemes = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.symbol()?;
        let s = r.scheme()?;
        schemes.push((name, s));
    }
    if r.pos != bytes.len() {
        return Err(IrError::Corrupt(format!(
            "{} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(IrProgram {
        term,
        exns,
        global,
        schemes,
    })
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

#[derive(Default)]
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn symbol(&mut self, s: Symbol) {
        self.str(s.as_str());
    }
    fn reg(&mut self, r: RegVar) {
        self.u32(r.0);
    }
    fn eff_var(&mut self, e: EffVar) {
        self.u32(e.0);
    }
    fn ty_var(&mut self, a: TyVar) {
        self.u32(a.0);
    }
    fn opt<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    fn atom(&mut self, a: &Atom) {
        match a {
            Atom::Reg(r) => {
                self.u8(0);
                self.reg(*r);
            }
            Atom::Eff(e) => {
                self.u8(1);
                self.eff_var(*e);
            }
        }
    }

    fn effect(&mut self, phi: &Effect) {
        self.u32(phi.len() as u32);
        for a in phi {
            self.atom(a);
        }
    }

    fn arrow_eff(&mut self, ae: &ArrowEff) {
        self.eff_var(ae.handle);
        self.effect(&ae.latent);
    }

    fn mu(&mut self, m: &Mu) {
        match m {
            Mu::Var(a) => {
                self.u8(0);
                self.ty_var(*a);
            }
            Mu::Int => self.u8(1),
            Mu::Bool => self.u8(2),
            Mu::Unit => self.u8(3),
            Mu::Boxed(b, r) => {
                self.u8(4);
                self.boxty(b);
                self.reg(*r);
            }
        }
    }

    fn boxty(&mut self, b: &BoxTy) {
        match b {
            BoxTy::Pair(a, c) => {
                self.u8(0);
                self.mu(a);
                self.mu(c);
            }
            BoxTy::Arrow(a, ae, c) => {
                self.u8(1);
                self.mu(a);
                self.arrow_eff(ae);
                self.mu(c);
            }
            BoxTy::Str => self.u8(2),
            BoxTy::List(e) => {
                self.u8(3);
                self.mu(e);
            }
            BoxTy::Ref(e) => {
                self.u8(4);
                self.mu(e);
            }
            BoxTy::Exn => self.u8(5),
        }
    }

    fn scheme(&mut self, s: &Scheme) {
        self.u32(s.rvars.len() as u32);
        for r in &s.rvars {
            self.reg(*r);
        }
        self.u32(s.evars.len() as u32);
        for e in &s.evars {
            self.eff_var(*e);
        }
        self.u32(s.delta.len() as u32);
        for (a, ae) in &s.delta {
            self.ty_var(*a);
            self.arrow_eff(ae);
        }
        self.boxty(&s.body);
    }

    fn subst(&mut self, s: &Subst) {
        self.u32(s.ty.len() as u32);
        for (a, m) in &s.ty {
            self.ty_var(*a);
            self.mu(m);
        }
        self.u32(s.reg.len() as u32);
        for (k, v) in &s.reg {
            self.reg(*k);
            self.reg(*v);
        }
        self.u32(s.eff.len() as u32);
        for (k, v) in &s.eff {
            self.eff_var(*k);
            self.arrow_eff(v);
        }
    }

    fn prim_op(&mut self, op: PrimOp) {
        use PrimOp::*;
        let tag = match op {
            Add => 0,
            Sub => 1,
            Mul => 2,
            Div => 3,
            Mod => 4,
            Neg => 5,
            Lt => 6,
            Le => 7,
            Gt => 8,
            Ge => 9,
            Eq => 10,
            Ne => 11,
            Not => 12,
            Concat => 13,
            Size => 14,
            Itos => 15,
            Print => 16,
            ForceGc => 17,
        };
        self.u8(tag);
    }

    fn fix_def(&mut self, d: &FixDef) {
        self.symbol(d.f);
        self.scheme(&d.scheme);
        self.symbol(d.param);
        self.term(&d.body);
    }

    fn term(&mut self, t: &Term) {
        match t {
            Term::Var(x) => {
                self.u8(0);
                self.symbol(*x);
            }
            Term::Unit => self.u8(1),
            Term::Int(n) => {
                self.u8(2);
                self.i64(*n);
            }
            Term::Bool(b) => {
                self.u8(3);
                self.u8(*b as u8);
            }
            Term::Str(s, r) => {
                self.u8(4);
                self.str(s);
                self.reg(*r);
            }
            Term::Val(v) => {
                self.u8(5);
                self.value(v);
            }
            Term::Lam {
                param,
                ann,
                body,
                at,
            } => {
                self.u8(6);
                self.symbol(*param);
                self.mu(ann);
                self.term(body);
                self.reg(*at);
            }
            Term::App(a, b) => {
                self.u8(7);
                self.term(a);
                self.term(b);
            }
            Term::Fix { defs, ats, index } => {
                self.u8(8);
                self.u32(defs.len() as u32);
                for d in defs.iter() {
                    self.fix_def(d);
                }
                self.u32(ats.len() as u32);
                for r in ats.iter() {
                    self.reg(*r);
                }
                self.u64(*index as u64);
            }
            Term::RApp { f, inst, at } => {
                self.u8(9);
                self.term(f);
                self.subst(inst);
                self.reg(*at);
            }
            Term::Let { x, rhs, body } => {
                self.u8(10);
                self.symbol(*x);
                self.term(rhs);
                self.term(body);
            }
            Term::Letregion { rvars, evars, body } => {
                self.u8(11);
                self.u32(rvars.len() as u32);
                for r in rvars {
                    self.reg(*r);
                }
                self.u32(evars.len() as u32);
                for e in evars {
                    self.eff_var(*e);
                }
                self.term(body);
            }
            Term::Pair(a, b, r) => {
                self.u8(12);
                self.term(a);
                self.term(b);
                self.reg(*r);
            }
            Term::Sel(i, e) => {
                self.u8(13);
                self.u8(*i);
                self.term(e);
            }
            Term::If(a, b, c) => {
                self.u8(14);
                self.term(a);
                self.term(b);
                self.term(c);
            }
            Term::Prim(op, args, r) => {
                self.u8(15);
                self.prim_op(*op);
                self.u32(args.len() as u32);
                for a in args {
                    self.term(a);
                }
                self.opt(r.as_ref(), |w, r| w.reg(*r));
            }
            Term::Nil(mu) => {
                self.u8(16);
                self.mu(mu);
            }
            Term::Cons(a, b, r) => {
                self.u8(17);
                self.term(a);
                self.term(b);
                self.reg(*r);
            }
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                self.u8(18);
                self.term(scrut);
                self.term(nil_rhs);
                self.symbol(*head);
                self.symbol(*tail);
                self.term(cons_rhs);
            }
            Term::RefNew(e, r) => {
                self.u8(19);
                self.term(e);
                self.reg(*r);
            }
            Term::Deref(e) => {
                self.u8(20);
                self.term(e);
            }
            Term::Assign(a, b) => {
                self.u8(21);
                self.term(a);
                self.term(b);
            }
            Term::Exn { name, arg, at } => {
                self.u8(22);
                self.symbol(*name);
                self.opt(arg.as_deref(), |w, a| w.term(a));
                self.reg(*at);
            }
            Term::Raise(e, ann) => {
                self.u8(23);
                self.term(e);
                self.mu(ann);
            }
            Term::Handle {
                body,
                exn,
                arg,
                handler,
            } => {
                self.u8(24);
                self.term(body);
                self.symbol(*exn);
                self.symbol(*arg);
                self.term(handler);
            }
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(n) => {
                self.u8(0);
                self.i64(*n);
            }
            Value::Bool(b) => {
                self.u8(1);
                self.u8(*b as u8);
            }
            Value::Unit => self.u8(2),
            Value::NilV(mu) => {
                self.u8(3);
                self.mu(mu);
            }
            Value::Str(s, r) => {
                self.u8(4);
                self.str(s);
                self.reg(*r);
            }
            Value::Pair(a, b, r) => {
                self.u8(5);
                self.value(a);
                self.value(b);
                self.reg(*r);
            }
            Value::Cons(a, b, r) => {
                self.u8(6);
                self.value(a);
                self.value(b);
                self.reg(*r);
            }
            Value::Clos {
                param,
                ann,
                body,
                at,
            } => {
                self.u8(7);
                self.symbol(*param);
                self.mu(ann);
                self.term(body);
                self.reg(*at);
            }
            Value::FixClos { defs, ats, index } => {
                self.u8(8);
                self.u32(defs.len() as u32);
                for d in defs.iter() {
                    self.fix_def(d);
                }
                self.u32(ats.len() as u32);
                for r in ats.iter() {
                    self.reg(*r);
                }
                self.u64(*index as u64);
            }
            Value::RefLoc(i, r) => {
                self.u8(9);
                self.u64(*i as u64);
                self.reg(*r);
            }
            Value::ExnVal { name, tag, arg, at } => {
                self.u8(10);
                self.symbol(*name);
                self.u32(*tag);
                self.opt(arg.as_deref(), |w, a| w.value(a));
                self.reg(*at);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// Recursion-depth bound for the mutually recursive `term`/`value`/`mu`
/// readers. Real programs nest a few hundred levels at most (the basis
/// included); mutated IR bytes can claim arbitrary nesting and must get
/// a structured error, not a blown Rust stack.
const MAX_DECODE_DEPTH: usize = 16_384;

struct R<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    regs: HashMap<u32, RegVar>,
    effs: HashMap<u32, EffVar>,
    tys: HashMap<u32, TyVar>,
}

impl<'a> R<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        R {
            bytes,
            pos: 0,
            depth: 0,
            regs: HashMap::new(),
            effs: HashMap::new(),
            tys: HashMap::new(),
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads an element count, rejecting any count the remaining input
    /// cannot possibly satisfy (every element consumes at least one
    /// byte). Such a count is by definition a truncation — the input
    /// ends before the promised elements — and failing here keeps
    /// `Vec::with_capacity` from pre-allocating gigabytes on mutated
    /// bytes.
    fn count(&mut self) -> DResult<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(IrError::Truncated);
        }
        Ok(n)
    }

    fn enter(&mut self) -> DResult<()> {
        self.depth += 1;
        if self.depth > MAX_DECODE_DEPTH {
            return Err(IrError::Corrupt(format!(
                "nesting exceeds the decoder depth limit ({MAX_DECODE_DEPTH})"
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(IrError::Truncated)?;
        if end > self.bytes.len() {
            return Err(IrError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> DResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> DResult<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        std::str::from_utf8(raw)
            .map(|s| s.to_string())
            .map_err(|_| IrError::Corrupt("invalid UTF-8 string".into()))
    }

    fn symbol(&mut self) -> DResult<Symbol> {
        Ok(Symbol::intern(&self.str()?))
    }

    fn reg(&mut self) -> DResult<RegVar> {
        let id = self.u32()?;
        Ok(*self.regs.entry(id).or_insert_with(RegVar::fresh))
    }

    fn eff_var(&mut self) -> DResult<EffVar> {
        let id = self.u32()?;
        Ok(*self.effs.entry(id).or_insert_with(EffVar::fresh))
    }

    fn ty_var(&mut self) -> DResult<TyVar> {
        let id = self.u32()?;
        Ok(*self.tys.entry(id).or_insert_with(TyVar::fresh))
    }

    fn opt<T>(&mut self, f: impl FnOnce(&mut Self) -> DResult<T>) -> DResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(IrError::Corrupt(format!("bad option tag {t}"))),
        }
    }

    fn bool(&mut self) -> DResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(IrError::Corrupt(format!("bad bool {t}"))),
        }
    }

    fn atom(&mut self) -> DResult<Atom> {
        match self.u8()? {
            0 => Ok(Atom::Reg(self.reg()?)),
            1 => Ok(Atom::Eff(self.eff_var()?)),
            t => Err(IrError::Corrupt(format!("bad atom tag {t}"))),
        }
    }

    fn effect(&mut self) -> DResult<Effect> {
        let n = self.u32()?;
        let mut phi = Effect::new();
        for _ in 0..n {
            phi.insert(self.atom()?);
        }
        Ok(phi)
    }

    fn arrow_eff(&mut self) -> DResult<ArrowEff> {
        let handle = self.eff_var()?;
        let latent = self.effect()?;
        Ok(ArrowEff::new(handle, latent))
    }

    fn mu(&mut self) -> DResult<Mu> {
        self.enter()?;
        let m = self.mu_raw();
        self.depth -= 1;
        m
    }

    fn mu_raw(&mut self) -> DResult<Mu> {
        match self.u8()? {
            0 => Ok(Mu::Var(self.ty_var()?)),
            1 => Ok(Mu::Int),
            2 => Ok(Mu::Bool),
            3 => Ok(Mu::Unit),
            4 => {
                let b = self.boxty()?;
                let r = self.reg()?;
                Ok(Mu::Boxed(Box::new(b), r))
            }
            t => Err(IrError::Corrupt(format!("bad mu tag {t}"))),
        }
    }

    fn boxty(&mut self) -> DResult<BoxTy> {
        match self.u8()? {
            0 => {
                let a = self.mu()?;
                let b = self.mu()?;
                Ok(BoxTy::Pair(a, b))
            }
            1 => {
                let a = self.mu()?;
                let ae = self.arrow_eff()?;
                let b = self.mu()?;
                Ok(BoxTy::Arrow(a, ae, b))
            }
            2 => Ok(BoxTy::Str),
            3 => Ok(BoxTy::List(self.mu()?)),
            4 => Ok(BoxTy::Ref(self.mu()?)),
            5 => Ok(BoxTy::Exn),
            t => Err(IrError::Corrupt(format!("bad boxty tag {t}"))),
        }
    }

    fn scheme(&mut self) -> DResult<Scheme> {
        let n = self.count()?;
        let mut rvars = Vec::with_capacity(n);
        for _ in 0..n {
            rvars.push(self.reg()?);
        }
        let n = self.count()?;
        let mut evars = Vec::with_capacity(n);
        for _ in 0..n {
            evars.push(self.eff_var()?);
        }
        let n = self.count()?;
        let mut delta = Vec::with_capacity(n);
        for _ in 0..n {
            let a = self.ty_var()?;
            let ae = self.arrow_eff()?;
            delta.push((a, ae));
        }
        let body = self.boxty()?;
        Ok(Scheme {
            rvars,
            evars,
            delta,
            body,
        })
    }

    fn subst(&mut self) -> DResult<Subst> {
        let mut s = Subst::default();
        let n = self.u32()?;
        for _ in 0..n {
            let a = self.ty_var()?;
            let m = self.mu()?;
            s.ty.insert(a, m);
        }
        let n = self.u32()?;
        for _ in 0..n {
            let k = self.reg()?;
            let v = self.reg()?;
            s.reg.insert(k, v);
        }
        let n = self.u32()?;
        for _ in 0..n {
            let k = self.eff_var()?;
            let v = self.arrow_eff()?;
            s.eff.insert(k, v);
        }
        Ok(s)
    }

    fn prim_op(&mut self) -> DResult<PrimOp> {
        use PrimOp::*;
        Ok(match self.u8()? {
            0 => Add,
            1 => Sub,
            2 => Mul,
            3 => Div,
            4 => Mod,
            5 => Neg,
            6 => Lt,
            7 => Le,
            8 => Gt,
            9 => Ge,
            10 => Eq,
            11 => Ne,
            12 => Not,
            13 => Concat,
            14 => Size,
            15 => Itos,
            16 => Print,
            17 => ForceGc,
            t => return Err(IrError::Corrupt(format!("bad prim op tag {t}"))),
        })
    }

    fn fix_def(&mut self) -> DResult<FixDef> {
        let f = self.symbol()?;
        let scheme = self.scheme()?;
        let param = self.symbol()?;
        let body = self.term()?;
        Ok(FixDef {
            f,
            scheme,
            param,
            body,
        })
    }

    fn term(&mut self) -> DResult<Term> {
        self.enter()?;
        let t = self.term_raw();
        self.depth -= 1;
        t
    }

    fn term_raw(&mut self) -> DResult<Term> {
        Ok(match self.u8()? {
            0 => Term::Var(self.symbol()?),
            1 => Term::Unit,
            2 => Term::Int(self.i64()?),
            3 => Term::Bool(self.bool()?),
            4 => {
                let s = self.str()?;
                let r = self.reg()?;
                Term::Str(s, r)
            }
            5 => Term::Val(self.value()?),
            6 => {
                let param = self.symbol()?;
                let ann = self.mu()?;
                let body = Box::new(self.term()?);
                let at = self.reg()?;
                Term::Lam {
                    param,
                    ann,
                    body,
                    at,
                }
            }
            7 => {
                let a = Box::new(self.term()?);
                let b = Box::new(self.term()?);
                Term::App(a, b)
            }
            8 => {
                let n = self.count()?;
                let mut defs = Vec::with_capacity(n);
                for _ in 0..n {
                    defs.push(self.fix_def()?);
                }
                let n = self.count()?;
                let mut ats = Vec::with_capacity(n);
                for _ in 0..n {
                    ats.push(self.reg()?);
                }
                let index = self.u64()? as usize;
                if index >= defs.len().max(1) {
                    return Err(IrError::Corrupt(format!("fix index {index} out of range")));
                }
                Term::Fix {
                    defs: Rc::new(defs),
                    ats: Rc::new(ats),
                    index,
                }
            }
            9 => {
                let f = Box::new(self.term()?);
                let inst = self.subst()?;
                let at = self.reg()?;
                Term::RApp { f, inst, at }
            }
            10 => {
                let x = self.symbol()?;
                let rhs = Box::new(self.term()?);
                let body = Box::new(self.term()?);
                Term::Let { x, rhs, body }
            }
            11 => {
                let n = self.count()?;
                let mut rvars = Vec::with_capacity(n);
                for _ in 0..n {
                    rvars.push(self.reg()?);
                }
                let n = self.count()?;
                let mut evars = Vec::with_capacity(n);
                for _ in 0..n {
                    evars.push(self.eff_var()?);
                }
                let body = Box::new(self.term()?);
                Term::Letregion { rvars, evars, body }
            }
            12 => {
                let a = Box::new(self.term()?);
                let b = Box::new(self.term()?);
                let r = self.reg()?;
                Term::Pair(a, b, r)
            }
            13 => {
                let i = self.u8()?;
                let e = Box::new(self.term()?);
                Term::Sel(i, e)
            }
            14 => {
                let a = Box::new(self.term()?);
                let b = Box::new(self.term()?);
                let c = Box::new(self.term()?);
                Term::If(a, b, c)
            }
            15 => {
                let op = self.prim_op()?;
                let n = self.count()?;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.term()?);
                }
                let r = self.opt(|r| r.reg())?;
                Term::Prim(op, args, r)
            }
            16 => Term::Nil(self.mu()?),
            17 => {
                let a = Box::new(self.term()?);
                let b = Box::new(self.term()?);
                let r = self.reg()?;
                Term::Cons(a, b, r)
            }
            18 => {
                let scrut = Box::new(self.term()?);
                let nil_rhs = Box::new(self.term()?);
                let head = self.symbol()?;
                let tail = self.symbol()?;
                let cons_rhs = Box::new(self.term()?);
                Term::CaseList {
                    scrut,
                    nil_rhs,
                    head,
                    tail,
                    cons_rhs,
                }
            }
            19 => {
                let e = Box::new(self.term()?);
                let r = self.reg()?;
                Term::RefNew(e, r)
            }
            20 => Term::Deref(Box::new(self.term()?)),
            21 => {
                let a = Box::new(self.term()?);
                let b = Box::new(self.term()?);
                Term::Assign(a, b)
            }
            22 => {
                let name = self.symbol()?;
                let arg = self.opt(|r| r.term())?.map(Box::new);
                let at = self.reg()?;
                Term::Exn { name, arg, at }
            }
            23 => {
                let e = Box::new(self.term()?);
                let ann = self.mu()?;
                Term::Raise(e, ann)
            }
            24 => {
                let body = Box::new(self.term()?);
                let exn = self.symbol()?;
                let arg = self.symbol()?;
                let handler = Box::new(self.term()?);
                Term::Handle {
                    body,
                    exn,
                    arg,
                    handler,
                }
            }
            t => return Err(IrError::Corrupt(format!("bad term tag {t}"))),
        })
    }

    fn value(&mut self) -> DResult<Value> {
        self.enter()?;
        let v = self.value_raw();
        self.depth -= 1;
        v
    }

    fn value_raw(&mut self) -> DResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Int(self.i64()?),
            1 => Value::Bool(self.bool()?),
            2 => Value::Unit,
            3 => Value::NilV(self.mu()?),
            4 => {
                let s = self.str()?;
                let r = self.reg()?;
                Value::Str(s, r)
            }
            5 => {
                let a = Box::new(self.value()?);
                let b = Box::new(self.value()?);
                let r = self.reg()?;
                Value::Pair(a, b, r)
            }
            6 => {
                let a = Box::new(self.value()?);
                let b = Box::new(self.value()?);
                let r = self.reg()?;
                Value::Cons(a, b, r)
            }
            7 => {
                let param = self.symbol()?;
                let ann = self.mu()?;
                let body = Box::new(self.term()?);
                let at = self.reg()?;
                Value::Clos {
                    param,
                    ann,
                    body,
                    at,
                }
            }
            8 => {
                let n = self.count()?;
                let mut defs = Vec::with_capacity(n);
                for _ in 0..n {
                    defs.push(self.fix_def()?);
                }
                let n = self.count()?;
                let mut ats = Vec::with_capacity(n);
                for _ in 0..n {
                    ats.push(self.reg()?);
                }
                let index = self.u64()? as usize;
                if index >= defs.len().max(1) {
                    return Err(IrError::Corrupt(format!(
                        "fixclos index {index} out of range"
                    )));
                }
                Value::FixClos {
                    defs: Rc::new(defs),
                    ats: Rc::new(ats),
                    index,
                }
            }
            9 => {
                let i = self.u64()? as usize;
                let r = self.reg()?;
                Value::RefLoc(i, r)
            }
            10 => {
                let name = self.symbol()?;
                let tag = self.u32()?;
                let arg = self.opt(|r| r.value())?.map(Box::new);
                let at = self.reg()?;
                Value::ExnVal { name, tag, arg, at }
            }
            t => return Err(IrError::Corrupt(format!("bad value tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::effect;

    fn sample_program() -> IrProgram {
        let rho = RegVar::fresh();
        let eps = EffVar::fresh();
        let ann = Mu::arrow(
            Mu::Int,
            ArrowEff::new(eps, effect([Atom::Reg(rho)])),
            Mu::Int,
            rho,
        );
        let term = Term::letregion(
            vec![rho],
            vec![eps],
            Term::app(Term::lam("x", ann, Term::var("x"), rho), Term::Int(5)),
        );
        let mut exns = BTreeMap::new();
        exns.insert(Symbol::intern("Fail"), Some(Mu::string(rho)));
        exns.insert(Symbol::intern("Empty"), None);
        IrProgram {
            term,
            exns,
            global: rho,
            schemes: vec![(
                Symbol::intern("id"),
                Scheme::mono(BoxTy::Arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Int)),
            )],
        }
    }

    /// Structural equality modulo the variable renaming decode performs.
    fn alpha_eq(a: &IrProgram, b: &IrProgram) -> bool {
        // Re-encoding maps each distinct variable to its first-occurrence
        // id, so encodings of α-equivalent programs differ only in those
        // ids; normalise by decoding both through a shared renamer is
        // overkill — compare pretty-printed forms with ids stripped.
        let strip = |p: &IrProgram| {
            let mut s = format!("{:?}|{:?}|{:?}", p.term, p.exns, p.schemes);
            // Replace digit runs after r/e/a with first-occurrence indices.
            let mut map: HashMap<String, usize> = HashMap::new();
            let bytes = s.clone();
            let bytes = bytes.as_bytes();
            let mut out = String::new();
            let mut i = 0;
            while i < bytes.len() {
                let c = bytes[i] as char;
                let prev_ok =
                    i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                if prev_ok && matches!(c, 'r' | 'e' | 'a') {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    if j > i + 1 {
                        let tok = std::str::from_utf8(&bytes[i..j]).unwrap().to_string();
                        let next = map.len();
                        let id = *map.entry(tok).or_insert(next);
                        out.push(c);
                        out.push('#');
                        out.push_str(&id.to_string());
                        i = j;
                        continue;
                    }
                }
                out.push(c);
                i += 1;
            }
            s = out;
            s
        };
        strip(a) == strip(b)
    }

    #[test]
    fn round_trip_small_program() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        assert!(alpha_eq(&p, &q), "\n{p:?}\n!=\n{q:?}");
        assert_eq!(p.exns.len(), q.exns.len());
        assert_eq!(p.schemes.len(), q.schemes.len());
    }

    #[test]
    fn decode_renames_variables() {
        let p = sample_program();
        let bytes = encode_program(&p);
        let q = decode_program(&bytes).unwrap();
        // Fresh variables must be distinct from the originals.
        assert_ne!(p.global, q.global);
    }

    #[test]
    fn bad_magic_rejected() {
        let p = sample_program();
        let mut bytes = encode_program(&p);
        bytes[0] = b'X';
        assert_eq!(decode_program(&bytes), Err(IrError::BadMagic));
    }

    #[test]
    fn version_mismatch_rejected() {
        let p = sample_program();
        let mut bytes = encode_program(&p);
        bytes[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert_eq!(
            decode_program(&bytes),
            Err(IrError::Version { found: VERSION + 1 })
        );
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let p = sample_program();
        let bytes = encode_program(&p);
        for n in 0..bytes.len() {
            let err = decode_program(&bytes[..n]).unwrap_err();
            assert!(
                matches!(err, IrError::Truncated | IrError::BadMagic),
                "prefix {n}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let p = sample_program();
        let mut bytes = encode_program(&p);
        bytes.push(0);
        assert!(matches!(decode_program(&bytes), Err(IrError::Corrupt(_))));
    }
}
