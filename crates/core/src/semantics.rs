//! The small-step contextual dynamic semantics of Figure 6, extended to
//! the full term language.
//!
//! The rules are of the form `e --φ--> e'`: given the set `φ` of allocated
//! regions, `e` reduces in one step. `letregion ρ in e` allocates `ρ` for
//! the evaluation of `e` (rule \[Ctx\] extends `φ` when descending through
//! the context) and deallocates it when the body is a value (rule \[Reg\]).
//! Inaccessibility of deallocated regions is modelled by tracking the set
//! of allocated regions and refusing access to any region outside it —
//! such a refusal is precisely a *dangling pointer* at the level of the
//! formal semantics.
//!
//! The [`Machine`] optionally runs the containment monitor of Theorem 2
//! after every step: for well-typed terms, `φ |=c e` is preserved, which
//! is the property a reference-tracing garbage collector relies on.

use crate::gcsafe::{context_contained, value_contained, Regions};
use crate::subst::Subst;
use crate::terms::{Term, Value};
use crate::types::Mu;
use crate::vars::RegVar;
use rml_syntax::ast::PrimOp;
use std::collections::BTreeSet;
use std::fmt;

/// An error during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Access to (allocation into, or read from) a region not in `φ`.
    DanglingRegion {
        /// The offending region.
        region: String,
        /// What the program was doing.
        context: &'static str,
    },
    /// The term was stuck for a non-region reason (ill-typed input).
    Stuck(String),
    /// The containment monitor (Theorem 2) was violated.
    ContainmentViolation(String),
    /// Fuel exhausted.
    OutOfFuel,
    /// An uncaught exception reached the top level.
    UncaughtException(String),
    /// Division by zero.
    DivByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DanglingRegion { region, context } => {
                write!(f, "dangling region {region} during {context}")
            }
            EvalError::Stuck(m) => write!(f, "stuck: {m}"),
            EvalError::ContainmentViolation(m) => write!(f, "containment violated: {m}"),
            EvalError::OutOfFuel => write!(f, "out of fuel"),
            EvalError::UncaughtException(n) => write!(f, "uncaught exception {n}"),
            EvalError::DivByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation machine: global regions, the reference store, program
/// output, and statistics.
#[derive(Debug, Default)]
pub struct Machine {
    /// Globally allocated regions (top-level regions; `letregion`-bound
    /// regions are tracked by the context during stepping).
    pub regions: Regions,
    /// The reference store.
    pub store: Vec<Value>,
    /// The region each store cell was allocated in, parallel to
    /// [`Machine::store`]. The paper's store is region-partitioned: a
    /// cell lives in its region and is deallocated with it, so the
    /// containment monitor only constrains cells whose region is live.
    pub store_regions: Vec<RegVar>,
    /// Accumulated `print` output.
    pub output: String,
    /// Number of reduction steps taken.
    pub steps: u64,
    /// Run the Theorem 2 containment monitor after every step.
    pub monitor: bool,
}

enum Step {
    /// The term reduced.
    Reduced(Term),
    /// The term is already a value.
    IsValue(Value),
    /// A raised exception is propagating.
    Raising(Value),
}

type SResult = Result<Step, EvalError>;

/// The observable outcome of one public [`Machine::step`].
///
/// Exposing single steps (rather than only [`Machine::eval`]) is what
/// lets the metatheory tests re-run the Figure 4 checker on the
/// *intermediate* terms of an evaluation — type preservation
/// (Proposition 18) is a statement about every `e_i` in
/// `e_0 --> e_1 --> ...`, not just about `e_0`.
#[derive(Debug, Clone)]
pub enum StepResult {
    /// The term is a value: evaluation is complete.
    Done(Value),
    /// A raised exception escaped to the top level.
    Raised(Value),
    /// One reduction `e --φ--> e'` happened; continue from `e'`.
    Next(Term),
}

impl Machine {
    /// Creates a machine with a set of pre-allocated (global) regions.
    pub fn new<I: IntoIterator<Item = RegVar>>(globals: I) -> Machine {
        Machine {
            regions: globals.into_iter().collect(),
            ..Machine::default()
        }
    }

    fn require(&self, phi: &Regions, r: RegVar, context: &'static str) -> Result<(), EvalError> {
        if phi.contains(&r) {
            Ok(())
        } else {
            Err(EvalError::DanglingRegion {
                region: r.to_string(),
                context,
            })
        }
    }

    /// Evaluates `e` to a value, taking at most `fuel` steps.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on dangling-region access, stuck terms,
    /// monitor violations, uncaught exceptions, or fuel exhaustion.
    pub fn eval(&mut self, e: Term, fuel: u64) -> Result<Value, EvalError> {
        let mut cur = e;
        for _ in 0..fuel {
            match self.step(cur)? {
                StepResult::Done(v) => return Ok(v),
                StepResult::Raised(v) => {
                    let name = match &v {
                        Value::ExnVal { name, .. } => name.to_string(),
                        other => format!("{other:?}"),
                    };
                    return Err(EvalError::UncaughtException(name));
                }
                StepResult::Next(e2) => cur = e2,
            }
        }
        Err(EvalError::OutOfFuel)
    }

    /// Performs exactly one reduction step `e --φ--> e'` with `φ` the
    /// machine's global regions (rule \[Ctx\] extends `φ` internally at
    /// each `letregion`), returning the reduct so callers can inspect —
    /// or re-typecheck — every intermediate term. Runs the Theorem 2
    /// containment monitor after the step when [`Machine::monitor`] is
    /// set. [`Machine::eval`] is this in a fuel loop.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on dangling-region access, stuck terms, or
    /// monitor violations.
    pub fn step(&mut self, e: Term) -> Result<StepResult, EvalError> {
        let phi = self.regions.clone();
        match self.step_in(e, &phi)? {
            Step::IsValue(v) => Ok(StepResult::Done(v)),
            Step::Raising(v) => Ok(StepResult::Raised(v)),
            Step::Reduced(e2) => {
                self.steps += 1;
                if self.monitor {
                    self.check_containment(&e2)?;
                }
                Ok(StepResult::Next(e2))
            }
        }
    }

    /// The Theorem 2 monitor: `φ |=c e` plus store containment.
    fn check_containment(&self, e: &Term) -> Result<(), EvalError> {
        if !context_contained(&self.regions, e) {
            return Err(EvalError::ContainmentViolation(
                "term not context-contained in allocated regions".into(),
            ));
        }
        // Store values must be contained in the global regions extended
        // with every letregion-bound region of the term (a superset of the
        // true stack, which is sound for a violation check on globals).
        let mut all = self.regions.clone();
        collect_letregion_binders(e, &mut all);
        for (i, v) in self.store.iter().enumerate() {
            // A cell deallocated with its region is no longer part of the
            // store; only cells in live regions constrain containment.
            if !all.contains(&self.store_regions[i]) {
                continue;
            }
            if !value_contained(&all, v) {
                return Err(EvalError::ContainmentViolation(format!(
                    "store location {i} refers to a deallocated region"
                )));
            }
        }
        Ok(())
    }

    /// One step of `e --φ--> e'` (\[Ctx\] is implemented by recursion,
    /// extending `φ` at `letregion`).
    fn step_in(&mut self, e: Term, phi: &Regions) -> SResult {
        use Step::*;
        match e {
            Term::Val(v) => Ok(IsValue(v)),
            Term::Int(n) => Ok(Reduced(Term::Val(Value::Int(n)))),
            Term::Bool(b) => Ok(Reduced(Term::Val(Value::Bool(b)))),
            Term::Unit => Ok(Reduced(Term::Val(Value::Unit))),
            Term::Nil(mu) => Ok(Reduced(Term::Val(Value::NilV(mu)))),
            Term::Var(x) => Err(EvalError::Stuck(format!("free variable `{x}`"))),
            Term::Str(s, r) => {
                self.require(phi, r, "string allocation")?;
                Ok(Reduced(Term::Val(Value::Str(s, r))))
            }
            Term::Lam {
                param,
                ann,
                body,
                at,
            } => {
                // [Lam]
                self.require(phi, at, "closure allocation")?;
                Ok(Reduced(Term::Val(Value::Clos {
                    param,
                    ann,
                    body,
                    at,
                })))
            }
            Term::Fix { defs, ats, index } => {
                // [Fun] — all group members' regions must be allocated.
                for r in ats.iter() {
                    self.require(phi, *r, "fun-closure allocation")?;
                }
                Ok(Reduced(Term::Val(Value::FixClos { defs, ats, index })))
            }
            Term::Letregion { rvars, evars, body } => {
                // [Reg] when the body is a value; otherwise [Ctx] with
                // φ extended (alpha-renaming colliding binders first).
                if let Term::Val(v) = *body {
                    return Ok(Reduced(Term::Val(v)));
                }
                if let Some(v) = raise_value(&body) {
                    // Unwinding deallocates the region.
                    return Ok(Reduced(Term::Raise(
                        Box::new(Term::Val(v.clone())),
                        Mu::Unit,
                    )));
                }
                let (rvars, body) = if rvars.iter().any(|r| phi.contains(r)) {
                    let mut ren = Subst::default();
                    let fresh: Vec<RegVar> = rvars
                        .iter()
                        .map(|r| {
                            let nr = RegVar::fresh();
                            ren.reg.insert(*r, nr);
                            nr
                        })
                        .collect();
                    (fresh, Box::new(body.apply_subst(&ren)))
                } else {
                    (rvars, body)
                };
                let mut phi2 = phi.clone();
                phi2.extend(rvars.iter().copied());
                match self.step_in(*body, &phi2)? {
                    IsValue(v) => Ok(Reduced(Term::Val(v))), // [Reg]
                    Raising(v) => Ok(Raising(v)),
                    Reduced(b2) => Ok(Reduced(Term::Letregion {
                        rvars,
                        evars,
                        body: Box::new(b2),
                    })),
                }
            }
            Term::App(e1, e2) => {
                match self.spine(*e1, phi)? {
                    Ok(v1) => match self.spine(*e2, phi)? {
                        Ok(v2) => {
                            // [App]
                            let Value::Clos {
                                param, body, at, ..
                            } = v1
                            else {
                                return Err(EvalError::Stuck(
                                    "application of a non-closure".into(),
                                ));
                            };
                            self.require(phi, at, "closure call")?;
                            Ok(Reduced(body.subst_value(param, &v2)))
                        }
                        Err(step) => Ok(rebuild(step, |b2| {
                            Term::App(Box::new(Term::Val(v1)), Box::new(b2))
                        })),
                    },
                    Err(step) => Ok(rebuild(step, |a2| Term::App(Box::new(a2), e2))),
                }
            }
            Term::RApp { f, inst, at } => match self.spine(*f, phi)? {
                Ok(v) => {
                    // [Rapp]
                    let Value::FixClos { defs, ats, index } = v.clone() else {
                        return Err(EvalError::Stuck(
                            "region application of a non-fun value".into(),
                        ));
                    };
                    self.require(phi, ats[index], "region application")?;
                    self.require(phi, at, "specialised-closure allocation")?;
                    let def = &defs[index];
                    let tau = inst.boxty(&def.scheme.body);
                    // Freshen the unfolded body's letregion binders: terms
                    // are identified up to renaming of bound variables, and
                    // recursive unfoldings would otherwise shadow the
                    // currently active instances.
                    let mut body2 = freshen_letregions(&def.body.apply_subst(&inst));
                    for (j, dj) in defs.iter().enumerate() {
                        body2 = body2.subst_value(
                            dj.f,
                            &Value::FixClos {
                                defs: defs.clone(),
                                ats: ats.clone(),
                                index: j,
                            },
                        );
                    }
                    complete_rec_ty_insts(&mut body2, &inst);
                    Ok(Reduced(Term::Lam {
                        param: def.param,
                        ann: Mu::Boxed(Box::new(tau), at),
                        body: Box::new(body2),
                        at,
                    }))
                }
                Err(step) => Ok(rebuild(step, |f2| Term::RApp {
                    f: Box::new(f2),
                    inst,
                    at,
                })),
            },
            Term::Let { x, rhs, body } => match self.spine(*rhs, phi)? {
                Ok(v) => Ok(Reduced(body.subst_value(x, &v))), // [Let]
                Err(step) => Ok(rebuild(step, |r2| Term::Let {
                    x,
                    rhs: Box::new(r2),
                    body,
                })),
            },
            Term::Pair(e1, e2, r) => match self.spine(*e1, phi)? {
                Ok(v1) => match self.spine(*e2, phi)? {
                    Ok(v2) => {
                        // [Pair]
                        self.require(phi, r, "pair allocation")?;
                        Ok(Reduced(Term::Val(Value::Pair(
                            Box::new(v1),
                            Box::new(v2),
                            r,
                        ))))
                    }
                    Err(step) => Ok(rebuild(step, |b2| {
                        Term::Pair(Box::new(Term::Val(v1)), Box::new(b2), r)
                    })),
                },
                Err(step) => Ok(rebuild(step, |a2| Term::Pair(Box::new(a2), e2, r))),
            },
            Term::Sel(i, e) => match self.spine(*e, phi)? {
                Ok(v) => {
                    // [Sel1]/[Sel2]
                    let Value::Pair(a, b, r) = v else {
                        return Err(EvalError::Stuck("projection of a non-pair".into()));
                    };
                    self.require(phi, r, "pair projection")?;
                    Ok(Reduced(Term::Val(if i == 1 { *a } else { *b })))
                }
                Err(step) => Ok(rebuild(step, |e2| Term::Sel(i, Box::new(e2)))),
            },
            Term::If(c, t, f) => match self.spine(*c, phi)? {
                Ok(v) => match v {
                    Value::Bool(true) => Ok(Reduced(*t)),
                    Value::Bool(false) => Ok(Reduced(*f)),
                    _ => Err(EvalError::Stuck("if on a non-boolean".into())),
                },
                Err(step) => Ok(rebuild(step, |c2| Term::If(Box::new(c2), t, f))),
            },
            Term::Prim(op, args, res) => {
                let mut vals = Vec::new();
                let mut rest = args.into_iter();
                for a in rest.by_ref() {
                    match self.spine(a, phi)? {
                        Ok(v) => vals.push(v),
                        Err(step) => {
                            let done: Vec<Term> = vals.into_iter().map(Term::Val).collect();
                            return Ok(rebuild(step, |a2| {
                                let mut newargs = done;
                                newargs.push(a2);
                                newargs.extend(rest);
                                Term::Prim(op, newargs, res)
                            }));
                        }
                    }
                }
                let v = self.apply_prim(op, &vals, res, phi)?;
                Ok(Reduced(Term::Val(v)))
            }
            Term::Cons(h, t, r) => match self.spine(*h, phi)? {
                Ok(vh) => match self.spine(*t, phi)? {
                    Ok(vt) => {
                        self.require(phi, r, "cons allocation")?;
                        Ok(Reduced(Term::Val(Value::Cons(
                            Box::new(vh),
                            Box::new(vt),
                            r,
                        ))))
                    }
                    Err(step) => Ok(rebuild(step, |t2| {
                        Term::Cons(Box::new(Term::Val(vh)), Box::new(t2), r)
                    })),
                },
                Err(step) => Ok(rebuild(step, |h2| Term::Cons(Box::new(h2), t, r))),
            },
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => match self.spine(*scrut, phi)? {
                Ok(v) => match v {
                    Value::NilV(_) => Ok(Reduced(*nil_rhs)),
                    Value::Cons(h, t, r) => {
                        self.require(phi, r, "list case")?;
                        Ok(Reduced(
                            cons_rhs.subst_value(head, &h).subst_value(tail, &t),
                        ))
                    }
                    _ => Err(EvalError::Stuck("case on a non-list".into())),
                },
                Err(step) => Ok(rebuild(step, |s2| Term::CaseList {
                    scrut: Box::new(s2),
                    nil_rhs,
                    head,
                    tail,
                    cons_rhs,
                })),
            },
            Term::RefNew(e, r) => match self.spine(*e, phi)? {
                Ok(v) => {
                    self.require(phi, r, "ref allocation")?;
                    self.store.push(v);
                    self.store_regions.push(r);
                    Ok(Reduced(Term::Val(Value::RefLoc(self.store.len() - 1, r))))
                }
                Err(step) => Ok(rebuild(step, |e2| Term::RefNew(Box::new(e2), r))),
            },
            Term::Deref(e) => match self.spine(*e, phi)? {
                Ok(v) => {
                    let Value::RefLoc(i, r) = v else {
                        return Err(EvalError::Stuck("deref of a non-ref".into()));
                    };
                    self.require(phi, r, "dereference")?;
                    Ok(Reduced(Term::Val(self.store[i].clone())))
                }
                Err(step) => Ok(rebuild(step, |e2| Term::Deref(Box::new(e2)))),
            },
            Term::Assign(e1, e2) => match self.spine(*e1, phi)? {
                Ok(v1) => match self.spine(*e2, phi)? {
                    Ok(v2) => {
                        let Value::RefLoc(i, r) = v1 else {
                            return Err(EvalError::Stuck("assign to a non-ref".into()));
                        };
                        self.require(phi, r, "assignment")?;
                        self.store[i] = v2;
                        Ok(Reduced(Term::Val(Value::Unit)))
                    }
                    Err(step) => Ok(rebuild(step, |b2| {
                        Term::Assign(Box::new(Term::Val(v1)), Box::new(b2))
                    })),
                },
                Err(step) => Ok(rebuild(step, |a2| Term::Assign(Box::new(a2), e2))),
            },
            Term::Exn { name, arg, at } => match arg {
                None => {
                    self.require(phi, at, "exception allocation")?;
                    Ok(Reduced(Term::Val(Value::ExnVal {
                        name,
                        tag: 0,
                        arg: None,
                        at,
                    })))
                }
                Some(a) => match self.spine(*a, phi)? {
                    Ok(v) => {
                        self.require(phi, at, "exception allocation")?;
                        Ok(Reduced(Term::Val(Value::ExnVal {
                            name,
                            tag: 0,
                            arg: Some(Box::new(v)),
                            at,
                        })))
                    }
                    Err(step) => Ok(rebuild(step, |a2| Term::Exn {
                        name,
                        arg: Some(Box::new(a2)),
                        at,
                    })),
                },
            },
            Term::Raise(e, ann) => match self.spine(*e, phi)? {
                Ok(v) => Ok(Raising(v)),
                Err(step) => Ok(rebuild(step, |e2| Term::Raise(Box::new(e2), ann))),
            },
            Term::Handle {
                body,
                exn,
                arg,
                handler,
            } => {
                if let Term::Val(v) = *body {
                    return Ok(Reduced(Term::Val(v)));
                }
                match self.step_in(*body, phi)? {
                    IsValue(v) => Ok(Reduced(Term::Val(v))),
                    Raising(v) => {
                        let matches = matches!(&v, Value::ExnVal { name, .. } if *name == exn);
                        if matches {
                            let Value::ExnVal { arg: earg, at, .. } = &v else {
                                unreachable!()
                            };
                            self.require(phi, *at, "exception match")?;
                            let bound = earg.as_ref().map(|b| (**b).clone()).unwrap_or(Value::Unit);
                            Ok(Reduced(handler.subst_value(arg, &bound)))
                        } else {
                            Ok(Raising(v))
                        }
                    }
                    Reduced(b2) => Ok(Reduced(Term::Handle {
                        body: Box::new(b2),
                        exn,
                        arg,
                        handler,
                    })),
                }
            }
        }
    }

    /// Helper for spine positions: either the subterm is already a value
    /// (`Ok(v)`), or it stepped/raised (`Err(step)`).
    fn spine(&mut self, e: Term, phi: &Regions) -> Result<Result<Value, Step>, EvalError> {
        if let Term::Val(v) = e {
            return Ok(Ok(v));
        }
        Ok(Err(self.step_in(e, phi)?))
    }

    fn apply_prim(
        &mut self,
        op: PrimOp,
        vals: &[Value],
        res: Option<RegVar>,
        phi: &Regions,
    ) -> Result<Value, EvalError> {
        use PrimOp::*;
        let int = |v: &Value| -> Result<i64, EvalError> {
            match v {
                Value::Int(n) => Ok(*n),
                _ => Err(EvalError::Stuck(format!("`{op}` on a non-int"))),
            }
        };
        let strv = |m: &Machine, v: &Value| -> Result<String, EvalError> {
            match v {
                Value::Str(s, r) => {
                    m.require(phi, *r, "string read")?;
                    Ok(s.clone())
                }
                _ => Err(EvalError::Stuck(format!("`{op}` on a non-string"))),
            }
        };
        Ok(match op {
            Add => Value::Int(int(&vals[0])?.wrapping_add(int(&vals[1])?)),
            Sub => Value::Int(int(&vals[0])?.wrapping_sub(int(&vals[1])?)),
            Mul => Value::Int(int(&vals[0])?.wrapping_mul(int(&vals[1])?)),
            Div => {
                let d = int(&vals[1])?;
                if d == 0 {
                    return Err(EvalError::DivByZero);
                }
                Value::Int(int(&vals[0])?.wrapping_div(d))
            }
            Mod => {
                let d = int(&vals[1])?;
                if d == 0 {
                    return Err(EvalError::DivByZero);
                }
                Value::Int(int(&vals[0])?.wrapping_rem(d))
            }
            Neg => Value::Int(int(&vals[0])?.wrapping_neg()),
            Lt => Value::Bool(int(&vals[0])? < int(&vals[1])?),
            Le => Value::Bool(int(&vals[0])? <= int(&vals[1])?),
            Gt => Value::Bool(int(&vals[0])? > int(&vals[1])?),
            Ge => Value::Bool(int(&vals[0])? >= int(&vals[1])?),
            Eq => Value::Bool(self.value_eq(&vals[0], &vals[1], phi)?),
            Ne => Value::Bool(!self.value_eq(&vals[0], &vals[1], phi)?),
            Not => match &vals[0] {
                Value::Bool(b) => Value::Bool(!b),
                _ => return Err(EvalError::Stuck("`not` on a non-bool".into())),
            },
            Concat => {
                let a = strv(self, &vals[0])?;
                let b = strv(self, &vals[1])?;
                let r = res.ok_or(EvalError::Stuck("`^` without result region".into()))?;
                self.require(phi, r, "string allocation")?;
                Value::Str(a + &b, r)
            }
            Size => Value::Int(strv(self, &vals[0])?.len() as i64),
            Itos => {
                let n = int(&vals[0])?;
                let r = res.ok_or(EvalError::Stuck("`itos` without result region".into()))?;
                self.require(phi, r, "string allocation")?;
                Value::Str(n.to_string(), r)
            }
            Print => {
                let s = strv(self, &vals[0])?;
                self.output.push_str(&s);
                Value::Unit
            }
            ForceGc => Value::Unit, // no tracing collector in the formal semantics
        })
    }

    /// Structural equality with region-liveness checks on reads.
    fn value_eq(&self, a: &Value, b: &Value, phi: &Regions) -> Result<bool, EvalError> {
        Ok(match (a, b) {
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Unit, Value::Unit) => true,
            (Value::NilV(_), Value::NilV(_)) => true,
            (Value::NilV(_), Value::Cons(..)) | (Value::Cons(..), Value::NilV(_)) => false,
            (Value::Str(x, r1), Value::Str(y, r2)) => {
                self.require(phi, *r1, "string comparison")?;
                self.require(phi, *r2, "string comparison")?;
                x == y
            }
            (Value::Pair(a1, b1, r1), Value::Pair(a2, b2, r2))
            | (Value::Cons(a1, b1, r1), Value::Cons(a2, b2, r2)) => {
                self.require(phi, *r1, "structural comparison")?;
                self.require(phi, *r2, "structural comparison")?;
                self.value_eq(a1, a2, phi)? && self.value_eq(b1, b2, phi)?
            }
            (Value::RefLoc(i, _), Value::RefLoc(j, _)) => i == j,
            (Value::ExnVal { name: n1, .. }, Value::ExnVal { name: n2, .. }) => n1 == n2,
            _ => return Err(EvalError::Stuck("equality on incompatible values".into())),
        })
    }
}

/// Renames every letregion-bound region (and discharged effect variable)
/// of a term to fresh variables. Used when \[Rapp\] unfolds a function body,
/// so that recursive unfoldings never shadow active regions.
fn freshen_letregions(e: &Term) -> Term {
    match e {
        Term::Letregion { rvars, evars, body } => {
            let mut ren = Subst::default();
            let rvars2: Vec<RegVar> = rvars
                .iter()
                .map(|r| {
                    let fresh = RegVar::fresh();
                    ren.reg.insert(*r, fresh);
                    fresh
                })
                .collect();
            let evars2: Vec<crate::vars::EffVar> = evars
                .iter()
                .map(|ev| {
                    let fresh = crate::vars::EffVar::fresh();
                    ren.eff
                        .insert(*ev, crate::vars::ArrowEff::new(fresh, Default::default()));
                    fresh
                })
                .collect();
            let body2 = freshen_letregions(&body.apply_subst(&ren));
            Term::Letregion {
                rvars: rvars2,
                evars: evars2,
                body: Box::new(body2),
            }
        }
        Term::Val(_) => e.clone(),
        Term::Lam {
            param,
            ann,
            body,
            at,
        } => Term::Lam {
            param: *param,
            ann: ann.clone(),
            body: Box::new(freshen_letregions(body)),
            at: *at,
        },
        Term::Fix { defs, ats, index } => {
            let defs2: Vec<crate::terms::FixDef> = defs
                .iter()
                .map(|d| crate::terms::FixDef {
                    f: d.f,
                    scheme: d.scheme.clone(),
                    param: d.param,
                    body: freshen_letregions(&d.body),
                })
                .collect();
            Term::Fix {
                defs: std::rc::Rc::new(defs2),
                ats: ats.clone(),
                index: *index,
            }
        }
        Term::App(a, b) => Term::App(
            Box::new(freshen_letregions(a)),
            Box::new(freshen_letregions(b)),
        ),
        Term::RApp { f, inst, at } => Term::RApp {
            f: Box::new(freshen_letregions(f)),
            inst: inst.clone(),
            at: *at,
        },
        Term::Let { x, rhs, body } => Term::Let {
            x: *x,
            rhs: Box::new(freshen_letregions(rhs)),
            body: Box::new(freshen_letregions(body)),
        },
        Term::Pair(a, b, r) => Term::Pair(
            Box::new(freshen_letregions(a)),
            Box::new(freshen_letregions(b)),
            *r,
        ),
        Term::Sel(i, a) => Term::Sel(*i, Box::new(freshen_letregions(a))),
        Term::If(a, b, c) => Term::If(
            Box::new(freshen_letregions(a)),
            Box::new(freshen_letregions(b)),
            Box::new(freshen_letregions(c)),
        ),
        Term::Prim(op, args, r) => {
            Term::Prim(*op, args.iter().map(freshen_letregions).collect(), *r)
        }
        Term::Cons(a, b, r) => Term::Cons(
            Box::new(freshen_letregions(a)),
            Box::new(freshen_letregions(b)),
            *r,
        ),
        Term::CaseList {
            scrut,
            nil_rhs,
            head,
            tail,
            cons_rhs,
        } => Term::CaseList {
            scrut: Box::new(freshen_letregions(scrut)),
            nil_rhs: Box::new(freshen_letregions(nil_rhs)),
            head: *head,
            tail: *tail,
            cons_rhs: Box::new(freshen_letregions(cons_rhs)),
        },
        Term::RefNew(a, r) => Term::RefNew(Box::new(freshen_letregions(a)), *r),
        Term::Deref(a) => Term::Deref(Box::new(freshen_letregions(a))),
        Term::Assign(a, b) => Term::Assign(
            Box::new(freshen_letregions(a)),
            Box::new(freshen_letregions(b)),
        ),
        Term::Exn { name, arg, at } => Term::Exn {
            name: *name,
            arg: arg.as_ref().map(|a| Box::new(freshen_letregions(a))),
            at: *at,
        },
        Term::Raise(a, ann) => Term::Raise(Box::new(freshen_letregions(a)), ann.clone()),
        Term::Handle {
            body,
            exn,
            arg,
            handler,
        } => Term::Handle {
            body: Box::new(freshen_letregions(body)),
            exn: *exn,
            arg: *arg,
            handler: Box::new(freshen_letregions(handler)),
        },
        leaf => leaf.clone(),
    }
}

/// If the term is `raise v` for a value `v`, returns the value.
/// Completes the type instantiations of recursive call sites in an
/// unfolded `fix` body.
///
/// Monomorphic type recursion elaborates a recursive `RApp` with an empty
/// `Sᵗ` — the group's type variables are bound once, around the whole
/// `fix`, so a recursive call instantiates regions and effects only. Once
/// \[Rapp\] closes an unfolding over those variables, each recursive site
/// (now a region application of a `FixClos` *value*, whose scheme
/// re-binds the full ∆) must record the type instances the unfolding was
/// driven with, or the residual term no longer satisfies the coverage
/// condition of Figure 4 — this is the substitution lemma behind type
/// preservation (Proposition 18) made computational.
fn complete_rec_ty_insts(e: &mut Term, outer: &Subst) {
    if outer.ty.is_empty() {
        return; // type-monomorphic group: nothing to record
    }
    match e {
        Term::Var(_) | Term::Unit | Term::Int(_) | Term::Bool(_) | Term::Nil(_) | Term::Str(..) => {
        }
        // Values are closed and check under their own ∆; recursive sites
        // inside `FixClos` definition bodies use the monomorphised
        // recursion variable and must stay as elaborated.
        Term::Val(_) => {}
        Term::RApp { f, inst, .. } => {
            if let Term::Val(Value::FixClos { defs, index, .. }) = f.as_ref() {
                for (a, _) in &defs[*index].scheme.delta {
                    if !inst.ty.contains_key(a) {
                        if let Some(m) = outer.ty.get(a) {
                            inst.ty.insert(*a, m.clone());
                        }
                    }
                }
            } else {
                complete_rec_ty_insts(f, outer);
            }
        }
        Term::Lam { body, .. } => complete_rec_ty_insts(body, outer),
        Term::Fix { defs, .. } => {
            for d in std::rc::Rc::make_mut(defs).iter_mut() {
                complete_rec_ty_insts(&mut d.body, outer);
            }
        }
        Term::App(a, b) | Term::Assign(a, b) => {
            complete_rec_ty_insts(a, outer);
            complete_rec_ty_insts(b, outer);
        }
        Term::Let { rhs, body, .. } => {
            complete_rec_ty_insts(rhs, outer);
            complete_rec_ty_insts(body, outer);
        }
        Term::Letregion { body, .. } => complete_rec_ty_insts(body, outer),
        Term::Pair(a, b, _) | Term::Cons(a, b, _) => {
            complete_rec_ty_insts(a, outer);
            complete_rec_ty_insts(b, outer);
        }
        Term::Sel(_, a) | Term::Deref(a) | Term::RefNew(a, _) | Term::Raise(a, _) => {
            complete_rec_ty_insts(a, outer);
        }
        Term::If(a, b, c) => {
            complete_rec_ty_insts(a, outer);
            complete_rec_ty_insts(b, outer);
            complete_rec_ty_insts(c, outer);
        }
        Term::Prim(_, args, _) => {
            for a in args {
                complete_rec_ty_insts(a, outer);
            }
        }
        Term::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            complete_rec_ty_insts(scrut, outer);
            complete_rec_ty_insts(nil_rhs, outer);
            complete_rec_ty_insts(cons_rhs, outer);
        }
        Term::Exn { arg, .. } => {
            if let Some(a) = arg {
                complete_rec_ty_insts(a, outer);
            }
        }
        Term::Handle { body, handler, .. } => {
            complete_rec_ty_insts(body, outer);
            complete_rec_ty_insts(handler, outer);
        }
    }
}

fn raise_value(e: &Term) -> Option<&Value> {
    match e {
        Term::Raise(inner, _) => match &**inner {
            Term::Val(v) => Some(v),
            _ => None,
        },
        _ => None,
    }
}

fn rebuild(step: Step, f: impl FnOnce(Term) -> Term) -> Step {
    match step {
        Step::Reduced(e) => Step::Reduced(f(e)),
        Step::Raising(v) => Step::Raising(v),
        Step::IsValue(_) => unreachable!("spine() returns values separately"),
    }
}

fn collect_letregion_binders(e: &Term, out: &mut BTreeSet<RegVar>) {
    if let Term::Letregion { rvars, .. } = e {
        out.extend(rvars.iter().copied());
    }
    match e {
        Term::Val(_)
        | Term::Var(_)
        | Term::Unit
        | Term::Int(_)
        | Term::Bool(_)
        | Term::Str(..)
        | Term::Nil(_) => {}
        Term::Lam { body, .. } | Term::Letregion { body, .. } => {
            collect_letregion_binders(body, out)
        }
        Term::Fix { defs, .. } => {
            for d in defs.iter() {
                collect_letregion_binders(&d.body, out);
            }
        }
        Term::App(a, b) | Term::Assign(a, b) | Term::Pair(a, b, _) | Term::Cons(a, b, _) => {
            collect_letregion_binders(a, out);
            collect_letregion_binders(b, out);
        }
        Term::RApp { f, .. } => collect_letregion_binders(f, out),
        Term::Let { rhs, body, .. } => {
            collect_letregion_binders(rhs, out);
            collect_letregion_binders(body, out);
        }
        Term::Sel(_, e) | Term::RefNew(e, _) | Term::Deref(e) | Term::Raise(e, _) => {
            collect_letregion_binders(e, out)
        }
        Term::If(a, b, c) => {
            collect_letregion_binders(a, out);
            collect_letregion_binders(b, out);
            collect_letregion_binders(c, out);
        }
        Term::Prim(_, args, _) => {
            for a in args {
                collect_letregion_binders(a, out);
            }
        }
        Term::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            collect_letregion_binders(scrut, out);
            collect_letregion_binders(nil_rhs, out);
            collect_letregion_binders(cons_rhs, out);
        }
        Term::Exn { arg, .. } => {
            if let Some(a) = arg {
                collect_letregion_binders(a, out);
            }
        }
        Term::Handle { body, handler, .. } => {
            collect_letregion_binders(body, out);
            collect_letregion_binders(handler, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Mu;
    use crate::vars::{ArrowEff, EffVar};

    fn run(e: Term) -> Result<Value, EvalError> {
        Machine::default().eval(e, 100_000)
    }

    #[test]
    fn arithmetic() {
        let e = Term::Prim(PrimOp::Add, vec![Term::Int(2), Term::Int(3)], None);
        assert_eq!(run(e).unwrap(), Value::Int(5));
    }

    #[test]
    fn letregion_allocates_and_deallocates() {
        // letregion ρ in #1 ((1, 2) at ρ)
        let r = RegVar::fresh();
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Sel(
                1,
                Box::new(Term::Pair(
                    Box::new(Term::Int(1)),
                    Box::new(Term::Int(2)),
                    r,
                )),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Int(1));
    }

    #[test]
    fn allocation_outside_letregion_is_dangling() {
        let r = RegVar::fresh();
        let e = Term::Pair(Box::new(Term::Int(1)), Box::new(Term::Int(2)), r);
        assert!(matches!(run(e), Err(EvalError::DanglingRegion { .. })));
    }

    #[test]
    fn escaping_value_read_after_dealloc_is_dangling() {
        // letregion ρ' in #1 (letregion ρ in (1,2) at ρ)  — the pair
        // escapes its region; the projection then touches a dead region.
        let r = RegVar::fresh();
        let e = Term::Sel(
            1,
            Box::new(Term::letregion(
                vec![r],
                vec![],
                Term::Pair(Box::new(Term::Int(1)), Box::new(Term::Int(2)), r),
            )),
        );
        assert!(matches!(run(e), Err(EvalError::DanglingRegion { .. })));
    }

    #[test]
    fn beta_reduction() {
        let r = RegVar::fresh();
        let mu = Mu::arrow(Mu::Int, ArrowEff::fresh_empty(), Mu::Int, r);
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::app(
                Term::lam(
                    "x",
                    mu,
                    Term::Prim(PrimOp::Mul, vec![Term::var("x"), Term::var("x")], None),
                    r,
                ),
                Term::Int(7),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Int(49));
    }

    #[test]
    fn if_and_bool() {
        let e = Term::If(
            Box::new(Term::Prim(
                PrimOp::Lt,
                vec![Term::Int(1), Term::Int(2)],
                None,
            )),
            Box::new(Term::Int(10)),
            Box::new(Term::Int(20)),
        );
        assert_eq!(run(e).unwrap(), Value::Int(10));
    }

    #[test]
    fn refs_read_and_write() {
        let r = RegVar::fresh();
        // letregion r in let c = ref 1 at r in (c := 42; !c)
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::let_(
                "c",
                Term::RefNew(Box::new(Term::Int(1)), r),
                Term::let_(
                    "_",
                    Term::Assign(Box::new(Term::var("c")), Box::new(Term::Int(42))),
                    Term::Deref(Box::new(Term::var("c"))),
                ),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Int(42));
    }

    #[test]
    fn exceptions_raise_and_handle() {
        let r = RegVar::fresh();
        let exn = rml_syntax::Symbol::intern("E");
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Handle {
                body: Box::new(Term::Raise(
                    Box::new(Term::Exn {
                        name: exn,
                        arg: Some(Box::new(Term::Int(13))),
                        at: r,
                    }),
                    Mu::Int,
                )),
                exn,
                arg: rml_syntax::Symbol::intern("x"),
                handler: Box::new(Term::var("x")),
            },
        );
        assert_eq!(run(e).unwrap(), Value::Int(13));
    }

    #[test]
    fn uncaught_exception_reported() {
        let r = RegVar::fresh();
        let exn = rml_syntax::Symbol::intern("Boom");
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Raise(
                Box::new(Term::Exn {
                    name: exn,
                    arg: None,
                    at: r,
                }),
                Mu::Int,
            ),
        );
        assert!(matches!(run(e), Err(EvalError::UncaughtException(n)) if n == "Boom"));
    }

    #[test]
    fn unwinding_skips_nonmatching_handlers() {
        let r = RegVar::fresh();
        let e1 = rml_syntax::Symbol::intern("E1");
        let e2 = rml_syntax::Symbol::intern("E2");
        let raise = Term::Raise(
            Box::new(Term::Exn {
                name: e2,
                arg: Some(Box::new(Term::Int(5))),
                at: r,
            }),
            Mu::Int,
        );
        let inner = Term::Handle {
            body: Box::new(raise),
            exn: e1,
            arg: rml_syntax::Symbol::intern("x"),
            handler: Box::new(Term::Int(0)),
        };
        let outer = Term::Handle {
            body: Box::new(inner),
            exn: e2,
            arg: rml_syntax::Symbol::intern("y"),
            handler: Box::new(Term::var("y")),
        };
        let e = Term::letregion(vec![r], vec![], outer);
        assert_eq!(run(e).unwrap(), Value::Int(5));
    }

    #[test]
    fn lists_and_case() {
        let r = RegVar::fresh();
        let list_mu = Mu::list(Mu::Int, r);
        // case 1 :: nil of nil => 0 | h :: t => h + 100
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::CaseList {
                scrut: Box::new(Term::Cons(
                    Box::new(Term::Int(1)),
                    Box::new(Term::Nil(list_mu)),
                    r,
                )),
                nil_rhs: Box::new(Term::Int(0)),
                head: rml_syntax::Symbol::intern("h"),
                tail: rml_syntax::Symbol::intern("t"),
                cons_rhs: Box::new(Term::Prim(
                    PrimOp::Add,
                    vec![Term::var("h"), Term::Int(100)],
                    None,
                )),
            },
        );
        assert_eq!(run(e).unwrap(), Value::Int(101));
    }

    #[test]
    fn strings_and_prims() {
        let mut m = Machine::default();
        let r = RegVar::fresh();
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Prim(
                PrimOp::Size,
                vec![Term::Prim(
                    PrimOp::Concat,
                    vec![Term::Str("oh".into(), r), Term::Str("no".into(), r)],
                    Some(r),
                )],
                None,
            ),
        );
        assert_eq!(m.eval(e, 1000).unwrap(), Value::Int(4));
    }

    #[test]
    fn print_accumulates_output() {
        let mut m = Machine::default();
        let r = RegVar::fresh();
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Prim(PrimOp::Print, vec![Term::Str("hi".into(), r)], None),
        );
        m.eval(e, 1000).unwrap();
        assert_eq!(m.output, "hi");
    }

    #[test]
    fn monitor_accepts_wellformed_evaluation() {
        let r = RegVar::fresh();
        let mut m = Machine {
            monitor: true,
            ..Machine::default()
        };
        let e = Term::letregion(
            vec![r],
            vec![],
            Term::Sel(
                2,
                Box::new(Term::Pair(
                    Box::new(Term::Int(1)),
                    Box::new(Term::Int(2)),
                    r,
                )),
            ),
        );
        assert_eq!(m.eval(e, 1000).unwrap(), Value::Int(2));
    }

    #[test]
    fn rapp_specialises_fun_closures() {
        // fun f [ρ1] x = (x, x) at ρ1; letregion ρ2 in #1 ((f [ρ2] at ρ2) 9)
        let rho1 = RegVar::fresh();
        let rho2 = RegVar::fresh();
        let rho_f = RegVar::fresh();
        let eps = EffVar::fresh();
        let scheme = crate::types::Scheme {
            rvars: vec![rho1],
            evars: vec![eps],
            delta: vec![],
            body: crate::types::BoxTy::Arrow(
                Mu::Int,
                ArrowEff::new(eps, crate::vars::effect([crate::vars::Atom::Reg(rho1)])),
                Mu::pair(Mu::Int, Mu::Int, rho1),
            ),
        };
        let def = crate::terms::FixDef {
            f: rml_syntax::Symbol::intern("f"),
            scheme,
            param: rml_syntax::Symbol::intern("x"),
            body: Term::Pair(Box::new(Term::var("x")), Box::new(Term::var("x")), rho1),
        };
        let fix = Term::Fix {
            defs: std::rc::Rc::new(vec![def]),
            ats: std::rc::Rc::new(vec![rho_f]),
            index: 0,
        };
        let mut inst = Subst::default();
        inst.reg.insert(rho1, rho2);
        inst.eff.insert(eps, ArrowEff::fresh_empty());
        let e = Term::letregion(
            vec![rho_f],
            vec![],
            Term::let_(
                "f",
                fix,
                Term::letregion(
                    vec![rho2],
                    vec![],
                    Term::Sel(
                        1,
                        Box::new(Term::app(
                            Term::RApp {
                                f: Box::new(Term::var("f")),
                                inst,
                                at: rho2,
                            },
                            Term::Int(9),
                        )),
                    ),
                ),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Int(9));
    }

    fn fix1(name: &str, scheme: crate::types::Scheme, param: &str, body: Term, at: RegVar) -> Term {
        Term::Fix {
            defs: std::rc::Rc::new(vec![crate::terms::FixDef {
                f: rml_syntax::Symbol::intern(name),
                scheme,
                param: rml_syntax::Symbol::intern(param),
                body,
            }]),
            ats: std::rc::Rc::new(vec![at]),
            index: 0,
        }
    }

    #[test]
    fn recursion_via_fix() {
        // fun fact [ε] n = if n = 0 then 1 else n * (fact [ε'] at ρf) (n-1)
        let rho_f = RegVar::fresh();
        let eps = EffVar::fresh();
        let f = rml_syntax::Symbol::intern("fact");
        let n = rml_syntax::Symbol::intern("n");
        let scheme = crate::types::Scheme {
            rvars: vec![],
            evars: vec![eps],
            delta: vec![],
            body: crate::types::BoxTy::Arrow(
                Mu::Int,
                ArrowEff::new(eps, Default::default()),
                Mu::Int,
            ),
        };
        let recall = Term::app(
            Term::RApp {
                f: Box::new(Term::Var(f)),
                inst: Subst::effects([(eps, ArrowEff::fresh_empty())]),
                at: rho_f,
            },
            Term::Prim(PrimOp::Sub, vec![Term::Var(n), Term::Int(1)], None),
        );
        let body = Term::If(
            Box::new(Term::Prim(
                PrimOp::Eq,
                vec![Term::Var(n), Term::Int(0)],
                None,
            )),
            Box::new(Term::Int(1)),
            Box::new(Term::Prim(PrimOp::Mul, vec![Term::Var(n), recall], None)),
        );
        let e = Term::letregion(
            vec![rho_f],
            vec![],
            Term::let_(
                "fact",
                fix1("fact", scheme, "n", body, rho_f),
                Term::app(
                    Term::RApp {
                        f: Box::new(Term::var("fact")),
                        inst: Subst::effects([(eps, ArrowEff::fresh_empty())]),
                        at: rho_f,
                    },
                    Term::Int(5),
                ),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Int(120));
    }

    #[test]
    fn raising_out_of_letregion_deallocates() {
        // The [Reg]-frame is peeled during unwinding; a subsequent use of
        // the region would be dangling (we only check the unwind works).
        let r = RegVar::fresh();
        let rg = RegVar::fresh();
        let exn = rml_syntax::Symbol::intern("E");
        let inner = Term::letregion(
            vec![r],
            vec![],
            Term::let_(
                "_",
                Term::Str("doomed".into(), r),
                Term::Raise(
                    Box::new(Term::Exn {
                        name: exn,
                        arg: Some(Box::new(Term::Int(5))),
                        at: rg,
                    }),
                    Mu::Int,
                ),
            ),
        );
        let e = Term::letregion(
            vec![rg],
            vec![],
            Term::Handle {
                body: Box::new(inner),
                exn,
                arg: rml_syntax::Symbol::intern("x"),
                handler: Box::new(Term::var("x")),
            },
        );
        assert_eq!(run(e).unwrap(), Value::Int(13 - 8));
    }

    #[test]
    fn handler_rethrow_propagates() {
        let rg = RegVar::fresh();
        let e1 = rml_syntax::Symbol::intern("A");
        let e2 = rml_syntax::Symbol::intern("B");
        // raise A, caught, handler raises B, caught by outer.
        let inner = Term::Handle {
            body: Box::new(Term::Raise(
                Box::new(Term::Exn {
                    name: e1,
                    arg: None,
                    at: rg,
                }),
                Mu::Int,
            )),
            exn: e1,
            arg: rml_syntax::Symbol::intern("u"),
            handler: Box::new(Term::Raise(
                Box::new(Term::Exn {
                    name: e2,
                    arg: Some(Box::new(Term::Int(42))),
                    at: rg,
                }),
                Mu::Int,
            )),
        };
        let e = Term::letregion(
            vec![rg],
            vec![],
            Term::Handle {
                body: Box::new(inner),
                exn: e2,
                arg: rml_syntax::Symbol::intern("x"),
                handler: Box::new(Term::var("x")),
            },
        );
        assert_eq!(run(e).unwrap(), Value::Int(42));
    }

    #[test]
    fn monitor_allows_refs_to_live_regions() {
        let r = RegVar::fresh();
        let mut m = Machine {
            monitor: true,
            ..Machine::default()
        };
        m.regions.insert(r); // global region for the cell
        let e = Term::let_(
            "c",
            Term::RefNew(Box::new(Term::Int(1)), r),
            Term::Deref(Box::new(Term::var("c"))),
        );
        assert_eq!(m.eval(e, 1000).unwrap(), Value::Int(1));
    }

    #[test]
    fn fuel_exhaustion_reported() {
        let e = Term::Prim(PrimOp::Add, vec![Term::Int(1), Term::Int(2)], None);
        let mut m = Machine::default();
        assert!(matches!(m.eval(e, 1), Err(EvalError::OutOfFuel)));
    }

    #[test]
    fn division_by_zero_reported() {
        let e = Term::Prim(PrimOp::Div, vec![Term::Int(1), Term::Int(0)], None);
        assert!(matches!(run(e), Err(EvalError::DivByZero)));
    }

    #[test]
    fn mutual_recursion_via_fix_group() {
        // fun even n = if n = 0 then true else odd (n-1)
        // and odd n = if n = 0 then false else even (n-1)
        let rho = RegVar::fresh();
        let eps_e = EffVar::fresh();
        let eps_o = EffVar::fresh();
        let even = rml_syntax::Symbol::intern("even");
        let odd = rml_syntax::Symbol::intern("odd");
        let n = rml_syntax::Symbol::intern("n");
        let mk_scheme = |eps: EffVar| crate::types::Scheme {
            rvars: vec![],
            evars: vec![eps],
            delta: vec![],
            body: crate::types::BoxTy::Arrow(
                Mu::Int,
                ArrowEff::new(eps, Default::default()),
                Mu::Bool,
            ),
        };
        let call = |target: rml_syntax::Symbol, eps: EffVar| {
            Term::app(
                Term::RApp {
                    f: Box::new(Term::Var(target)),
                    inst: Subst::effects([(eps, ArrowEff::fresh_empty())]),
                    at: rho,
                },
                Term::Prim(PrimOp::Sub, vec![Term::Var(n), Term::Int(1)], None),
            )
        };
        let even_body = Term::If(
            Box::new(Term::Prim(
                PrimOp::Eq,
                vec![Term::Var(n), Term::Int(0)],
                None,
            )),
            Box::new(Term::Bool(true)),
            Box::new(call(odd, eps_o)),
        );
        let odd_body = Term::If(
            Box::new(Term::Prim(
                PrimOp::Eq,
                vec![Term::Var(n), Term::Int(0)],
                None,
            )),
            Box::new(Term::Bool(false)),
            Box::new(call(even, eps_e)),
        );
        let defs = std::rc::Rc::new(vec![
            crate::terms::FixDef {
                f: even,
                scheme: mk_scheme(eps_e),
                param: n,
                body: even_body,
            },
            crate::terms::FixDef {
                f: odd,
                scheme: mk_scheme(eps_o),
                param: n,
                body: odd_body,
            },
        ]);
        let ats = std::rc::Rc::new(vec![rho, rho]);
        let e = Term::letregion(
            vec![rho],
            vec![],
            Term::let_(
                "even",
                Term::Fix {
                    defs,
                    ats,
                    index: 0,
                },
                Term::app(
                    Term::RApp {
                        f: Box::new(Term::var("even")),
                        inst: Subst::effects([(eps_e, ArrowEff::fresh_empty())]),
                        at: rho,
                    },
                    Term::Int(7),
                ),
            ),
        );
        assert_eq!(run(e).unwrap(), Value::Bool(false));
    }
}
