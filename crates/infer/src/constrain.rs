//! Pass 1 of region inference: constraint generation.
//!
//! Walks the typed AST, spreading fresh region/effect variables at every
//! allocation point and arrow ("spreading phase"), unifying region types
//! where the underlying ML types are equal ("fix-point phase" collapsed to
//! a single pass — self and sibling calls inside a `fun` group are treated
//! region-monomorphically, a documented simplification of region-
//! polymorphic recursion), and enforcing the GC-safety conditions:
//!
//! * **capture rule** (typing rules \[TeLam\]/\[TeFun\]'s `G` side condition):
//!   the free region/effect variables of every captured variable's type
//!   flow into the capturing function's latent effect; under strategy
//!   [`Strategy::Rg`], type variables in captured types additionally get
//!   an arrow-effect association `ω(α)` whose handle flows in,
//! * **substitution coverage** (the instance-of relation of Section 3.4):
//!   at every instantiation of a type scheme, the free region/effect
//!   variables of the type instantiated for each quantified type variable
//!   are added to the (instance of) that variable's arrow effect —
//!   transitively marking type variables *spurious* when they are
//!   instantiated for spurious ones (Section 4.3),
//! * **exception rule** (Section 4.4): regions in exception argument
//!   types are unified with the global region, and type variables in them
//!   are associated with the pinned top-level effect variable.

use crate::cterm::{CFun, CTerm, FunDef, InstData, InstMaps, RSchemeInfo};
use crate::rty::{spread, unify, RBox, RTy};
use crate::store::{AtomI, EpsId, RhoId, Store};
use crate::{SpuriousStyle, Strategy};
use rml_core::vars::TyVar;
use rml_hm::{TBind, TExpr, TExprKind, TFunBind, TProgram, Ty};
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Statistics matching the columns of the paper's Figure 9.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of functions with at least one spurious type variable.
    pub spurious_fns: usize,
    /// Total number of functions (`fun` members and `val`-bound lambdas).
    pub total_fns: usize,
    /// Number of instantiations of a spurious type variable at a boxed
    /// type.
    pub spurious_boxed_insts: usize,
    /// Total number of type-variable instantiations.
    pub total_insts: usize,
    /// Names of the spurious functions, for reporting (E5).
    pub spurious_fn_names: Vec<String>,
}

/// An inference error (unexpected shape; indicates an upstream bug or an
/// unsupported construct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferError(pub String);

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region inference error: {}", self.0)
    }
}

impl std::error::Error for InferError {}

type IResult<T> = Result<T, InferError>;

fn err<T>(msg: impl Into<String>) -> IResult<T> {
    Err(InferError(msg.into()))
}

#[derive(Clone)]
enum REntry {
    /// Monomorphic binding.
    Mono(RTy),
    /// Region-polymorphic `fun` (generalised).
    Fun(Rc<FunDef>),
    /// In-progress `fun` group member (recursion is region-monomorphic).
    FunRec(Rc<FunDef>, RTy),
    /// Polymorphic non-function value. Sound under the value restriction:
    /// every occurrence re-infers a fresh copy of the (effect-free) value
    /// with the occurrence's instance types substituted, so no region is
    /// shared between instantiations.
    PolyVal {
        rhs: Rc<rml_hm::TExpr>,
        env_snapshot: Rc<Vec<(Symbol, REntry)>>,
        hm_vars: Rc<Vec<u32>>,
    },
}

/// The pass-1 context.
pub struct Constrain {
    /// The unification store (shared with pass 2).
    pub st: Store,
    /// Compilation strategy.
    pub strategy: Strategy,
    /// How spurious type variables get their arrow effects.
    pub style: SpuriousStyle,
    env: Vec<(Symbol, REntry)>,
    /// `ω`: arrow-effect association for (candidate) spurious tyvars.
    pub omega: BTreeMap<TyVar, EpsId>,
    /// Type variables marked spurious.
    pub spurious: BTreeSet<TyVar>,
    /// HM quantified-variable id → core type variable.
    pub quant_map: BTreeMap<u32, TyVar>,
    /// The global (top-level) region.
    pub global_rho: RhoId,
    /// The pinned top-level effect variable (Section 4.4).
    pub global_eps: EpsId,
    /// Exception constructors with (globalised) argument types.
    pub exns: BTreeMap<Symbol, Option<RTy>>,
    /// Figure 9 statistics.
    pub stats: Stats,
    /// Source provenance: binder symbol → the span of the lambda or `fun`
    /// binding that introduced it. First binding wins, matching the
    /// checker's innermost-blame convention, so a diagnostic for a blamed
    /// binder can underline the capturing function in the source.
    pub provenance: BTreeMap<Symbol, rml_session::Span>,
    /// Depth of recursive `fun` groups currently being inferred; inside
    /// one, `ω` entries must be fresh secondary variables so that the
    /// scheme's ∆ never mentions quantified atoms (\[TvRec\]).
    rec_depth: usize,
}

impl Constrain {
    /// Creates a fresh context.
    pub fn new(strategy: Strategy, style: SpuriousStyle) -> Constrain {
        let mut st = Store::new();
        let global_rho = st.fresh_rho();
        let global_eps = st.fresh_eps();
        st.add_atom(global_eps, AtomI::Rho(global_rho));
        Constrain {
            st,
            strategy,
            style,
            env: Vec::new(),
            omega: BTreeMap::new(),
            spurious: BTreeSet::new(),
            quant_map: BTreeMap::new(),
            global_rho,
            global_eps,
            exns: BTreeMap::new(),
            stats: Stats::default(),
            provenance: BTreeMap::new(),
            rec_depth: 0,
        }
    }

    fn lookup(&self, x: Symbol) -> Option<&REntry> {
        self.env.iter().rev().find(|(y, _)| *y == x).map(|(_, e)| e)
    }

    fn spread(&mut self, ty: &Ty) -> RTy {
        spread(&mut self.st, &mut self.quant_map, ty)
    }

    fn unify(&mut self, a: &RTy, b: &RTy) -> IResult<()> {
        unify(&mut self.st, a, b).map_err(InferError)
    }

    // --- environment atom bookkeeping --------------------------------

    fn entry_surface_atoms(&self, e: &REntry, out: &mut BTreeSet<AtomI>) {
        match e {
            // Inlined-per-occurrence values contribute no shared atoms.
            REntry::PolyVal { .. } => {}
            REntry::Mono(rty) | REntry::FunRec(_, rty) => {
                rty.frev(&self.st, out);
                if let REntry::FunRec(fd, _) = e {
                    out.insert(AtomI::Rho(self.st.find_rho(fd.place)));
                }
            }
            REntry::Fun(fd) => {
                out.insert(AtomI::Rho(self.st.find_rho(fd.place)));
                let info = fd.scheme.borrow();
                let info = info.as_ref().expect("generalised fun without scheme");
                let mut body_atoms = BTreeSet::new();
                info.body.frev(&self.st, &mut body_atoms);
                for (_, eps, _) in &info.delta {
                    body_atoms.insert(AtomI::Eps(self.st.find_eps(*eps)));
                }
                let mut closure = self.st.atom_closure(&body_atoms);
                for r in &info.rvars {
                    closure.remove(&AtomI::Rho(self.st.find_rho(*r)));
                }
                for ev in &info.evars {
                    closure.remove(&AtomI::Eps(self.st.find_eps(*ev)));
                }
                out.extend(closure);
            }
        }
    }

    fn entry_ftv(&self, e: &REntry, out: &mut BTreeSet<TyVar>) {
        match e {
            REntry::PolyVal { .. } => {}
            REntry::Mono(rty) | REntry::FunRec(_, rty) => {
                rty.ftv(out);
            }
            REntry::Fun(fd) => {
                let info = fd.scheme.borrow();
                let info = info.as_ref().expect("generalised fun without scheme");
                let mut tvs = BTreeSet::new();
                info.body.ftv(&mut tvs);
                for (a, _, _) in &info.delta {
                    tvs.remove(a);
                }
                out.extend(tvs);
            }
        }
    }

    /// Adds the visible part of a body effect to a latent effect: kept
    /// atoms directly; for an excluded effect variable, the kept members
    /// of its closure (the variable itself is body-local and will be
    /// discharged, but regions it mentions may outlive the body).
    fn add_visible(&mut self, eps: EpsId, eff: &BTreeSet<AtomI>, keep: &BTreeSet<AtomI>) {
        for a in self.st.canon_set(eff) {
            if keep.contains(&a) {
                self.st.add_atom(eps, a);
            } else if let AtomI::Eps(_) = a {
                let mut one = BTreeSet::new();
                one.insert(a);
                for x in self.st.atom_closure(&one) {
                    if keep.contains(&x) {
                        self.st.add_atom(eps, x);
                    }
                }
            }
        }
    }

    /// The atoms visible outside a function body: the closure of
    /// everything free in the environment plus the given types. Effects on
    /// other atoms are body-local and handled by interior `letregion`s.
    fn visible_atoms(&self, tys: &[&RTy]) -> BTreeSet<AtomI> {
        let mut keep = self.env_forbidden_atoms();
        let mut s = BTreeSet::new();
        for t in tys {
            t.frev(&self.st, &mut s);
        }
        keep.extend(self.st.atom_closure(&s));
        keep
    }

    /// The atoms a generalisation must not quantify: everything free in
    /// the environment (through latent closures and `ω` of free tyvars)
    /// plus the pinned globals.
    fn env_forbidden_atoms(&self) -> BTreeSet<AtomI> {
        let mut surface = BTreeSet::new();
        let mut tvs = BTreeSet::new();
        for (_, e) in &self.env {
            self.entry_surface_atoms(e, &mut surface);
            self.entry_ftv(e, &mut tvs);
        }
        for a in tvs {
            if let Some(eps) = self.omega.get(&a) {
                surface.insert(AtomI::Eps(self.st.find_eps(*eps)));
            }
        }
        surface.insert(AtomI::Rho(self.st.find_rho(self.global_rho)));
        surface.insert(AtomI::Eps(self.st.find_eps(self.global_eps)));
        for rty in self.exns.values().flatten() {
            rty.frev(&self.st, &mut surface);
        }
        self.st.atom_closure(&surface)
    }

    // --- the capture rule ---------------------------------------------

    /// Ensures `ω(α)` exists; `fallback` is the capturing function's
    /// handle, used when the style identifies (or when the variable is in
    /// the function's own type and a secondary variable would be wasted).
    fn ensure_omega(&mut self, alpha: TyVar, in_fn_type: bool, fallback: EpsId) -> EpsId {
        if let Some(e) = self.omega.get(&alpha) {
            return *e;
        }
        let identify = (in_fn_type || self.style == SpuriousStyle::Identify) && self.rec_depth == 0;
        let eps = if identify {
            fallback
        } else {
            self.st.fresh_eps()
        };
        self.omega.insert(alpha, eps);
        eps
    }

    /// `ω` entry for a transitively spurious variable (no capturing
    /// function at hand: always a fresh secondary variable).
    fn ensure_omega_secondary(&mut self, alpha: TyVar) -> EpsId {
        if let Some(e) = self.omega.get(&alpha) {
            return *e;
        }
        let eps = self.st.fresh_eps();
        self.omega.insert(alpha, eps);
        eps
    }

    /// Applies the capture rule for one captured variable of a function
    /// whose arrow handle is `lam_eps` and whose own type has free type
    /// variables `fn_ftv`. Only atoms *not already* contained in the
    /// function type's frev are added to the latent effect — the paper's
    /// side condition `Ω ⊢ Γ(y) : frev(π)` is a containment requirement,
    /// and atoms that appear in the type itself (e.g. through the result
    /// type, as in Figure 2(a)) need no latent entry. This is what lets
    /// `rg-` reproduce the unsound deallocation of Figure 2(a).
    fn capture(&mut self, lam_eps: EpsId, arrow: &RTy, fn_ftv: &BTreeSet<TyVar>, entry: &REntry) {
        if self.strategy == Strategy::R {
            return;
        }
        let mut arrow_frev = BTreeSet::new();
        arrow.frev(&self.st, &mut arrow_frev);
        let arrow_closure = self.st.atom_closure(&arrow_frev);
        let mut atoms = BTreeSet::new();
        self.entry_surface_atoms(entry, &mut atoms);
        let atoms = self.st.atom_closure(&atoms);
        for a in atoms {
            if !arrow_closure.contains(&a) {
                self.st.add_atom(lam_eps, a);
            }
        }
        if self.strategy != Strategy::Rg {
            return;
        }
        let mut tvs = BTreeSet::new();
        self.entry_ftv(entry, &mut tvs);
        for alpha in tvs {
            let in_fn_type = fn_ftv.contains(&alpha);
            let eps = self.ensure_omega(alpha, in_fn_type, lam_eps);
            let root = AtomI::Eps(self.st.find_eps(eps));
            if !arrow_closure.contains(&root) {
                self.st.add_atom(lam_eps, root);
            }
            if !in_fn_type {
                self.spurious.insert(alpha);
            }
        }
    }

    fn capture_free_vars(&mut self, lam_eps: EpsId, arrow: &RTy, body: &TExpr, bound: &[Symbol]) {
        let mut fn_ftv = BTreeSet::new();
        arrow.ftv(&mut fn_ftv);
        let mut fv = BTreeSet::new();
        fpv_texpr(body, &mut Vec::from(bound), &mut fv);
        for y in fv {
            if let Some(entry) = self.lookup(y).cloned() {
                self.capture(lam_eps, arrow, &fn_ftv, &entry);
            }
        }
    }

    // --- instantiation -------------------------------------------------

    /// Instantiates a generalised scheme; returns the maps and the
    /// instance type.
    fn instantiate(&mut self, info: &RSchemeInfo, inst_tys: &[Ty]) -> IResult<(InstMaps, RTy)> {
        if inst_tys.len() != info.delta.len() {
            return err(format!(
                "instantiation arity mismatch: {} types for {} quantified variables",
                inst_tys.len(),
                info.delta.len()
            ));
        }
        let mut rmap = BTreeMap::new();
        let mut rpairs = Vec::new();
        for r in &info.rvars {
            let root = self.st.find_rho(*r);
            let fresh = self.st.fresh_rho();
            rmap.insert(root, fresh);
            rpairs.push((root, fresh));
        }
        let mut emap = BTreeMap::new();
        let mut epairs = Vec::new();
        for e in &info.evars {
            let root = self.st.find_eps(*e);
            let fresh = self.st.fresh_eps();
            emap.insert(root, fresh);
            epairs.push((root, fresh));
        }
        // Copy latent sets of quantified effect variables, mapping bound
        // atoms through the instantiation.
        for (root, fresh) in &epairs {
            let latent = self.st.latent_of(*root);
            for a in latent.iter().copied() {
                let mapped = match a {
                    AtomI::Rho(r) => AtomI::Rho(*rmap.get(&r).unwrap_or(&r)),
                    AtomI::Eps(e) => AtomI::Eps(*emap.get(&e).unwrap_or(&e)),
                };
                self.st.add_atom(*fresh, mapped);
            }
        }
        // Type layer: coverage.
        let mut tmap_rty = BTreeMap::new();
        let mut tpairs = Vec::new();
        for ((alpha, d_eps, spur), ty) in info.delta.iter().zip(inst_tys) {
            let inst_rty = self.spread(ty);
            let root = self.st.find_eps(*d_eps);
            let target = *emap.get(&root).unwrap_or(&root);
            // Coverage: frev of the instance type flows into the
            // (instance of the) type variable's arrow effect.
            let mut atoms = BTreeSet::new();
            inst_rty.frev(&self.st, &mut atoms);
            for a in atoms {
                self.st.add_atom(target, a);
            }
            if self.strategy == Strategy::Rg {
                // Transitive spuriousness (Section 4.3 / Fig. 8).
                let mut tvs = BTreeSet::new();
                inst_rty.ftv(&mut tvs);
                for beta in tvs {
                    let beps = self.ensure_omega_secondary(beta);
                    self.st.add_atom(target, AtomI::Eps(beps));
                    if *spur {
                        self.spurious.insert(beta);
                    }
                }
            }
            self.stats.total_insts += 1;
            if *spur && matches!(inst_rty, RTy::Boxed(..)) {
                self.stats.spurious_boxed_insts += 1;
            }
            tmap_rty.insert(*alpha, inst_rty.clone());
            tpairs.push((*alpha, inst_rty, target));
        }
        let body = info.body.subst(&self.st, &tmap_rty, &rmap, &emap);
        Ok((
            InstMaps {
                rmap: rpairs,
                emap: epairs,
                tmap: tpairs,
            },
            body,
        ))
    }

    // --- expressions ----------------------------------------------------

    fn var_occurrence(
        &mut self,
        name: Symbol,
        inst: &Option<Vec<Ty>>,
    ) -> IResult<(CTerm, RTy, BTreeSet<AtomI>)> {
        let entry = match self.lookup(name) {
            Some(e) => e.clone(),
            None => return err(format!("unbound variable `{name}` in region inference")),
        };
        match entry {
            REntry::Mono(rty) => Ok((CTerm::Var(name), rty, BTreeSet::new())),
            REntry::FunRec(fd, proto) => {
                // Region-monomorphic recursive/sibling use.
                let mut eff = BTreeSet::new();
                eff.insert(AtomI::Rho(self.st.find_rho(fd.place)));
                Ok((
                    CTerm::Inst(InstData {
                        fun: fd.clone(),
                        maps: None,
                        at: fd.place,
                    }),
                    proto,
                    eff,
                ))
            }
            REntry::Fun(fd) => {
                let info = fd
                    .scheme
                    .borrow()
                    .clone()
                    .expect("generalised fun without scheme");
                let tys = inst.clone().unwrap_or_default();
                let (maps, body) = self.instantiate(&info, &tys)?;
                let at = self.st.fresh_rho();
                let mut eff = BTreeSet::new();
                eff.insert(AtomI::Rho(self.st.find_rho(fd.place)));
                eff.insert(AtomI::Rho(at));
                // The instance arrow's own place is the new closure's.
                let body = match body {
                    RTy::Boxed(b, _) => RTy::Boxed(b, at),
                    other => other,
                };
                Ok((
                    CTerm::Inst(InstData {
                        fun: fd.clone(),
                        maps: Some(maps),
                        at,
                    }),
                    body,
                    eff,
                ))
            }
            REntry::PolyVal {
                rhs,
                env_snapshot,
                hm_vars,
            } => {
                // Inline a fresh copy of the value at the instance types.
                let tys = inst.clone().unwrap_or_default();
                if tys.len() != hm_vars.len() {
                    return err(format!("polyval `{name}` instantiation arity mismatch"));
                }
                let saved = std::mem::replace(&mut self.env, (*env_snapshot).clone());
                let result = self.expr(&rhs);
                self.env = saved;
                let (cterm, rty, eff) = result?;
                let mut tmap = BTreeMap::new();
                for (q, ty) in hm_vars.iter().zip(&tys) {
                    let alpha = *self.quant_map.entry(*q).or_insert_with(TyVar::fresh);
                    let inst_rty = self.spread(ty);
                    self.stats.total_insts += 1;
                    tmap.insert(alpha, inst_rty);
                }
                let out_rty = rty.subst(&self.st, &tmap, &BTreeMap::new(), &BTreeMap::new());
                let cterm = subst_cterm_tys(&self.st, cterm, &tmap);
                Ok((cterm, out_rty, eff))
            }
        }
    }

    /// Infers one expression.
    pub fn expr(&mut self, e: &TExpr) -> IResult<(CTerm, RTy, BTreeSet<AtomI>)> {
        match &e.kind {
            TExprKind::Unit => Ok((CTerm::Unit, RTy::Unit, BTreeSet::new())),
            TExprKind::Int(n) => Ok((CTerm::Int(*n), RTy::Int, BTreeSet::new())),
            TExprKind::Bool(b) => Ok((CTerm::Bool(*b), RTy::Bool, BTreeSet::new())),
            TExprKind::Str(s) => {
                let rho = self.st.fresh_rho();
                let mut eff = BTreeSet::new();
                eff.insert(AtomI::Rho(rho));
                Ok((
                    CTerm::Str(s.clone(), rho),
                    RTy::Boxed(Box::new(RBox::Str), rho),
                    eff,
                ))
            }
            TExprKind::Var { name, inst } => self.var_occurrence(*name, inst),
            TExprKind::Lam {
                param,
                param_ty,
                body,
            } => {
                self.provenance.entry(*param).or_insert(e.span);
                let param_rty = self.spread(param_ty);
                self.env.push((*param, REntry::Mono(param_rty.clone())));
                let (cb, rty_b, eff_b) = self.expr(body)?;
                self.env.pop();
                let eps = self.st.fresh_eps();
                let rho = self.st.fresh_rho();
                // The latent effect keeps only the atoms visible outside
                // the body (reachable from the environment, the parameter,
                // or the result); body-local regions are discharged by a
                // letregion inside the body instead (pass 2).
                let keep = self.visible_atoms(&[&param_rty, &rty_b]);
                self.add_visible(eps, &eff_b, &keep);
                let arrow = RTy::Boxed(Box::new(RBox::Arrow(param_rty, eps, rty_b)), rho);
                self.capture_free_vars(eps, &arrow, body, &[*param]);
                let mut eff = BTreeSet::new();
                eff.insert(AtomI::Rho(rho));
                Ok((
                    CTerm::Lam {
                        param: *param,
                        arrow: arrow.clone(),
                        body: Box::new(cb),
                    },
                    arrow,
                    eff,
                ))
            }
            TExprKind::App(f, a) => {
                let (cf, tf, ef) = self.expr(f)?;
                let (ca, ta, ea) = self.expr(a)?;
                let Some((arg, eps, res, rho)) = tf.as_arrow() else {
                    return err("application of a non-arrow region type");
                };
                let (arg, res) = (arg.clone(), res.clone());
                self.unify(&arg, &ta)?;
                let mut eff = ef;
                eff.extend(ea);
                eff.insert(AtomI::Eps(self.st.find_eps(eps)));
                eff.insert(AtomI::Rho(self.st.find_rho(rho)));
                Ok((CTerm::App(Box::new(cf), Box::new(ca)), res, eff))
            }
            TExprKind::Let { binds, body } => {
                let saved = self.env.len();
                let cbinds = self.do_binds(binds)?;
                let (cb, rty, mut eff) = self.expr(body)?;
                self.env.truncate(saved);
                let mut out = cb;
                for b in cbinds.into_iter().rev() {
                    match b {
                        CBind::Val(x, rhs, reff) => {
                            eff.extend(reff);
                            out = CTerm::Let {
                                x,
                                rhs: Box::new(rhs),
                                body: Box::new(out),
                            };
                        }
                        CBind::Fun(group, geff) => {
                            eff.extend(geff);
                            out = CTerm::LetFun {
                                group,
                                body: Box::new(out),
                            };
                        }
                        CBind::Exn => {}
                    }
                }
                Ok((out, rty, eff))
            }
            TExprKind::Pair(a, b) => {
                let (ca, ta, ea) = self.expr(a)?;
                let (cb, tb, eb) = self.expr(b)?;
                let rho = self.st.fresh_rho();
                let mut eff = ea;
                eff.extend(eb);
                eff.insert(AtomI::Rho(rho));
                Ok((
                    CTerm::Pair(Box::new(ca), Box::new(cb), rho),
                    RTy::Boxed(Box::new(RBox::Pair(ta, tb)), rho),
                    eff,
                ))
            }
            TExprKind::Sel(i, a) => {
                let (ca, ta, mut eff) = self.expr(a)?;
                let RTy::Boxed(b, rho) = &ta else {
                    return err("projection of a non-pair region type");
                };
                let RBox::Pair(t1, t2) = &**b else {
                    return err("projection of a non-pair region type");
                };
                eff.insert(AtomI::Rho(self.st.find_rho(*rho)));
                let out = if *i == 1 { t1.clone() } else { t2.clone() };
                Ok((CTerm::Sel(*i, Box::new(ca)), out, eff))
            }
            TExprKind::If(c, t, f) => {
                let (cc, _, ec) = self.expr(c)?;
                let (ct, tt, et) = self.expr(t)?;
                let (cf2, tf, ef) = self.expr(f)?;
                self.unify(&tt, &tf)?;
                let mut eff = ec;
                eff.extend(et);
                eff.extend(ef);
                Ok((
                    CTerm::If(Box::new(cc), Box::new(ct), Box::new(cf2)),
                    tt,
                    eff,
                ))
            }
            TExprKind::Prim(op, args) => {
                let mut cargs = Vec::new();
                let mut rtys = Vec::new();
                let mut eff = BTreeSet::new();
                for a in args {
                    let (ca, ta, ea) = self.expr(a)?;
                    cargs.push(ca);
                    rtys.push(ta);
                    eff.extend(ea);
                }
                // Reads of boxed arguments touch their regions.
                for t in &rtys {
                    if let Some(r) = t.place() {
                        eff.insert(AtomI::Rho(self.st.find_rho(r)));
                    }
                }
                // Equality reads deeply.
                if matches!(op, PrimOp::Eq | PrimOp::Ne) {
                    self.unify(&rtys[0].clone(), &rtys[1].clone())?;
                    let mut atoms = BTreeSet::new();
                    rtys[0].frev(&self.st, &mut atoms);
                    eff.extend(atoms);
                }
                let (res_rho, rty) = match op {
                    PrimOp::Concat | PrimOp::Itos => {
                        let rho = self.st.fresh_rho();
                        eff.insert(AtomI::Rho(rho));
                        (Some(rho), RTy::Boxed(Box::new(RBox::Str), rho))
                    }
                    PrimOp::Add
                    | PrimOp::Sub
                    | PrimOp::Mul
                    | PrimOp::Div
                    | PrimOp::Mod
                    | PrimOp::Neg
                    | PrimOp::Size => (None, RTy::Int),
                    PrimOp::Lt
                    | PrimOp::Le
                    | PrimOp::Gt
                    | PrimOp::Ge
                    | PrimOp::Eq
                    | PrimOp::Ne
                    | PrimOp::Not => (None, RTy::Bool),
                    PrimOp::Print | PrimOp::ForceGc => (None, RTy::Unit),
                };
                Ok((CTerm::Prim(*op, cargs, res_rho), rty, eff))
            }
            TExprKind::Nil => {
                let rty = self.spread(&e.ty);
                Ok((CTerm::Nil(rty.clone()), rty, BTreeSet::new()))
            }
            TExprKind::Cons(h, t) => {
                let (ch, th, eh) = self.expr(h)?;
                let (ct, tt, et) = self.expr(t)?;
                let RTy::Boxed(b, rho) = &tt else {
                    return err("cons onto a non-list region type");
                };
                let RBox::List(elem) = &**b else {
                    return err("cons onto a non-list region type");
                };
                let (elem, rho) = (elem.clone(), *rho);
                self.unify(&elem, &th)?;
                let mut eff = eh;
                eff.extend(et);
                eff.insert(AtomI::Rho(self.st.find_rho(rho)));
                Ok((CTerm::Cons(Box::new(ch), Box::new(ct), rho), tt, eff))
            }
            TExprKind::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                let (cs, ts, es) = self.expr(scrut)?;
                let RTy::Boxed(b, rho) = &ts else {
                    return err("case on a non-list region type");
                };
                let RBox::List(elem) = &**b else {
                    return err("case on a non-list region type");
                };
                let (elem, rho) = (elem.clone(), *rho);
                let (cn, tn, en) = self.expr(nil_rhs)?;
                self.env.push((*head, REntry::Mono(elem)));
                self.env.push((*tail, REntry::Mono(ts.clone())));
                let (cc, tc, ec) = self.expr(cons_rhs)?;
                self.env.pop();
                self.env.pop();
                self.unify(&tn, &tc)?;
                let mut eff = es;
                eff.insert(AtomI::Rho(self.st.find_rho(rho)));
                eff.extend(en);
                eff.extend(ec);
                Ok((
                    CTerm::CaseList {
                        scrut: Box::new(cs),
                        nil_rhs: Box::new(cn),
                        head: *head,
                        tail: *tail,
                        cons_rhs: Box::new(cc),
                    },
                    tn,
                    eff,
                ))
            }
            TExprKind::Ref(a) => {
                let (ca, ta, mut eff) = self.expr(a)?;
                let rho = self.st.fresh_rho();
                eff.insert(AtomI::Rho(rho));
                Ok((
                    CTerm::RefNew(Box::new(ca), rho),
                    RTy::Boxed(Box::new(RBox::Ref(ta)), rho),
                    eff,
                ))
            }
            TExprKind::Deref(a) => {
                let (ca, ta, mut eff) = self.expr(a)?;
                let RTy::Boxed(b, rho) = &ta else {
                    return err("deref of a non-ref region type");
                };
                let RBox::Ref(inner) = &**b else {
                    return err("deref of a non-ref region type");
                };
                eff.insert(AtomI::Rho(self.st.find_rho(*rho)));
                Ok((CTerm::Deref(Box::new(ca)), inner.clone(), eff))
            }
            TExprKind::Assign(r, v) => {
                let (cr, tr, er) = self.expr(r)?;
                let (cv, tv, ev) = self.expr(v)?;
                let RTy::Boxed(b, rho) = &tr else {
                    return err("assignment to a non-ref region type");
                };
                let RBox::Ref(inner) = &**b else {
                    return err("assignment to a non-ref region type");
                };
                let (inner, rho) = (inner.clone(), *rho);
                self.unify(&inner, &tv)?;
                let mut eff = er;
                eff.extend(ev);
                eff.insert(AtomI::Rho(self.st.find_rho(rho)));
                Ok((CTerm::Assign(Box::new(cr), Box::new(cv)), RTy::Unit, eff))
            }
            TExprKind::Seq(a, b) => {
                // Sequencing is a let with a wildcard.
                let (ca, _, ea) = self.expr(a)?;
                let (cb, tb, eb) = self.expr(b)?;
                let mut eff = ea;
                eff.extend(eb);
                Ok((
                    CTerm::Let {
                        x: Symbol::intern("_"),
                        rhs: Box::new(ca),
                        body: Box::new(cb),
                    },
                    tb,
                    eff,
                ))
            }
            TExprKind::Raise(a) => {
                let (ca, ta, mut eff) = self.expr(a)?;
                if let Some(r) = ta.place() {
                    eff.insert(AtomI::Rho(self.st.find_rho(r)));
                }
                let rty = self.spread(&e.ty);
                Ok((CTerm::Raise(Box::new(ca), rty.clone()), rty, eff))
            }
            TExprKind::Handle {
                body,
                exn,
                arg,
                handler,
                ..
            } => {
                let (cb, tb, eb) = self.expr(body)?;
                let arg_rty = match self.exns.get(exn) {
                    Some(Some(t)) => t.clone(),
                    Some(None) => RTy::Unit,
                    None => return err(format!("unknown exception `{exn}`")),
                };
                self.env.push((*arg, REntry::Mono(arg_rty)));
                let (ch, th, ehh) = self.expr(handler)?;
                self.env.pop();
                self.unify(&tb, &th)?;
                let mut eff = eb;
                eff.extend(ehh);
                eff.insert(AtomI::Rho(self.st.find_rho(self.global_rho)));
                Ok((
                    CTerm::Handle {
                        body: Box::new(cb),
                        exn: *exn,
                        arg: *arg,
                        handler: Box::new(ch),
                    },
                    tb,
                    eff,
                ))
            }
            TExprKind::ConApp { exn, arg } => {
                let want = match self.exns.get(exn) {
                    Some(w) => w.clone(),
                    None => return err(format!("unknown exception `{exn}`")),
                };
                let mut eff = BTreeSet::new();
                let carg = match (arg, want) {
                    (None, None) => None,
                    (Some(a), Some(w)) => {
                        let (ca, ta, ea) = self.expr(a)?;
                        self.unify(&ta, &w)?;
                        eff.extend(ea);
                        Some(Box::new(ca))
                    }
                    _ => return err(format!("exception `{exn}` arity mismatch")),
                };
                eff.insert(AtomI::Rho(self.st.find_rho(self.global_rho)));
                Ok((
                    CTerm::Exn {
                        name: *exn,
                        arg: carg,
                        at: self.global_rho,
                    },
                    RTy::Boxed(Box::new(RBox::Exn), self.global_rho),
                    eff,
                ))
            }
        }
    }

    // --- bindings --------------------------------------------------------

    /// Processes a `fun` group: spreads prototypes, infers bodies with
    /// region-monomorphic recursion, and generalises.
    fn do_fun_group(&mut self, group: &[TFunBind]) -> IResult<(Vec<CFun>, BTreeSet<AtomI>)> {
        let mut eff = BTreeSet::new();
        let mut defs = Vec::new();
        for b in group {
            self.provenance.entry(b.name).or_insert(b.span);
            let proto = self.spread(&b.scheme.body);
            let place = proto.place().expect("fun prototype must be a boxed arrow");
            eff.insert(AtomI::Rho(place));
            let fd = Rc::new(FunDef {
                name: b.name,
                place,
                scheme: std::cell::RefCell::new(None),
                spurious: std::cell::RefCell::new(false),
            });
            defs.push((fd, proto));
        }
        let saved = self.env.len();
        for ((fd, proto), b) in defs.iter().zip(group) {
            self.env
                .push((b.name, REntry::FunRec(fd.clone(), proto.clone())));
        }
        // Is the group actually recursive? (Determines whether the
        // scheme may quantify effect variables referenced from ∆.)
        let group_names: Vec<Symbol> = group.iter().map(|g| g.name).collect();
        let recursive = group.iter().any(|b| {
            let mut fv = BTreeSet::new();
            fpv_texpr(&b.body, &mut vec![b.param], &mut fv);
            group_names.iter().any(|n| fv.contains(n))
        });
        if recursive {
            self.rec_depth += 1;
        }
        let mut cfuns = Vec::new();
        for ((fd, proto), b) in defs.iter().zip(group) {
            let Some((arg, eps, res, _rho)) = proto.as_arrow() else {
                return err("fun prototype is not an arrow");
            };
            let (arg, res, eps) = (arg.clone(), res.clone(), eps);
            self.env.push((b.param, REntry::Mono(arg.clone())));
            let (cb, rty_b, eff_b) = self.expr(&b.body)?;
            self.env.pop();
            self.unify(&res, &rty_b)?;
            let keep = self.visible_atoms(&[&arg, &res]);
            self.add_visible(eps, &eff_b, &keep);
            // Capture rule for the outermost arrow of the prototype; the
            // group names and the parameter are exempt.
            let mut bound: Vec<Symbol> = group.iter().map(|g| g.name).collect();
            bound.push(b.param);
            self.capture_free_vars(eps, proto, &b.body, &bound);
            cfuns.push(CFun {
                def: fd.clone(),
                param: b.param,
                body: cb,
            });
        }
        self.env.truncate(saved);
        if recursive {
            self.rec_depth -= 1;
        }
        // Joint generalisation. A member's own place is never quantified
        // ([TeFun]'s side condition excludes ρ), and neither is any other
        // member's place (the group allocates together).
        let mut forbidden = self.env_forbidden_atoms();
        for (fd, _) in &defs {
            forbidden.insert(AtomI::Rho(self.st.find_rho(fd.place)));
        }
        for ((fd, proto), b) in defs.iter().zip(group) {
            let mut surface = BTreeSet::new();
            proto.frev(&self.st, &mut surface);
            let closure = self.st.atom_closure(&surface);
            let mut rvars = Vec::new();
            let mut evars = Vec::new();
            for a in &closure {
                if forbidden.contains(a) {
                    continue;
                }
                match a {
                    AtomI::Rho(r) => rvars.push(*r),
                    AtomI::Eps(e) => evars.push(*e),
                }
            }
            let mut delta = Vec::new();
            let mut any_spurious = false;
            for q in &b.scheme.vars {
                let alpha = *self.quant_map.entry(*q).or_insert_with(TyVar::fresh);
                let eps = self.ensure_omega_secondary(alpha);
                let root = self.st.find_eps(eps);
                let spur = self.spurious.contains(&alpha);
                any_spurious |= spur;
                if !recursive
                    && !evars.iter().any(|e| self.st.find_eps(*e) == root)
                    && !forbidden.contains(&AtomI::Eps(root))
                {
                    evars.push(root);
                }
                delta.push((alpha, root, spur));
            }
            if recursive {
                // [TvRec]: quantified effect variables must not appear in
                // frev(∆); leave ∆-referenced ones free (their coverage
                // atoms then accumulate in shared variables, which is
                // sound and conservative).
                let delta_roots: BTreeSet<EpsId> =
                    delta.iter().map(|(_, e, _)| self.st.find_eps(*e)).collect();
                evars.retain(|e| !delta_roots.contains(&self.st.find_eps(*e)));
            }
            self.stats.total_fns += 1;
            if any_spurious {
                self.stats.spurious_fns += 1;
                self.stats.spurious_fn_names.push(b.name.to_string());
            }
            *fd.spurious.borrow_mut() = any_spurious;
            *fd.scheme.borrow_mut() = Some(RSchemeInfo {
                rvars,
                evars,
                delta,
                body: proto.clone(),
            });
            self.env.push((b.name, REntry::Fun(fd.clone())));
        }
        Ok((cfuns, eff))
    }

    fn do_binds(&mut self, binds: &[TBind]) -> IResult<Vec<CBind>> {
        let mut out = Vec::new();
        for b in binds {
            match b {
                TBind::Val { name, scheme, rhs } => {
                    // val-bound lambdas become fun groups of one, so they
                    // get region-polymorphic schemes like `fun` bindings.
                    if let TExprKind::Lam {
                        param,
                        param_ty,
                        body,
                    } = &rhs.kind
                    {
                        let fb = TFunBind {
                            name: *name,
                            scheme: scheme.clone(),
                            param: *param,
                            param_ty: param_ty.clone(),
                            body: (**body).clone(),
                            span: rhs.span,
                        };
                        let (group, eff) = self.do_fun_group(std::slice::from_ref(&fb))?;
                        out.push(CBind::Fun(group, eff));
                        continue;
                    }
                    if scheme.vars.is_empty() {
                        let (c, rty, eff) = self.expr(rhs)?;
                        self.env.push((*name, REntry::Mono(rty)));
                        out.push(CBind::Val(*name, c, eff));
                    } else {
                        // Polymorphic non-function value: inlined per
                        // occurrence (value restriction ⇒ effect-free, so
                        // eliding the binding is sound).
                        self.env.push((
                            *name,
                            REntry::PolyVal {
                                rhs: Rc::new(rhs.clone()),
                                env_snapshot: Rc::new(self.env.clone()),
                                hm_vars: Rc::new(scheme.vars.clone()),
                            },
                        ));
                    }
                }
                TBind::Fun(group) => {
                    let (cfuns, eff) = self.do_fun_group(group)?;
                    out.push(CBind::Fun(cfuns, eff));
                }
                TBind::Exception { name, arg } => {
                    let arg_rty = arg.as_ref().map(|t| {
                        let rty = self.spread(t);
                        self.force_global(&rty);
                        rty
                    });
                    if let Some(prev) = self.exns.get(name) {
                        if prev != &arg_rty {
                            return err(format!(
                                "exception `{name}` redeclared with a different argument type \
                                 (unsupported: exception names are global)"
                            ));
                        }
                    }
                    self.exns.insert(*name, arg_rty);
                    out.push(CBind::Exn);
                }
            }
        }
        Ok(out)
    }

    /// Section 4.4: every region in an exception argument type is unified
    /// with the global region; every type variable is associated with the
    /// pinned top-level effect variable.
    fn force_global(&mut self, rty: &RTy) {
        let mut atoms = BTreeSet::new();
        rty.frev(&self.st, &mut atoms);
        for a in atoms {
            match a {
                AtomI::Rho(r) => self.st.union_rho(r, self.global_rho),
                AtomI::Eps(e) => self.st.add_atom(self.global_eps, AtomI::Eps(e)),
            }
        }
        if self.strategy == Strategy::Rg {
            let mut tvs = BTreeSet::new();
            rty.ftv(&mut tvs);
            for alpha in tvs {
                let g = self.global_eps;
                self.omega.entry(alpha).or_insert(g);
                self.spurious.insert(alpha);
            }
        }
    }

    /// Runs the pass over a whole program, returning the intermediate term
    /// (the nested lets ending in a call to `main ()` when present).
    pub fn program(&mut self, p: &TProgram) -> IResult<(CTerm, BTreeSet<AtomI>)> {
        let mut cbinds = Vec::new();
        for b in &p.binds {
            let mut bs = self.do_binds(std::slice::from_ref(b))?;
            cbinds.append(&mut bs);
        }
        // Final expression: main () when a unary unit function `main`
        // exists; otherwise unit.
        let main = Symbol::intern("main");
        let (mut body, mut eff) = match self.lookup(main).cloned() {
            Some(entry @ (REntry::Fun(_) | REntry::FunRec(..) | REntry::Mono(_))) => {
                // Instantiate any residual type variables of main (e.g. a
                // main that always raises) at unit.
                let arity = match &entry {
                    REntry::Fun(fd) => fd
                        .scheme
                        .borrow()
                        .as_ref()
                        .map(|i| i.delta.len())
                        .unwrap_or(0),
                    _ => 0,
                };
                let (cm, tm, em) = self.var_occurrence(main, &Some(vec![Ty::Unit; arity]))?;
                match tm.as_arrow() {
                    Some((arg, eps, _res, rho)) if *arg == RTy::Unit => {
                        let mut eff = em;
                        eff.insert(AtomI::Eps(self.st.find_eps(eps)));
                        eff.insert(AtomI::Rho(self.st.find_rho(rho)));
                        (CTerm::App(Box::new(cm), Box::new(CTerm::Unit)), eff)
                    }
                    _ => (CTerm::Unit, BTreeSet::new()),
                }
            }
            _ => (CTerm::Unit, BTreeSet::new()),
        };
        for b in cbinds.into_iter().rev() {
            match b {
                CBind::Val(x, rhs, reff) => {
                    eff.extend(reff);
                    body = CTerm::Let {
                        x,
                        rhs: Box::new(rhs),
                        body: Box::new(body),
                    };
                }
                CBind::Fun(group, geff) => {
                    eff.extend(geff);
                    body = CTerm::LetFun {
                        group,
                        body: Box::new(body),
                    };
                }
                CBind::Exn => {}
            }
        }
        Ok((body, eff))
    }
}

enum CBind {
    Val(Symbol, CTerm, BTreeSet<AtomI>),
    Fun(Vec<CFun>, BTreeSet<AtomI>),
    Exn,
}

/// Free program variables of a typed expression.
fn fpv_texpr(e: &TExpr, bound: &mut Vec<Symbol>, out: &mut BTreeSet<Symbol>) {
    match &e.kind {
        TExprKind::Var { name, .. } => {
            if !bound.contains(name) {
                out.insert(*name);
            }
        }
        TExprKind::Unit
        | TExprKind::Int(_)
        | TExprKind::Str(_)
        | TExprKind::Bool(_)
        | TExprKind::Nil => {}
        TExprKind::Lam { param, body, .. } => {
            bound.push(*param);
            fpv_texpr(body, bound, out);
            bound.pop();
        }
        TExprKind::App(a, b)
        | TExprKind::Pair(a, b)
        | TExprKind::Cons(a, b)
        | TExprKind::Assign(a, b)
        | TExprKind::Seq(a, b) => {
            fpv_texpr(a, bound, out);
            fpv_texpr(b, bound, out);
        }
        TExprKind::Let { binds, body } => {
            let n0 = bound.len();
            for b in binds {
                match b {
                    TBind::Val { name, rhs, .. } => {
                        fpv_texpr(rhs, bound, out);
                        bound.push(*name);
                    }
                    TBind::Fun(fs) => {
                        for f in fs {
                            bound.push(f.name);
                        }
                        for f in fs {
                            bound.push(f.param);
                            fpv_texpr(&f.body, bound, out);
                            bound.pop();
                        }
                    }
                    TBind::Exception { .. } => {}
                }
            }
            fpv_texpr(body, bound, out);
            bound.truncate(n0);
        }
        TExprKind::Sel(_, a) | TExprKind::Ref(a) | TExprKind::Deref(a) | TExprKind::Raise(a) => {
            fpv_texpr(a, bound, out)
        }
        TExprKind::If(a, b, c) => {
            fpv_texpr(a, bound, out);
            fpv_texpr(b, bound, out);
            fpv_texpr(c, bound, out);
        }
        TExprKind::Prim(_, args) => {
            for a in args {
                fpv_texpr(a, bound, out);
            }
        }
        TExprKind::CaseList {
            scrut,
            nil_rhs,
            head,
            tail,
            cons_rhs,
        } => {
            fpv_texpr(scrut, bound, out);
            fpv_texpr(nil_rhs, bound, out);
            bound.push(*head);
            bound.push(*tail);
            fpv_texpr(cons_rhs, bound, out);
            bound.pop();
            bound.pop();
        }
        TExprKind::Handle {
            body, arg, handler, ..
        } => {
            fpv_texpr(body, bound, out);
            bound.push(*arg);
            fpv_texpr(handler, bound, out);
            bound.pop();
        }
        TExprKind::ConApp { arg, .. } => {
            if let Some(a) = arg {
                fpv_texpr(a, bound, out);
            }
        }
    }
}

/// Substitutes type variables in the type annotations of an intermediate
/// term (used when inlining polymorphic value bindings).
fn subst_cterm_tys(st: &Store, c: CTerm, tmap: &BTreeMap<TyVar, RTy>) -> CTerm {
    let empty_r = BTreeMap::new();
    let empty_e = BTreeMap::new();
    let s = |rty: &RTy| rty.subst(st, tmap, &empty_r, &empty_e);
    let go = |c: Box<CTerm>| Box::new(subst_cterm_tys(st, *c, tmap));
    match c {
        CTerm::Nil(rty) => CTerm::Nil(s(&rty)),
        CTerm::Raise(e, rty) => CTerm::Raise(go(e), s(&rty)),
        CTerm::Lam { param, arrow, body } => CTerm::Lam {
            param,
            arrow: s(&arrow),
            body: go(body),
        },
        CTerm::App(a, b) => CTerm::App(go(a), go(b)),
        CTerm::Let { x, rhs, body } => CTerm::Let {
            x,
            rhs: go(rhs),
            body: go(body),
        },
        CTerm::LetFun { group, body } => CTerm::LetFun {
            group: group
                .into_iter()
                .map(|f| CFun {
                    def: f.def,
                    param: f.param,
                    body: subst_cterm_tys(st, f.body, tmap),
                })
                .collect(),
            body: go(body),
        },
        CTerm::Pair(a, b, r) => CTerm::Pair(go(a), go(b), r),
        CTerm::Sel(i, a) => CTerm::Sel(i, go(a)),
        CTerm::If(a, b, c2) => CTerm::If(go(a), go(b), go(c2)),
        CTerm::Prim(op, args, r) => CTerm::Prim(
            op,
            args.into_iter()
                .map(|a| subst_cterm_tys(st, a, tmap))
                .collect(),
            r,
        ),
        CTerm::Cons(a, b, r) => CTerm::Cons(go(a), go(b), r),
        CTerm::CaseList {
            scrut,
            nil_rhs,
            head,
            tail,
            cons_rhs,
        } => CTerm::CaseList {
            scrut: go(scrut),
            nil_rhs: go(nil_rhs),
            head,
            tail,
            cons_rhs: go(cons_rhs),
        },
        CTerm::RefNew(a, r) => CTerm::RefNew(go(a), r),
        CTerm::Deref(a) => CTerm::Deref(go(a)),
        CTerm::Assign(a, b) => CTerm::Assign(go(a), go(b)),
        CTerm::Exn { name, arg, at } => CTerm::Exn {
            name,
            arg: arg.map(go),
            at,
        },
        CTerm::Handle {
            body,
            exn,
            arg,
            handler,
        } => CTerm::Handle {
            body: go(body),
            exn,
            arg,
            handler: go(handler),
        },
        // Instantiation maps can mention the variables too.
        CTerm::Inst(mut data) => {
            if let Some(m) = &mut data.maps {
                for (_, rty, _) in &mut m.tmap {
                    *rty = s(rty);
                }
            }
            CTerm::Inst(data)
        }
        leaf @ (CTerm::Var(_) | CTerm::Unit | CTerm::Int(_) | CTerm::Bool(_) | CTerm::Str(..)) => {
            leaf
        }
    }
}
