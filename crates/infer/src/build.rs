//! Pass 2 of region inference: resolution and `letregion` placement.
//!
//! With all unification done, this pass resolves store nodes to core
//! region/effect variables, recomputes effects bottom-up exactly as the
//! Figure 4 checker does, and inserts `letregion` at scope boundaries
//! (let right-hand sides, whole lets, function bodies, conditional and
//! case branches, handler arms, and the program top): a region (or
//! secondary effect variable) is bound at the innermost scope where it is
//! no longer free in the environment, the result type, the enclosing
//! `fun`'s quantified variables, or the pinned globals.

use crate::constrain::{Constrain, InferError};
use crate::cterm::{CFun, CTerm, FunDef, InstData};
use crate::store::Store;
use rml_core::terms::{FixDef, Term};
use rml_core::types::{BoxTy, Mu, Pi, Scheme};
use rml_core::typing::TypeEnv;
use rml_core::vars::{Atom, Effect, RegVar};
use rml_core::Subst;
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::collections::BTreeMap;
use std::rc::Rc;

type BResult<T> = Result<T, InferError>;

fn err<T>(msg: impl Into<String>) -> BResult<T> {
    Err(InferError(msg.into()))
}

/// The pass-2 context.
pub struct Build<'a> {
    st: &'a mut Store,
    pinned: Effect,
    exns: BTreeMap<Symbol, Option<Mu>>,
    scheme_memo: BTreeMap<usize, (Scheme, RegVar)>,
    /// Quantified atoms of enclosing `fun` schemes (never bindable).
    quantified: Effect,
}

impl<'a> Build<'a> {
    /// Creates the pass-2 context from the finished pass 1.
    pub fn new(c: &'a mut Constrain) -> (Build<'a>, BTreeMap<Symbol, Option<Mu>>) {
        let mut exns = BTreeMap::new();
        let exn_list: Vec<(Symbol, Option<crate::rty::RTy>)> =
            c.exns.iter().map(|(k, v)| (*k, v.clone())).collect();
        for (name, arg) in exn_list {
            let mu = arg.map(|rty| rty.resolve(&mut c.st));
            exns.insert(name, mu);
        }
        let mut pinned = Effect::new();
        let g_rho = c.st.core_rho(c.global_rho);
        let g_eps = c.st.core_eps(c.global_eps);
        pinned.insert(Atom::Reg(g_rho));
        pinned.insert(Atom::Eff(g_eps));
        pinned.extend(c.st.core_effect_of_eps(c.global_eps));
        let b = Build {
            st: &mut c.st,
            pinned,
            exns: exns.clone(),
            scheme_memo: BTreeMap::new(),
            quantified: Effect::new(),
        };
        (b, exns)
    }

    /// The core region of the global region.
    pub fn global_region(&mut self, c_global: crate::store::RhoId) -> RegVar {
        self.st.core_rho(c_global)
    }

    /// Resolves a `FunDef`'s scheme to a core scheme and place (memoised).
    fn core_scheme(&mut self, fd: &Rc<FunDef>) -> (Scheme, RegVar) {
        let key = Rc::as_ptr(fd) as usize;
        if let Some(s) = self.scheme_memo.get(&key) {
            return s.clone();
        }
        let info = fd
            .scheme
            .borrow()
            .clone()
            .expect("fun without generalised scheme in pass 2");
        let rvars: Vec<RegVar> = info.rvars.iter().map(|r| self.st.core_rho(*r)).collect();
        let evars: Vec<_> = info.evars.iter().map(|e| self.st.core_eps(*e)).collect();
        let delta: Vec<_> = info
            .delta
            .iter()
            .map(|(a, e, _)| (*a, self.st.core_arrow_eff(*e)))
            .collect();
        let body_mu = info.body.resolve(self.st);
        let (body, place) = match body_mu {
            Mu::Boxed(b, r) => (*b, r),
            _ => (BoxTy::Str, self.st.core_rho(fd.place)), // unreachable for funs
        };
        let scheme = Scheme {
            rvars,
            evars,
            delta,
            body,
        };
        let out = (scheme, place);
        self.scheme_memo.insert(key, out.clone());
        out
    }

    /// Wraps `term` in `letregion` for every region/secondary effect
    /// variable of `eff` that is not forbidden.
    pub fn close(&mut self, env: &TypeEnv, pi: &Pi, term: Term, eff: Effect) -> (Term, Effect) {
        let mut forbidden = self.pinned.clone();
        forbidden.extend(self.quantified.iter().copied());
        env.frev(&mut forbidden);
        pi.frev(&mut forbidden);
        let mut rvars = Vec::new();
        let mut evars = Vec::new();
        for a in &eff {
            if forbidden.contains(a) {
                continue;
            }
            match a {
                Atom::Reg(r) => rvars.push(*r),
                Atom::Eff(e) => evars.push(*e),
            }
        }
        if rvars.is_empty() && evars.is_empty() {
            return (term, eff);
        }
        let mut out = eff;
        for r in &rvars {
            out.remove(&Atom::Reg(*r));
        }
        for e in &evars {
            out.remove(&Atom::Eff(*e));
        }
        (
            Term::Letregion {
                rvars,
                evars,
                body: Box::new(term),
            },
            out,
        )
    }

    /// Builds a scoped subterm (a `letregion` placement point).
    fn scoped(&mut self, env: &TypeEnv, c: &CTerm) -> BResult<(Term, Pi, Effect)> {
        let (t, pi, eff) = self.build(env, c)?;
        let (t, eff) = self.close(env, &pi, t, eff);
        Ok((t, pi, eff))
    }

    /// Builds a term, returning it with its `π` and effect (computed the
    /// same way the Figure 4 checker computes them).
    pub fn build(&mut self, env: &TypeEnv, c: &CTerm) -> BResult<(Term, Pi, Effect)> {
        match c {
            CTerm::Var(x) => match env.lookup(*x) {
                Some(pi) => Ok((Term::Var(*x), pi.clone(), Effect::new())),
                None => err(format!("pass 2: unbound variable `{x}`")),
            },
            CTerm::Unit => Ok((Term::Unit, Pi::Mu(Mu::Unit), Effect::new())),
            CTerm::Int(n) => Ok((Term::Int(*n), Pi::Mu(Mu::Int), Effect::new())),
            CTerm::Bool(b) => Ok((Term::Bool(*b), Pi::Mu(Mu::Bool), Effect::new())),
            CTerm::Str(s, rho) => {
                let r = self.st.core_rho(*rho);
                Ok((
                    Term::Str(s.clone(), r),
                    Pi::Mu(Mu::string(r)),
                    rml_core::vars::effect([Atom::Reg(r)]),
                ))
            }
            CTerm::Inst(InstData { fun, maps, at }) => {
                let (scheme, place) = self.core_scheme(fun);
                let at_core = self.st.core_rho(*at);
                let mut subst = Subst::default();
                match maps {
                    None => {
                        // Identity instantiation (recursive/sibling call).
                        for r in &scheme.rvars {
                            subst.reg.insert(*r, *r);
                        }
                        for e in &scheme.evars {
                            // ε ↦ ε.φ(ε): look the latent up from the
                            // scheme body by re-resolving the store node.
                            subst
                                .eff
                                .insert(*e, rml_core::vars::ArrowEff::new(*e, Effect::new()));
                        }
                        // Fix up the effect substitution to carry the real
                        // latent sets (ε ↦ ε.φ where φ is ε's latent in the
                        // scheme body).
                        let mut latents: BTreeMap<rml_core::vars::EffVar, Effect> = BTreeMap::new();
                        collect_latents(&scheme.body, &mut latents);
                        for (a, ae) in &scheme.delta {
                            let _ = a;
                            latents.entry(ae.handle).or_insert(ae.latent.clone());
                        }
                        for e in &scheme.evars {
                            let lat = latents.get(e).cloned().unwrap_or_default();
                            subst.eff.insert(*e, rml_core::vars::ArrowEff::new(*e, lat));
                        }
                    }
                    Some(m) => {
                        for (b, i) in &m.rmap {
                            let bc = self.st.core_rho(*b);
                            let ic = self.st.core_rho(*i);
                            subst.reg.insert(bc, ic);
                        }
                        for (b, i) in &m.emap {
                            let bc = self.st.core_eps(*b);
                            let iae = self.st.core_arrow_eff(*i);
                            subst.eff.insert(bc, iae);
                        }
                        for (a, rty, _) in &m.tmap {
                            let mu = rty.resolve(self.st);
                            subst.ty.insert(*a, mu);
                        }
                    }
                }
                let tau = subst.boxty(&scheme.body);
                let mu = Mu::Boxed(Box::new(tau), at_core);
                let eff = rml_core::vars::effect([Atom::Reg(at_core), Atom::Reg(place)]);
                Ok((
                    Term::RApp {
                        f: Box::new(Term::Var(fun.name)),
                        inst: subst,
                        at: at_core,
                    },
                    Pi::Mu(mu),
                    eff,
                ))
            }
            CTerm::Lam { param, arrow, body } => {
                let ann = arrow.resolve(self.st);
                let Some((mu1, ae, _mu2, rho)) = ann.as_arrow() else {
                    return err("pass 2: lambda annotation is not an arrow");
                };
                let (mu1, latent_handle) = (mu1.clone(), ae.handle);
                let _ = latent_handle;
                let env2 = env.extended(*param, Pi::Mu(mu1));
                let (bt, _bpi, _beff) = self.scoped_lam_body(&env2, body)?;
                Ok((
                    Term::Lam {
                        param: *param,
                        ann: ann.clone(),
                        body: Box::new(bt),
                        at: rho,
                    },
                    Pi::Mu(ann),
                    rml_core::vars::effect([Atom::Reg(rho)]),
                ))
            }
            CTerm::App(f, a) => {
                let (ft, fpi, feff) = self.build(env, f)?;
                let (at, api, aeff) = self.build(env, a)?;
                let fmu = fpi
                    .as_mu()
                    .ok_or_else(|| InferError("pass 2: applying a scheme".into()))?;
                let Some((_, ae, res, rho)) = fmu.as_arrow() else {
                    return err("pass 2: applying a non-arrow");
                };
                let _ = &api;
                let mut eff = ae.latent.clone();
                eff.insert(Atom::Eff(ae.handle));
                eff.insert(Atom::Reg(rho));
                let res = res.clone();
                eff.extend(feff);
                eff.extend(aeff);
                Ok((Term::App(Box::new(ft), Box::new(at)), Pi::Mu(res), eff))
            }
            CTerm::LetFun { group, body } => self.build_letfun(env, group, body),
            CTerm::Let { x, rhs, body } => {
                let (rt, rpi, reff) = self.scoped(env, rhs)?;
                let env2 = env.extended(*x, rpi);
                let (bt, bpi, beff) = self.build(&env2, body)?;
                let mut eff = reff;
                eff.extend(beff);
                let term = Term::Let {
                    x: *x,
                    rhs: Box::new(rt),
                    body: Box::new(bt),
                };
                // Close the whole let with the *outer* environment: the
                // bound variable's regions may die here.
                let (term, eff) = self.close(env, &bpi, term, eff);
                Ok((term, bpi, eff))
            }
            CTerm::Pair(a, b, rho) => {
                let (at, apj, aeff) = self.build(env, a)?;
                let (bt, bpj, beff) = self.build(env, b)?;
                let r = self.st.core_rho(*rho);
                let ma = apj
                    .as_mu()
                    .ok_or_else(|| InferError("pair of scheme".into()))?
                    .clone();
                let mb = bpj
                    .as_mu()
                    .ok_or_else(|| InferError("pair of scheme".into()))?
                    .clone();
                let mut eff = aeff;
                eff.extend(beff);
                eff.insert(Atom::Reg(r));
                Ok((
                    Term::Pair(Box::new(at), Box::new(bt), r),
                    Pi::Mu(Mu::pair(ma, mb, r)),
                    eff,
                ))
            }
            CTerm::Sel(i, a) => {
                let (at, apj, mut eff) = self.build(env, a)?;
                let m = apj
                    .as_mu()
                    .ok_or_else(|| InferError("sel of scheme".into()))?;
                let Mu::Boxed(b, rho) = m else {
                    return err("pass 2: projection of non-pair");
                };
                let BoxTy::Pair(m1, m2) = &**b else {
                    return err("pass 2: projection of non-pair");
                };
                eff.insert(Atom::Reg(*rho));
                let out = if *i == 1 { m1.clone() } else { m2.clone() };
                Ok((Term::Sel(*i, Box::new(at)), Pi::Mu(out), eff))
            }
            CTerm::If(c0, t, f) => {
                let (ct, _cpi, ceff) = self.build(env, c0)?;
                let (tt, tpi, teff) = self.scoped(env, t)?;
                let (ft, _fpi, feff) = self.scoped(env, f)?;
                let mut eff = ceff;
                eff.extend(teff);
                eff.extend(feff);
                Ok((Term::If(Box::new(ct), Box::new(tt), Box::new(ft)), tpi, eff))
            }
            CTerm::Prim(op, args, res) => {
                let mut terms = Vec::new();
                let mut eff = Effect::new();
                let mut mus = Vec::new();
                for a in args {
                    let (t, pi, e) = self.build(env, a)?;
                    let m = pi
                        .as_mu()
                        .ok_or_else(|| InferError("prim arg scheme".into()))?
                        .clone();
                    terms.push(t);
                    eff.extend(e);
                    mus.push(m);
                }
                for m in &mus {
                    if let Some(r) = m.place() {
                        eff.insert(Atom::Reg(r));
                    }
                }
                if matches!(op, PrimOp::Eq | PrimOp::Ne) {
                    mus[0].frev(&mut eff);
                }
                let res_core = res.map(|r| self.st.core_rho(r));
                let rty = match op {
                    PrimOp::Concat | PrimOp::Itos => {
                        let r = res_core.expect("allocating prim without region");
                        eff.insert(Atom::Reg(r));
                        Mu::string(r)
                    }
                    PrimOp::Add
                    | PrimOp::Sub
                    | PrimOp::Mul
                    | PrimOp::Div
                    | PrimOp::Mod
                    | PrimOp::Neg
                    | PrimOp::Size => Mu::Int,
                    PrimOp::Lt
                    | PrimOp::Le
                    | PrimOp::Gt
                    | PrimOp::Ge
                    | PrimOp::Eq
                    | PrimOp::Ne
                    | PrimOp::Not => Mu::Bool,
                    PrimOp::Print | PrimOp::ForceGc => Mu::Unit,
                };
                Ok((Term::Prim(*op, terms, res_core), Pi::Mu(rty), eff))
            }
            CTerm::Nil(rty) => {
                let mu = rty.resolve(self.st);
                Ok((Term::Nil(mu.clone()), Pi::Mu(mu), Effect::new()))
            }
            CTerm::Cons(h, t, rho) => {
                let (ht, _hpi, heff) = self.build(env, h)?;
                let (tt, tpi, teff) = self.build(env, t)?;
                let r = self.st.core_rho(*rho);
                let mut eff = heff;
                eff.extend(teff);
                eff.insert(Atom::Reg(r));
                Ok((Term::Cons(Box::new(ht), Box::new(tt), r), tpi, eff))
            }
            CTerm::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                let (st_, spi, seff) = self.build(env, scrut)?;
                let sm = spi
                    .as_mu()
                    .ok_or_else(|| InferError("case scrutinee scheme".into()))?;
                let Mu::Boxed(b, rho) = sm else {
                    return err("pass 2: case of non-list");
                };
                let BoxTy::List(elem) = &**b else {
                    return err("pass 2: case of non-list");
                };
                let (elem, rho) = (elem.clone(), *rho);
                let (nt, npi, neff) = self.scoped(env, nil_rhs)?;
                let mut env2 = env.extended(*head, Pi::Mu(elem));
                env2.insert(*tail, spi.clone());
                let (ct, _cpi, ceff) = self.scoped(&env2, cons_rhs)?;
                let mut eff = seff;
                eff.insert(Atom::Reg(rho));
                eff.extend(neff);
                eff.extend(ceff);
                Ok((
                    Term::CaseList {
                        scrut: Box::new(st_),
                        nil_rhs: Box::new(nt),
                        head: *head,
                        tail: *tail,
                        cons_rhs: Box::new(ct),
                    },
                    npi,
                    eff,
                ))
            }
            CTerm::RefNew(a, rho) => {
                let (at, apj, mut eff) = self.build(env, a)?;
                let m = apj
                    .as_mu()
                    .ok_or_else(|| InferError("ref of scheme".into()))?
                    .clone();
                let r = self.st.core_rho(*rho);
                eff.insert(Atom::Reg(r));
                Ok((
                    Term::RefNew(Box::new(at), r),
                    Pi::Mu(Mu::reference(m, r)),
                    eff,
                ))
            }
            CTerm::Deref(a) => {
                let (at, apj, mut eff) = self.build(env, a)?;
                let m = apj
                    .as_mu()
                    .ok_or_else(|| InferError("deref of scheme".into()))?;
                let Mu::Boxed(b, rho) = m else {
                    return err("pass 2: deref of non-ref");
                };
                let BoxTy::Ref(inner) = &**b else {
                    return err("pass 2: deref of non-ref");
                };
                eff.insert(Atom::Reg(*rho));
                Ok((Term::Deref(Box::new(at)), Pi::Mu(inner.clone()), eff))
            }
            CTerm::Assign(r, v) => {
                let (rt, rpi, reff) = self.build(env, r)?;
                let (vt, _vpi, veff) = self.build(env, v)?;
                let rm = rpi
                    .as_mu()
                    .ok_or_else(|| InferError("assign of scheme".into()))?;
                let Mu::Boxed(_, rho) = rm else {
                    return err("pass 2: assign to non-ref");
                };
                let mut eff = reff;
                eff.extend(veff);
                eff.insert(Atom::Reg(*rho));
                Ok((
                    Term::Assign(Box::new(rt), Box::new(vt)),
                    Pi::Mu(Mu::Unit),
                    eff,
                ))
            }
            CTerm::Exn { name, arg, at } => {
                let r = self.st.core_rho(*at);
                let mut eff = rml_core::vars::effect([Atom::Reg(r)]);
                let argt = match arg {
                    None => None,
                    Some(a) => {
                        let (t, _pi, e) = self.build(env, a)?;
                        eff.extend(e);
                        Some(Box::new(t))
                    }
                };
                Ok((
                    Term::Exn {
                        name: *name,
                        arg: argt,
                        at: r,
                    },
                    Pi::Mu(Mu::exn(r)),
                    eff,
                ))
            }
            CTerm::Raise(a, rty) => {
                let (at, apj, mut eff) = self.build(env, a)?;
                if let Some(Mu::Boxed(_, rho)) = apj.as_mu() {
                    eff.insert(Atom::Reg(*rho));
                }
                let ann = rty.resolve(self.st);
                Ok((Term::Raise(Box::new(at), ann.clone()), Pi::Mu(ann), eff))
            }
            CTerm::Handle {
                body,
                exn,
                arg,
                handler,
            } => {
                let (bt, bpi, beff) = self.scoped(env, body)?;
                let arg_mu = self.exns.get(exn).cloned().flatten().unwrap_or(Mu::Unit);
                let env2 = env.extended(*arg, Pi::Mu(arg_mu));
                let (ht, _hpi, heff) = self.scoped(&env2, handler)?;
                let mut eff = beff;
                eff.extend(heff);
                Ok((
                    Term::Handle {
                        body: Box::new(bt),
                        exn: *exn,
                        arg: *arg,
                        handler: Box::new(ht),
                    },
                    bpi,
                    eff,
                ))
            }
        }
    }

    /// A lambda body: scoped, with no extra quantified atoms.
    fn scoped_lam_body(&mut self, env: &TypeEnv, c: &CTerm) -> BResult<(Term, Pi, Effect)> {
        self.scoped(env, c)
    }

    fn build_letfun(
        &mut self,
        env: &TypeEnv,
        group: &[CFun],
        body: &CTerm,
    ) -> BResult<(Term, Pi, Effect)> {
        // Resolve schemes and places.
        let mut schemes = Vec::new();
        for m in group {
            let (scheme, place) = self.core_scheme(&m.def);
            schemes.push((scheme, place));
        }
        // Environment with all members bound.
        let mut env2 = env.clone();
        for (m, (scheme, place)) in group.iter().zip(&schemes) {
            env2.insert(m.def.name, Pi::Scheme(scheme.clone(), *place));
        }
        // Build the bodies with the group's quantified atoms pinned.
        let mut quantified = Effect::new();
        for (scheme, _) in &schemes {
            for r in &scheme.rvars {
                quantified.insert(Atom::Reg(*r));
            }
            for e in &scheme.evars {
                quantified.insert(Atom::Eff(*e));
            }
        }
        let saved_quantified = self.quantified.clone();
        self.quantified.extend(quantified.iter().copied());
        let mut defs = Vec::new();
        for (m, (scheme, _place)) in group.iter().zip(&schemes) {
            let BoxTy::Arrow(mu1, _, _) = &scheme.body else {
                return err("pass 2: fun scheme body is not an arrow");
            };
            let env3 = env2.extended(m.param, Pi::Mu(mu1.clone()));
            let (bt, _bpi, _beff) = self.scoped(&env3, &m.body)?;
            defs.push(FixDef {
                f: m.def.name,
                scheme: scheme.clone(),
                param: m.param,
                body: bt,
            });
        }
        self.quantified = saved_quantified;
        let defs = Rc::new(defs);
        let ats: Rc<Vec<RegVar>> = Rc::new(schemes.iter().map(|(_, p)| *p).collect());
        // Continuation.
        let (bt, bpi, mut eff) = self.build(&env2, body)?;
        for (_, p) in &schemes {
            eff.insert(Atom::Reg(*p));
        }
        // let f1 = fix#0 in ... let fn = fix#n in body
        let mut term = bt;
        for (i, m) in group.iter().enumerate().rev() {
            term = Term::Let {
                x: m.def.name,
                rhs: Box::new(Term::Fix {
                    defs: defs.clone(),
                    ats: ats.clone(),
                    index: i,
                }),
                body: Box::new(term),
            };
        }
        let (term, eff) = self.close(env, &bpi, term, eff);
        Ok((term, bpi, eff))
    }
}

/// Collects `handle → latent` for every arrow effect inside a type (used
/// to build identity effect substitutions).
fn collect_latents(t: &BoxTy, out: &mut BTreeMap<rml_core::vars::EffVar, Effect>) {
    match t {
        BoxTy::Pair(a, b) => {
            collect_latents_mu(a, out);
            collect_latents_mu(b, out);
        }
        BoxTy::Arrow(a, ae, b) => {
            out.entry(ae.handle).or_insert_with(|| ae.latent.clone());
            collect_latents_mu(a, out);
            collect_latents_mu(b, out);
        }
        BoxTy::Str | BoxTy::Exn => {}
        BoxTy::List(e) | BoxTy::Ref(e) => collect_latents_mu(e, out),
    }
}

fn collect_latents_mu(m: &Mu, out: &mut BTreeMap<rml_core::vars::EffVar, Effect>) {
    if let Mu::Boxed(b, _) = m {
        collect_latents(b, out);
    }
}
