//! Region inference for `rml` with GC-safety for type-polymorphic
//! programs (the inference side of Elsman, PLDI 2023).
//!
//! The entry point [`infer`] takes a Hindley–Milner typed program and
//! produces a fully region-annotated [`rml_core::Term`] plus the
//! statistics of the paper's Figure 9. Three compilation strategies are
//! supported, matching the benchmarks of Section 5:
//!
//! * [`Strategy::Rg`] — region inference + reference-tracing GC with the
//!   paper's spurious-type-variable treatment (sound),
//! * [`Strategy::RgMinus`] — as `rg` but *without* taking spurious type
//!   variables into account (the pre-paper discipline; **unsound**: the
//!   resulting programs can expose dangling pointers to the collector),
//! * [`Strategy::R`] — pure region inference à la Tofte–Talpin, no
//!   tracing collector (dangling pointers are permitted and never
//!   followed).
//!
//! # Example
//!
//! ```
//! use rml_infer::{infer, Options, Strategy};
//! let src = "fun id x = x  fun main () = id 7";
//! let prog = rml_syntax::parse_program(src).unwrap();
//! let typed = rml_hm::infer_program(&prog).unwrap();
//! let out = infer(&typed, Options::default()).unwrap();
//! // The result type-checks under the paper's Figure 4 rules:
//! let checker = rml_core::Checker {
//!     exns: out.exns.clone(),
//!     gc: rml_core::typing::GcCheck::Full,
//!     store: vec![],
//! };
//! checker.check(&Default::default(), &out.term).unwrap();
//! ```

pub mod build;
pub mod constrain;
pub mod cterm;
pub mod rty;
pub mod store;

pub use constrain::{InferError, Stats};

use rml_core::terms::Term;
use rml_core::types::Mu;
use rml_core::vars::RegVar;
use rml_hm::TProgram;
use rml_syntax::Symbol;
use std::collections::BTreeMap;

/// Compilation strategy (Section 5's `rg` / `rg-` / `r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// GC-safe region inference (this paper).
    #[default]
    Rg,
    /// Pre-paper GC conditions without spurious type variables (unsound).
    RgMinus,
    /// Pure region inference, no tracing GC.
    R,
}

/// How spurious type variables receive arrow effects (Section 2's scheme
/// (2) vs scheme (3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpuriousStyle {
    /// Identify the variable's effect with the handle of the capturing
    /// function's arrow effect (scheme (3); what the MLKit does).
    #[default]
    Identify,
    /// Introduce a fresh *secondary* effect variable per spurious type
    /// variable (scheme (2)).
    Secondary,
}

/// Inference options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Strategy.
    pub strategy: Strategy,
    /// Spurious-variable style.
    pub style: SpuriousStyle,
}

/// The result of region inference.
#[derive(Debug)]
pub struct Output {
    /// The region-annotated program: nested lets over the top-level
    /// declarations, ending in `main ()` (or `()` if there is no `main`).
    pub term: Term,
    /// Exception constructors with their (globalised) argument types.
    pub exns: BTreeMap<Symbol, Option<Mu>>,
    /// The global (top-level) region — pre-allocated by evaluators.
    pub global: RegVar,
    /// Figure 9 statistics (spurious functions/instantiations).
    pub stats: Stats,
    /// Unification-store instrumentation (find/union/closure counters).
    pub store_stats: store::StoreStats,
    /// Pretty-printable schemes of the top-level functions, in order.
    pub schemes: Vec<(Symbol, rml_core::types::Scheme)>,
    /// Binder symbol → source span of the lambda or `fun` binding that
    /// introduced it (first binding wins). Lets a checker blame, which
    /// names a binder, be rendered as an underlined source diagnostic.
    pub provenance: BTreeMap<Symbol, rml_session::Span>,
}

/// Runs region inference.
///
/// # Errors
///
/// Returns an [`InferError`] on internal shape mismatches (which indicate
/// an upstream type-checking bug) or unsupported constructs (global
/// exception-name collisions at different types).
pub fn infer(p: &TProgram, opts: Options) -> Result<Output, InferError> {
    let _span = rml_session::trace::span("region-inference", "pipeline");
    let mut c = constrain::Constrain::new(opts.strategy, opts.style);
    let (cterm, _eff) = {
        let _s = rml_session::trace::span("infer.constrain", "pipeline");
        c.program(p)?
    };
    let global_rho = c.global_rho;
    let stats = c.stats.clone();
    let provenance = c.provenance.clone();
    let (mut b, exns) = build::Build::new(&mut c);
    let global = b.global_region(global_rho);
    let env = rml_core::TypeEnv::default();
    let (term, pi, eff) = {
        let _s = rml_session::trace::span("infer.build", "pipeline");
        b.build(&env, &cterm)?
    };
    // Close the program: everything not global dies here.
    let (term, _eff) = {
        let _s = rml_session::trace::span("infer.close", "pipeline");
        let (t, e) = {
            let mut fb = b;
            fb.close(&env, &pi, term, eff)
        };
        (t, e)
    };
    // Collect top-level schemes for reporting.
    let mut schemes = Vec::new();
    collect_schemes(&term, &mut schemes);
    let store_stats = c.st.stats();
    if rml_session::trace::enabled() {
        rml_session::trace::instant(
            "infer.store",
            "pipeline",
            &[
                ("find_ops", store_stats.find_ops as f64),
                ("unions", store_stats.unions as f64),
                ("closure_cache_hits", store_stats.closure_cache_hits as f64),
                ("closure_recomputes", store_stats.closure_recomputes as f64),
            ],
        );
    }
    Ok(Output {
        term,
        exns,
        global,
        stats,
        store_stats,
        schemes,
        provenance,
    })
}

fn collect_schemes(t: &Term, out: &mut Vec<(Symbol, rml_core::types::Scheme)>) {
    match t {
        Term::Let { rhs, body, .. } => {
            if let Term::Fix { defs, .. } = &**rhs {
                for d in defs.iter() {
                    if !out.iter().any(|(n, _)| *n == d.f) {
                        out.push((d.f, d.scheme.clone()));
                    }
                }
            }
            collect_schemes(rhs, out);
            collect_schemes(body, out);
        }
        Term::Letregion { body, .. } => collect_schemes(body, out),
        _ => {}
    }
}
