//! The intermediate, store-annotated term produced by the constraint pass
//! and consumed by the build pass.
//!
//! `CTerm` mirrors `rml_core::terms::Term` but carries union-find store
//! nodes ([`RhoId`]/[`EpsId`]) and inference types ([`RTy`]) instead of
//! resolved core variables, and has **no** `letregion` — region scopes are
//! decided by the build pass once all unification is done.

use crate::rty::RTy;
use crate::store::{EpsId, RhoId};
use rml_core::vars::TyVar;
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::cell::RefCell;
use std::rc::Rc;

/// A region-polymorphic `fun` definition shared between its binding site
/// and its use sites. The scheme is filled in at generalisation time.
#[derive(Debug)]
pub struct FunDef {
    /// Function name.
    pub name: Symbol,
    /// Region the closure is stored in.
    pub place: RhoId,
    /// The generalised scheme (filled after the group is processed).
    pub scheme: RefCell<Option<RSchemeInfo>>,
    /// Whether any quantified type variable is spurious.
    pub spurious: RefCell<bool>,
}

/// A generalised region scheme at the store level.
#[derive(Debug, Clone)]
pub struct RSchemeInfo {
    /// Quantified region nodes (canonical at generalisation time).
    pub rvars: Vec<RhoId>,
    /// Quantified effect nodes.
    pub evars: Vec<EpsId>,
    /// Quantified type variables with their arrow-effect nodes; the `bool`
    /// marks the variable spurious. Order matches the HM scheme's
    /// instantiation order.
    pub delta: Vec<(TyVar, EpsId, bool)>,
    /// The scheme body (an arrow).
    pub body: RTy,
}

/// Instantiation data recorded at a use of a `fun`-bound variable.
#[derive(Debug)]
pub struct InstData {
    /// The definition being instantiated.
    pub fun: Rc<FunDef>,
    /// Bound-region → instance mapping (`None` = identity, for recursive
    /// and sibling calls inside the group).
    pub maps: Option<InstMaps>,
    /// Region for the specialised closure.
    pub at: RhoId,
}

/// The three instantiation maps.
#[derive(Debug, Clone, Default)]
pub struct InstMaps {
    /// Bound region → instance region.
    pub rmap: Vec<(RhoId, RhoId)>,
    /// Bound effect variable → instance effect variable.
    pub emap: Vec<(EpsId, EpsId)>,
    /// Quantified type variable → instance type (aligned with `delta`),
    /// paired with the effect node its coverage atoms went into.
    pub tmap: Vec<(TyVar, RTy, EpsId)>,
}

/// One member of a `fun` group at the intermediate level.
#[derive(Debug)]
pub struct CFun {
    /// The shared definition record.
    pub def: Rc<FunDef>,
    /// Parameter.
    pub param: Symbol,
    /// Body.
    pub body: CTerm,
}

/// Intermediate terms.
#[derive(Debug)]
pub enum CTerm {
    /// Monomorphic variable occurrence.
    Var(Symbol),
    /// Instantiating occurrence of a `fun`-bound variable (becomes a
    /// region application).
    Inst(InstData),
    /// `()`
    Unit,
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal at a region.
    Str(String, RhoId),
    /// Lambda with its full arrow type.
    Lam {
        /// Parameter.
        param: Symbol,
        /// The arrow type (a boxed arrow `RTy`).
        arrow: RTy,
        /// Body.
        body: Box<CTerm>,
    },
    /// Application.
    App(Box<CTerm>, Box<CTerm>),
    /// A `fun` group binding scoped over `body`.
    LetFun {
        /// The group.
        group: Vec<CFun>,
        /// Continuation.
        body: Box<CTerm>,
    },
    /// `let x = rhs in body`.
    Let {
        /// Bound variable.
        x: Symbol,
        /// Right-hand side.
        rhs: Box<CTerm>,
        /// Body.
        body: Box<CTerm>,
    },
    /// Pair at a region.
    Pair(Box<CTerm>, Box<CTerm>, RhoId),
    /// Projection.
    Sel(u8, Box<CTerm>),
    /// Conditional.
    If(Box<CTerm>, Box<CTerm>, Box<CTerm>),
    /// Primitive application with optional result region.
    Prim(PrimOp, Vec<CTerm>, Option<RhoId>),
    /// `nil` with its list type.
    Nil(RTy),
    /// Cons at a region.
    Cons(Box<CTerm>, Box<CTerm>, RhoId),
    /// List case.
    CaseList {
        /// Scrutinee.
        scrut: Box<CTerm>,
        /// `nil` branch.
        nil_rhs: Box<CTerm>,
        /// Head binder.
        head: Symbol,
        /// Tail binder.
        tail: Symbol,
        /// Cons branch.
        cons_rhs: Box<CTerm>,
    },
    /// `ref e` at a region.
    RefNew(Box<CTerm>, RhoId),
    /// `!e`.
    Deref(Box<CTerm>),
    /// `e1 := e2`.
    Assign(Box<CTerm>, Box<CTerm>),
    /// Exception construction at a region.
    Exn {
        /// Constructor.
        name: Symbol,
        /// Argument.
        arg: Option<Box<CTerm>>,
        /// Region (always the global region).
        at: RhoId,
    },
    /// `raise e` with result type.
    Raise(Box<CTerm>, RTy),
    /// `e handle E x => e'`.
    Handle {
        /// Protected expression.
        body: Box<CTerm>,
        /// Constructor.
        exn: Symbol,
        /// Binder.
        arg: Symbol,
        /// Handler.
        handler: Box<CTerm>,
    },
}
