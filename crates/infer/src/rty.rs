//! Inference-time region types: the shapes of `rml_core::types::Mu` with
//! union-find store nodes in place of region and effect variables.

use crate::store::{AtomI, EpsId, RhoId, Store};
use rml_core::types::{BoxTy, Mu};
use rml_core::vars::TyVar;
use rml_hm::Ty;
use std::collections::{BTreeMap, BTreeSet};

/// A type-and-place during inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RTy {
    /// Type variable (already mapped to a core-level `TyVar`).
    Var(TyVar),
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// Boxed type at a region node.
    Boxed(Box<RBox>, RhoId),
}

/// A boxed constructor during inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RBox {
    /// Pair.
    Pair(RTy, RTy),
    /// Arrow with its effect-variable handle (latent lives in the store).
    Arrow(RTy, EpsId, RTy),
    /// String.
    Str,
    /// List.
    List(RTy),
    /// Ref.
    Ref(RTy),
    /// Exception.
    Exn,
}

impl RTy {
    /// Builds an arrow at fresh places.
    pub fn arrow(st: &mut Store, a: RTy, b: RTy) -> RTy {
        let eps = st.fresh_eps();
        let rho = st.fresh_rho();
        RTy::Boxed(Box::new(RBox::Arrow(a, eps, b)), rho)
    }

    /// The place, if boxed.
    pub fn place(&self) -> Option<RhoId> {
        match self {
            RTy::Boxed(_, r) => Some(*r),
            _ => None,
        }
    }

    /// Deconstructs an arrow.
    pub fn as_arrow(&self) -> Option<(&RTy, EpsId, &RTy, RhoId)> {
        match self {
            RTy::Boxed(b, r) => match &**b {
                RBox::Arrow(a, e, c) => Some((a, *e, c, *r)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Collects the free region/effect atoms of the *surface* of the type
    /// (handles, not their latent closures), canonicalised.
    pub fn frev(&self, st: &Store, out: &mut BTreeSet<AtomI>) {
        match self {
            RTy::Var(_) | RTy::Int | RTy::Bool | RTy::Unit => {}
            RTy::Boxed(b, r) => {
                out.insert(AtomI::Rho(st.find_rho(*r)));
                match &**b {
                    RBox::Pair(a, c) => {
                        a.frev(st, out);
                        c.frev(st, out);
                    }
                    RBox::Arrow(a, e, c) => {
                        out.insert(AtomI::Eps(st.find_eps(*e)));
                        a.frev(st, out);
                        c.frev(st, out);
                    }
                    RBox::Str | RBox::Exn => {}
                    RBox::List(x) | RBox::Ref(x) => x.frev(st, out),
                }
            }
        }
    }

    /// Collects free type variables.
    pub fn ftv(&self, out: &mut BTreeSet<TyVar>) {
        match self {
            RTy::Var(a) => {
                out.insert(*a);
            }
            RTy::Int | RTy::Bool | RTy::Unit => {}
            RTy::Boxed(b, _) => match &**b {
                RBox::Pair(a, c) | RBox::Arrow(a, _, c) => {
                    a.ftv(out);
                    c.ftv(out);
                }
                RBox::Str | RBox::Exn => {}
                RBox::List(x) | RBox::Ref(x) => x.ftv(out),
            },
        }
    }

    /// Substitutes type variables, regions, and effect handles (used for
    /// scheme instantiation). Effect handles not in `emap` are kept.
    pub fn subst(
        &self,
        st: &Store,
        tmap: &BTreeMap<TyVar, RTy>,
        rmap: &BTreeMap<RhoId, RhoId>,
        emap: &BTreeMap<EpsId, EpsId>,
    ) -> RTy {
        match self {
            RTy::Var(a) => tmap.get(a).cloned().unwrap_or(RTy::Var(*a)),
            RTy::Int => RTy::Int,
            RTy::Bool => RTy::Bool,
            RTy::Unit => RTy::Unit,
            RTy::Boxed(b, r) => {
                let r = st.find_rho(*r);
                let r2 = rmap.get(&r).copied().unwrap_or(r);
                let b2 = match &**b {
                    RBox::Pair(a, c) => {
                        RBox::Pair(a.subst(st, tmap, rmap, emap), c.subst(st, tmap, rmap, emap))
                    }
                    RBox::Arrow(a, e, c) => {
                        let e = st.find_eps(*e);
                        let e2 = emap.get(&e).copied().unwrap_or(e);
                        RBox::Arrow(
                            a.subst(st, tmap, rmap, emap),
                            e2,
                            c.subst(st, tmap, rmap, emap),
                        )
                    }
                    RBox::Str => RBox::Str,
                    RBox::Exn => RBox::Exn,
                    RBox::List(x) => RBox::List(x.subst(st, tmap, rmap, emap)),
                    RBox::Ref(x) => RBox::Ref(x.subst(st, tmap, rmap, emap)),
                };
                RTy::Boxed(Box::new(b2), r2)
            }
        }
    }

    /// Resolves the type to a core `Mu` (expanding latent effects).
    pub fn resolve(&self, st: &mut Store) -> Mu {
        match self {
            RTy::Var(a) => Mu::Var(*a),
            RTy::Int => Mu::Int,
            RTy::Bool => Mu::Bool,
            RTy::Unit => Mu::Unit,
            RTy::Boxed(b, r) => {
                let rho = st.core_rho(*r);
                let bt = match &**b {
                    RBox::Pair(a, c) => BoxTy::Pair(a.resolve(st), c.resolve(st)),
                    RBox::Arrow(a, e, c) => {
                        let ae = st.core_arrow_eff(*e);
                        BoxTy::Arrow(a.resolve(st), ae, c.resolve(st))
                    }
                    RBox::Str => BoxTy::Str,
                    RBox::Exn => BoxTy::Exn,
                    RBox::List(x) => BoxTy::List(x.resolve(st)),
                    RBox::Ref(x) => BoxTy::Ref(x.resolve(st)),
                };
                Mu::Boxed(Box::new(bt), rho)
            }
        }
    }
}

/// Spreads an HM type into a region type with fresh region and effect
/// variables at every boxed constructor (the *spreading phase* of region
/// inference). HM `Quant` variables map through `quant_map` (extended on
/// demand with fresh core type variables).
pub fn spread(st: &mut Store, quant_map: &mut BTreeMap<u32, TyVar>, ty: &Ty) -> RTy {
    match ty {
        Ty::Meta(_) => RTy::Unit, // unresolved metas default to unit post-zonk; defensive
        Ty::Quant(q) => RTy::Var(*quant_map.entry(*q).or_insert_with(TyVar::fresh)),
        Ty::Int => RTy::Int,
        Ty::Bool => RTy::Bool,
        Ty::Unit => RTy::Unit,
        Ty::Str => RTy::Boxed(Box::new(RBox::Str), st.fresh_rho()),
        Ty::Exn => RTy::Boxed(Box::new(RBox::Exn), st.fresh_rho()),
        Ty::Pair(a, b) => {
            let ra = spread(st, quant_map, a);
            let rb = spread(st, quant_map, b);
            RTy::Boxed(Box::new(RBox::Pair(ra, rb)), st.fresh_rho())
        }
        Ty::List(e) => {
            let re = spread(st, quant_map, e);
            RTy::Boxed(Box::new(RBox::List(re)), st.fresh_rho())
        }
        Ty::Ref(e) => {
            let re = spread(st, quant_map, e);
            RTy::Boxed(Box::new(RBox::Ref(re)), st.fresh_rho())
        }
        Ty::Arrow(a, b) => {
            let ra = spread(st, quant_map, a);
            let rb = spread(st, quant_map, b);
            let eps = st.fresh_eps();
            RTy::Boxed(Box::new(RBox::Arrow(ra, eps, rb)), st.fresh_rho())
        }
    }
}

/// Unification of two region types whose underlying HM types are equal.
///
/// # Errors
///
/// Returns a message on shape mismatch (which indicates a bug upstream —
/// HM inference guarantees equal shapes).
pub fn unify(st: &mut Store, a: &RTy, b: &RTy) -> Result<(), String> {
    match (a, b) {
        (RTy::Var(x), RTy::Var(y)) if x == y => Ok(()),
        (RTy::Int, RTy::Int) | (RTy::Bool, RTy::Bool) | (RTy::Unit, RTy::Unit) => Ok(()),
        (RTy::Boxed(ba, ra), RTy::Boxed(bb, rb)) => {
            st.union_rho(*ra, *rb);
            match (&**ba, &**bb) {
                (RBox::Pair(a1, a2), RBox::Pair(b1, b2)) => {
                    unify(st, a1, b1)?;
                    unify(st, a2, b2)
                }
                (RBox::Arrow(a1, ea, a2), RBox::Arrow(b1, eb, b2)) => {
                    st.union_eps(*ea, *eb);
                    unify(st, a1, b1)?;
                    unify(st, a2, b2)
                }
                (RBox::Str, RBox::Str) | (RBox::Exn, RBox::Exn) => Ok(()),
                (RBox::List(x), RBox::List(y)) | (RBox::Ref(x), RBox::Ref(y)) => unify(st, x, y),
                (x, y) => Err(format!("region unification shape mismatch: {x:?} vs {y:?}")),
            }
        }
        (x, y) => Err(format!("region unification shape mismatch: {x:?} vs {y:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_gives_fresh_places() {
        let mut st = Store::new();
        let mut qm = BTreeMap::new();
        let t = Ty::Pair(Box::new(Ty::Str), Box::new(Ty::Str));
        let r = spread(&mut st, &mut qm, &t);
        let RTy::Boxed(b, _) = &r else { panic!() };
        let RBox::Pair(RTy::Boxed(_, r1), RTy::Boxed(_, r2)) = &**b else {
            panic!()
        };
        assert_ne!(st.find_rho(*r1), st.find_rho(*r2));
    }

    #[test]
    fn unify_merges_places() {
        let mut st = Store::new();
        let mut qm = BTreeMap::new();
        let t = Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Str));
        let a = spread(&mut st, &mut qm, &t);
        let b = spread(&mut st, &mut qm, &t);
        unify(&mut st, &a, &b).unwrap();
        assert_eq!(
            st.find_rho(a.place().unwrap()),
            st.find_rho(b.place().unwrap())
        );
        let (_, ea, _, _) = a.as_arrow().unwrap();
        let (_, eb, _, _) = b.as_arrow().unwrap();
        assert_eq!(st.find_eps(ea), st.find_eps(eb));
    }

    #[test]
    fn quant_map_is_stable() {
        let mut st = Store::new();
        let mut qm = BTreeMap::new();
        let a = spread(&mut st, &mut qm, &Ty::Quant(3));
        let b = spread(&mut st, &mut qm, &Ty::Quant(3));
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_expands_latents() {
        let mut st = Store::new();
        let mut qm = BTreeMap::new();
        let t = Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Int));
        let r = spread(&mut st, &mut qm, &t);
        let (_, eps, _, _) = r.as_arrow().unwrap();
        let rho = st.fresh_rho();
        st.add_atom(eps, AtomI::Rho(rho));
        let mu = r.resolve(&mut st);
        let (_, ae, _, _) = mu.as_arrow().unwrap();
        assert_eq!(ae.latent.len(), 1);
    }

    #[test]
    fn subst_replaces_tyvars_and_regions() {
        let mut st = Store::new();
        let a = TyVar::fresh();
        let r1 = st.fresh_rho();
        let r2 = st.fresh_rho();
        let t = RTy::Boxed(Box::new(RBox::List(RTy::Var(a))), r1);
        let mut tmap = BTreeMap::new();
        tmap.insert(a, RTy::Int);
        let mut rmap = BTreeMap::new();
        rmap.insert(st.find_rho(r1), r2);
        let out = t.subst(&st, &tmap, &rmap, &BTreeMap::new());
        assert_eq!(out, RTy::Boxed(Box::new(RBox::List(RTy::Int)), r2));
    }
}
