//! The unification store for region inference.
//!
//! Region variables and effect variables are union-find nodes. Each effect
//! variable root carries a *latent* set of atoms (regions and effect
//! variables), kept **transitively closed**: if `ε' ∈ φ(ε)` then
//! `φ(ε') ⊆ φ(ε)`. This invariant is exactly the "transitive basis"
//! convention of the paper (Section 3.5), and it is what makes arrow
//! effects grow monotonically under unification — the property the
//! unification-based inference algorithm \[Tofte–Birkedal 1998\] relies on.

use rml_core::vars::{ArrowEff, Atom, EffVar, Effect, RegVar};
use std::collections::{BTreeMap, BTreeSet};

/// A region-variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RhoId(pub u32);

/// An effect-variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpsId(pub u32);

/// An atom at the store level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AtomI {
    /// A region node.
    Rho(RhoId),
    /// An effect node.
    Eps(EpsId),
}

/// The store.
#[derive(Debug, Default)]
pub struct Store {
    rho_parent: Vec<u32>,
    eps_parent: Vec<u32>,
    /// Latent set per eps root (transitively closed, canonical roots).
    latent: Vec<BTreeSet<AtomI>>,
    /// Reverse membership: eps roots whose latent contains this eps root.
    containers: Vec<BTreeSet<u32>>,
    /// Core variable assigned to each rho root at resolution time.
    rho_core: BTreeMap<u32, RegVar>,
    /// Core variable assigned to each eps root at resolution time.
    eps_core: BTreeMap<u32, EffVar>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates a fresh region variable.
    pub fn fresh_rho(&mut self) -> RhoId {
        let id = self.rho_parent.len() as u32;
        self.rho_parent.push(id);
        RhoId(id)
    }

    /// Allocates a fresh effect variable with an empty latent set.
    pub fn fresh_eps(&mut self) -> EpsId {
        let id = self.eps_parent.len() as u32;
        self.eps_parent.push(id);
        self.latent.push(BTreeSet::new());
        self.containers.push(BTreeSet::new());
        EpsId(id)
    }

    /// Finds the canonical representative of a region variable.
    pub fn find_rho(&self, r: RhoId) -> RhoId {
        let mut x = r.0;
        while self.rho_parent[x as usize] != x {
            x = self.rho_parent[x as usize];
        }
        RhoId(x)
    }

    /// Finds the canonical representative of an effect variable.
    pub fn find_eps(&self, e: EpsId) -> EpsId {
        let mut x = e.0;
        while self.eps_parent[x as usize] != x {
            x = self.eps_parent[x as usize];
        }
        EpsId(x)
    }

    /// Unifies two region variables.
    pub fn union_rho(&mut self, a: RhoId, b: RhoId) {
        let ra = self.find_rho(a);
        let rb = self.find_rho(b);
        if ra != rb {
            self.rho_parent[rb.0 as usize] = ra.0;
        }
    }

    /// Unifies two effect variables, merging their latent sets and
    /// propagating to containers.
    pub fn union_eps(&mut self, a: EpsId, b: EpsId) {
        let ra = self.find_eps(a);
        let rb = self.find_eps(b);
        if ra == rb {
            return;
        }
        self.eps_parent[rb.0 as usize] = ra.0;
        let b_latent = std::mem::take(&mut self.latent[rb.0 as usize]);
        let b_containers = std::mem::take(&mut self.containers[rb.0 as usize]);
        self.containers[ra.0 as usize].extend(b_containers);
        for atom in b_latent {
            self.add_atom(ra, atom);
        }
        // Anything that contained b now contains the merged class: push
        // the merged latent to every container so closure is restored.
        let atoms: Vec<AtomI> = self.latent[ra.0 as usize].iter().copied().collect();
        let containers: Vec<u32> = self.containers[ra.0 as usize].iter().copied().collect();
        for c in containers {
            let c = self.find_eps(EpsId(c));
            if c != ra {
                for a in &atoms {
                    self.add_atom(c, *a);
                }
            }
        }
    }

    fn canon(&self, a: AtomI) -> AtomI {
        match a {
            AtomI::Rho(r) => AtomI::Rho(self.find_rho(r)),
            AtomI::Eps(e) => AtomI::Eps(self.find_eps(e)),
        }
    }

    /// Adds an atom to an effect variable's latent set, maintaining
    /// transitive closure and propagating to containers (worklist).
    pub fn add_atom(&mut self, e: EpsId, atom: AtomI) {
        let root = self.find_eps(e);
        let atom = self.canon(atom);
        if atom == AtomI::Eps(root) {
            return; // no self loops
        }
        if !self.latent[root.0 as usize].insert(atom) {
            return;
        }
        // Transitivity: inserting ε' brings in φ(ε').
        if let AtomI::Eps(inner) = atom {
            self.containers[inner.0 as usize].insert(root.0);
            let inner_latent: Vec<AtomI> =
                self.latent[inner.0 as usize].iter().copied().collect();
            for a in inner_latent {
                self.add_atom(root, a);
            }
        }
        // Propagate to containers of root.
        let containers: Vec<u32> = self.containers[root.0 as usize].iter().copied().collect();
        for c in containers {
            let c = self.find_eps(EpsId(c));
            if c != root {
                self.add_atom(c, atom);
            }
        }
    }

    /// Adds a whole effect to a variable.
    pub fn add_atoms<I: IntoIterator<Item = AtomI>>(&mut self, e: EpsId, atoms: I) {
        for a in atoms {
            self.add_atom(e, a);
        }
    }

    /// The latent set of an effect variable (canonicalised copy).
    pub fn latent_of(&self, e: EpsId) -> BTreeSet<AtomI> {
        let root = self.find_eps(e);
        self.latent[root.0 as usize]
            .iter()
            .map(|a| self.canon(*a))
            .filter(|a| *a != AtomI::Eps(root))
            .collect()
    }

    /// Canonicalises an atom set.
    pub fn canon_set(&self, s: &BTreeSet<AtomI>) -> BTreeSet<AtomI> {
        s.iter().map(|a| self.canon(*a)).collect()
    }

    /// The transitive region closure of an atom set: all regions reachable
    /// through effect variables' latent sets.
    pub fn region_closure(&self, s: &BTreeSet<AtomI>) -> BTreeSet<RhoId> {
        let mut out = BTreeSet::new();
        let mut seen: BTreeSet<EpsId> = BTreeSet::new();
        let mut work: Vec<AtomI> = s.iter().copied().collect();
        while let Some(a) = work.pop() {
            match self.canon(a) {
                AtomI::Rho(r) => {
                    out.insert(r);
                }
                AtomI::Eps(e) => {
                    if seen.insert(e) {
                        work.extend(self.latent[e.0 as usize].iter().copied());
                    }
                }
            }
        }
        out
    }

    /// The transitive atom closure (regions and effect variables).
    pub fn atom_closure(&self, s: &BTreeSet<AtomI>) -> BTreeSet<AtomI> {
        let mut out = BTreeSet::new();
        let mut work: Vec<AtomI> = s.iter().copied().collect();
        while let Some(a) = work.pop() {
            let a = self.canon(a);
            if out.insert(a) {
                if let AtomI::Eps(e) = a {
                    work.extend(self.latent[e.0 as usize].iter().copied());
                }
            }
        }
        out
    }

    // --- Resolution to core variables -------------------------------

    /// The core region variable for a node (assigned on first request).
    pub fn core_rho(&mut self, r: RhoId) -> RegVar {
        let root = self.find_rho(r);
        *self.rho_core.entry(root.0).or_insert_with(RegVar::fresh)
    }

    /// The core effect variable for a node.
    pub fn core_eps(&mut self, e: EpsId) -> EffVar {
        let root = self.find_eps(e);
        *self.eps_core.entry(root.0).or_insert_with(EffVar::fresh)
    }

    /// The core arrow effect `ε.φ` for a node: the handle plus its fully
    /// expanded latent set.
    pub fn core_arrow_eff(&mut self, e: EpsId) -> ArrowEff {
        let handle = self.core_eps(e);
        let latent = self.core_effect_of_eps(e);
        ArrowEff::new(handle, latent)
    }

    /// The fully expanded core effect of an eps's latent set.
    pub fn core_effect_of_eps(&mut self, e: EpsId) -> Effect {
        let root = self.find_eps(e);
        let atoms = self.atom_closure(&self.latent[root.0 as usize].clone());
        let mut out = Effect::new();
        for a in atoms {
            match a {
                AtomI::Rho(r) => {
                    out.insert(Atom::Reg(self.core_rho(r)));
                }
                AtomI::Eps(ep) => {
                    if self.find_eps(ep) != root {
                        out.insert(Atom::Eff(self.core_eps(ep)));
                    }
                }
            }
        }
        out
    }

    /// Converts an atom set to a fully expanded core effect.
    pub fn core_effect(&mut self, s: &BTreeSet<AtomI>) -> Effect {
        let atoms = self.atom_closure(s);
        let mut out = Effect::new();
        for a in atoms {
            match a {
                AtomI::Rho(r) => {
                    out.insert(Atom::Reg(self.core_rho(r)));
                }
                AtomI::Eps(e) => {
                    out.insert(Atom::Eff(self.core_eps(e)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_rho_merges_classes() {
        let mut st = Store::new();
        let a = st.fresh_rho();
        let b = st.fresh_rho();
        assert_ne!(st.find_rho(a), st.find_rho(b));
        st.union_rho(a, b);
        assert_eq!(st.find_rho(a), st.find_rho(b));
    }

    #[test]
    fn latent_sets_merge_on_union() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let r1 = st.fresh_rho();
        let r2 = st.fresh_rho();
        st.add_atom(e1, AtomI::Rho(r1));
        st.add_atom(e2, AtomI::Rho(r2));
        st.union_eps(e1, e2);
        let l = st.latent_of(e1);
        assert!(l.contains(&AtomI::Rho(r1)));
        assert!(l.contains(&AtomI::Rho(r2)));
    }

    #[test]
    fn transitivity_is_eager() {
        // ε1 ∋ ε2, then ε2 grows: ε1 must grow too.
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        st.add_atom(e1, AtomI::Eps(e2));
        let r = st.fresh_rho();
        st.add_atom(e2, AtomI::Rho(r));
        assert!(st.latent_of(e1).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn transitivity_through_chains() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let e3 = st.fresh_eps();
        st.add_atom(e1, AtomI::Eps(e2));
        st.add_atom(e2, AtomI::Eps(e3));
        let r = st.fresh_rho();
        st.add_atom(e3, AtomI::Rho(r));
        assert!(st.latent_of(e1).contains(&AtomI::Rho(r)));
        assert!(st.latent_of(e2).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn no_self_loops() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        st.add_atom(e1, AtomI::Eps(e2));
        st.union_eps(e1, e2); // now ε1's latent would contain itself
        let l = st.latent_of(e1);
        assert!(!l.contains(&AtomI::Eps(st.find_eps(e1))));
    }

    #[test]
    fn region_closure_expands_eps() {
        let mut st = Store::new();
        let e = st.fresh_eps();
        let r = st.fresh_rho();
        st.add_atom(e, AtomI::Rho(r));
        let mut s = BTreeSet::new();
        s.insert(AtomI::Eps(e));
        let rc = st.region_closure(&s);
        assert!(rc.contains(&st.find_rho(r)));
    }

    #[test]
    fn core_resolution_is_stable() {
        let mut st = Store::new();
        let a = st.fresh_rho();
        let b = st.fresh_rho();
        st.union_rho(a, b);
        let ca = st.core_rho(a);
        let cb = st.core_rho(b);
        assert_eq!(ca, cb);
        assert_eq!(st.core_rho(a), ca);
    }

    #[test]
    fn union_pushes_existing_latent_to_inherited_containers() {
        // c ∋ e1; e2 already has {r}; union(e2, e1): c must now see r.
        let mut st = Store::new();
        let c = st.fresh_eps();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let r = st.fresh_rho();
        st.add_atom(c, AtomI::Eps(e1));
        st.add_atom(e2, AtomI::Rho(r));
        st.union_eps(e2, e1);
        assert!(st.latent_of(c).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn union_after_add_preserves_containers() {
        // c ∋ e1; union(e1, e2); e2 grows — c must see it.
        let mut st = Store::new();
        let c = st.fresh_eps();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        st.add_atom(c, AtomI::Eps(e1));
        st.union_eps(e1, e2);
        let r = st.fresh_rho();
        st.add_atom(e2, AtomI::Rho(r));
        assert!(st.latent_of(c).contains(&AtomI::Rho(r)));
    }
}
