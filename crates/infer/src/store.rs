//! The unification store for region inference.
//!
//! Region variables and effect variables are union-find nodes. Each effect
//! variable root carries a *latent* set of atoms (regions and effect
//! variables), kept **transitively closed**: if `ε' ∈ φ(ε)` then
//! `φ(ε') ⊆ φ(ε)`. This invariant is exactly the "transitive basis"
//! convention of the paper (Section 3.5), and it is what makes arrow
//! effects grow monotonically under unification — the property the
//! unification-based inference algorithm \[Tofte–Birkedal 1998\] relies on.
//!
//! # Performance notes
//!
//! The store is on the hot path of every `frev`, `capture`, and
//! `instantiate` call, so it uses:
//!
//! * union-find with **path halving** and **union by rank**. Parents live
//!   in `Cell`s so `find_*` can compress paths through the `&self`
//!   receivers that `RTy::frev`/`subst` require;
//! * **sorted-`Vec` small-sets** for the per-root latent and container
//!   sets. Latent sets are small (a handful of atoms) and read far more
//!   often than written; a sorted `Vec` with binary-search insert has the
//!   same membership semantics and iteration order as the `BTreeSet` it
//!   replaces, without the per-node allocations;
//! * an **iterative worklist** in [`Store::add_atom`] (the closure
//!   invariant used to be restored by recursion);
//! * **dirty-bit-invalidated memos** for [`Store::latent_of`] and the
//!   per-root effect closures. An insert marks *only the roots whose
//!   latent set actually grew* as dirty — sound because latent sets are
//!   kept eagerly transitively closed, so any root whose closure changes
//!   also has its own latent set change (via container propagation) and
//!   is therefore marked. Unions still force a full flush (they change
//!   canonical representatives, staling every memoised canonicalised
//!   set), via a separate union generation counter. Path compression
//!   invalidates nothing — it never changes a representative;
//! * **hash-consed result sets**: the memoised latent/closure sets are
//!   interned through [`rml_session::Interner`], so structurally equal
//!   sets (ubiquitous once effects are unified) share one allocation and
//!   compare equal by pointer.
//!
//! Opt-in instrumentation is available through [`Store::stats`], which
//! snapshots find/union/closure/intern counters ([`StoreStats`]).

use rml_core::vars::{ArrowEff, Atom, EffVar, Effect, RegVar};
use rml_session::Interner;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// A region-variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RhoId(pub u32);

/// An effect-variable node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpsId(pub u32);

/// An atom at the store level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomI {
    /// A region node.
    Rho(RhoId),
    /// An effect node.
    Eps(EpsId),
}

/// A small sorted set of atoms: binary-search membership and ordered
/// iteration, like `BTreeSet<AtomI>`, but contiguous.
#[derive(Debug, Default, Clone)]
struct AtomSet(Vec<AtomI>);

impl AtomSet {
    fn insert(&mut self, a: AtomI) -> bool {
        match self.0.binary_search(&a) {
            Ok(_) => false,
            Err(i) => {
                self.0.insert(i, a);
                true
            }
        }
    }

    fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, AtomI>> {
        self.0.iter().copied()
    }

    fn take(&mut self) -> Vec<AtomI> {
        std::mem::take(&mut self.0)
    }
}

/// A small sorted set of node ids (used for reverse container edges).
#[derive(Debug, Default, Clone)]
struct IdSet(Vec<u32>);

impl IdSet {
    fn insert(&mut self, x: u32) -> bool {
        match self.0.binary_search(&x) {
            Ok(_) => false,
            Err(i) => {
                self.0.insert(i, x);
                true
            }
        }
    }

    fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u32>> {
        self.0.iter().copied()
    }

    fn take(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.0)
    }
}

/// A snapshot of the store's instrumentation counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Calls to `find_rho`/`find_eps` (unification-store reads).
    pub find_ops: u64,
    /// Successful unions (distinct classes merged), regions + effects.
    pub unions: u64,
    /// Latent/closure memo rebuilds after a store mutation.
    pub closure_recomputes: u64,
    /// Latent/closure queries answered from the memo.
    pub closure_cache_hits: u64,
    /// Interned latent/closure sets that found an existing allocation.
    pub intern_hits: u64,
    /// Interned latent/closure sets that allocated a new value.
    pub intern_misses: u64,
}

/// The store.
#[derive(Debug, Default)]
pub struct Store {
    rho_parent: Vec<Cell<u32>>,
    rho_rank: Vec<u8>,
    eps_parent: Vec<Cell<u32>>,
    eps_rank: Vec<u8>,
    /// Latent set per eps root (transitively closed; atoms are canonical
    /// at insertion time and re-canonicalised by queries after unions).
    latent: Vec<AtomSet>,
    /// Reverse membership: eps roots whose latent contains this eps root.
    containers: Vec<IdSet>,
    /// Core variable assigned to each rho root at resolution time.
    rho_core: BTreeMap<u32, RegVar>,
    /// Core variable assigned to each eps root at resolution time.
    eps_core: BTreeMap<u32, EffVar>,
    /// Union generation; bumped only by `union_rho`/`union_eps`. Unions
    /// change canonical representatives, so they stale *every* memoised
    /// canonicalised set at once.
    union_epoch: Cell<u64>,
    /// Union generation the memos below were built at; on mismatch they
    /// are cleared wholesale by the next query.
    memo_union_epoch: Cell<u64>,
    /// Eps roots whose latent set grew (via `add_atom`) since the memos
    /// were last refreshed; only these entries are evicted. Sound because
    /// latent sets are eagerly closed: a root whose *closure* changes has
    /// its own latent changed too (container propagation) and lands here.
    dirty: RefCell<BTreeSet<u32>>,
    /// Canonicalised latent set per eps root.
    latent_memo: RefCell<BTreeMap<u32, Rc<BTreeSet<AtomI>>>>,
    /// Transitive atom closure of `{Eps(root)}` per eps root.
    closure_memo: RefCell<BTreeMap<u32, Rc<BTreeSet<AtomI>>>>,
    /// Hash-consing interner shared by both memos: structurally equal
    /// result sets collapse to one `Rc`.
    sets: RefCell<Interner<BTreeSet<AtomI>>>,
    find_ops: Cell<u64>,
    unions: Cell<u64>,
    closure_recomputes: Cell<u64>,
    closure_cache_hits: Cell<u64>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Snapshots the instrumentation counters.
    pub fn stats(&self) -> StoreStats {
        let (intern_hits, intern_misses) = self.sets.borrow().stats();
        StoreStats {
            find_ops: self.find_ops.get(),
            unions: self.unions.get(),
            closure_recomputes: self.closure_recomputes.get(),
            closure_cache_hits: self.closure_cache_hits.get(),
            intern_hits,
            intern_misses,
        }
    }

    /// Allocates a fresh region variable.
    pub fn fresh_rho(&mut self) -> RhoId {
        let id = self.rho_parent.len() as u32;
        self.rho_parent.push(Cell::new(id));
        self.rho_rank.push(0);
        RhoId(id)
    }

    /// Allocates a fresh effect variable with an empty latent set.
    pub fn fresh_eps(&mut self) -> EpsId {
        let id = self.eps_parent.len() as u32;
        self.eps_parent.push(Cell::new(id));
        self.eps_rank.push(0);
        self.latent.push(AtomSet::default());
        self.containers.push(IdSet::default());
        EpsId(id)
    }

    /// Finds the canonical representative of a region variable,
    /// compressing the path by halving.
    pub fn find_rho(&self, r: RhoId) -> RhoId {
        self.find_ops.set(self.find_ops.get() + 1);
        let mut x = r.0;
        loop {
            let p = self.rho_parent[x as usize].get();
            if p == x {
                return RhoId(x);
            }
            let gp = self.rho_parent[p as usize].get();
            self.rho_parent[x as usize].set(gp);
            x = gp;
        }
    }

    /// Finds the canonical representative of an effect variable,
    /// compressing the path by halving.
    pub fn find_eps(&self, e: EpsId) -> EpsId {
        self.find_ops.set(self.find_ops.get() + 1);
        let mut x = e.0;
        loop {
            let p = self.eps_parent[x as usize].get();
            if p == x {
                return EpsId(x);
            }
            let gp = self.eps_parent[p as usize].get();
            self.eps_parent[x as usize].set(gp);
            x = gp;
        }
    }

    fn bump_union_epoch(&self) {
        self.union_epoch.set(self.union_epoch.get() + 1);
    }

    /// Picks (winner, loser) by rank with a deterministic tiebreak
    /// (lower id wins), bumping the winner's rank on ties.
    fn pick(rank: &mut [u8], a: u32, b: u32) -> (u32, u32) {
        use std::cmp::Ordering;
        match rank[a as usize].cmp(&rank[b as usize]) {
            Ordering::Greater => (a, b),
            Ordering::Less => (b, a),
            Ordering::Equal => {
                let (w, l) = if a < b { (a, b) } else { (b, a) };
                rank[w as usize] += 1;
                (w, l)
            }
        }
    }

    /// Unifies two region variables.
    pub fn union_rho(&mut self, a: RhoId, b: RhoId) {
        let ra = self.find_rho(a);
        let rb = self.find_rho(b);
        if ra == rb {
            return;
        }
        self.unions.set(self.unions.get() + 1);
        self.bump_union_epoch();
        let (win, lose) = Self::pick(&mut self.rho_rank, ra.0, rb.0);
        self.rho_parent[lose as usize].set(win);
        // Resolution normally happens after all unions, but keep any
        // already-assigned core variable reachable from the new root.
        if let Some(v) = self.rho_core.remove(&lose) {
            self.rho_core.entry(win).or_insert(v);
        }
    }

    /// Unifies two effect variables, merging their latent sets and
    /// propagating to containers.
    pub fn union_eps(&mut self, a: EpsId, b: EpsId) {
        let ra = self.find_eps(a);
        let rb = self.find_eps(b);
        if ra == rb {
            return;
        }
        self.unions.set(self.unions.get() + 1);
        self.bump_union_epoch();
        let (win, lose) = Self::pick(&mut self.eps_rank, ra.0, rb.0);
        self.eps_parent[lose as usize].set(win);
        if let Some(v) = self.eps_core.remove(&lose) {
            self.eps_core.entry(win).or_insert(v);
        }
        let win = EpsId(win);
        // The winner's pre-merge latent: the only atoms the loser's old
        // containers have not seen yet.
        let win_latent: Vec<AtomI> = self.latent[win.0 as usize].iter().collect();
        let lose_latent = self.latent[lose as usize].take();
        let lose_containers = self.containers[lose as usize].take();
        for c in &lose_containers {
            self.containers[win.0 as usize].insert(*c);
        }
        // Re-adding the loser's latent through `add_atom` restores the
        // closure invariant for the merged container set.
        for atom in lose_latent {
            self.add_atom(win, atom);
        }
        // The loser's old containers still need the winner's pre-merge
        // atoms (the merged class is a superset of what they contained).
        for c in lose_containers {
            let c = self.find_eps(EpsId(c));
            if c != win {
                for a in &win_latent {
                    self.add_atom(c, *a);
                }
            }
        }
    }

    fn canon(&self, a: AtomI) -> AtomI {
        match a {
            AtomI::Rho(r) => AtomI::Rho(self.find_rho(r)),
            AtomI::Eps(e) => AtomI::Eps(self.find_eps(e)),
        }
    }

    /// Adds an atom to an effect variable's latent set, maintaining
    /// transitive closure and propagating to containers (worklist).
    pub fn add_atom(&mut self, e: EpsId, atom: AtomI) {
        let mut work: Vec<(EpsId, AtomI)> = vec![(e, atom)];
        while let Some((e, atom)) = work.pop() {
            let root = self.find_eps(e);
            let atom = self.canon(atom);
            if atom == AtomI::Eps(root) {
                continue; // no self loops
            }
            if !self.latent[root.0 as usize].insert(atom) {
                continue;
            }
            self.dirty.get_mut().insert(root.0);
            // Transitivity: inserting ε' brings in φ(ε').
            if let AtomI::Eps(inner) = atom {
                self.containers[inner.0 as usize].insert(root.0);
                work.extend(self.latent[inner.0 as usize].iter().map(|a| (root, a)));
            }
            // Propagate to containers of root (re-canonicalised at pop).
            work.extend(
                self.containers[root.0 as usize]
                    .iter()
                    .map(|c| (EpsId(c), atom)),
            );
        }
    }

    /// Adds a whole effect to a variable.
    pub fn add_atoms<I: IntoIterator<Item = AtomI>>(&mut self, e: EpsId, atoms: I) {
        for a in atoms {
            self.add_atom(e, a);
        }
    }

    /// Reconciles the memos with mutations since they were last used.
    /// Called at the top of every memoised query. A union since the last
    /// refresh clears everything (representatives changed); otherwise only
    /// the roots whose latent sets grew are evicted.
    fn refresh_memos(&self) {
        let now = self.union_epoch.get();
        if self.memo_union_epoch.get() != now {
            self.latent_memo.borrow_mut().clear();
            self.closure_memo.borrow_mut().clear();
            self.dirty.borrow_mut().clear();
            self.memo_union_epoch.set(now);
            return;
        }
        let mut dirty = self.dirty.borrow_mut();
        if !dirty.is_empty() {
            let mut lm = self.latent_memo.borrow_mut();
            let mut cm = self.closure_memo.borrow_mut();
            for id in dirty.iter() {
                lm.remove(id);
                cm.remove(id);
            }
            dirty.clear();
        }
    }

    /// The latent set of an effect variable (canonicalised, shared).
    ///
    /// The result is memoised per root until the next mutation; callers
    /// that need ownership can clone the inner set.
    pub fn latent_of(&self, e: EpsId) -> Rc<BTreeSet<AtomI>> {
        self.refresh_memos();
        let root = self.find_eps(e);
        if let Some(rc) = self.latent_memo.borrow().get(&root.0) {
            self.closure_cache_hits
                .set(self.closure_cache_hits.get() + 1);
            return rc.clone();
        }
        self.closure_recomputes
            .set(self.closure_recomputes.get() + 1);
        let set: BTreeSet<AtomI> = self.latent[root.0 as usize]
            .iter()
            .map(|a| self.canon(a))
            .filter(|a| *a != AtomI::Eps(root))
            .collect();
        let rc = self.sets.borrow_mut().intern(set);
        self.latent_memo.borrow_mut().insert(root.0, rc.clone());
        rc
    }

    /// Canonicalises an atom set.
    pub fn canon_set(&self, s: &BTreeSet<AtomI>) -> BTreeSet<AtomI> {
        s.iter().map(|a| self.canon(*a)).collect()
    }

    /// The transitive atom closure of `{Eps(root)}`, memoised per root.
    fn eps_closure(&self, root: EpsId) -> Rc<BTreeSet<AtomI>> {
        debug_assert_eq!(self.eps_parent[root.0 as usize].get(), root.0);
        if let Some(rc) = self.closure_memo.borrow().get(&root.0) {
            self.closure_cache_hits
                .set(self.closure_cache_hits.get() + 1);
            return rc.clone();
        }
        self.closure_recomputes
            .set(self.closure_recomputes.get() + 1);
        let mut out = BTreeSet::new();
        out.insert(AtomI::Eps(root));
        let mut work: Vec<AtomI> = self.latent[root.0 as usize].iter().collect();
        while let Some(a) = work.pop() {
            let a = self.canon(a);
            if out.insert(a) {
                if let AtomI::Eps(e) = a {
                    work.extend(self.latent[e.0 as usize].iter());
                }
            }
        }
        let rc = self.sets.borrow_mut().intern(out);
        self.closure_memo.borrow_mut().insert(root.0, rc.clone());
        rc
    }

    /// The transitive region closure of an atom set: all regions reachable
    /// through effect variables' latent sets.
    pub fn region_closure(&self, s: &BTreeSet<AtomI>) -> BTreeSet<RhoId> {
        self.refresh_memos();
        let mut out = BTreeSet::new();
        for a in s {
            match self.canon(*a) {
                AtomI::Rho(r) => {
                    out.insert(r);
                }
                AtomI::Eps(e) => {
                    out.extend(self.eps_closure(e).iter().filter_map(|a| match a {
                        AtomI::Rho(r) => Some(*r),
                        AtomI::Eps(_) => None,
                    }));
                }
            }
        }
        out
    }

    /// The transitive atom closure (regions and effect variables).
    pub fn atom_closure(&self, s: &BTreeSet<AtomI>) -> BTreeSet<AtomI> {
        self.refresh_memos();
        let mut out = BTreeSet::new();
        for a in s {
            match self.canon(*a) {
                AtomI::Rho(r) => {
                    out.insert(AtomI::Rho(r));
                }
                AtomI::Eps(e) => {
                    out.extend(self.eps_closure(e).iter().copied());
                }
            }
        }
        out
    }

    // --- Resolution to core variables -------------------------------

    /// The core region variable for a node (assigned on first request).
    pub fn core_rho(&mut self, r: RhoId) -> RegVar {
        let root = self.find_rho(r);
        *self.rho_core.entry(root.0).or_insert_with(RegVar::fresh)
    }

    /// The core effect variable for a node.
    pub fn core_eps(&mut self, e: EpsId) -> EffVar {
        let root = self.find_eps(e);
        *self.eps_core.entry(root.0).or_insert_with(EffVar::fresh)
    }

    /// The core arrow effect `ε.φ` for a node: the handle plus its fully
    /// expanded latent set.
    pub fn core_arrow_eff(&mut self, e: EpsId) -> ArrowEff {
        let handle = self.core_eps(e);
        let latent = self.core_effect_of_eps(e);
        ArrowEff::new(handle, latent)
    }

    /// The fully expanded core effect of an eps's latent set.
    pub fn core_effect_of_eps(&mut self, e: EpsId) -> Effect {
        self.refresh_memos();
        let root = self.find_eps(e);
        let atoms = self.eps_closure(root);
        let mut out = Effect::new();
        for a in atoms.iter() {
            match *a {
                AtomI::Rho(r) => {
                    out.insert(Atom::Reg(self.core_rho(r)));
                }
                AtomI::Eps(ep) => {
                    if self.find_eps(ep) != root {
                        out.insert(Atom::Eff(self.core_eps(ep)));
                    }
                }
            }
        }
        out
    }

    /// Converts an atom set to a fully expanded core effect.
    pub fn core_effect(&mut self, s: &BTreeSet<AtomI>) -> Effect {
        let atoms = self.atom_closure(s);
        let mut out = Effect::new();
        for a in atoms {
            match a {
                AtomI::Rho(r) => {
                    out.insert(Atom::Reg(self.core_rho(r)));
                }
                AtomI::Eps(e) => {
                    out.insert(Atom::Eff(self.core_eps(e)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_rho_merges_classes() {
        let mut st = Store::new();
        let a = st.fresh_rho();
        let b = st.fresh_rho();
        assert_ne!(st.find_rho(a), st.find_rho(b));
        st.union_rho(a, b);
        assert_eq!(st.find_rho(a), st.find_rho(b));
    }

    #[test]
    fn latent_sets_merge_on_union() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let r1 = st.fresh_rho();
        let r2 = st.fresh_rho();
        st.add_atom(e1, AtomI::Rho(r1));
        st.add_atom(e2, AtomI::Rho(r2));
        st.union_eps(e1, e2);
        let l = st.latent_of(e1);
        assert!(l.contains(&AtomI::Rho(r1)));
        assert!(l.contains(&AtomI::Rho(r2)));
    }

    #[test]
    fn transitivity_is_eager() {
        // ε1 ∋ ε2, then ε2 grows: ε1 must grow too.
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        st.add_atom(e1, AtomI::Eps(e2));
        let r = st.fresh_rho();
        st.add_atom(e2, AtomI::Rho(r));
        assert!(st.latent_of(e1).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn transitivity_through_chains() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let e3 = st.fresh_eps();
        st.add_atom(e1, AtomI::Eps(e2));
        st.add_atom(e2, AtomI::Eps(e3));
        let r = st.fresh_rho();
        st.add_atom(e3, AtomI::Rho(r));
        assert!(st.latent_of(e1).contains(&AtomI::Rho(r)));
        assert!(st.latent_of(e2).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn no_self_loops() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        st.add_atom(e1, AtomI::Eps(e2));
        st.union_eps(e1, e2); // now ε1's latent would contain itself
        let l = st.latent_of(e1);
        assert!(!l.contains(&AtomI::Eps(st.find_eps(e1))));
    }

    #[test]
    fn region_closure_expands_eps() {
        let mut st = Store::new();
        let e = st.fresh_eps();
        let r = st.fresh_rho();
        st.add_atom(e, AtomI::Rho(r));
        let mut s = BTreeSet::new();
        s.insert(AtomI::Eps(e));
        let rc = st.region_closure(&s);
        assert!(rc.contains(&st.find_rho(r)));
    }

    #[test]
    fn core_resolution_is_stable() {
        let mut st = Store::new();
        let a = st.fresh_rho();
        let b = st.fresh_rho();
        st.union_rho(a, b);
        let ca = st.core_rho(a);
        let cb = st.core_rho(b);
        assert_eq!(ca, cb);
        assert_eq!(st.core_rho(a), ca);
    }

    #[test]
    fn union_pushes_existing_latent_to_inherited_containers() {
        // c ∋ e1; e2 already has {r}; union(e2, e1): c must now see r.
        let mut st = Store::new();
        let c = st.fresh_eps();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let r = st.fresh_rho();
        st.add_atom(c, AtomI::Eps(e1));
        st.add_atom(e2, AtomI::Rho(r));
        st.union_eps(e2, e1);
        assert!(st.latent_of(c).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn union_after_add_preserves_containers() {
        // c ∋ e1; union(e1, e2); e2 grows — c must see it.
        let mut st = Store::new();
        let c = st.fresh_eps();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        st.add_atom(c, AtomI::Eps(e1));
        st.union_eps(e1, e2);
        let r = st.fresh_rho();
        st.add_atom(e2, AtomI::Rho(r));
        assert!(st.latent_of(c).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn path_compression_flattens_chains() {
        // Build a long rho chain, then check one find collapses it: a
        // second find of the deepest node must cost O(1) hops (observable
        // as the parent pointing directly at the root).
        let mut st = Store::new();
        let vars: Vec<RhoId> = (0..64).map(|_| st.fresh_rho()).collect();
        for w in vars.windows(2) {
            st.union_rho(w[0], w[1]);
        }
        let root = st.find_rho(vars[0]);
        for v in &vars {
            assert_eq!(st.find_rho(*v), root);
        }
        // After compression every node's parent is at most one hop from
        // the root (path halving guarantees the grandparent step).
        for v in &vars {
            let p = st.rho_parent[v.0 as usize].get();
            let pp = st.rho_parent[p as usize].get();
            assert_eq!(pp, root.0);
        }
    }

    #[test]
    fn path_compression_preserves_core_resolution() {
        // `core_resolution_is_stable` must survive interleaved finds
        // (compression) and rank-based unions in both orders.
        let mut st = Store::new();
        let a = st.fresh_rho();
        let b = st.fresh_rho();
        let c = st.fresh_rho();
        st.union_rho(b, a); // rank tiebreak: lower id wins regardless of order
        let ca = st.core_rho(a);
        st.union_rho(c, a); // union after resolution migrates the core entry
        assert_eq!(st.core_rho(c), ca);
        assert_eq!(st.core_rho(b), ca);
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let ce = st.core_eps(e2);
        st.union_eps(e1, e2);
        assert_eq!(st.core_eps(e1), ce);
        assert_eq!(st.core_eps(e2), ce);
    }

    #[test]
    fn memo_invalidation_on_mutation() {
        let mut st = Store::new();
        let e = st.fresh_eps();
        let r1 = st.fresh_rho();
        st.add_atom(e, AtomI::Rho(r1));
        let before = st.latent_of(e);
        assert!(before.contains(&AtomI::Rho(r1)));
        // Repeat query is a cache hit with an identical set.
        let hits0 = st.stats().closure_cache_hits;
        let again = st.latent_of(e);
        assert_eq!(before, again);
        assert!(st.stats().closure_cache_hits > hits0);
        // A mutation invalidates: the next query sees the new atom.
        let r2 = st.fresh_rho();
        st.add_atom(e, AtomI::Rho(r2));
        let after = st.latent_of(e);
        assert!(after.contains(&AtomI::Rho(r2)));
        // The caller's old snapshot is untouched.
        assert!(!before.contains(&AtomI::Rho(r2)));
    }

    #[test]
    fn unrelated_mutation_keeps_memos_warm() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let r1 = st.fresh_rho();
        let r2 = st.fresh_rho();
        st.add_atom(e1, AtomI::Rho(r1));
        let _ = st.latent_of(e1);
        let hits0 = st.stats().closure_cache_hits;
        // Growing ε2 must not evict ε1's memo entry.
        st.add_atom(e2, AtomI::Rho(r2));
        let _ = st.latent_of(e1);
        assert_eq!(st.stats().closure_cache_hits, hits0 + 1);
        // ε2's own entry is dirty and recomputes.
        let rec0 = st.stats().closure_recomputes;
        assert!(st.latent_of(e2).contains(&AtomI::Rho(r2)));
        assert_eq!(st.stats().closure_recomputes, rec0 + 1);
    }

    #[test]
    fn union_flushes_all_memos() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let e3 = st.fresh_eps();
        let r = st.fresh_rho();
        st.add_atom(e1, AtomI::Rho(r));
        let _ = st.latent_of(e1);
        let rec0 = st.stats().closure_recomputes;
        // Even an unrelated union changes canonical representatives, so
        // every memoised canonicalised set is conservatively dropped.
        st.union_eps(e2, e3);
        let _ = st.latent_of(e1);
        assert_eq!(st.stats().closure_recomputes, rec0 + 1);
    }

    #[test]
    fn dirty_marking_reaches_containers() {
        // c ∋ e; memoise both; grow e — the memoised c must not go stale.
        let mut st = Store::new();
        let c = st.fresh_eps();
        let e = st.fresh_eps();
        st.add_atom(c, AtomI::Eps(e));
        let _ = (st.latent_of(c), st.latent_of(e));
        let r = st.fresh_rho();
        st.add_atom(e, AtomI::Rho(r));
        assert!(st.latent_of(e).contains(&AtomI::Rho(r)));
        assert!(st.latent_of(c).contains(&AtomI::Rho(r)));
    }

    #[test]
    fn equal_result_sets_are_pointer_shared() {
        let mut st = Store::new();
        let e1 = st.fresh_eps();
        let e2 = st.fresh_eps();
        let r = st.fresh_rho();
        st.add_atom(e1, AtomI::Rho(r));
        st.add_atom(e2, AtomI::Rho(r));
        let a = st.latent_of(e1);
        let b = st.latent_of(e2);
        assert!(Rc::ptr_eq(&a, &b));
        assert!(st.stats().intern_hits >= 1);
    }

    #[test]
    fn stats_count_finds_and_unions() {
        let mut st = Store::new();
        let a = st.fresh_rho();
        let b = st.fresh_rho();
        let before = st.stats();
        st.union_rho(a, b);
        st.find_rho(a);
        let after = st.stats();
        assert_eq!(after.unions, before.unions + 1);
        assert!(after.find_ops > before.find_ops);
    }
}
