//! Error-path tests for region inference.

use rml_infer::{infer, Options, Strategy};

fn try_infer(src: &str) -> Result<rml_infer::Output, rml_infer::InferError> {
    let prog = rml_syntax::parse_program(src).unwrap();
    let typed = rml_hm::infer_program(&prog).unwrap();
    infer(
        &typed,
        Options {
            strategy: Strategy::Rg,
            ..Options::default()
        },
    )
}

#[test]
fn duplicate_exception_at_different_types_rejected() {
    let err = try_infer(
        "fun f x = let exception E of int in (raise (E x)) handle E n => n end \
         fun g s = let exception E of string in (raise (E s)) handle E t => size t end \
         fun main () = f 1 + g \"a\"",
    )
    .unwrap_err();
    assert!(err.0.contains("redeclared"), "{err}");
}

#[test]
fn duplicate_exception_at_same_type_allowed() {
    // Same name, same argument type: the global-table restriction permits
    // it (generativity is not distinguished — a documented limitation).
    try_infer(
        "fun f x = let exception E of int in (raise (E x)) handle E n => n end \
         fun g y = let exception E of int in (raise (E y)) handle E n => n + 1 end \
         fun main () = f 1 + g 2",
    )
    .unwrap();
}

#[test]
fn strategies_produce_distinct_terms_for_figure1() {
    let src = "fun compose (f, g) = fn a => f (g a) \
               fun main () = \
                 let val h = compose (let val x = \"a\" ^ \"b\" in (fn y => (), fn () => x) end) \
                 in h () end";
    let mk = |s| {
        let prog = rml_syntax::parse_program(src).unwrap();
        let typed = rml_hm::infer_program(&prog).unwrap();
        let out = infer(
            &typed,
            Options {
                strategy: s,
                ..Options::default()
            },
        )
        .unwrap();
        rml_core::pretty::term_to_string(&out.term)
    };
    // The rg term keeps the string's region alive across the closure
    // binding; the rg- term deallocates it inside. Their letregion
    // structures differ.
    let rg = mk(Strategy::Rg);
    let rgm = mk(Strategy::RgMinus);
    let norm = |s: &str| {
        // Strip variable numbers; compare letregion nesting shape only.
        s.chars()
            .filter(|c| "letregion".contains(*c) || *c == '(' || *c == ')')
            .collect::<String>()
    };
    assert_ne!(norm(&rg), norm(&rgm), "rg:\n{rg}\nrg-:\n{rgm}");
}

#[test]
fn empty_program_infers_to_unit() {
    let out = try_infer("val x = 1").unwrap();
    // No main: the program term ends in ().
    let printed = rml_core::pretty::term_to_string(&out.term);
    assert!(printed.contains("()"), "{printed}");
}

#[test]
fn stats_are_monotone_in_program_size() {
    let small = try_infer("fun id x = x fun main () = id 1").unwrap();
    let big = try_infer("fun id x = x fun id2 x = x fun main () = id 1 + id2 2 + id 3").unwrap();
    assert!(big.stats.total_fns >= small.stats.total_fns);
    assert!(big.stats.total_insts >= small.stats.total_insts);
}
