//! Property tests for the unification store: the transitive-closure
//! invariant of latent sets must survive arbitrary interleavings of
//! `union_eps` and `add_atom`.

use proptest::prelude::*;
use rml_infer::store::{AtomI, Store};

#[derive(Debug, Clone)]
enum Op {
    Union(usize, usize),
    AddRho(usize, usize),
    AddEps(usize, usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Union(a, b)),
            (0usize..8, 0usize..6).prop_map(|(e, r)| Op::AddRho(e, r)),
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::AddEps(a, b)),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn latent_sets_stay_transitively_closed(ops in ops()) {
        let mut st = Store::new();
        let eps: Vec<_> = (0..8).map(|_| st.fresh_eps()).collect();
        let rho: Vec<_> = (0..6).map(|_| st.fresh_rho()).collect();
        for op in &ops {
            match op {
                Op::Union(a, b) => st.union_eps(eps[*a], eps[*b]),
                Op::AddRho(e, r) => st.add_atom(eps[*e], AtomI::Rho(rho[*r])),
                Op::AddEps(a, b) => st.add_atom(eps[*a], AtomI::Eps(eps[*b])),
            }
        }
        // Invariant: ε' ∈ φ(ε) implies φ(ε') ⊆ φ(ε), and no self loops.
        for e in &eps {
            let latent = st.latent_of(*e);
            let root = st.find_eps(*e);
            prop_assert!(!latent.contains(&AtomI::Eps(root)), "self loop at {root:?}");
            for a in &latent {
                if let AtomI::Eps(inner) = a {
                    let inner_latent = st.latent_of(*inner);
                    for x in &inner_latent {
                        // Transitivity, modulo the no-self-loop filtering.
                        if *x != AtomI::Eps(root) {
                            prop_assert!(
                                latent.contains(x),
                                "{x:?} ∈ φ({inner:?}) ⊆ φ({root:?}) violated"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn union_makes_latents_equal(ops in ops(), a in 0usize..8, b in 0usize..8) {
        let mut st = Store::new();
        let eps: Vec<_> = (0..8).map(|_| st.fresh_eps()).collect();
        let rho: Vec<_> = (0..6).map(|_| st.fresh_rho()).collect();
        for op in &ops {
            match op {
                Op::Union(x, y) => st.union_eps(eps[*x], eps[*y]),
                Op::AddRho(e, r) => st.add_atom(eps[*e], AtomI::Rho(rho[*r])),
                Op::AddEps(x, y) => st.add_atom(eps[*x], AtomI::Eps(eps[*y])),
            }
        }
        st.union_eps(eps[a], eps[b]);
        prop_assert_eq!(st.find_eps(eps[a]), st.find_eps(eps[b]));
        prop_assert_eq!(st.latent_of(eps[a]), st.latent_of(eps[b]));
    }
}
