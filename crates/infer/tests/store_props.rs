//! Property tests for the unification store: the transitive-closure
//! invariant of latent sets must survive arbitrary interleavings of
//! `union_eps` and `add_atom`, and the optimised store (path-compressed
//! union-find, sorted-vec latent sets, memoised closures) must agree
//! with the straightforward pre-optimisation implementation, kept here
//! as an executable specification.

use proptest::prelude::*;
use rml_infer::store::{AtomI, EpsId, RhoId, Store};
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Union(usize, usize),
    AddRho(usize, usize),
    AddEps(usize, usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Union(a, b)),
            (0usize..8, 0usize..6).prop_map(|(e, r)| Op::AddRho(e, r)),
            (0usize..8, 0usize..8).prop_map(|(a, b)| Op::AddEps(a, b)),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn latent_sets_stay_transitively_closed(ops in ops()) {
        let mut st = Store::new();
        let eps: Vec<_> = (0..8).map(|_| st.fresh_eps()).collect();
        let rho: Vec<_> = (0..6).map(|_| st.fresh_rho()).collect();
        for op in &ops {
            match op {
                Op::Union(a, b) => st.union_eps(eps[*a], eps[*b]),
                Op::AddRho(e, r) => st.add_atom(eps[*e], AtomI::Rho(rho[*r])),
                Op::AddEps(a, b) => st.add_atom(eps[*a], AtomI::Eps(eps[*b])),
            }
        }
        // Invariant: ε' ∈ φ(ε) implies φ(ε') ⊆ φ(ε), and no self loops.
        for e in &eps {
            let latent = st.latent_of(*e);
            let root = st.find_eps(*e);
            prop_assert!(!latent.contains(&AtomI::Eps(root)), "self loop at {root:?}");
            for a in latent.iter() {
                if let AtomI::Eps(inner) = a {
                    let inner_latent = st.latent_of(*inner);
                    for x in inner_latent.iter() {
                        // Transitivity, modulo the no-self-loop filtering.
                        if *x != AtomI::Eps(root) {
                            prop_assert!(
                                latent.contains(x),
                                "{x:?} ∈ φ({inner:?}) ⊆ φ({root:?}) violated"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn union_makes_latents_equal(ops in ops(), a in 0usize..8, b in 0usize..8) {
        let mut st = Store::new();
        let eps: Vec<_> = (0..8).map(|_| st.fresh_eps()).collect();
        let rho: Vec<_> = (0..6).map(|_| st.fresh_rho()).collect();
        for op in &ops {
            match op {
                Op::Union(x, y) => st.union_eps(eps[*x], eps[*y]),
                Op::AddRho(e, r) => st.add_atom(eps[*e], AtomI::Rho(rho[*r])),
                Op::AddEps(x, y) => st.add_atom(eps[*x], AtomI::Eps(eps[*y])),
            }
        }
        st.union_eps(eps[a], eps[b]);
        prop_assert_eq!(st.find_eps(eps[a]), st.find_eps(eps[b]));
        prop_assert_eq!(st.latent_of(eps[a]), st.latent_of(eps[b]));
    }
}

// --- the executable specification --------------------------------------

/// The pre-optimisation store: naive find without compression,
/// first-argument union winners, recursive eager closure, and per-call
/// canonicalised copies. Slower in every way, but obviously faithful to
/// the transitive-basis semantics — the optimised [`Store`] must agree
/// with it up to the choice of class representatives.
#[derive(Debug, Default)]
struct NaiveStore {
    rho_parent: Vec<u32>,
    eps_parent: Vec<u32>,
    latent: Vec<BTreeSet<AtomI>>,
    containers: Vec<BTreeSet<u32>>,
}

impl NaiveStore {
    fn new() -> NaiveStore {
        NaiveStore::default()
    }

    fn fresh_rho(&mut self) -> RhoId {
        let id = self.rho_parent.len() as u32;
        self.rho_parent.push(id);
        RhoId(id)
    }

    fn fresh_eps(&mut self) -> EpsId {
        let id = self.eps_parent.len() as u32;
        self.eps_parent.push(id);
        self.latent.push(BTreeSet::new());
        self.containers.push(BTreeSet::new());
        EpsId(id)
    }

    fn find_rho(&self, r: RhoId) -> RhoId {
        let mut x = r.0;
        while self.rho_parent[x as usize] != x {
            x = self.rho_parent[x as usize];
        }
        RhoId(x)
    }

    fn find_eps(&self, e: EpsId) -> EpsId {
        let mut x = e.0;
        while self.eps_parent[x as usize] != x {
            x = self.eps_parent[x as usize];
        }
        EpsId(x)
    }

    fn union_rho(&mut self, a: RhoId, b: RhoId) {
        let ra = self.find_rho(a);
        let rb = self.find_rho(b);
        if ra != rb {
            self.rho_parent[rb.0 as usize] = ra.0;
        }
    }

    fn union_eps(&mut self, a: EpsId, b: EpsId) {
        let ra = self.find_eps(a);
        let rb = self.find_eps(b);
        if ra == rb {
            return;
        }
        self.eps_parent[rb.0 as usize] = ra.0;
        let b_latent = std::mem::take(&mut self.latent[rb.0 as usize]);
        let b_containers = std::mem::take(&mut self.containers[rb.0 as usize]);
        self.containers[ra.0 as usize].extend(b_containers);
        for atom in b_latent {
            self.add_atom(ra, atom);
        }
        let atoms: Vec<AtomI> = self.latent[ra.0 as usize].iter().copied().collect();
        let containers: Vec<u32> = self.containers[ra.0 as usize].iter().copied().collect();
        for c in containers {
            let c = self.find_eps(EpsId(c));
            if c != ra {
                for a in &atoms {
                    self.add_atom(c, *a);
                }
            }
        }
    }

    fn canon(&self, a: AtomI) -> AtomI {
        match a {
            AtomI::Rho(r) => AtomI::Rho(self.find_rho(r)),
            AtomI::Eps(e) => AtomI::Eps(self.find_eps(e)),
        }
    }

    fn add_atom(&mut self, e: EpsId, atom: AtomI) {
        let root = self.find_eps(e);
        let atom = self.canon(atom);
        if atom == AtomI::Eps(root) {
            return;
        }
        if !self.latent[root.0 as usize].insert(atom) {
            return;
        }
        if let AtomI::Eps(inner) = atom {
            self.containers[inner.0 as usize].insert(root.0);
            let inner_latent: Vec<AtomI> = self.latent[inner.0 as usize].iter().copied().collect();
            for a in inner_latent {
                self.add_atom(root, a);
            }
        }
        let containers: Vec<u32> = self.containers[root.0 as usize].iter().copied().collect();
        for c in containers {
            let c = self.find_eps(EpsId(c));
            if c != root {
                self.add_atom(c, atom);
            }
        }
    }

    fn latent_of(&self, e: EpsId) -> BTreeSet<AtomI> {
        let root = self.find_eps(e);
        self.latent[root.0 as usize]
            .iter()
            .map(|a| self.canon(*a))
            .filter(|a| *a != AtomI::Eps(root))
            .collect()
    }

    fn region_closure(&self, s: &BTreeSet<AtomI>) -> BTreeSet<RhoId> {
        let mut out = BTreeSet::new();
        let mut seen: BTreeSet<EpsId> = BTreeSet::new();
        let mut work: Vec<AtomI> = s.iter().copied().collect();
        while let Some(a) = work.pop() {
            match self.canon(a) {
                AtomI::Rho(r) => {
                    out.insert(r);
                }
                AtomI::Eps(e) => {
                    if seen.insert(e) {
                        work.extend(self.latent[e.0 as usize].iter().copied());
                    }
                }
            }
        }
        out
    }

    fn atom_closure(&self, s: &BTreeSet<AtomI>) -> BTreeSet<AtomI> {
        let mut out = BTreeSet::new();
        let mut work: Vec<AtomI> = s.iter().copied().collect();
        while let Some(a) = work.pop() {
            let a = self.canon(a);
            if out.insert(a) {
                if let AtomI::Eps(e) = a {
                    work.extend(self.latent[e.0 as usize].iter().copied());
                }
            }
        }
        out
    }
}

// --- agreement of the optimised store with the specification ------------

/// A richer script shape for the oracle comparison: allocation is part of
/// the script, and region unification is exercised too (it changes the
/// canonicalisation the queries apply).
#[derive(Debug, Clone)]
enum SOp {
    FreshEps,
    FreshRho,
    UnionEps(usize, usize),
    UnionRho(usize, usize),
    AddRho(usize, usize),
    AddEps(usize, usize),
    /// A mid-script closure query, compared against the oracle on the
    /// spot. Interleaving queries with mutations is what exercises the
    /// memo machinery: each query populates the per-root caches, and the
    /// next mutation must evict exactly the stale entries (per-root dirty
    /// bits for inserts, a full flush for unions).
    Query(usize),
}

fn scripts() -> impl Strategy<Value = Vec<SOp>> {
    proptest::collection::vec(
        prop_oneof![
            Just(SOp::FreshEps),
            Just(SOp::FreshRho),
            (0usize..64, 0usize..64).prop_map(|(a, b)| SOp::UnionEps(a, b)),
            (0usize..64, 0usize..64).prop_map(|(a, b)| SOp::UnionRho(a, b)),
            (0usize..64, 0usize..64).prop_map(|(e, r)| SOp::AddRho(e, r)),
            (0usize..64, 0usize..64).prop_map(|(a, b)| SOp::AddEps(a, b)),
            (0usize..64).prop_map(SOp::Query),
        ],
        0..48,
    )
}

/// Maps an id to the smallest original id in its class — a canonical
/// representative independent of each implementation's union policy.
fn class_min(find: impl Fn(u32) -> u32, n: usize, x: u32) -> u32 {
    let root = find(x);
    (0..n as u32)
        .find(|i| find(*i) == root)
        .expect("x itself qualifies")
}

fn norm_real(st: &Store, n_rho: usize, n_eps: usize, a: AtomI) -> AtomI {
    match a {
        AtomI::Rho(r) => AtomI::Rho(RhoId(class_min(|i| st.find_rho(RhoId(i)).0, n_rho, r.0))),
        AtomI::Eps(e) => AtomI::Eps(EpsId(class_min(|i| st.find_eps(EpsId(i)).0, n_eps, e.0))),
    }
}

fn norm_naive(st: &NaiveStore, n_rho: usize, n_eps: usize, a: AtomI) -> AtomI {
    match a {
        AtomI::Rho(r) => AtomI::Rho(RhoId(class_min(|i| st.find_rho(RhoId(i)).0, n_rho, r.0))),
        AtomI::Eps(e) => AtomI::Eps(EpsId(class_min(|i| st.find_eps(EpsId(i)).0, n_eps, e.0))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn optimised_store_agrees_with_the_naive_oracle(ops in scripts()) {
        let mut st = Store::new();
        let mut or = NaiveStore::new();
        // A few pre-allocated variables so early ops have targets.
        let mut eps: Vec<EpsId> = (0..4).map(|_| st.fresh_eps()).collect();
        let mut rho: Vec<RhoId> = (0..3).map(|_| st.fresh_rho()).collect();
        for _ in 0..4 {
            or.fresh_eps();
        }
        for _ in 0..3 {
            or.fresh_rho();
        }
        for op in &ops {
            match op {
                SOp::FreshEps => {
                    let a = st.fresh_eps();
                    let b = or.fresh_eps();
                    prop_assert_eq!(a, b, "allocation order must match");
                    eps.push(a);
                }
                SOp::FreshRho => {
                    let a = st.fresh_rho();
                    let b = or.fresh_rho();
                    prop_assert_eq!(a, b, "allocation order must match");
                    rho.push(a);
                }
                SOp::UnionEps(a, b) => {
                    let (a, b) = (eps[a % eps.len()], eps[b % eps.len()]);
                    st.union_eps(a, b);
                    or.union_eps(a, b);
                }
                SOp::UnionRho(a, b) => {
                    let (a, b) = (rho[a % rho.len()], rho[b % rho.len()]);
                    st.union_rho(a, b);
                    or.union_rho(a, b);
                }
                SOp::AddRho(e, r) => {
                    let (e, r) = (eps[e % eps.len()], rho[r % rho.len()]);
                    st.add_atom(e, AtomI::Rho(r));
                    or.add_atom(e, AtomI::Rho(r));
                }
                SOp::AddEps(a, b) => {
                    let (a, b) = (eps[a % eps.len()], eps[b % eps.len()]);
                    st.add_atom(a, AtomI::Eps(b));
                    or.add_atom(a, AtomI::Eps(b));
                }
                SOp::Query(e) => {
                    let e = eps[e % eps.len()];
                    let (nr, ne) = (rho.len(), eps.len());
                    let got: BTreeSet<AtomI> = st
                        .latent_of(e)
                        .iter()
                        .map(|a| norm_real(&st, nr, ne, *a))
                        .collect();
                    let want: BTreeSet<AtomI> = or
                        .latent_of(e)
                        .iter()
                        .map(|a| norm_naive(&or, nr, ne, *a))
                        .collect();
                    prop_assert_eq!(&got, &want, "mid-script latent_of({e:?}) differs");
                    let mut s = BTreeSet::new();
                    s.insert(AtomI::Eps(e));
                    let got: BTreeSet<AtomI> = st
                        .atom_closure(&s)
                        .iter()
                        .map(|a| norm_real(&st, nr, ne, *a))
                        .collect();
                    let want: BTreeSet<AtomI> = or
                        .atom_closure(&s)
                        .iter()
                        .map(|a| norm_naive(&or, nr, ne, *a))
                        .collect();
                    prop_assert_eq!(&got, &want, "mid-script atom_closure({e:?}) differs");
                }
            }
        }
        let (nr, ne) = (rho.len(), eps.len());
        // Union-find structure: identical partitions.
        for i in &eps {
            for j in &eps {
                prop_assert_eq!(
                    st.find_eps(*i) == st.find_eps(*j),
                    or.find_eps(*i) == or.find_eps(*j),
                    "eps partition differs at ({i:?}, {j:?})"
                );
            }
        }
        for i in &rho {
            for j in &rho {
                prop_assert_eq!(
                    st.find_rho(*i) == st.find_rho(*j),
                    or.find_rho(*i) == or.find_rho(*j),
                    "rho partition differs at ({i:?}, {j:?})"
                );
            }
        }
        // Query agreement modulo representative choice (the optimised
        // store unions by rank; the oracle's first argument always wins).
        for e in &eps {
            let got: BTreeSet<AtomI> = st
                .latent_of(*e)
                .iter()
                .map(|a| norm_real(&st, nr, ne, *a))
                .collect();
            let want: BTreeSet<AtomI> = or
                .latent_of(*e)
                .iter()
                .map(|a| norm_naive(&or, nr, ne, *a))
                .collect();
            prop_assert_eq!(&got, &want, "latent_of({e:?}) differs");

            let mut s = BTreeSet::new();
            s.insert(AtomI::Eps(*e));
            let got: BTreeSet<RhoId> = st
                .region_closure(&s)
                .iter()
                .map(|r| RhoId(class_min(|i| st.find_rho(RhoId(i)).0, nr, r.0)))
                .collect();
            let want: BTreeSet<RhoId> = or
                .region_closure(&s)
                .iter()
                .map(|r| RhoId(class_min(|i| or.find_rho(RhoId(i)).0, nr, r.0)))
                .collect();
            prop_assert_eq!(&got, &want, "region_closure({e:?}) differs");

            let got: BTreeSet<AtomI> = st
                .atom_closure(&s)
                .iter()
                .map(|a| norm_real(&st, nr, ne, *a))
                .collect();
            let want: BTreeSet<AtomI> = or
                .atom_closure(&s)
                .iter()
                .map(|a| norm_naive(&or, nr, ne, *a))
                .collect();
            prop_assert_eq!(&got, &want, "atom_closure({e:?}) differs");
        }
        // And once over a mixed set of every allocated atom.
        let all: BTreeSet<AtomI> = rho
            .iter()
            .map(|r| AtomI::Rho(*r))
            .chain(eps.iter().map(|e| AtomI::Eps(*e)))
            .collect();
        let got: BTreeSet<AtomI> = st
            .atom_closure(&all)
            .iter()
            .map(|a| norm_real(&st, nr, ne, *a))
            .collect();
        let want: BTreeSet<AtomI> = or
            .atom_closure(&all)
            .iter()
            .map(|a| norm_naive(&or, nr, ne, *a))
            .collect();
        prop_assert_eq!(&got, &want, "atom_closure over all atoms differs");
    }
}
