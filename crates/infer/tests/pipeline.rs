//! End-to-end tests: parse → HM → region inference → Figure 4 checking →
//! evaluation under the formal small-step semantics.

use rml_core::semantics::{EvalError, Machine};
use rml_core::typing::{Checker, GcCheck};
use rml_core::{TypeEnv, Value};
use rml_infer::{infer, Options, Strategy};

fn pipeline(src: &str, strategy: Strategy) -> rml_infer::Output {
    let prog = rml_syntax::parse_program(src).unwrap();
    let typed = rml_hm::infer_program(&prog).unwrap();
    infer(
        &typed,
        Options {
            strategy,
            ..Options::default()
        },
    )
    .unwrap()
}

fn check(out: &rml_infer::Output, gc: GcCheck) -> Result<(), rml_core::CheckError> {
    let checker = Checker {
        exns: out.exns.clone(),
        gc,
        store: vec![],
    };
    checker.check(&TypeEnv::default(), &out.term).map(|_| ())
}

fn run(out: &rml_infer::Output) -> Result<Value, EvalError> {
    let mut m = Machine::new([out.global]);
    m.eval(out.term.clone(), 10_000_000)
}

fn run_monitored(out: &rml_infer::Output) -> Result<Value, EvalError> {
    let mut m = Machine::new([out.global]);
    m.monitor = true;
    m.eval(out.term.clone(), 1_000_000)
}

#[track_caller]
fn assert_rg_pipeline(src: &str, expect: Value) {
    let out = pipeline(src, Strategy::Rg);
    check(&out, GcCheck::Full).unwrap_or_else(|e| {
        panic!(
            "rg output fails Figure 4 checking: {e}\nterm: {}",
            rml_core::pretty::term_to_string(&out.term)
        )
    });
    let got = run_monitored(&out).unwrap_or_else(|e| {
        panic!(
            "evaluation failed: {e}\nterm: {}",
            rml_core::pretty::term_to_string(&out.term)
        )
    });
    assert_eq!(got, expect);
}

#[test]
fn fib_checks_and_runs() {
    assert_rg_pipeline(
        "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) \
         fun main () = fib 15",
        Value::Int(610),
    );
}

#[test]
fn higher_order_map() {
    assert_rg_pipeline(
        "fun map f xs = case xs of nil => nil | h :: t => f h :: map f t \
         fun sum xs = case xs of nil => 0 | h :: t => h + sum t \
         fun main () = sum (map (fn x => x * x) [1, 2, 3, 4])",
        Value::Int(30),
    );
}

#[test]
fn pairs_and_projections() {
    assert_rg_pipeline(
        "fun swap (a, b) = (b, a) \
         fun main () = #1 (swap (1, 2)) + #2 (swap (3, 4))",
        Value::Int(5),
    );
}

#[test]
fn strings_allocate_in_regions() {
    assert_rg_pipeline(
        "fun greet name = \"hello \" ^ name \
         fun main () = size (greet \"world\")",
        Value::Int(11),
    );
}

#[test]
fn refs_work() {
    assert_rg_pipeline(
        "fun main () = let val r = ref 10 val u = r := !r + 5 in !r end",
        Value::Int(15),
    );
}

#[test]
fn mutual_recursion_runs() {
    assert_rg_pipeline(
        "fun even n = if n = 0 then true else odd (n - 1) \
         and odd n = if n = 0 then false else even (n - 1) \
         fun main () = if even 10 then 1 else 0",
        Value::Int(1),
    );
}

#[test]
fn exceptions_check_and_run() {
    assert_rg_pipeline(
        "exception Overflow of int \
         fun add_checked a b = if a + b > 100 then raise (Overflow (a + b)) else a + b \
         fun main () = (add_checked 80 30) handle Overflow n => n - 100",
        Value::Int(10),
    );
}

#[test]
fn polymorphic_value_bindings() {
    assert_rg_pipeline(
        "val empty = nil \
         fun len xs = case xs of nil => 0 | h :: t => 1 + len t \
         fun main () = len (1 :: empty) + len (true :: empty)",
        Value::Int(2),
    );
}

#[test]
fn val_bound_lambda_is_region_polymorphic() {
    assert_rg_pipeline(
        "val double = fn x => x + x \
         fun main () = double (double 5)",
        Value::Int(20),
    );
}

// The paper's Figure 1: the dead value `x` is computed *before* the pair
// of functions is built, so it is captured (dead) in the closure `h`.
const FIGURE1: &str = "\
fun compose (f, g) = fn a => f (g a) \
fun run () = \
  let val h = compose (let val x = \"oh\" ^ \"no\" in (fn y => (), fn () => x) end) \
      val u = forcegc () \
  in h () end \
fun main () = run ()";

#[test]
fn figure1_rg_is_sound() {
    // Under the paper's system, the program checks under the full G
    // relation and evaluates with the containment monitor on.
    let out = pipeline(FIGURE1, Strategy::Rg);
    check(&out, GcCheck::Full).unwrap_or_else(|e| {
        panic!(
            "rg output fails Figure 4 checking: {e}\nterm: {}",
            rml_core::pretty::term_to_string(&out.term)
        )
    });
    assert_eq!(run_monitored(&out).unwrap(), Value::Unit);
    // compose is a spurious function.
    assert_eq!(out.stats.spurious_fns, 1, "stats: {:?}", out.stats);
}

#[test]
fn figure1_rgminus_is_unsound() {
    // The pre-paper discipline produces a program that (a) fails the full
    // G check exactly on the captured-variable condition, (b) passes its
    // own (vacuous-tyvar) check, and (c) trips the containment monitor at
    // run time: the dead string's region is deallocated while the closure
    // `h` still points into it — the dangling pointer of Figure 2(a).
    let out = pipeline(FIGURE1, Strategy::RgMinus);
    let err = check(&out, GcCheck::Full).unwrap_err();
    assert!(
        err.contains("captured variable") || err.contains("coverage"),
        "unexpected error: {err}"
    );
    check(&out, GcCheck::NoTyVars).unwrap_or_else(|e| {
        panic!(
            "rg- output should satisfy the pre-paper conditions: {e}\nterm: {}",
            rml_core::pretty::term_to_string(&out.term)
        )
    });
    let res = run_monitored(&out);
    assert!(
        matches!(
            res,
            Err(EvalError::ContainmentViolation(_)) | Err(EvalError::DanglingRegion { .. })
        ),
        "rg- evaluation should expose the dangling pointer, got {res:?}\nterm: {}",
        rml_core::pretty::term_to_string(&out.term)
    );
}

#[test]
fn figure1_rgminus_still_computes_correctly_without_monitor() {
    // Without a tracing collector the dangling pointer is harmless: the
    // program never dereferences it (the paper's observation that `r`-mode
    // compilation tolerates dangling pointers).
    let out = pipeline(FIGURE1, Strategy::RgMinus);
    assert_eq!(run(&out).unwrap(), Value::Unit);
}

#[test]
fn figure1_r_mode_runs() {
    let out = pipeline(FIGURE1, Strategy::R);
    check(&out, GcCheck::Off).unwrap();
    assert_eq!(run(&out).unwrap(), Value::Unit);
}

const FIGURE8: &str = "\
fun compose (f, g) = fn a => f (g a) \
fun g (f : unit -> 'a) : unit -> unit = \
  compose (let val x = f () in (fn x => (), fn () => x) end) \
val h = g (fn () => \"oh\" ^ \"no\") \
fun main () = h ()";

#[test]
fn figure8_spurious_dependency() {
    // g's 'a is spurious *transitively*: it is instantiated for compose's
    // spurious γ (Section 4.3).
    let out = pipeline(FIGURE8, Strategy::Rg);
    check(&out, GcCheck::Full).unwrap_or_else(|e| {
        panic!(
            "rg output fails Figure 4 checking: {e}\nterm: {}",
            rml_core::pretty::term_to_string(&out.term)
        )
    });
    assert_eq!(run_monitored(&out).unwrap(), Value::Unit);
    assert_eq!(out.stats.spurious_fns, 2, "stats: {:?}", out.stats);
    assert!(out.stats.spurious_fn_names.iter().any(|n| n == "g"));
}

#[test]
fn figure8_rgminus_is_unsound() {
    let out = pipeline(FIGURE8, Strategy::RgMinus);
    assert!(check(&out, GcCheck::Full).is_err());
    let res = run_monitored(&out);
    assert!(
        matches!(
            res,
            Err(EvalError::ContainmentViolation(_)) | Err(EvalError::DanglingRegion { .. })
        ),
        "got {res:?}"
    );
}

#[test]
fn letregion_is_actually_inserted() {
    // A dead intermediate pair should get a region that is deallocated.
    let out = pipeline("fun main () = let val p = (1, 2) in #1 p end", Strategy::Rg);
    let printed = rml_core::pretty::term_to_string(&out.term);
    assert!(printed.contains("letregion"), "term: {printed}");
    assert_eq!(run_monitored(&out).unwrap(), Value::Int(1));
}

#[test]
fn exception_values_are_global() {
    // Raising out of a deep call must not leave the exception value in a
    // dead region (Section 4.4).
    assert_rg_pipeline(
        "exception E of string \
         fun deep n = if n = 0 then raise (E (\"x\" ^ \"y\")) else deep (n - 1) \
         fun main () = (deep 5) handle E s => size s",
        Value::Int(2),
    );
}

#[test]
fn exception_with_scoped_tyvar_is_safe() {
    // Section 4.4's polymorphic exception argument.
    assert_rg_pipeline(
        "fun f (x : 'a) = let exception E of 'a in (raise (E x)) handle E y => y end \
         fun main () = f 42",
        Value::Int(42),
    );
}

#[test]
fn all_strategies_agree_on_results() {
    let src = "fun rev xs = \
                 let fun go acc ys = case ys of nil => acc | h :: t => go (h :: acc) t \
                 in go nil xs end \
               fun sum xs = case xs of nil => 0 | h :: t => h + sum t \
               fun upto n = if n = 0 then nil else n :: upto (n - 1) \
               fun main () = sum (rev (upto 20))";
    let mut results = Vec::new();
    for s in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
        let out = pipeline(src, s);
        results.push(run(&out).unwrap());
    }
    assert!(results.iter().all(|v| *v == Value::Int(210)), "{results:?}");
}

#[test]
fn rg_output_is_gc_safe_on_a_suite() {
    // A battery of higher-order polymorphic programs that all must check
    // under the full G relation and run under the monitor.
    for (src, expect) in [
        (
            "fun apply f x = f x fun main () = apply (fn n => n + 1) 41",
            Value::Int(42),
        ),
        (
            "fun twice f x = f (f x) fun main () = twice (fn n => n * 2) 10",
            Value::Int(40),
        ),
        (
            "fun const k = fn x => k \
             fun main () = (const 7) \"ignored\"",
            Value::Int(7),
        ),
        (
            "fun curry f = fn a => fn b => f (a, b) \
             fun main () = curry (fn (x, y) => x - y) 10 4",
            Value::Int(6),
        ),
        (
            "fun compose (f, g) = fn a => f (g a) \
             fun main () = compose (fn n => n + 1, fn n => n * 2) 20",
            Value::Int(41),
        ),
    ] {
        assert_rg_pipeline(src, expect);
    }
}

#[test]
fn spurious_app_example_from_section_4_2() {
    // The List.app example: inferred scheme ∀'a 'b. ('a -> 'b) -> 'a list
    // -> unit makes 'b spurious.
    let src = "fun app f = \
                 let fun loop xs = case xs of nil => () | x :: r => let val u = f x in loop r end \
                 in loop end \
               fun main () = app (fn x => ()) [1, 2, 3]";
    let out = pipeline(src, Strategy::Rg);
    check(&out, GcCheck::Full).unwrap();
    assert_eq!(run_monitored(&out).unwrap(), Value::Unit);
    assert!(out.stats.spurious_fns >= 1, "stats: {:?}", out.stats);
}

#[test]
fn annotated_app_is_not_spurious() {
    let src = "fun app (f : 'a -> unit) = \
                 let fun loop xs = case xs of nil => () | x :: r => let val u = f x in loop r end \
                 in loop end \
               fun main () = app (fn x => ()) [1, 2, 3]";
    let out = pipeline(src, Strategy::Rg);
    assert_eq!(out.stats.spurious_fns, 0, "stats: {:?}", out.stats);
}

#[test]
fn deep_recursion_with_letregions_is_space_safe() {
    // Each iteration's pair dies within the iteration.
    assert_rg_pipeline(
        "fun loop n = if n = 0 then 0 else let val p = (n, n) in loop (#1 p - 1) end \
         fun main () = loop 50",
        Value::Int(0),
    );
}

#[test]
fn schemes_are_reported() {
    let out = pipeline(FIGURE1, Strategy::Rg);
    assert!(out.schemes.iter().any(|(n, _)| n.as_str() == "compose"));
    let (_, s) = out
        .schemes
        .iter()
        .find(|(n, _)| n.as_str() == "compose")
        .unwrap();
    // compose's scheme has a ∆ with one spurious entry (γ).
    assert!(!s.delta.is_empty());
}
