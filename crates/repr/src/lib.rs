//! Region-representation analyses (the MLKit phases the paper's Section 4
//! says the new type system composes with [6, 43]).
//!
//! * **Multiplicity analysis** ([`multiplicity`]): classifies every
//!   `letregion`-bound region as *finite* (at most one allocation per
//!   lifetime, provably — such regions go on the stack and are never
//!   collected) or *infinite* (heap pages, subject to tracing collection).
//! * **Drop analysis** ([`drop_regions`]): finds quantified region
//!   parameters of `fun` schemes that are never stored into by the body —
//!   such parameters need not be passed at run time.
//! * **Allocation statistics** ([`alloc_stats`]): allocation points per
//!   region and per object kind, used by the benchmark reports.
//!
//! # Example
//!
//! ```
//! let prog = rml_syntax::parse_program(
//!     "fun main () = let val p = (1, 2) in #1 p end").unwrap();
//! let typed = rml_hm::infer_program(&prog).unwrap();
//! let out = rml_infer::infer(&typed, Default::default()).unwrap();
//! let info = rml_repr::analyze(&out.term);
//! // The pair's region is finite: exactly one allocation, outside loops.
//! assert!(info.finite.len() >= 1);
//! ```

pub mod drop_regions;
pub mod multiplicity;
pub mod stats;
pub mod uniform;

pub use drop_regions::droppable_params;
pub use multiplicity::{finite_bounds, finite_regions};
pub use stats::{alloc_stats, AllocStats};
pub use uniform::{uniform_regions, HomoKind};

use rml_core::terms::Term;
use rml_core::vars::RegVar;
use std::collections::{BTreeMap, HashSet};

/// Combined analysis results.
#[derive(Debug, Clone, Default)]
pub struct ReprInfo {
    /// Letregion-bound regions proven finite.
    pub finite: HashSet<RegVar>,
    /// Static multiplicity bounds for the finite regions (objects per
    /// lifetime); enforced by the heap verifier in torture runs.
    pub bounds: std::collections::HashMap<RegVar, u64>,
    /// Letregion-bound regions considered infinite.
    pub infinite: HashSet<RegVar>,
    /// Per-function droppable region parameters: name → (droppable, total).
    pub droppable: BTreeMap<String, (usize, usize)>,
    /// Allocation-site statistics.
    pub allocs: AllocStats,
    /// Kind-homogeneous regions eligible for untagged representation.
    pub uniform: std::collections::HashMap<RegVar, HomoKind>,
}

/// Runs all analyses over a region-annotated program.
pub fn analyze(term: &Term) -> ReprInfo {
    let (finite, infinite) = finite_regions(term);
    ReprInfo {
        bounds: finite_bounds(term),
        finite,
        infinite,
        uniform: uniform_regions(term),
        droppable: droppable_params(term),
        allocs: alloc_stats(term),
    }
}
