//! Drop analysis: quantified region parameters that the function body
//! never stores into (and never forwards to a callee) need not be passed
//! at run time — the MLKit's "dropping of regions" phase.

use crate::multiplicity::for_children;
use rml_core::terms::Term;
use rml_core::vars::RegVar;
use std::collections::{BTreeMap, BTreeSet};

/// For every `fun` definition: how many of its region parameters are
/// droppable, out of how many. Keyed by function name.
pub fn droppable_params(term: &Term) -> BTreeMap<String, (usize, usize)> {
    let mut out = BTreeMap::new();
    walk(term, &mut out);
    out
}

fn walk(e: &Term, out: &mut BTreeMap<String, (usize, usize)>) {
    if let Term::Fix { defs, .. } = e {
        for d in defs.iter() {
            let total = d.scheme.rvars.len();
            let mut used = BTreeSet::new();
            put_regions(&d.body, &mut used);
            let droppable = d.scheme.rvars.iter().filter(|r| !used.contains(r)).count();
            out.insert(d.f.to_string(), (droppable, total));
        }
    }
    for_children(e, |c| walk(c, out));
}

/// Regions a term may store into (put effects): allocation targets and
/// regions forwarded at region applications.
pub fn put_regions(e: &Term, out: &mut BTreeSet<RegVar>) {
    match e {
        Term::Str(_, r) | Term::Pair(_, _, r) | Term::Cons(_, _, r) | Term::RefNew(_, r) => {
            out.insert(*r);
        }
        Term::Lam { at, .. } | Term::Exn { at, .. } => {
            out.insert(*at);
        }
        Term::Prim(_, _, Some(r)) => {
            out.insert(*r);
        }
        Term::Fix { ats, .. } => {
            out.extend(ats.iter().copied());
        }
        Term::RApp { inst, at, .. } => {
            out.insert(*at);
            // Conservatively, a forwarded region may be stored into.
            out.extend(inst.reg.values().copied());
        }
        _ => {}
    }
    for_children(e, |c| put_regions(c, out));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> BTreeMap<String, (usize, usize)> {
        let prog = rml_syntax::parse_program(src).unwrap();
        let typed = rml_hm::infer_program(&prog).unwrap();
        let out = rml_infer::infer(&typed, Default::default()).unwrap();
        droppable_params(&out.term)
    }

    #[test]
    fn pure_arithmetic_params_are_droppable() {
        // `get`'s quantified argument regions are read, never stored into.
        let info = analyze(
            "fun first (a, b) = a \
             fun main () = first (1, 2)",
        );
        let (droppable, total) = info["first"];
        assert!(total >= 1);
        assert!(droppable >= 1, "{info:?}");
    }

    #[test]
    fn constructor_params_are_not_droppable() {
        let info = analyze(
            "fun dup x = (x, x) \
             fun main () = #1 (dup 3)",
        );
        let (droppable, total) = info["dup"];
        assert!(droppable < total, "{info:?}");
    }

    #[test]
    fn every_fun_is_reported() {
        let info = analyze("fun f x = x fun g y = (y, y) fun main () = #1 (g (f 1))");
        assert!(info.contains_key("f"));
        assert!(info.contains_key("g"));
        assert!(info.contains_key("main"));
    }
}
