//! Static allocation statistics over a region-annotated program.

use crate::multiplicity::for_children;
use rml_core::terms::Term;

/// Static counts of region constructs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// `letregion` nodes.
    pub letregions: usize,
    /// Region variables bound by them.
    pub bound_regions: usize,
    /// Allocation points (all `at ρ` sites).
    pub alloc_sites: usize,
    /// Region applications.
    pub region_apps: usize,
    /// Lambda abstractions (including `fun` members).
    pub functions: usize,
}

/// Computes static allocation statistics.
pub fn alloc_stats(term: &Term) -> AllocStats {
    let mut s = AllocStats::default();
    go(term, &mut s);
    s
}

fn go(e: &Term, s: &mut AllocStats) {
    match e {
        Term::Letregion { rvars, .. } => {
            s.letregions += 1;
            s.bound_regions += rvars.len();
        }
        Term::Str(..) | Term::Pair(..) | Term::Cons(..) | Term::RefNew(..) | Term::Exn { .. } => {
            s.alloc_sites += 1;
        }
        Term::Prim(_, _, Some(_)) => s.alloc_sites += 1,
        Term::Lam { .. } => {
            s.alloc_sites += 1;
            s.functions += 1;
        }
        Term::Fix { defs, .. } => {
            s.alloc_sites += 1;
            s.functions += defs.len();
        }
        Term::RApp { .. } => {
            s.region_apps += 1;
            s.alloc_sites += 1;
        }
        _ => {}
    }
    for_children(e, |c| go(c, s));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_constructs() {
        let prog =
            rml_syntax::parse_program("fun main () = let val p = (1, \"x\") in size (#2 p) end")
                .unwrap();
        let typed = rml_hm::infer_program(&prog).unwrap();
        let out = rml_infer::infer(&typed, Default::default()).unwrap();
        let s = alloc_stats(&out.term);
        assert!(s.letregions >= 1);
        assert!(s.alloc_sites >= 2); // pair + string (+ closures)
        assert!(s.functions >= 1);
        assert!(s.region_apps >= 1); // the call to main
    }
}
