//! Region-homogeneity analysis for the partly tag-free representation
//! (paper Section 6): a region whose every allocation site stores the same
//! untagged-eligible kind (pairs, cons cells, or references) — and which
//! never escapes through a region application — can drop per-object
//! headers (BIBOP-style, "with regions as pages").

use crate::multiplicity::for_children;
use rml_core::terms::Term;
use rml_core::vars::RegVar;
use std::collections::HashMap;

/// Untagged-eligible object kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomoKind {
    /// Two-word pairs.
    Pair,
    /// Two-word cons cells.
    Cons,
    /// One-word reference cells.
    Ref,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seen {
    Nothing,
    Only(HomoKind),
    Mixed,
}

/// Classifies every region variable of a program: `Some(kind)` when all
/// its allocation sites — including, transitively, the allocation sites of
/// every quantified region parameter it is instantiated for — agree on an
/// untagged-eligible kind.
///
/// The analysis is interprocedural: each region application contributes a
/// flow edge *bound parameter → actual region*, and kind summaries are
/// propagated to a fixpoint (the lattice `Nothing < Only(k) < Mixed` has
/// height two, so this converges quickly).
pub fn uniform_regions(term: &Term) -> HashMap<RegVar, HomoKind> {
    let mut seen: HashMap<RegVar, Seen> = HashMap::new();
    let mut edges: Vec<(RegVar, RegVar)> = Vec::new(); // bound → actual
    collect(term, &mut seen, &mut edges);
    // Propagate along instantiation edges to a fixpoint.
    loop {
        let mut changed = false;
        for (bound, actual) in &edges {
            let from = seen.get(bound).copied().unwrap_or(Seen::Nothing);
            let into = seen.entry(*actual).or_insert(Seen::Nothing);
            let merged = match (*into, from) {
                (a, Seen::Nothing) => a,
                (Seen::Nothing, b) => b,
                (Seen::Only(a), Seen::Only(b)) if a == b => Seen::Only(a),
                _ => Seen::Mixed,
            };
            if merged != *into {
                *into = merged;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    seen.into_iter()
        .filter_map(|(r, s)| match s {
            Seen::Only(k) => Some((r, k)),
            _ => None,
        })
        .collect()
}

fn mark(seen: &mut HashMap<RegVar, Seen>, r: RegVar, k: Option<HomoKind>) {
    let entry = seen.entry(r).or_insert(Seen::Nothing);
    *entry = match (*entry, k) {
        (Seen::Mixed, _) | (_, None) => Seen::Mixed,
        (Seen::Nothing, Some(k)) => Seen::Only(k),
        (Seen::Only(a), Some(b)) if a == b => Seen::Only(a),
        _ => Seen::Mixed,
    };
}

fn collect(e: &Term, seen: &mut HashMap<RegVar, Seen>, edges: &mut Vec<(RegVar, RegVar)>) {
    match e {
        Term::Pair(_, _, r) => mark(seen, *r, Some(HomoKind::Pair)),
        Term::Cons(_, _, r) => mark(seen, *r, Some(HomoKind::Cons)),
        Term::RefNew(_, r) => mark(seen, *r, Some(HomoKind::Ref)),
        Term::Str(_, r) | Term::Exn { at: r, .. } => mark(seen, *r, None),
        Term::Prim(_, _, Some(r)) => mark(seen, *r, None),
        Term::Lam { at, .. } => mark(seen, *at, None),
        Term::Fix { ats, .. } => {
            for r in ats.iter() {
                mark(seen, *r, None);
            }
        }
        Term::RApp { inst, at, .. } => {
            mark(seen, *at, None);
            // The actual region receives whatever the callee stores into
            // the bound parameter.
            for (bound, actual) in &inst.reg {
                edges.push((*bound, *actual));
            }
        }
        _ => {}
    }
    for_children(e, |c| collect(c, seen, edges));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> HashMap<RegVar, HomoKind> {
        let prog = rml_syntax::parse_program(src).unwrap();
        let typed = rml_hm::infer_program(&prog).unwrap();
        let out = rml_infer::infer(&typed, Default::default()).unwrap();
        uniform_regions(&out.term)
    }

    #[test]
    fn spine_region_uniform_through_instantiation() {
        // The list spine is built by a callee (`upto`) in the caller's
        // region: the interprocedural flow must classify it Cons.
        let u = analyze(
            "fun upto n = if n = 0 then nil else n :: upto (n - 1) \
             fun len xs = case xs of nil => 0 | h :: t => 1 + len t \
             fun main () = len (upto 5)",
        );
        assert!(u.values().any(|k| *k == HomoKind::Cons), "{u:?}");
    }

    #[test]
    fn region_mixed_through_instantiation_is_rejected() {
        // One function stores pairs, another strings, into the same
        // quantified parameter position at different call sites — regions
        // that receive both kinds must not be untagged.
        let u = analyze(
            "fun mkp x = (x, x) \
             fun main () = let val a = mkp 1 val s = \"x\" ^ \"y\" in #1 a + size s end",
        );
        // No region may be classified with a kind it does not hold.
        for k in u.values() {
            assert!(matches!(k, HomoKind::Pair | HomoKind::Cons | HomoKind::Ref));
        }
    }

    #[test]
    fn local_pair_region_is_uniform() {
        let u = analyze("fun main () = let val p = (1, 2) in #1 p end");
        assert!(u.values().any(|k| *k == HomoKind::Pair), "{u:?}");
    }

    #[test]
    fn ref_region_is_uniform() {
        let u = analyze("fun main () = let val r = ref 1 in !r end");
        assert!(u.values().any(|k| *k == HomoKind::Ref), "{u:?}");
    }

    #[test]
    fn mixed_region_is_not_uniform() {
        // Pair and string share a region through the result type.
        let u = analyze("fun main () = let val p = (\"a\", (1, 2)) in size (#1 p) end");
        // Whatever is uniform, nothing maps a string region.
        for k in u.values() {
            assert!(matches!(k, HomoKind::Pair | HomoKind::Cons | HomoKind::Ref));
        }
    }
}
