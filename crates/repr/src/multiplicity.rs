//! Multiplicity analysis: finite vs infinite regions.
//!
//! A `letregion`-bound region is *finite* when every allocation into it
//! executes at most once per region lifetime. The conservative criterion
//! used here (a simplification of the MLKit's polymorphic multiplicity
//! analysis \[6\]):
//!
//! * every `at ρ` site inside the binding scope lies outside any nested
//!   `fn`/`fun` body (function bodies may run any number of times per
//!   lifetime of an enclosing region), and
//! * ρ is never passed at a region application (the callee could allocate
//!   into it repeatedly).
//!
//! Everything else is infinite (heap pages, collected).

use rml_core::terms::Term;
use rml_core::vars::RegVar;
use std::collections::{HashMap, HashSet};

/// Classifies all `letregion`-bound regions of a program. Returns
/// `(finite, infinite)`.
pub fn finite_regions(term: &Term) -> (HashSet<RegVar>, HashSet<RegVar>) {
    let mut finite = HashSet::new();
    let mut infinite = HashSet::new();
    walk(term, &mut |rvars, body| {
        for rv in rvars {
            let mut many = false;
            let mut deep_site = false;
            sites(
                body,
                *rv,
                0,
                &mut |depth| {
                    if depth > 0 {
                        deep_site = true;
                    }
                },
                &mut many,
            );
            if many || deep_site {
                infinite.insert(*rv);
            } else {
                finite.insert(*rv);
            }
        }
    });
    (finite, infinite)
}

/// Static multiplicity bounds for the finite regions of a program: each
/// finite region holds at most as many objects as it has (depth-0)
/// allocation sites, since every site executes at most once per lifetime.
/// The heap verifier enforces these bounds at run time (torture rig).
///
/// A site appearing in both arms of an `if` counts twice, so the bound is
/// an upper bound, never an undercount.
pub fn finite_bounds(term: &Term) -> HashMap<RegVar, u64> {
    let (finite, _) = finite_regions(term);
    let mut bounds: HashMap<RegVar, u64> = HashMap::new();
    walk(term, &mut |rvars, body| {
        for rv in rvars {
            if !finite.contains(rv) {
                continue;
            }
            let mut count = 0u64;
            let mut many = false;
            sites(body, *rv, 0, &mut |_| count += 1, &mut many);
            // Region variables are not guaranteed unique across
            // letregions; keep the largest count seen.
            let entry = bounds.entry(*rv).or_insert(0);
            *entry = (*entry).max(count);
        }
    });
    bounds
}

/// Calls `f(rvars, body)` for every `letregion` node.
fn walk(e: &Term, f: &mut impl FnMut(&[RegVar], &Term)) {
    if let Term::Letregion { rvars, body, .. } = e {
        f(rvars, body);
    }
    for_children(e, |c| walk(c, f));
}

/// Visits allocation sites targeting `rv` inside `e`; `depth` counts
/// enclosing function bodies. `many` is forced when the region escapes via
/// a region application.
fn sites(e: &Term, rv: RegVar, depth: usize, on_site: &mut impl FnMut(usize), many: &mut bool) {
    let hit = |r: RegVar| r == rv;
    match e {
        Term::Str(_, r) | Term::Pair(_, _, r) | Term::Cons(_, _, r) | Term::RefNew(_, r)
            if hit(*r) =>
        {
            on_site(depth);
        }
        Term::Lam { at, .. } if hit(*at) => {
            on_site(depth);
        }
        Term::Exn { at, .. } if hit(*at) => {
            on_site(depth);
        }
        Term::Prim(_, _, Some(r)) if hit(*r) => {
            on_site(depth);
        }
        Term::Fix { ats, .. } if ats.iter().any(|r| hit(*r)) => {
            // One closure is allocated per matching `at`, so each counts
            // as its own site (matters for the multiplicity bounds).
            for r in ats.iter() {
                if hit(*r) {
                    on_site(depth);
                }
            }
        }
        Term::RApp { inst, at, .. } => {
            if hit(*at) {
                on_site(depth);
            }
            if inst.reg.values().any(|r| hit(*r)) {
                *many = true;
            }
        }
        _ => {}
    }
    match e {
        Term::Lam { body, .. } => sites(body, rv, depth + 1, on_site, many),
        Term::Fix { defs, .. } => {
            for d in defs.iter() {
                sites(&d.body, rv, depth + 1, on_site, many);
            }
        }
        Term::Letregion { rvars, body, .. } => {
            if !rvars.contains(&rv) {
                sites(body, rv, depth, on_site, many);
            }
        }
        other => for_children(other, |c| sites(c, rv, depth, on_site, many)),
    }
}

pub(crate) fn for_children<'a>(e: &'a Term, mut f: impl FnMut(&'a Term)) {
    match e {
        Term::Var(_)
        | Term::Unit
        | Term::Int(_)
        | Term::Bool(_)
        | Term::Str(..)
        | Term::Nil(_)
        | Term::Val(_) => {}
        Term::Lam { body, .. } => f(body),
        Term::Fix { defs, .. } => {
            for d in defs.iter() {
                f(&d.body);
            }
        }
        Term::App(a, b) | Term::Assign(a, b) | Term::Pair(a, b, _) | Term::Cons(a, b, _) => {
            f(a);
            f(b);
        }
        Term::RApp { f: g, .. } => f(g),
        Term::Let { rhs, body, .. } => {
            f(rhs);
            f(body);
        }
        Term::Letregion { body, .. } => f(body),
        Term::Sel(_, a) | Term::RefNew(a, _) | Term::Deref(a) | Term::Raise(a, _) => f(a),
        Term::If(a, b, c) => {
            f(a);
            f(b);
            f(c);
        }
        Term::Prim(_, args, _) => {
            for a in args {
                f(a);
            }
        }
        Term::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            f(scrut);
            f(nil_rhs);
            f(cons_rhs);
        }
        Term::Exn { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Term::Handle { body, handler, .. } => {
            f(body);
            f(handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (HashSet<RegVar>, HashSet<RegVar>) {
        let prog = rml_syntax::parse_program(src).unwrap();
        let typed = rml_hm::infer_program(&prog).unwrap();
        let out = rml_infer::infer(&typed, Default::default()).unwrap();
        finite_regions(&out.term)
    }

    #[test]
    fn single_pair_is_finite() {
        let (finite, _) = analyze("fun main () = let val p = (1, 2) in #1 p end");
        assert!(!finite.is_empty());
    }

    #[test]
    fn list_spine_under_recursion_is_infinite() {
        // The spine region receives one cons per call via the region
        // application — infinite.
        let (_, infinite) = analyze(
            "fun upto n = if n = 0 then nil else n :: upto (n - 1) \
             fun len xs = case xs of nil => 0 | h :: t => 1 + len t \
             fun main () = len (upto 10)",
        );
        assert!(!infinite.is_empty());
    }

    #[test]
    fn allocation_under_lambda_is_infinite() {
        let (_, infinite) = analyze(
            "fun main () = \
               let val mk = fn n => (n, n) \
                   val a = mk 1 \
                   val b = mk 2 \
               in #1 a + #1 b end",
        );
        // The pair region is allocated inside the lambda body.
        assert!(!infinite.is_empty());
    }

    #[test]
    fn bounds_cover_finite_regions() {
        let prog =
            rml_syntax::parse_program("fun main () = let val p = (1, 2) in #1 p end").unwrap();
        let typed = rml_hm::infer_program(&prog).unwrap();
        let out = rml_infer::infer(&typed, Default::default()).unwrap();
        let (finite, _) = finite_regions(&out.term);
        let bounds = finite_bounds(&out.term);
        for rv in &finite {
            assert!(
                bounds.contains_key(rv),
                "finite region {rv} must have a bound"
            );
        }
        // At least one region (the pair's) actually allocates.
        assert!(bounds.values().any(|b| *b >= 1));
    }

    #[test]
    fn classification_is_a_partition() {
        let (finite, infinite) = analyze(
            "fun f x = (x, x) \
             fun main () = let val p = (1, \"s\") in size (#2 p) + #1 (f 1) end",
        );
        assert!(finite.is_disjoint(&infinite));
    }
}
