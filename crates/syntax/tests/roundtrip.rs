//! Property test: random ASTs survive a print→parse round trip.

use proptest::prelude::*;
use rml_syntax::ast::{Decl, Expr, ExprKind, PrimOp};
use rml_syntax::pretty::{expr_to_string, program_to_string};
use rml_syntax::{parse_expr, parse_program, Program, Symbol};

fn ident() -> impl Strategy<Value = Symbol> {
    // A small pool so binders and uses hit each other.
    prop_oneof![
        Just(Symbol::intern("x")),
        Just(Symbol::intern("y")),
        Just(Symbol::intern("f")),
        Just(Symbol::intern("acc")),
    ]
}

fn binop() -> impl Strategy<Value = PrimOp> {
    prop_oneof![
        Just(PrimOp::Add),
        Just(PrimOp::Sub),
        Just(PrimOp::Mul),
        Just(PrimOp::Lt),
        Just(PrimOp::Eq),
        Just(PrimOp::Concat),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::from(ExprKind::Unit)),
        (-100i64..100).prop_map(|n| Expr::from(ExprKind::Int(n))),
        "[a-z ]{0,6}".prop_map(|s| Expr::from(ExprKind::Str(s))),
        any::<bool>().prop_map(|b| Expr::from(ExprKind::Bool(b))),
        ident().prop_map(|x| Expr::from(ExprKind::Var(x))),
        Just(Expr::from(ExprKind::Nil)),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (ident(), inner.clone()).prop_map(|(p, b)| Expr::from(ExprKind::Lam {
                param: p,
                ann: None,
                body: Box::new(b),
            })),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::from(ExprKind::App(Box::new(a), Box::new(b)))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::from(ExprKind::Pair(Box::new(a), Box::new(b)))),
            (1u8..3, inner.clone()).prop_map(|(i, e)| Expr::from(ExprKind::Sel(i, Box::new(e)))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::from(
                ExprKind::If(Box::new(c), Box::new(t), Box::new(f))
            )),
            (binop(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr::from(ExprKind::Prim(op, vec![a, b]))),
            (inner.clone(), inner.clone())
                .prop_map(|(h, t)| Expr::from(ExprKind::Cons(Box::new(h), Box::new(t)))),
            (
                inner.clone(),
                inner.clone(),
                ident(),
                ident(),
                inner.clone()
            )
                .prop_map(|(s, n, h, t, c)| Expr::from(ExprKind::CaseList {
                    scrut: Box::new(s),
                    nil_rhs: Box::new(n),
                    head: h,
                    tail: t,
                    cons_rhs: Box::new(c),
                })),
            inner
                .clone()
                .prop_map(|e| Expr::from(ExprKind::Ref(Box::new(e)))),
            inner
                .clone()
                .prop_map(|e| Expr::from(ExprKind::Deref(Box::new(e)))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::from(ExprKind::Assign(Box::new(a), Box::new(b)))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::from(ExprKind::Seq(Box::new(a), Box::new(b)))),
            (ident(), inner.clone(), inner.clone()).prop_map(|(x, rhs, body)| Expr::from(
                ExprKind::Let {
                    decls: vec![Decl::Val(x, rhs)],
                    body: Box::new(body),
                }
            )),
            inner
                .clone()
                .prop_map(|e| Expr::from(ExprKind::Raise(Box::new(e)))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(e in expr()) {
        let printed = expr_to_string(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nprinted: {printed}"));
        prop_assert_eq!(e, reparsed, "printed: {}", printed);
    }

    #[test]
    fn program_roundtrip(e1 in expr(), e2 in expr()) {
        let p = Program {
            decls: vec![
                Decl::Val(Symbol::intern("a"), e1),
                Decl::Val(Symbol::intern("b"), e2),
            ],
        };
        let printed = program_to_string(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nprinted: {printed}"));
        prop_assert_eq!(p, reparsed);
    }
}
