//! Pretty-printer for the source language.
//!
//! The output re-parses to an equal AST (round-tripping is tested by the
//! property tests in this module), which makes the printer usable for
//! golden tests and error messages.

use crate::ast::{Decl, Expr, ExprKind, Program, TyAnn};
use std::fmt::Write as _;

/// Renders a type annotation.
pub fn ty_to_string(t: &TyAnn) -> String {
    fn go(t: &TyAnn, prec: u8, out: &mut String) {
        match t {
            TyAnn::Var(v) => {
                let _ = write!(out, "'{v}");
            }
            TyAnn::Int => out.push_str("int"),
            TyAnn::String => out.push_str("string"),
            TyAnn::Bool => out.push_str("bool"),
            TyAnn::Unit => out.push_str("unit"),
            TyAnn::Exn => out.push_str("exn"),
            TyAnn::List(e) => {
                go(e, 3, out);
                out.push_str(" list");
            }
            TyAnn::Ref(e) => {
                go(e, 3, out);
                out.push_str(" ref");
            }
            TyAnn::Pair(a, b) => {
                let paren = prec > 1;
                if paren {
                    out.push('(');
                }
                go(a, 2, out);
                out.push_str(" * ");
                go(b, 1, out);
                if paren {
                    out.push(')');
                }
            }
            TyAnn::Arrow(a, b) => {
                let paren = prec > 0;
                if paren {
                    out.push('(');
                }
                go(a, 1, out);
                out.push_str(" -> ");
                go(b, 0, out);
                if paren {
                    out.push(')');
                }
            }
        }
    }
    let mut s = String::new();
    go(t, 0, &mut s);
    s
}

/// Renders an expression. All compound subexpressions are parenthesised,
/// which keeps the printer simple and unambiguous.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    go_expr(e, &mut s);
    s
}

fn atom(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Unit
            | ExprKind::Int(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Var(_)
            | ExprKind::Nil
    )
}

fn go_atom(e: &Expr, out: &mut String) {
    if atom(e) {
        go_expr(e, out);
    } else {
        out.push('(');
        go_expr(e, out);
        out.push(')');
    }
}

fn go_expr(e: &Expr, out: &mut String) {
    match &e.kind {
        ExprKind::Unit => out.push_str("()"),
        ExprKind::Int(n) => {
            if *n < 0 {
                let _ = write!(out, "~{}", -(*n as i128));
            } else {
                let _ = write!(out, "{n}");
            }
        }
        ExprKind::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        ExprKind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::Var(x) => {
            let _ = write!(out, "{x}");
        }
        ExprKind::Lam { param, ann, body } => {
            match ann {
                Some(t) => {
                    let _ = write!(out, "fn ({param} : {}) => ", ty_to_string(t));
                }
                None => {
                    let _ = write!(out, "fn {param} => ");
                }
            }
            go_expr(body, out);
        }
        ExprKind::App(f, a) => {
            go_atom(f, out);
            out.push(' ');
            go_atom(a, out);
        }
        ExprKind::Let { decls, body } => {
            out.push_str("let ");
            for d in decls {
                go_decl(d, out);
                out.push(' ');
            }
            out.push_str("in ");
            go_expr(body, out);
            out.push_str(" end");
        }
        ExprKind::Pair(a, b) => {
            out.push('(');
            go_expr(a, out);
            out.push_str(", ");
            go_expr(b, out);
            out.push(')');
        }
        ExprKind::Sel(i, e) => {
            let _ = write!(out, "#{i} ");
            go_atom(e, out);
        }
        ExprKind::If(c, t, f) => {
            out.push_str("if ");
            go_expr(c, out);
            out.push_str(" then ");
            go_expr(t, out);
            out.push_str(" else ");
            go_expr(f, out);
        }
        ExprKind::Prim(op, args) => match args.len() {
            1 => match op {
                crate::ast::PrimOp::Neg => {
                    out.push_str("~ ");
                    go_atom(&args[0], out);
                }
                crate::ast::PrimOp::Not => {
                    out.push_str("not ");
                    go_atom(&args[0], out);
                }
                _ => {
                    let _ = write!(out, "{op} ");
                    go_atom(&args[0], out);
                }
            },
            2 => {
                go_atom(&args[0], out);
                let _ = write!(out, " {op} ");
                go_atom(&args[1], out);
            }
            _ => {
                let _ = write!(out, "{op}");
                for a in args {
                    out.push(' ');
                    go_atom(a, out);
                }
            }
        },
        ExprKind::Nil => out.push_str("nil"),
        ExprKind::Cons(h, t) => {
            go_atom(h, out);
            out.push_str(" :: ");
            go_atom(t, out);
        }
        ExprKind::CaseList {
            scrut,
            nil_rhs,
            head,
            tail,
            cons_rhs,
        } => {
            out.push_str("case ");
            go_expr(scrut, out);
            out.push_str(" of nil => ");
            go_expr(nil_rhs, out);
            let _ = write!(out, " | {head} :: {tail} => ");
            go_expr(cons_rhs, out);
        }
        ExprKind::Ref(e) => {
            out.push_str("ref ");
            go_atom(e, out);
        }
        ExprKind::Deref(e) => {
            out.push('!');
            go_atom(e, out);
        }
        ExprKind::Assign(a, b) => {
            go_atom(a, out);
            out.push_str(" := ");
            go_atom(b, out);
        }
        ExprKind::Seq(a, b) => {
            out.push('(');
            go_expr(a, out);
            out.push_str("; ");
            go_expr(b, out);
            out.push(')');
        }
        ExprKind::Ann(e, t) => {
            out.push('(');
            go_expr(e, out);
            let _ = write!(out, " : {})", ty_to_string(t));
        }
        ExprKind::Raise(e) => {
            out.push_str("raise ");
            go_atom(e, out);
        }
        ExprKind::Handle {
            body,
            exn,
            arg,
            handler,
        } => {
            go_atom(body, out);
            let _ = write!(out, " handle {exn} {arg} => ");
            go_expr(handler, out);
        }
        ExprKind::Con(name, arg) => match arg {
            None => {
                let _ = write!(out, "{name}");
            }
            Some(a) => {
                let _ = write!(out, "{name} ");
                go_atom(a, out);
            }
        },
    }
}

fn go_decl(d: &Decl, out: &mut String) {
    match d {
        Decl::Val(x, e) => {
            let _ = write!(out, "val {x} = ");
            go_expr(e, out);
        }
        Decl::Fun(binds) => {
            for (i, b) in binds.iter().enumerate() {
                out.push_str(if i == 0 { "fun " } else { " and " });
                let _ = write!(out, "{}", b.name);
                for (p, ann) in &b.params {
                    match ann {
                        Some(TyAnn::Unit) if p.as_str() == "_" => out.push_str(" ()"),
                        Some(t) => {
                            let _ = write!(out, " ({p} : {})", ty_to_string(t));
                        }
                        None => {
                            let _ = write!(out, " {p}");
                        }
                    }
                }
                if let Some(t) = &b.ret {
                    let _ = write!(out, " : {}", ty_to_string(t));
                }
                out.push_str(" = ");
                go_expr(&b.body, out);
            }
        }
        Decl::Exception(name, arg) => match arg {
            None => {
                let _ = write!(out, "exception {name}");
            }
            Some(t) => {
                let _ = write!(out, "exception {name} of {}", ty_to_string(t));
            }
        },
    }
}

/// Renders a whole program, one declaration per line.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for d in &p.decls {
        go_decl(d, &mut s);
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = expr_to_string(&e);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        assert_eq!(e, e2, "printed: {printed}");
    }

    #[test]
    fn roundtrips() {
        for src in [
            "1 + 2 * 3",
            "fn x => x :: [1, 2]",
            "let val x = (1, \"two\") in #1 x end",
            "if a < b then ~a else !r",
            "case xs of nil => 0 | h :: t => h",
            "(r := 5; !r)",
            "raise (E \"msg\")",
            "(f 1) handle E x => x",
            "let fun f x = f x in f end",
            "(x : int list)",
            "\"a\\nb\" ^ \"c\"",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn program_roundtrip() {
        let src = "fun f (x : int) : int = x + 1 and g y = f y\nexception E of string * int\nval main = fn () => g 1\n";
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn ty_printing() {
        use crate::ast::TyAnn::*;
        let t = Arrow(
            Box::new(Pair(
                Box::new(Int),
                Box::new(List(Box::new(Var(crate::symbol::Symbol::intern("a"))))),
            )),
            Box::new(Unit),
        );
        assert_eq!(ty_to_string(&t), "int * 'a list -> unit");
    }
}
