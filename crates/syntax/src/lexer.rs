//! Lexer for the source language.
//!
//! Produces a vector of [`Token`]s with line/column positions. Comments are
//! SML-style `(* ... *)` and nest.

use rml_session::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (also used for type variables without the quote).
    Ident(String),
    /// Type variable `'a`.
    TyVar(String),
    /// Integer literal (a leading `~` is handled by the parser as negation).
    Int(i64),
    /// String literal with escapes resolved.
    Str(String),
    // Keywords.
    Let,
    Val,
    Fun,
    And,
    In,
    End,
    Fn,
    If,
    Then,
    Else,
    Case,
    Of,
    NilKw,
    Raise,
    Handle,
    Exception,
    Andalso,
    Orelse,
    Not,
    RefKw,
    True,
    False,
    Div,
    Mod,
    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    DArrow,   // =>
    Arrow,    // ->
    Equal,    // =
    NotEqual, // <>
    Less,
    LessEq,
    Greater,
    GreaterEq,
    Plus,
    Minus,
    Star,
    Caret,  // ^
    Cons,   // ::
    Hash,   // #
    Bang,   // !
    Assign, // :=
    Bar,    // |
    Colon,  // :
    Tilde,  // ~
    Underscore,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::TyVar(s) => write!(f, "'{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Let => write!(f, "let"),
            Tok::Val => write!(f, "val"),
            Tok::Fun => write!(f, "fun"),
            Tok::And => write!(f, "and"),
            Tok::In => write!(f, "in"),
            Tok::End => write!(f, "end"),
            Tok::Fn => write!(f, "fn"),
            Tok::If => write!(f, "if"),
            Tok::Then => write!(f, "then"),
            Tok::Else => write!(f, "else"),
            Tok::Case => write!(f, "case"),
            Tok::Of => write!(f, "of"),
            Tok::NilKw => write!(f, "nil"),
            Tok::Raise => write!(f, "raise"),
            Tok::Handle => write!(f, "handle"),
            Tok::Exception => write!(f, "exception"),
            Tok::Andalso => write!(f, "andalso"),
            Tok::Orelse => write!(f, "orelse"),
            Tok::Not => write!(f, "not"),
            Tok::RefKw => write!(f, "ref"),
            Tok::True => write!(f, "true"),
            Tok::False => write!(f, "false"),
            Tok::Div => write!(f, "div"),
            Tok::Mod => write!(f, "mod"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::DArrow => write!(f, "=>"),
            Tok::Arrow => write!(f, "->"),
            Tok::Equal => write!(f, "="),
            Tok::NotEqual => write!(f, "<>"),
            Tok::Less => write!(f, "<"),
            Tok::LessEq => write!(f, "<="),
            Tok::Greater => write!(f, ">"),
            Tok::GreaterEq => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Caret => write!(f, "^"),
            Tok::Cons => write!(f, "::"),
            Tok::Hash => write!(f, "#"),
            Tok::Bang => write!(f, "!"),
            Tok::Assign => write!(f, ":="),
            Tok::Bar => write!(f, "|"),
            Tok::Colon => write!(f, ":"),
            Tok::Tilde => write!(f, "~"),
            Tok::Underscore => write!(f, "_"),
        }
    }
}

/// A token paired with its source position (1-based line and column) and
/// byte-range span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte range of the token in the source buffer.
    pub span: Span,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte range of the offending text.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: lexical error: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
            span: Span::new(self.pos as u32, self.pos as u32 + 1),
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let (l, c, p) = (self.line, self.col, self.pos);
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'('), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(b'*'), Some(b')')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError {
                                    msg: "unterminated comment".into(),
                                    line: l,
                                    col: c,
                                    span: Span::new(p as u32, p as u32 + 2),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn string_lit(&mut self) -> Result<String, LexError> {
        // Opening quote already consumed.
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'"') => s.push('"'),
                    Some(c) => return Err(self.err(format!("bad escape \\{}", c as char))),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => s.push(c as char),
                None => return Err(self.err("unterminated string")),
            }
        }
    }
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed input (unterminated strings or
/// comments, bad escapes, stray characters).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_ws_and_comments()?;
        let (line, col) = (lx.line, lx.col);
        let start = lx.pos as u32;
        let Some(c) = lx.peek() else { break };
        let tok = match c {
            b'0'..=b'9' => {
                let start = lx.pos;
                while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lx.bump();
                }
                let text = std::str::from_utf8(&lx.src[start..lx.pos]).unwrap();
                Tok::Int(
                    text.parse::<i64>()
                        .map_err(|_| lx.err(format!("integer literal {text} out of range")))?,
                )
            }
            b'"' => {
                lx.bump();
                Tok::Str(lx.string_lit()?)
            }
            b'\'' => {
                lx.bump();
                let name = lx.ident();
                if name.is_empty() {
                    return Err(lx.err("expected type variable name after '"));
                }
                Tok::TyVar(name)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let name = lx.ident();
                match name.as_str() {
                    "let" => Tok::Let,
                    "val" => Tok::Val,
                    "fun" => Tok::Fun,
                    "and" => Tok::And,
                    "in" => Tok::In,
                    "end" => Tok::End,
                    "fn" => Tok::Fn,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "case" => Tok::Case,
                    "of" => Tok::Of,
                    "nil" => Tok::NilKw,
                    "raise" => Tok::Raise,
                    "handle" => Tok::Handle,
                    "exception" => Tok::Exception,
                    "andalso" => Tok::Andalso,
                    "orelse" => Tok::Orelse,
                    "not" => Tok::Not,
                    "ref" => Tok::RefKw,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "div" => Tok::Div,
                    "mod" => Tok::Mod,
                    "_" => Tok::Underscore,
                    _ => Tok::Ident(name),
                }
            }
            b'(' => {
                lx.bump();
                Tok::LParen
            }
            b')' => {
                lx.bump();
                Tok::RParen
            }
            b'[' => {
                lx.bump();
                Tok::LBracket
            }
            b']' => {
                lx.bump();
                Tok::RBracket
            }
            b',' => {
                lx.bump();
                Tok::Comma
            }
            b';' => {
                lx.bump();
                Tok::Semi
            }
            b'=' => {
                lx.bump();
                if lx.peek() == Some(b'>') {
                    lx.bump();
                    Tok::DArrow
                } else {
                    Tok::Equal
                }
            }
            b'-' => {
                lx.bump();
                if lx.peek() == Some(b'>') {
                    lx.bump();
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'<' => {
                lx.bump();
                match lx.peek() {
                    Some(b'=') => {
                        lx.bump();
                        Tok::LessEq
                    }
                    Some(b'>') => {
                        lx.bump();
                        Tok::NotEqual
                    }
                    _ => Tok::Less,
                }
            }
            b'>' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::GreaterEq
                } else {
                    Tok::Greater
                }
            }
            b'+' => {
                lx.bump();
                Tok::Plus
            }
            b'*' => {
                lx.bump();
                Tok::Star
            }
            b'^' => {
                lx.bump();
                Tok::Caret
            }
            b':' => {
                lx.bump();
                match lx.peek() {
                    Some(b':') => {
                        lx.bump();
                        Tok::Cons
                    }
                    Some(b'=') => {
                        lx.bump();
                        Tok::Assign
                    }
                    _ => Tok::Colon,
                }
            }
            b'#' => {
                lx.bump();
                Tok::Hash
            }
            b'!' => {
                lx.bump();
                Tok::Bang
            }
            b'|' => {
                lx.bump();
                Tok::Bar
            }
            b'~' => {
                lx.bump();
                Tok::Tilde
            }
            other => return Err(lx.err(format!("unexpected character {:?}", other as char))),
        };
        out.push(Token {
            tok,
            line,
            col,
            span: Span::new(start, lx.pos as u32),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("let val x = fn y => y in x end"),
            vec![
                Tok::Let,
                Tok::Val,
                Tok::Ident("x".into()),
                Tok::Equal,
                Tok::Fn,
                Tok::Ident("y".into()),
                Tok::DArrow,
                Tok::Ident("y".into()),
                Tok::In,
                Tok::Ident("x".into()),
                Tok::End
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks(":: := : <> <= >= => -> = < >"),
            vec![
                Tok::Cons,
                Tok::Assign,
                Tok::Colon,
                Tok::NotEqual,
                Tok::LessEq,
                Tok::GreaterEq,
                Tok::DArrow,
                Tok::Arrow,
                Tok::Equal,
                Tok::Less,
                Tok::Greater
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            toks(r#""oh" ^ "no\n""#),
            vec![Tok::Str("oh".into()), Tok::Caret, Tok::Str("no\n".into())]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            toks("1 (* a (* b *) c *) 2"),
            vec![Tok::Int(1), Tok::Int(2)]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn type_variables() {
        assert_eq!(
            toks("'a 'b2"),
            vec![Tok::TyVar("a".into()), Tok::TyVar("b2".into())]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("x\n  y").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }
}
