//! Source-language front end for `rml`.
//!
//! This crate defines the ML-like surface language used throughout the
//! reproduction of Elsman's *Garbage-Collection Safety for Region-Based
//! Type-Polymorphic Programs* (PLDI 2023): interned symbols, the abstract
//! syntax tree, a hand-written lexer and recursive-descent parser, and a
//! pretty-printer.
//!
//! The language is a small but expressive subset of Standard ML:
//!
//! * literals: integers, strings, booleans, `()`
//! * `fn x => e`, application, `let ... in e end` with `val` and (mutually
//!   recursive) `fun` declarations
//! * pairs `(e1, e2)` with projections `#1 e` / `#2 e` (tuples of arity
//!   *n* parse as right-nested pairs)
//! * built-in lists: `nil`, `e :: e`, `[e, ..., e]`, and
//!   `case e of nil => e | x :: xs => e`
//! * `if`/`then`/`else`, `andalso`, `orelse`, sequencing `;`
//! * references `ref e`, `!e`, `e := e`
//! * exceptions: `exception E of ty`, `raise e`, `e handle E x => e`
//! * the usual arithmetic, comparison, and string operators, plus the
//!   effect-ful builtins `print`, `itos`, `size`, and `forcegc` (the latter
//!   triggers a reference-tracing collection, playing the role of the
//!   paper's `work ()` call)
//!
//! # Example
//!
//! ```
//! use rml_syntax::parse_program;
//! let prog = parse_program(r#"
//!     fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
//!     val main = fn () => fib 10
//! "#).unwrap();
//! assert_eq!(prog.decls.len(), 2);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod symbol;

pub use ast::{Decl, Expr, ExprKind, FunBind, Program, TyAnn};
pub use parser::{parse_expr, parse_program, ParseError};
pub use rml_session::Span;
pub use symbol::Symbol;
