//! Recursive-descent parser for the source language.
//!
//! Operator precedence follows Standard ML: `handle` and type annotations
//! bind loosest, then `orelse`, `andalso`, `:=`, comparisons, `::` (right
//! associative), additive operators (`+ - ^`), multiplicative operators
//! (`* div mod`), application, and atomic expressions.
//!
//! Every production records the byte-range [`Span`] of the source text it
//! consumed: leaves take their token's span, composites merge the spans of
//! their first and last tokens, and desugared nodes (tuples, `andalso`,
//! list literals, tuple-pattern bindings) inherit the span of the sugar
//! they expand.

use crate::ast::{Decl, Expr, ExprKind, FunBind, PrimOp, Program, TyAnn};
use crate::lexer::{lex, LexError, Tok, Token};
use crate::symbol::Symbol;
use rml_session::Span;
use std::fmt;

/// Parse error, carrying a 1-based source position and a byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line (0 when at end of input).
    pub line: u32,
    /// 1-based column (0 when at end of input).
    pub col: u32,
    /// Byte range of the offending token (the last token when at end of
    /// input; [`Span::DUMMY`] for empty input).
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: parse error: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
            span: e.span,
        }
    }
}

/// Maximum expression/type nesting depth. The parser is recursive
/// descent, so unbounded nesting (`((((…`) would overflow the stack —
/// a crash, not a [`ParseError`]. Each nesting level costs the full
/// precedence chain (~11 stack frames), so the limit keeps worst-case
/// stack use under a megabyte even in debug builds on a default 2 MiB
/// thread, while staying far beyond any real program's nesting.
const MAX_PARSE_DEPTH: usize = 64;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

/// A parsed parameter, possibly a tuple pattern pending desugaring.
struct Param {
    var: Symbol,
    ann: Option<TyAnn>,
    tuple: Option<Vec<Symbol>>,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Span of the next token to consume (falling back to the last token's
    /// span at end of input).
    fn cur_span(&self) -> Span {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.span)
            .unwrap_or(Span::DUMMY)
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        if self.pos == 0 {
            Span::DUMMY
        } else {
            self.toks[self.pos - 1].span
        }
    }

    /// Wraps `kind` in the span from `lo` through the last consumed token.
    fn close(&self, lo: Span, kind: ExprKind) -> Expr {
        kind.at(lo.merge(self.prev_span()))
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        ParseError {
            msg: msg.into(),
            line,
            col,
            span: self.cur_span(),
        }
    }

    /// Depth accounting for the recursive productions ([`Parser::expr`]
    /// and [`Parser::ty`], which every nesting cycle passes through).
    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(self.err_here("expression nesting too deep"))
        } else {
            Ok(())
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        match self.peek() {
            Some(x) if *x == t => {
                self.bump();
                Ok(())
            }
            Some(x) => Err(self.err_here(format!("expected `{t}`, found `{x}`"))),
            None => Err(self.err_here(format!("expected `{t}`, found end of input"))),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<Symbol> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(Symbol::intern(&s)),
            Some(Tok::Underscore) => Ok(Symbol::intern("_")),
            Some(t) => {
                self.pos -= 1;
                Err(self.err_here(format!("expected identifier, found `{t}`")))
            }
            None => Err(self.err_here("expected identifier, found end of input")),
        }
    }

    // ---------- types ----------

    fn ty(&mut self) -> PResult<TyAnn> {
        self.enter()?;
        let r = self.ty_inner();
        self.depth -= 1;
        r
    }

    fn ty_inner(&mut self) -> PResult<TyAnn> {
        let lhs = self.ty_prod()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.ty()?;
            Ok(TyAnn::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> PResult<TyAnn> {
        let mut parts = vec![self.ty_postfix()?];
        while self.eat(&Tok::Star) {
            parts.push(self.ty_postfix()?);
        }
        let mut it = parts.into_iter().rev();
        let mut acc = it.next().unwrap();
        for p in it {
            acc = TyAnn::Pair(Box::new(p), Box::new(acc));
        }
        Ok(acc)
    }

    fn ty_postfix(&mut self) -> PResult<TyAnn> {
        let mut t = self.ty_atom()?;
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "list" => {
                    self.bump();
                    t = TyAnn::List(Box::new(t));
                }
                Some(Tok::RefKw) => {
                    self.bump();
                    t = TyAnn::Ref(Box::new(t));
                }
                _ => return Ok(t),
            }
        }
    }

    fn ty_atom(&mut self) -> PResult<TyAnn> {
        match self.bump() {
            Some(Tok::TyVar(v)) => Ok(TyAnn::Var(Symbol::intern(&v))),
            Some(Tok::Ident(s)) => match s.as_str() {
                "int" => Ok(TyAnn::Int),
                "string" => Ok(TyAnn::String),
                "bool" => Ok(TyAnn::Bool),
                "unit" => Ok(TyAnn::Unit),
                "exn" => Ok(TyAnn::Exn),
                _ => {
                    self.pos -= 1;
                    Err(self.err_here(format!("unknown type constructor `{s}`")))
                }
            },
            Some(Tok::LParen) => {
                if self.eat(&Tok::RParen) {
                    return Ok(TyAnn::Unit);
                }
                let t = self.ty()?;
                self.expect(Tok::RParen)?;
                Ok(t)
            }
            Some(t) => {
                self.pos -= 1;
                Err(self.err_here(format!("expected type, found `{t}`")))
            }
            None => Err(self.err_here("expected type, found end of input")),
        }
    }

    // ---------- declarations ----------

    fn decl(&mut self) -> PResult<Decl> {
        match self.peek() {
            Some(Tok::Val) => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Equal)?;
                let e = self.expr()?;
                Ok(Decl::Val(name, e))
            }
            Some(Tok::Fun) => {
                self.bump();
                let mut binds = vec![self.funbind()?];
                while self.eat(&Tok::And) {
                    binds.push(self.funbind()?);
                }
                Ok(Decl::Fun(binds))
            }
            Some(Tok::Exception) => {
                self.bump();
                let name = self.ident()?;
                let arg = if matches!(self.peek(), Some(Tok::Of)) {
                    self.bump();
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Decl::Exception(name, arg))
            }
            other => Err(self.err_here(format!(
                "expected declaration, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    fn funbind(&mut self) -> PResult<FunBind> {
        let name_span = self.cur_span();
        let name = self.ident()?;
        let mut params = vec![self.param()?];
        while matches!(
            self.peek(),
            Some(Tok::Ident(_) | Tok::Underscore | Tok::LParen)
        ) {
            params.push(self.param()?);
        }
        let ret = if self.eat(&Tok::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        self.expect(Tok::Equal)?;
        let mut body = self.expr()?;
        // Desugar tuple patterns, innermost parameter first.
        for p in params.iter().rev() {
            if let Some(comps) = &p.tuple {
                body = Self::wrap_tuple_param(p.var, comps, body);
            }
        }
        Ok(FunBind {
            name,
            params: params.into_iter().map(|p| (p.var, p.ann)).collect(),
            ret,
            body,
            span: name_span,
        })
    }

    /// A function or `fn` parameter: `x`, `_`, `()`, `(x : ty)`, or a tuple
    /// pattern `(x, y, ...)` of plain identifiers. Tuple patterns are
    /// desugared: the parameter becomes a fresh variable and the body is
    /// wrapped in projection bindings (see [`Parser::wrap_tuple_param`]).
    fn param(&mut self) -> PResult<Param> {
        match self.peek() {
            Some(Tok::Ident(_) | Tok::Underscore) => Ok(Param {
                var: self.ident()?,
                ann: None,
                tuple: None,
            }),
            Some(Tok::LParen) => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    // Unit parameter `()`: bind a wildcard of type unit.
                    return Ok(Param {
                        var: Symbol::intern("_"),
                        ann: Some(TyAnn::Unit),
                        tuple: None,
                    });
                }
                let name = self.ident()?;
                if self.peek() == Some(&Tok::Comma) {
                    let mut comps = vec![name];
                    while self.eat(&Tok::Comma) {
                        comps.push(self.ident()?);
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Param {
                        var: Symbol::fresh("p"),
                        ann: None,
                        tuple: Some(comps),
                    });
                }
                let ann = if self.eat(&Tok::Colon) {
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(Tok::RParen)?;
                Ok(Param {
                    var: name,
                    ann,
                    tuple: None,
                })
            }
            other => Err(self.err_here(format!(
                "expected parameter, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    /// Wraps `body` with bindings that destructure the tuple parameter
    /// `var` into `comps` via nested pair projections. The synthesised
    /// nodes inherit the body's span.
    fn wrap_tuple_param(var: Symbol, comps: &[Symbol], body: Expr) -> Expr {
        // (a, b, c) matches the right-nested pair (a, (b, c)).
        let span = body.span;
        let mut decls = Vec::new();
        let mut path: Expr = ExprKind::Var(var).at(span);
        for (i, &c) in comps.iter().enumerate() {
            if i + 1 == comps.len() {
                decls.push(Decl::Val(c, path.clone()));
            } else {
                decls.push(Decl::Val(
                    c,
                    ExprKind::Sel(1, Box::new(path.clone())).at(span),
                ));
                path = ExprKind::Sel(2, Box::new(path)).at(span);
            }
        }
        ExprKind::Let {
            decls,
            body: Box::new(body),
        }
        .at(span)
    }

    // ---------- expressions ----------

    fn expr(&mut self) -> PResult<Expr> {
        self.enter()?;
        let r = self.expr_inner();
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let mut e = self.expr_orelse()?;
        loop {
            match self.peek() {
                Some(Tok::Colon) => {
                    self.bump();
                    let t = self.ty()?;
                    e = self.close(lo, ExprKind::Ann(Box::new(e), t));
                }
                Some(Tok::Handle) => {
                    self.bump();
                    let exn = self.ident()?;
                    // Optional argument binder; nullary handlers use `_`.
                    let arg = if matches!(self.peek(), Some(Tok::Ident(_) | Tok::Underscore)) {
                        self.ident()?
                    } else {
                        Symbol::intern("_")
                    };
                    self.expect(Tok::DArrow)?;
                    let handler = self.expr()?;
                    e = self.close(
                        lo,
                        ExprKind::Handle {
                            body: Box::new(e),
                            exn,
                            arg,
                            handler: Box::new(handler),
                        },
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn expr_orelse(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let lhs = self.expr_andalso()?;
        if self.eat(&Tok::Orelse) {
            let rhs = self.expr_orelse()?;
            // e1 orelse e2  ==  if e1 then true else e2
            let t: Expr = ExprKind::Bool(true).into();
            Ok(self.close(lo, ExprKind::If(Box::new(lhs), Box::new(t), Box::new(rhs))))
        } else {
            Ok(lhs)
        }
    }

    fn expr_andalso(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let lhs = self.expr_assign()?;
        if self.eat(&Tok::Andalso) {
            let rhs = self.expr_andalso()?;
            // e1 andalso e2  ==  if e1 then e2 else false
            let f: Expr = ExprKind::Bool(false).into();
            Ok(self.close(lo, ExprKind::If(Box::new(lhs), Box::new(rhs), Box::new(f))))
        } else {
            Ok(lhs)
        }
    }

    fn expr_assign(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let lhs = self.expr_cmp()?;
        if self.eat(&Tok::Assign) {
            let rhs = self.expr_cmp()?;
            Ok(self.close(lo, ExprKind::Assign(Box::new(lhs), Box::new(rhs))))
        } else {
            Ok(lhs)
        }
    }

    fn expr_cmp(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let lhs = self.expr_cons()?;
        let op = match self.peek() {
            Some(Tok::Equal) => PrimOp::Eq,
            Some(Tok::NotEqual) => PrimOp::Ne,
            Some(Tok::Less) => PrimOp::Lt,
            Some(Tok::LessEq) => PrimOp::Le,
            Some(Tok::Greater) => PrimOp::Gt,
            Some(Tok::GreaterEq) => PrimOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_cons()?;
        Ok(self.close(lo, ExprKind::Prim(op, vec![lhs, rhs])))
    }

    fn expr_cons(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let lhs = self.expr_add()?;
        if self.eat(&Tok::Cons) {
            let rhs = self.expr_cons()?; // right associative
            Ok(self.close(lo, ExprKind::Cons(Box::new(lhs), Box::new(rhs))))
        } else {
            Ok(lhs)
        }
    }

    fn expr_add(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => PrimOp::Add,
                Some(Tok::Minus) => PrimOp::Sub,
                Some(Tok::Caret) => PrimOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_mul()?;
            lhs = self.close(lo, ExprKind::Prim(op, vec![lhs, rhs]));
        }
    }

    fn expr_mul(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let mut lhs = self.expr_app()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => PrimOp::Mul,
                Some(Tok::Div) => PrimOp::Div,
                Some(Tok::Mod) => PrimOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_app()?;
            lhs = self.close(lo, ExprKind::Prim(op, vec![lhs, rhs]));
        }
    }

    fn expr_app(&mut self) -> PResult<Expr> {
        let mut e = self.expr_unary()?;
        while self.starts_atom() {
            let arg = self.expr_unary()?;
            let span = e.span.merge(arg.span);
            e = ExprKind::App(Box::new(e), Box::new(arg)).at(span);
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Tok::Ident(_)
                    | Tok::Int(_)
                    | Tok::Str(_)
                    | Tok::True
                    | Tok::False
                    | Tok::NilKw
                    | Tok::LParen
                    | Tok::LBracket
                    | Tok::Hash
                    | Tok::Bang
                    | Tok::Tilde
                    | Tok::RefKw
                    | Tok::Not
                    | Tok::Let
                    | Tok::Underscore
            )
        )
    }

    fn expr_unary(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        match self.peek() {
            Some(Tok::Tilde) => {
                self.bump();
                // `~3` folds to a negative literal; `~e` is negation.
                if let Some(Tok::Int(n)) = self.peek() {
                    let n = *n;
                    self.bump();
                    Ok(self.close(lo, ExprKind::Int(-n)))
                } else {
                    let e = self.expr_unary()?;
                    Ok(self.close(lo, ExprKind::Prim(PrimOp::Neg, vec![e])))
                }
            }
            Some(Tok::Bang) => {
                self.bump();
                let e = self.expr_unary()?;
                Ok(self.close(lo, ExprKind::Deref(Box::new(e))))
            }
            Some(Tok::RefKw) => {
                self.bump();
                let e = self.expr_unary()?;
                Ok(self.close(lo, ExprKind::Ref(Box::new(e))))
            }
            Some(Tok::Not) => {
                self.bump();
                let e = self.expr_unary()?;
                Ok(self.close(lo, ExprKind::Prim(PrimOp::Not, vec![e])))
            }
            Some(Tok::Hash) => {
                self.bump();
                match self.bump() {
                    Some(Tok::Int(1)) => {
                        let e = self.expr_unary()?;
                        Ok(self.close(lo, ExprKind::Sel(1, Box::new(e))))
                    }
                    Some(Tok::Int(2)) => {
                        let e = self.expr_unary()?;
                        Ok(self.close(lo, ExprKind::Sel(2, Box::new(e))))
                    }
                    _ => {
                        self.pos -= 1;
                        Err(self.err_here("expected `#1` or `#2`"))
                    }
                }
            }
            _ => self.expr_atom(),
        }
    }

    fn expr_atom(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        match self.peek() {
            Some(Tok::Int(_)) => {
                let Some(Tok::Int(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(ExprKind::Int(n).at(lo))
            }
            Some(Tok::Str(_)) => {
                let Some(Tok::Str(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(ExprKind::Str(s).at(lo))
            }
            Some(Tok::True) => {
                self.bump();
                Ok(ExprKind::Bool(true).at(lo))
            }
            Some(Tok::False) => {
                self.bump();
                Ok(ExprKind::Bool(false).at(lo))
            }
            Some(Tok::NilKw) => {
                self.bump();
                Ok(ExprKind::Nil.at(lo))
            }
            Some(Tok::Ident(_) | Tok::Underscore) => Ok(ExprKind::Var(self.ident()?).at(lo)),
            Some(Tok::Fn) => {
                self.bump();
                let p = self.param()?;
                self.expect(Tok::DArrow)?;
                let mut body = self.expr()?;
                if let Some(comps) = &p.tuple {
                    body = Self::wrap_tuple_param(p.var, comps, body);
                }
                Ok(self.close(
                    lo,
                    ExprKind::Lam {
                        param: p.var,
                        ann: p.ann,
                        body: Box::new(body),
                    },
                ))
            }
            Some(Tok::If) => {
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                Ok(self.close(lo, ExprKind::If(Box::new(c), Box::new(t), Box::new(e))))
            }
            Some(Tok::Case) => {
                self.bump();
                let scrut = self.expr()?;
                self.expect(Tok::Of)?;
                let e = self.case_match(scrut)?;
                Ok(self.close(lo, e.kind))
            }
            Some(Tok::Raise) => {
                self.bump();
                let e = self.expr()?;
                Ok(self.close(lo, ExprKind::Raise(Box::new(e))))
            }
            Some(Tok::Let) => {
                self.bump();
                let mut decls = Vec::new();
                while matches!(self.peek(), Some(Tok::Val | Tok::Fun | Tok::Exception)) {
                    decls.push(self.decl()?);
                }
                self.expect(Tok::In)?;
                let body = self.expr_seq()?;
                self.expect(Tok::End)?;
                Ok(self.close(
                    lo,
                    ExprKind::Let {
                        decls,
                        body: Box::new(body),
                    },
                ))
            }
            Some(Tok::LParen) => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(self.close(lo, ExprKind::Unit));
                }
                let first = self.expr()?;
                match self.peek() {
                    Some(Tok::Comma) => {
                        let mut items = vec![first];
                        while self.eat(&Tok::Comma) {
                            items.push(self.expr()?);
                        }
                        self.expect(Tok::RParen)?;
                        let span = lo.merge(self.prev_span());
                        // Right-nest tuples into pairs.
                        let mut it = items.into_iter().rev();
                        let mut acc = it.next().unwrap();
                        for x in it {
                            acc = ExprKind::Pair(Box::new(x), Box::new(acc)).at(span);
                        }
                        Ok(acc)
                    }
                    Some(Tok::Semi) => {
                        let mut items = vec![first];
                        while self.eat(&Tok::Semi) {
                            items.push(self.expr()?);
                        }
                        self.expect(Tok::RParen)?;
                        let span = lo.merge(self.prev_span());
                        let mut it = items.into_iter().rev();
                        let mut acc = it.next().unwrap();
                        for x in it {
                            acc = ExprKind::Seq(Box::new(x), Box::new(acc)).at(span);
                        }
                        Ok(acc)
                    }
                    _ => {
                        self.expect(Tok::RParen)?;
                        // Keep the inner expression but widen its span to
                        // include the parentheses.
                        let span = lo.merge(self.prev_span());
                        Ok(first.kind.at(span))
                    }
                }
            }
            Some(Tok::LBracket) => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    items.push(self.expr()?);
                    while self.eat(&Tok::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(Tok::RBracket)?;
                }
                let span = lo.merge(self.prev_span());
                let mut acc = ExprKind::Nil.at(span);
                for x in items.into_iter().rev() {
                    acc = ExprKind::Cons(Box::new(x), Box::new(acc)).at(span);
                }
                Ok(acc)
            }
            other => Err(self.err_here(format!(
                "expected expression, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    /// Parses the two arms of a list case, in either order.
    fn case_match(&mut self, scrut: Expr) -> PResult<Expr> {
        // First arm.
        if self.eat(&Tok::NilKw) || self.empty_brackets() {
            self.expect(Tok::DArrow)?;
            let nil_rhs = self.expr()?;
            self.expect(Tok::Bar)?;
            let head = self.ident()?;
            self.expect(Tok::Cons)?;
            let tail = self.ident()?;
            self.expect(Tok::DArrow)?;
            let cons_rhs = self.expr()?;
            Ok(ExprKind::CaseList {
                scrut: Box::new(scrut),
                nil_rhs: Box::new(nil_rhs),
                head,
                tail,
                cons_rhs: Box::new(cons_rhs),
            }
            .into())
        } else {
            let head = self.ident()?;
            self.expect(Tok::Cons)?;
            let tail = self.ident()?;
            self.expect(Tok::DArrow)?;
            let cons_rhs = self.expr()?;
            self.expect(Tok::Bar)?;
            if !self.eat(&Tok::NilKw) && !self.empty_brackets() {
                return Err(self.err_here("expected `nil` pattern"));
            }
            self.expect(Tok::DArrow)?;
            let nil_rhs = self.expr()?;
            Ok(ExprKind::CaseList {
                scrut: Box::new(scrut),
                nil_rhs: Box::new(nil_rhs),
                head,
                tail,
                cons_rhs: Box::new(cons_rhs),
            }
            .into())
        }
    }

    fn empty_brackets(&mut self) -> bool {
        if self.peek() == Some(&Tok::LBracket) && self.peek2() == Some(&Tok::RBracket) {
            self.bump();
            self.bump();
            true
        } else {
            false
        }
    }

    fn expr_seq(&mut self) -> PResult<Expr> {
        let lo = self.cur_span();
        let first = self.expr()?;
        if self.eat(&Tok::Semi) {
            let rest = self.expr_seq()?;
            Ok(self.close(lo, ExprKind::Seq(Box::new(first), Box::new(rest))))
        } else {
            Ok(first)
        }
    }
}

/// Parses a whole program (a sequence of top-level declarations).
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors, or if input
/// remains after the last declaration.
///
/// # Example
///
/// ```
/// let p = rml_syntax::parse_program("val x = 1 + 2").unwrap();
/// assert_eq!(p.decls.len(), 1);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut decls = Vec::new();
    while p.peek().is_some() {
        decls.push(p.decl()?);
    }
    Ok(Program { decls })
}

/// Parses a single expression, requiring all input to be consumed.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors or trailing
/// input.
///
/// # Example
///
/// ```
/// let e = rml_syntax::parse_expr("(fn x => x) 42").unwrap();
/// assert_eq!(e.size(), 4);
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    if p.peek().is_some() {
        return Err(p.err_here("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Decl, Expr, ExprKind, PrimOp};

    #[test]
    fn parses_application_left_assoc() {
        let e = parse_expr("f x y").unwrap();
        assert_eq!(
            e,
            Expr::app(Expr::app(Expr::var("f"), Expr::var("x")), Expr::var("y"))
        );
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let mul: Expr = ExprKind::Prim(
            PrimOp::Mul,
            vec![ExprKind::Int(2).into(), ExprKind::Int(3).into()],
        )
        .into();
        assert_eq!(
            e,
            ExprKind::Prim(PrimOp::Add, vec![ExprKind::Int(1).into(), mul]).into()
        );
    }

    #[test]
    fn cons_is_right_assoc() {
        let e = parse_expr("1 :: 2 :: nil").unwrap();
        let tail: Expr = ExprKind::Cons(
            Box::new(ExprKind::Int(2).into()),
            Box::new(ExprKind::Nil.into()),
        )
        .into();
        assert_eq!(
            e,
            ExprKind::Cons(Box::new(ExprKind::Int(1).into()), Box::new(tail)).into()
        );
    }

    #[test]
    fn list_literal_desugars_to_cons() {
        assert_eq!(
            parse_expr("[1, 2]").unwrap(),
            parse_expr("1 :: 2 :: nil").unwrap()
        );
        assert_eq!(parse_expr("[]").unwrap(), ExprKind::Nil.into());
    }

    #[test]
    fn tuples_nest_right() {
        assert_eq!(
            parse_expr("(1, 2, 3)").unwrap(),
            parse_expr("(1, (2, 3))").unwrap()
        );
    }

    #[test]
    fn projections() {
        let e = parse_expr("#1 p + #2 p").unwrap();
        assert_eq!(
            e,
            ExprKind::Prim(
                PrimOp::Add,
                vec![
                    ExprKind::Sel(1, Box::new(Expr::var("p"))).into(),
                    ExprKind::Sel(2, Box::new(Expr::var("p"))).into()
                ]
            )
            .into()
        );
    }

    #[test]
    fn let_with_fun_and_val() {
        let e = parse_expr("let val x = 1 fun f y = y + x in f 2 end").unwrap();
        let ExprKind::Let { decls, .. } = e.kind else {
            panic!("expected let")
        };
        assert_eq!(decls.len(), 2);
        assert!(matches!(decls[0], Decl::Val(..)));
        assert!(matches!(decls[1], Decl::Fun(..)));
    }

    #[test]
    fn mutual_recursion_with_and() {
        let p = parse_program("fun even n = if n = 0 then true else odd (n - 1) and odd n = if n = 0 then false else even (n - 1)").unwrap();
        let Decl::Fun(binds) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(binds.len(), 2);
    }

    #[test]
    fn case_on_lists_both_orders() {
        let a = parse_expr("case xs of nil => 0 | h :: t => h").unwrap();
        let b = parse_expr("case xs of h :: t => h | nil => 0").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn andalso_orelse_desugar_to_if() {
        assert_eq!(
            parse_expr("a andalso b").unwrap(),
            parse_expr("if a then b else false").unwrap()
        );
        assert_eq!(
            parse_expr("a orelse b").unwrap(),
            parse_expr("if a then true else b").unwrap()
        );
    }

    #[test]
    fn refs_and_assignment() {
        let e = parse_expr("r := !r + 1").unwrap();
        assert!(matches!(e.kind, ExprKind::Assign(..)));
    }

    #[test]
    fn sequencing_in_parens() {
        let e = parse_expr("(print \"a\"; 1)").unwrap();
        assert!(matches!(e.kind, ExprKind::Seq(..)));
    }

    #[test]
    fn annotations() {
        let e = parse_expr("(f : int -> int)").unwrap();
        assert!(matches!(e.kind, ExprKind::Ann(..)));
    }

    #[test]
    fn exceptions_parse() {
        let p = parse_program(
            "exception E of string fun f x = raise x val g = fn x => x handle E s => s",
        )
        .unwrap();
        assert_eq!(p.decls.len(), 3);
    }

    #[test]
    fn unit_param_in_fun() {
        let p = parse_program("fun main () = 42").unwrap();
        let Decl::Fun(binds) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(binds[0].params.len(), 1);
        assert_eq!(binds[0].params[0].1, Some(crate::ast::TyAnn::Unit));
    }

    #[test]
    fn negative_literals() {
        assert_eq!(parse_expr("~3").unwrap(), ExprKind::Int(-3).into());
        assert!(matches!(
            parse_expr("~x").unwrap().kind,
            ExprKind::Prim(PrimOp::Neg, _)
        ));
    }

    #[test]
    fn string_concat_precedence() {
        // ^ at additive level, below comparison
        let e = parse_expr("\"a\" ^ \"b\" = \"ab\"").unwrap();
        assert!(matches!(e.kind, ExprKind::Prim(PrimOp::Eq, _)));
    }

    #[test]
    fn fun_with_annotations() {
        let p = parse_program("fun f (x : int) : int = x + 1").unwrap();
        let Decl::Fun(binds) = &p.decls[0] else {
            panic!()
        };
        assert!(binds[0].ret.is_some());
        assert!(binds[0].params[0].1.is_some());
    }

    #[test]
    fn parse_error_has_position() {
        let err = parse_expr("let val = 3 in x end").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
        assert!(!err.span.is_dummy());
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_expr("1 2 3 )").is_err());
    }

    #[test]
    fn spans_cover_source_text() {
        let src = "f (g 1)";
        let e = parse_expr(src).unwrap();
        assert_eq!((e.span.start, e.span.end), (0, 7));
        let ExprKind::App(f, arg) = &e.kind else {
            panic!("expected application")
        };
        assert_eq!(&src[f.span.start as usize..f.span.end as usize], "f");
        assert_eq!(
            &src[arg.span.start as usize..arg.span.end as usize],
            "(g 1)"
        );
    }

    #[test]
    fn lambda_span_covers_fn_through_body() {
        let src = "val h = fn x => x + 1";
        let p = parse_program(src).unwrap();
        let Decl::Val(_, e) = &p.decls[0] else {
            panic!()
        };
        assert_eq!(
            &src[e.span.start as usize..e.span.end as usize],
            "fn x => x + 1"
        );
    }

    #[test]
    fn funbind_span_is_the_name() {
        let src = "fun main () = 42";
        let p = parse_program(src).unwrap();
        let Decl::Fun(binds) = &p.decls[0] else {
            panic!()
        };
        let sp = binds[0].span;
        assert_eq!(&src[sp.start as usize..sp.end as usize], "main");
    }

    #[test]
    fn figure1_program_parses() {
        // The paper's problematic program (Fig. 1), adapted to our syntax
        // with `compose` for `op o` and `forcegc` for `work`.
        let src = r#"
            fun compose (f, g) = fn a => f (g a)
            fun run () =
              let val h = compose (fn x => (), fn () => "oh" ^ "no")
                  val u = forcegc ()
              in h () end
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 2);
    }
}
