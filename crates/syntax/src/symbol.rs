//! Interned identifiers.
//!
//! A [`Symbol`] is a cheap, copyable handle to an interned string. The
//! interner is a process-wide table; interned strings are leaked so that
//! [`Symbol::as_str`] can hand out `&'static str` without locking on every
//! access. This is the usual trade-off for compiler workloads, where the
//! set of distinct identifiers is small and lives for the whole run.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// Two symbols are equal iff they were interned from equal strings.
///
/// # Example
///
/// ```
/// use rml_syntax::Symbol;
/// let a = Symbol::intern("x");
/// let b = Symbol::intern("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock().unwrap();
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = int.strings.len() as u32;
        int.map.insert(leaked, id);
        int.strings.push(leaked);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().unwrap().strings[self.0 as usize]
    }

    /// The symbol's interner index (stable within a process). Used by the
    /// runtime to store symbols in raw heap words.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from [`Symbol::index`].
    ///
    /// # Panics
    ///
    /// Panics (on later use) if the index was not produced by `index`.
    pub fn from_index(i: u32) -> Symbol {
        Symbol(i)
    }

    /// The interned string for index `i`, or `None` if `i` was never
    /// produced by [`Symbol::index`]. The non-panicking form used when
    /// the index comes from untrusted data (raw heap words, decoded IR).
    pub fn lookup_index(i: u32) -> Option<&'static str> {
        interner().lock().ok()?.strings.get(i as usize).copied()
    }

    /// Creates a fresh symbol that is guaranteed not to clash with any
    /// source identifier (the name contains a `#`, which the lexer rejects
    /// in identifiers).
    pub fn fresh(base: &str) -> Symbol {
        use std::sync::atomic::{AtomicU32, Ordering};
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("{base}#{n}"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "foo");
        assert_eq!(c.as_str(), "bar");
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("tmp");
        let b = Symbol::fresh("tmp");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("tmp#"));
    }

    #[test]
    fn display_matches_str() {
        let s = Symbol::intern("display");
        assert_eq!(format!("{s}"), "display");
        assert_eq!(format!("{s:?}"), "`display`");
    }
}
