//! Abstract syntax of the source language.
//!
//! The surface language is deliberately close to the intermediate language
//! of the paper's Section 3 (pairs, lambdas, `let`, recursive functions)
//! extended with the ML features the paper discusses: lists, conditionals,
//! strings, references, and exceptions with polymorphic argument types
//! (Section 4.4).
//!
//! Every expression is an [`Expr`]: an [`ExprKind`] paired with the
//! byte-range [`Span`] of the source text it came from. Equality on
//! expressions (and on [`FunBind`]s) deliberately ignores spans, so
//! structural tests — in particular the parser's desugaring tests, which
//! compare a sugared parse against its hand-written expansion — are
//! unaffected by position information.

use crate::symbol::Symbol;
use rml_session::Span;
use std::fmt;

/// A whole program: a sequence of top-level declarations.
///
/// Programs are run by evaluating declarations in order; if a nullary
/// function named `main` is declared, drivers call `main ()` afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

/// A declaration: a value binding, a group of mutually recursive function
/// bindings, or an exception declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// `val x = e`
    Val(Symbol, Expr),
    /// `fun f x1 ... xn = e and g ... = e ...`
    Fun(Vec<FunBind>),
    /// `exception E` or `exception E of ty`
    Exception(Symbol, Option<TyAnn>),
}

/// One binding of a `fun` declaration.
#[derive(Debug, Clone, Eq)]
pub struct FunBind {
    /// Function name.
    pub name: Symbol,
    /// Curried parameters with optional type annotations.
    pub params: Vec<(Symbol, Option<TyAnn>)>,
    /// Optional result-type annotation.
    pub ret: Option<TyAnn>,
    /// The function body.
    pub body: Expr,
    /// Span of the function's name token ([`Span::DUMMY`] when
    /// synthesised).
    pub span: Span,
}

impl PartialEq for FunBind {
    /// Structural equality, ignoring spans (see module docs).
    fn eq(&self, other: &FunBind) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.ret == other.ret
            && self.body == other.body
    }
}

/// Surface type annotations (`(e : ty)`, parameter and result constraints).
///
/// Annotations matter for the paper's Section 4.2 discussion: a direct type
/// constraint can remove spurious type variables that algorithm W would
/// otherwise introduce (the `List.app` example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TyAnn {
    /// A type variable, e.g. `'a`.
    Var(Symbol),
    /// `int`
    Int,
    /// `string`
    String,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// `exn`
    Exn,
    /// `ty list`
    List(Box<TyAnn>),
    /// `ty ref`
    Ref(Box<TyAnn>),
    /// `ty1 * ty2`
    Pair(Box<TyAnn>, Box<TyAnn>),
    /// `ty1 -> ty2`
    Arrow(Box<TyAnn>, Box<TyAnn>),
}

/// Primitive operators and builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Integer addition `+`.
    Add,
    /// Integer subtraction `-`.
    Sub,
    /// Integer multiplication `*`.
    Mul,
    /// Integer division `div`. Traps on division by zero.
    Div,
    /// Integer remainder `mod`. Traps on division by zero.
    Mod,
    /// Unary integer negation `~`.
    Neg,
    /// `<` on integers.
    Lt,
    /// `<=` on integers.
    Le,
    /// `>` on integers.
    Gt,
    /// `>=` on integers.
    Ge,
    /// Structural equality `=` (ints, bools, unit, strings).
    Eq,
    /// Structural inequality `<>`.
    Ne,
    /// Boolean negation `not`.
    Not,
    /// String concatenation `^`. Allocates (takes a result region).
    Concat,
    /// String length `size`.
    Size,
    /// Integer-to-string conversion `itos`. Allocates.
    Itos,
    /// `print : string -> unit`.
    Print,
    /// `forcegc : unit -> unit` — request a reference-tracing collection
    /// at the next safe point. Plays the role of the paper's `work ()`.
    ForceGc,
}

impl PrimOp {
    /// Number of operands.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Neg | PrimOp::Not | PrimOp::Size | PrimOp::Itos | PrimOp::Print => 1,
            PrimOp::ForceGc => 1, // takes unit
            _ => 2,
        }
    }

    /// Whether the operator allocates a boxed result (and therefore needs a
    /// result region after region inference).
    pub fn allocates(self) -> bool {
        matches!(self, PrimOp::Concat | PrimOp::Itos)
    }

    /// Surface name of the operator.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "div",
            PrimOp::Mod => "mod",
            PrimOp::Neg => "~",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Eq => "=",
            PrimOp::Ne => "<>",
            PrimOp::Not => "not",
            PrimOp::Concat => "^",
            PrimOp::Size => "size",
            PrimOp::Itos => "itos",
            PrimOp::Print => "print",
            PrimOp::ForceGc => "forcegc",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An expression: a shape ([`ExprKind`]) plus the source span it covers.
///
/// Equality ignores the span (see module docs), so desugared forms compare
/// equal to their hand-written expansions.
#[derive(Debug, Clone, Eq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// Byte range in the source buffer; [`Span::DUMMY`] for synthesised
    /// nodes.
    pub span: Span,
}

impl PartialEq for Expr {
    fn eq(&self, other: &Expr) -> bool {
        self.kind == other.kind
    }
}

impl From<ExprKind> for Expr {
    /// Wraps a kind with the dummy span — the form used by tests and
    /// synthesised (desugared) nodes.
    fn from(kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::DUMMY,
        }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// `()`
    Unit,
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// Variable occurrence.
    Var(Symbol),
    /// `fn x => e` (optionally `fn (x : ty) => e`).
    Lam {
        /// Parameter name.
        param: Symbol,
        /// Optional parameter annotation.
        ann: Option<TyAnn>,
        /// Body.
        body: Box<Expr>,
    },
    /// Application `e1 e2`.
    App(Box<Expr>, Box<Expr>),
    /// `let d1 ... dn in e end`.
    Let {
        /// The declarations, in order.
        decls: Vec<Decl>,
        /// The body.
        body: Box<Expr>,
    },
    /// Pair construction `(e1, e2)`.
    Pair(Box<Expr>, Box<Expr>),
    /// Projections `#1 e` / `#2 e` (`index` is 1 or 2).
    Sel(u8, Box<Expr>),
    /// `if e1 then e2 else e3`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Primitive application.
    Prim(PrimOp, Vec<Expr>),
    /// `nil`.
    Nil,
    /// `e1 :: e2`.
    Cons(Box<Expr>, Box<Expr>),
    /// `case e of nil => e1 | h :: t => e2`.
    CaseList {
        /// Scrutinee.
        scrut: Box<Expr>,
        /// The `nil` branch.
        nil_rhs: Box<Expr>,
        /// Head binder of the cons branch.
        head: Symbol,
        /// Tail binder of the cons branch.
        tail: Symbol,
        /// The cons branch.
        cons_rhs: Box<Expr>,
    },
    /// `ref e`.
    Ref(Box<Expr>),
    /// `!e`.
    Deref(Box<Expr>),
    /// `e1 := e2`.
    Assign(Box<Expr>, Box<Expr>),
    /// `(e1; e2)`.
    Seq(Box<Expr>, Box<Expr>),
    /// Type-annotated expression `(e : ty)`.
    Ann(Box<Expr>, TyAnn),
    /// `raise e` where `e : exn`.
    Raise(Box<Expr>),
    /// `e handle E x => e'` — catches exception constructor `E`, binding its
    /// argument to `x`; other exceptions re-raise.
    Handle {
        /// Protected expression.
        body: Box<Expr>,
        /// Exception constructor to catch.
        exn: Symbol,
        /// Binder for the exception argument.
        arg: Symbol,
        /// Handler body.
        handler: Box<Expr>,
    },
    /// Exception-constructor application `E e` where `E` was declared with
    /// `exception E of ty`. A bare `E` for a nullary exception parses as
    /// `Con(E, None)`.
    Con(Symbol, Option<Box<Expr>>),
}

impl ExprKind {
    /// Attaches a span, producing an [`Expr`].
    pub fn at(self, span: Span) -> Expr {
        Expr { kind: self, span }
    }
}

impl Expr {
    /// Convenience constructor for a variable (dummy span).
    pub fn var(name: &str) -> Expr {
        ExprKind::Var(Symbol::intern(name)).into()
    }

    /// Convenience constructor for application (dummy span).
    pub fn app(f: Expr, a: Expr) -> Expr {
        ExprKind::App(Box::new(f), Box::new(a)).into()
    }

    /// Number of AST nodes, used for `loc`-style size metrics.
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_children(|c| n += c.size());
        n
    }

    /// Calls `f` on each immediate child expression.
    pub fn for_children<F: FnMut(&Expr)>(&self, mut f: F) {
        match &self.kind {
            ExprKind::Unit
            | ExprKind::Int(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Var(_)
            | ExprKind::Nil => {}
            ExprKind::Lam { body, .. } => f(body),
            ExprKind::App(a, b)
            | ExprKind::Pair(a, b)
            | ExprKind::Cons(a, b)
            | ExprKind::Assign(a, b)
            | ExprKind::Seq(a, b) => {
                f(a);
                f(b);
            }
            ExprKind::Let { decls, body } => {
                for d in decls {
                    match d {
                        Decl::Val(_, e) => f(e),
                        Decl::Fun(binds) => {
                            for b in binds {
                                f(&b.body);
                            }
                        }
                        Decl::Exception(..) => {}
                    }
                }
                f(body);
            }
            ExprKind::Sel(_, e)
            | ExprKind::Ref(e)
            | ExprKind::Deref(e)
            | ExprKind::Ann(e, _)
            | ExprKind::Raise(e) => f(e),
            ExprKind::If(a, b, c) => {
                f(a);
                f(b);
                f(c);
            }
            ExprKind::Prim(_, args) => {
                for a in args {
                    f(a);
                }
            }
            ExprKind::CaseList {
                scrut,
                nil_rhs,
                cons_rhs,
                ..
            } => {
                f(scrut);
                f(nil_rhs);
                f(cons_rhs);
            }
            ExprKind::Handle { body, handler, .. } => {
                f(body);
                f(handler);
            }
            ExprKind::Con(_, arg) => {
                if let Some(a) = arg {
                    f(a);
                }
            }
        }
    }
}

impl Program {
    /// Total number of AST nodes across all declarations.
    pub fn size(&self) -> usize {
        self.decls
            .iter()
            .map(|d| match d {
                Decl::Val(_, e) => e.size() + 1,
                Decl::Fun(bs) => bs.iter().map(|b| b.body.size() + 1).sum(),
                Decl::Exception(..) => 1,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_arities() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Not.arity(), 1);
        assert_eq!(PrimOp::Print.arity(), 1);
    }

    #[test]
    fn allocating_prims() {
        assert!(PrimOp::Concat.allocates());
        assert!(PrimOp::Itos.allocates());
        assert!(!PrimOp::Add.allocates());
    }

    #[test]
    fn expr_size_counts_nodes() {
        let e = Expr::app(Expr::var("f"), ExprKind::Int(1).into());
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn equality_ignores_spans() {
        let a = ExprKind::Int(1).at(Span::new(3, 4));
        let b = ExprKind::Int(1).at(Span::new(7, 8));
        assert_eq!(a, b);
        assert_ne!(a, ExprKind::Int(2).into());
    }

    #[test]
    fn program_size_counts_decls() {
        let p = Program {
            decls: vec![
                Decl::Val(Symbol::intern("x"), ExprKind::Int(1).into()),
                Decl::Exception(Symbol::intern("E"), None),
            ],
        };
        assert_eq!(p.size(), 3);
    }
}
