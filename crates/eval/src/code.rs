//! The code table: a pre-pass over the program term assigning a code id
//! to every lambda and `fun` definition, with its free program variables
//! and free region variables (the closure layout).

use rml_core::terms::{FixDef, Term};
use rml_core::vars::RegVar;
use rml_syntax::Symbol;
use std::collections::{BTreeSet, HashMap};

/// Index into the code table.
pub type CodeId = usize;

/// One compiled function.
pub struct CodeEntry<'a> {
    /// Parameter.
    pub param: Symbol,
    /// Body.
    pub body: &'a Term,
    /// Free program variables captured at closure creation, in slot order
    /// (for `fun` members this excludes the group names, which occupy the
    /// sibling slots).
    pub fvs: Vec<Symbol>,
    /// Region parameters (the scheme's quantified region variables) —
    /// filled at region application.
    pub rparams: Vec<RegVar>,
    /// Free region variables captured at closure creation, in slot order.
    pub frvs: Vec<RegVar>,
    /// For `fun` members: the group's member code ids and names.
    pub group: Option<GroupInfo>,
}

/// Shared information about a `fun` group.
#[derive(Clone)]
pub struct GroupInfo {
    /// Code ids of all members, in order.
    pub members: Vec<CodeId>,
    /// Names of all members, in order.
    pub names: Vec<Symbol>,
}

/// The code table.
pub struct CodeTable<'a> {
    /// Entries by id.
    pub entries: Vec<CodeEntry<'a>>,
    /// Lambda node (by address) → code id.
    pub lam_ids: HashMap<usize, CodeId>,
    /// `Fix` group (`Rc` address of its defs) → member code ids.
    pub fix_ids: HashMap<usize, Vec<CodeId>>,
}

impl<'a> CodeTable<'a> {
    /// Builds the table for a program.
    pub fn build(term: &'a Term) -> CodeTable<'a> {
        let mut t = CodeTable {
            entries: Vec::new(),
            lam_ids: HashMap::new(),
            fix_ids: HashMap::new(),
        };
        t.walk(term);
        t
    }

    fn walk(&mut self, e: &'a Term) {
        match e {
            Term::Lam { param, body, .. } => {
                let key = e as *const Term as usize;
                if !self.lam_ids.contains_key(&key) {
                    let mut fvs: Vec<Symbol> =
                        body.fpv().into_iter().filter(|v| v != param).collect();
                    fvs.sort();
                    let mut frvs: BTreeSet<RegVar> = BTreeSet::new();
                    free_rvars(body, &mut Vec::new(), &mut frvs);
                    let id = self.entries.len();
                    self.entries.push(CodeEntry {
                        param: *param,
                        body,
                        fvs,
                        rparams: Vec::new(),
                        frvs: frvs.into_iter().collect(),
                        group: None,
                    });
                    self.lam_ids.insert(key, id);
                }
                self.walk(body);
            }
            Term::Fix { defs, .. } => {
                let key = std::rc::Rc::as_ptr(defs) as usize;
                if !self.fix_ids.contains_key(&key) {
                    let names: Vec<Symbol> = defs.iter().map(|d| d.f).collect();
                    let base = self.entries.len();
                    let members: Vec<CodeId> = (0..defs.len()).map(|i| base + i).collect();
                    for d in defs.iter() {
                        let entry = self.fix_entry(d, &names, &members);
                        self.entries.push(entry);
                    }
                    self.fix_ids.insert(key, members);
                    for d in defs.iter() {
                        self.walk(&d.body);
                    }
                }
            }
            _ => e_children(e, |c| self.walk(c)),
        }
    }

    fn fix_entry(&mut self, d: &'a FixDef, names: &[Symbol], members: &[CodeId]) -> CodeEntry<'a> {
        let mut fvs: Vec<Symbol> = d
            .body
            .fpv()
            .into_iter()
            .filter(|v| *v != d.param && !names.contains(v))
            .collect();
        fvs.sort();
        let mut bound: Vec<RegVar> = d.scheme.rvars.clone();
        let mut frvs = BTreeSet::new();
        free_rvars(&d.body, &mut bound, &mut frvs);
        CodeEntry {
            param: d.param,
            body: &d.body,
            fvs,
            rparams: d.scheme.rvars.clone(),
            frvs: frvs.into_iter().collect(),
            group: Some(GroupInfo {
                members: members.to_vec(),
                names: names.to_vec(),
            }),
        }
    }
}

fn e_children<'a>(e: &'a Term, mut f: impl FnMut(&'a Term)) {
    match e {
        Term::Var(_)
        | Term::Unit
        | Term::Int(_)
        | Term::Bool(_)
        | Term::Str(..)
        | Term::Nil(_)
        | Term::Val(_) => {}
        Term::Lam { body, .. } => f(body),
        Term::Fix { defs, .. } => {
            for d in defs.iter() {
                f(&d.body);
            }
        }
        Term::App(a, b) | Term::Assign(a, b) | Term::Pair(a, b, _) | Term::Cons(a, b, _) => {
            f(a);
            f(b);
        }
        Term::RApp { f: g, .. } => f(g),
        Term::Let { rhs, body, .. } => {
            f(rhs);
            f(body);
        }
        Term::Letregion { body, .. } => f(body),
        Term::Sel(_, a) | Term::RefNew(a, _) | Term::Deref(a) | Term::Raise(a, _) => f(a),
        Term::If(a, b, c) => {
            f(a);
            f(b);
            f(c);
        }
        Term::Prim(_, args, _) => {
            for a in args {
                f(a);
            }
        }
        Term::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            f(scrut);
            f(nil_rhs);
            f(cons_rhs);
        }
        Term::Exn { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Term::Handle { body, handler, .. } => {
            f(body);
            f(handler);
        }
    }
}

/// Free region variables of a term: all regions in `at` annotations,
/// primitive result regions, instantiation ranges, and group allocation
/// regions, minus `letregion`/scheme binders.
pub fn free_rvars(e: &Term, bound: &mut Vec<RegVar>, out: &mut BTreeSet<RegVar>) {
    let add = |r: RegVar, bound: &Vec<RegVar>, out: &mut BTreeSet<RegVar>| {
        if !bound.contains(&r) {
            out.insert(r);
        }
    };
    match e {
        Term::Str(_, r) | Term::Pair(_, _, r) | Term::Cons(_, _, r) | Term::RefNew(_, r) => {
            add(*r, bound, out)
        }
        Term::Lam { at, .. } => add(*at, bound, out),
        Term::Exn { at, .. } => add(*at, bound, out),
        Term::Prim(_, _, Some(r)) => add(*r, bound, out),
        Term::Fix { ats, .. } => {
            for r in ats.iter() {
                add(*r, bound, out);
            }
        }
        Term::RApp { inst, at, .. } => {
            add(*at, bound, out);
            for v in inst.reg.values() {
                add(*v, bound, out);
            }
        }
        _ => {}
    }
    match e {
        Term::Letregion { rvars, body, .. } => {
            let n = bound.len();
            bound.extend(rvars.iter().copied());
            free_rvars(body, bound, out);
            bound.truncate(n);
        }
        Term::Lam { body, .. } => free_rvars(body, bound, out),
        Term::Fix { defs, .. } => {
            for d in defs.iter() {
                let n = bound.len();
                bound.extend(d.scheme.rvars.iter().copied());
                free_rvars(&d.body, bound, out);
                bound.truncate(n);
            }
        }
        other => e_children(other, |c| free_rvars(c, bound, out)),
    }
}
