//! The `rml` abstract machine: executes region-annotated programs
//! ([`rml_core::Term`]) against the page-based region heap of
//! `rml-runtime`, with an interleaved reference-tracing collector.
//!
//! Unlike the substitution-based formal semantics in `rml-core` (used for
//! metatheory), this machine is a performance model of compiled code:
//!
//! * closures are **heap objects** that capture the values of their free
//!   variables (and the regions of their free region variables), so the
//!   collector traces real pointers — including the dangling ones that
//!   strategy `rg-` leaves behind,
//! * all live values are reachable from an enumerable **root set**
//!   (the control value, the continuation frames, and the environment
//!   chains), so collection can happen between any two machine steps,
//! * `letregion` pushes and pops regions on the region stack;
//!   deallocation poisons pages so stale pointers are detected,
//! * a baseline mode ([`RunOpts::baseline`]) ignores regions entirely and
//!   runs on a single collected heap — the stand-in for a conventional
//!   tracing-GC compiler in the benchmark comparisons.
//!
//! # Example
//!
//! ```
//! use rml_eval::{run, RunOpts, RunValue};
//! let prog = rml_syntax::parse_program("fun main () = 21 + 21").unwrap();
//! let typed = rml_hm::infer_program(&prog).unwrap();
//! let out = rml_infer::infer(&typed, Default::default()).unwrap();
//! let res = run(&out.term, &RunOpts::new(out.global)).unwrap();
//! assert_eq!(res.value, RunValue::Int(42));
//! ```

// The torture rig's subject: library code here must surface failures as
// structured errors, never via panicking escape hatches. Test modules
// (compiled only under `cfg(test)`) are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod code;
mod decode;
mod machine;

pub use decode::RunValue;
pub use machine::{run, GcPolicy, RunError, RunOpts, RunOutcome, StressSchedule, VerifyLevel};
